//! Offline drop-in subset of the
//! [`criterion`](https://crates.io/crates/criterion) benchmarking
//! crate.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the slice of criterion its benches use:
//! [`Criterion::bench_function`], [`Bencher::iter`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Measurement is a
//! simple warmup + timed-batch loop that reports the mean wall-clock
//! time per iteration; there is no statistical analysis or HTML report.
//!
//! Unlike upstream's opaque state, baselines here are plain JSON files
//! so perf regressions fail CI instead of being vibes:
//!
//! * `ARCANE_BENCH_BASELINE=record` writes one
//!   `baselines/<bench-id>.json` (mean ns/iter) per bench under the
//!   bench crate's manifest directory;
//! * `ARCANE_BENCH_BASELINE=check` compares each measurement against
//!   its committed baseline and makes the bench binary exit non-zero if
//!   any bench regressed by more than `ARCANE_BENCH_TOLERANCE`
//!   (default `0.25` = 25%);
//! * unset: measure and print only.
//!
//! Set `ARCANE_BENCH_MS` (default `200`) to change the per-benchmark
//! measurement budget in milliseconds.
//!
//! ```
//! use criterion::{Criterion, black_box};
//!
//! let mut c = Criterion::default();
//! c.bench_function("sum", |b| b.iter(|| (0..100u64).map(black_box).sum::<u64>()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement budget per benchmark.
fn budget() -> Duration {
    let ms = std::env::var("ARCANE_BENCH_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200u64);
    Duration::from_millis(ms)
}

/// Baseline handling mode, from `ARCANE_BENCH_BASELINE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BaselineMode {
    Off,
    Record,
    Check,
}

fn baseline_mode() -> BaselineMode {
    match std::env::var("ARCANE_BENCH_BASELINE").as_deref() {
        Ok("record") => BaselineMode::Record,
        Ok("check") => BaselineMode::Check,
        _ => BaselineMode::Off,
    }
}

/// Allowed fractional regression before `check` fails (default 25%).
fn tolerance() -> f64 {
    std::env::var("ARCANE_BENCH_TOLERANCE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.25)
}

fn baseline_dir() -> &'static OnceLock<PathBuf> {
    static DIR: OnceLock<PathBuf> = OnceLock::new();
    &DIR
}

fn regressions() -> &'static Mutex<Vec<String>> {
    static R: Mutex<Vec<String>> = Mutex::new(Vec::new());
    &R
}

/// Sets the directory that holds `baselines/` (called by
/// [`criterion_main!`] with the bench crate's manifest directory).
pub fn set_baseline_root(manifest_dir: &str) {
    let _ = baseline_dir().set(PathBuf::from(manifest_dir).join("baselines"));
}

fn baseline_path(id: &str) -> Option<PathBuf> {
    let safe: String = id
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    Some(baseline_dir().get()?.join(format!("{safe}.json")))
}

/// Minimal JSON for one baseline entry; hand-rolled because the build
/// environment has no serde.
fn write_baseline(path: &PathBuf, id: &str, mean_ns: u64, iters: u64) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(
        path,
        format!(
            "{{\n  \"bench\": \"{id}\",\n  \"mean_ns\": {mean_ns},\n  \"iters\": {iters}\n}}\n"
        ),
    )
}

/// Extracts `"mean_ns": <u64>` from a baseline file.
fn parse_mean_ns(text: &str) -> Option<u64> {
    let tail = text.split("\"mean_ns\"").nth(1)?;
    let digits: String = tail
        .chars()
        .skip_while(|c| !c.is_ascii_digit())
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

fn record_or_check(id: &str, mean: Duration, iters: u64) {
    let mode = baseline_mode();
    if mode == BaselineMode::Off {
        return;
    }
    let Some(path) = baseline_path(id) else {
        println!("baseline: no root set for {id}; skipping");
        return;
    };
    let mean_ns = mean.as_nanos() as u64;
    match mode {
        BaselineMode::Record => {
            write_baseline(&path, id, mean_ns, iters).expect("baseline file writes");
            println!("baseline recorded: {}", path.display());
        }
        BaselineMode::Check => {
            let Ok(text) = std::fs::read_to_string(&path) else {
                println!("baseline missing for {id} ({}); skipping", path.display());
                return;
            };
            let Some(base) = parse_mean_ns(&text) else {
                println!("baseline unparsable for {id}; skipping");
                return;
            };
            let ratio = mean_ns as f64 / base.max(1) as f64;
            let tol = tolerance();
            if ratio > 1.0 + tol {
                let msg = format!(
                    "{id}: {mean_ns} ns/iter vs baseline {base} ns/iter \
                     (+{:.1}% > {:.0}% tolerance)",
                    (ratio - 1.0) * 100.0,
                    tol * 100.0
                );
                println!("baseline REGRESSION: {msg}");
                regressions().lock().unwrap().push(msg);
            } else {
                println!(
                    "baseline ok: {id} {mean_ns} ns/iter vs {base} ({:+.1}%)",
                    (ratio - 1.0) * 100.0
                );
            }
        }
        BaselineMode::Off => unreachable!(),
    }
}

/// Fails the process if `check` mode found regressions (called at the
/// end of the `main` generated by [`criterion_main!`]).
pub fn finish() {
    let r = regressions().lock().unwrap();
    assert!(
        r.is_empty(),
        "{} bench regression(s) beyond tolerance:\n  {}",
        r.len(),
        r.join("\n  ")
    );
}

/// The benchmark driver: registers and immediately runs benchmarks.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs `f` once with a [`Bencher`], timing whatever the bencher's
    /// `iter` closure does, and prints the mean time per iteration.
    /// Depending on `ARCANE_BENCH_BASELINE`, also records the mean to
    /// the baseline directory or checks it against the committed value.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            mean: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        println!(
            "bench {:<40} {:>12.3?}/iter ({} iterations)",
            id, b.mean, b.iters
        );
        record_or_check(id, b.mean, b.iters);
        self
    }
}

/// Times a closure; handed to [`Criterion::bench_function`] callbacks.
#[derive(Debug)]
pub struct Bencher {
    mean: Duration,
    iters: u64,
}

impl Bencher {
    /// Calls `routine` repeatedly for the measurement budget and
    /// records the mean wall-clock duration of one call.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warmup + calibration: find how many calls fit in ~10% of the
        // budget, then measure in batches of that size.
        let budget = budget();
        let calib_deadline = Instant::now() + budget / 10;
        let mut calib_iters = 0u64;
        while Instant::now() < calib_deadline || calib_iters == 0 {
            black_box(routine());
            calib_iters += 1;
        }

        let deadline = Instant::now() + budget;
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        while Instant::now() < deadline {
            let start = Instant::now();
            for _ in 0..calib_iters {
                black_box(routine());
            }
            total += start.elapsed();
            iters += calib_iters;
        }
        // Divide in u128 nanoseconds: casting `iters` to u32 would
        // wrap for sub-ns routines under a large ARCANE_BENCH_MS.
        self.mean = Duration::from_nanos((total.as_nanos() / u128::from(iters.max(1))) as u64);
        self.iters = iters;
    }
}

/// Declares a group of benchmark functions, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the `main` that runs one or more benchmark groups, wires
/// the baseline directory to the bench crate's `baselines/` folder and
/// fails the process when `ARCANE_BENCH_BASELINE=check` found
/// regressions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes `--bench` (and possibly filters);
            // this minimal harness runs everything regardless.
            $crate::set_baseline_root(env!("CARGO_MANIFEST_DIR"));
            $($group();)+
            $crate::finish();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        std::env::set_var("ARCANE_BENCH_MS", "10");
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1u32 + 1));
    }

    #[test]
    fn baseline_json_roundtrip() {
        let dir = std::env::temp_dir().join("arcane-criterion-test");
        let path = dir.join("x.json");
        write_baseline(&path, "x", 12345, 7).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(parse_mean_ns(&text), Some(12345));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mean_ns_parser_tolerates_whitespace() {
        assert_eq!(parse_mean_ns("{\"mean_ns\":  42 }"), Some(42));
        assert_eq!(parse_mean_ns("{}"), None);
    }
}
