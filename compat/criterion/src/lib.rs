//! Offline drop-in subset of the
//! [`criterion`](https://crates.io/crates/criterion) benchmarking
//! crate.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the slice of criterion its benches use:
//! [`Criterion::bench_function`], [`Bencher::iter`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Measurement is a
//! simple warmup + timed-batch loop that reports the mean wall-clock
//! time per iteration; there is no statistical analysis, HTML report,
//! or baseline comparison. That is enough for the paper-reproduction
//! benches, whose primary output is the regenerated tables/figures
//! they print before measuring.
//!
//! Set `ARCANE_BENCH_MS` (default `200`) to change the per-benchmark
//! measurement budget in milliseconds.
//!
//! ```
//! use criterion::{Criterion, black_box};
//!
//! let mut c = Criterion::default();
//! c.bench_function("sum", |b| b.iter(|| (0..100u64).map(black_box).sum::<u64>()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement budget per benchmark.
fn budget() -> Duration {
    let ms = std::env::var("ARCANE_BENCH_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200u64);
    Duration::from_millis(ms)
}

/// The benchmark driver: registers and immediately runs benchmarks.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs `f` once with a [`Bencher`], timing whatever the bencher's
    /// `iter` closure does, and prints the mean time per iteration.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            mean: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        println!(
            "bench {:<40} {:>12.3?}/iter ({} iterations)",
            id, b.mean, b.iters
        );
        self
    }
}

/// Times a closure; handed to [`Criterion::bench_function`] callbacks.
#[derive(Debug)]
pub struct Bencher {
    mean: Duration,
    iters: u64,
}

impl Bencher {
    /// Calls `routine` repeatedly for the measurement budget and
    /// records the mean wall-clock duration of one call.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warmup + calibration: find how many calls fit in ~10% of the
        // budget, then measure in batches of that size.
        let budget = budget();
        let calib_deadline = Instant::now() + budget / 10;
        let mut calib_iters = 0u64;
        while Instant::now() < calib_deadline || calib_iters == 0 {
            black_box(routine());
            calib_iters += 1;
        }

        let deadline = Instant::now() + budget;
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        while Instant::now() < deadline {
            let start = Instant::now();
            for _ in 0..calib_iters {
                black_box(routine());
            }
            total += start.elapsed();
            iters += calib_iters;
        }
        // Divide in u128 nanoseconds: casting `iters` to u32 would
        // wrap for sub-ns routines under a large ARCANE_BENCH_MS.
        self.mean = Duration::from_nanos((total.as_nanos() / u128::from(iters.max(1))) as u64);
        self.iters = iters;
    }
}

/// Declares a group of benchmark functions, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the `main` that runs one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes `--bench` (and possibly filters);
            // this minimal harness runs everything regardless.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        std::env::set_var("ARCANE_BENCH_MS", "10");
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1u32 + 1));
    }
}
