//! Offline drop-in subset of the
//! [`proptest`](https://crates.io/crates/proptest) crate.
//!
//! The build environment has no crates.io access, so this workspace
//! vendors the slice of proptest it uses: composable [`Strategy`]
//! values (ranges, tuples, [`Just`], [`prelude::any`], mapped and
//! union strategies, [`collection::vec`]) plus the [`proptest!`],
//! [`prop_oneof!`], [`prop_assert!`], [`prop_assert_eq!`] and
//! [`prop_assume!`] macros.
//!
//! Semantics intentionally kept from upstream:
//!
//! * every generated case is *deterministic* — the RNG stream is
//!   seeded from the test name, so failures reproduce across runs;
//! * `prop_assume!` rejects a case without failing the test;
//! * `prop_assert*!` failures report the formatted message and panic
//!   the test (upstream additionally shrinks; this shim does not —
//!   cases are small enough here to debug unshrunk).
//!
//! ```
//! use proptest::prelude::*;
//!
//! // `proptest! { #[test] fn f(a in 0i32..100) { .. } }` expands to a
//! // `#[test]` wrapper around this engine:
//! proptest::run_cases("doc", (0i32..100, 0i32..100), |(a, b)| {
//!     prop_assert_eq!(a + b, b + a);
//!     Ok(())
//! });
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::Range;

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// Number of random cases each `proptest!` test runs.
pub const CASES: u32 = 192;

/// The RNG handed to strategies during generation.
pub type TestRng = SmallRng;

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; try another case.
    Reject(String),
    /// A `prop_assert*!` failed; the whole test fails.
    Fail(String),
}

impl TestCaseError {
    /// Creates a rejection (used by `prop_assume!`).
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }

    /// Creates a failure (used by `prop_assert*!`).
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Result type of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A recipe for generating random values of an output type.
///
/// Unlike upstream proptest there is no value tree / shrinking; a
/// strategy is simply a deterministic function of the RNG stream.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy so heterogeneous strategies can share
    /// one list (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between same-valued strategies (see [`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.random_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($name:ident),*) => {
        impl<$($name: Strategy),*> Strategy for ($($name,)*) {
            type Value = ($($name::Value,)*);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)*) = self;
                ($($name.generate(rng),)*)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
tuple_strategy!(A, B, C, D, E, F, G, H, I);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

/// Types with a canonical "any value" strategy (see [`prelude::any`]).
pub trait Arbitrary: Sized {
    /// The strategy [`prelude::any`] returns for this type.
    type Strategy: Strategy<Value = Self>;

    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy for a full-range primitive (returned by [`prelude::any`]).
#[derive(Clone, Debug, Default)]
pub struct AnyPrimitive<T> {
    _marker: core::marker::PhantomData<T>,
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }

        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;

            fn arbitrary() -> Self::Strategy {
                AnyPrimitive::default()
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, i8, i16, i32, i64, usize, isize);

impl Strategy for AnyPrimitive<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrimitive<bool>;

    fn arbitrary() -> Self::Strategy {
        AnyPrimitive::default()
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use core::ops::Range;
    use rand::Rng;

    /// Strategy for `Vec`s with a length drawn from `len`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// Generates vectors whose elements come from `elem` and whose
    /// length is uniform in `len`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.random_range(self.len.clone());
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Deterministically derives a 64-bit seed from a test's name.
pub fn seed_for(test_name: &str, case: u32) -> u64 {
    // FNV-1a over the name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h ^ ((case as u64) << 32 | case as u64)
}

/// Runs `body` over `CASES` generated inputs. This is the engine
/// behind the [`proptest!`] macro; exposed so the macro expansion
/// stays small.
pub fn run_cases<S, F>(test_name: &str, strategy: S, mut body: F)
where
    S: Strategy,
    F: FnMut(S::Value) -> TestCaseResult,
{
    let mut rejected = 0u32;
    let mut ran = 0u32;
    let mut case = 0u32;
    while ran < CASES {
        let mut rng = TestRng::seed_from_u64(seed_for(test_name, case));
        case += 1;
        let input = strategy.generate(&mut rng);
        match body(input) {
            Ok(()) => ran += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected < CASES * 16,
                    "{test_name}: too many prop_assume! rejections ({rejected})"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("{test_name}: case #{case} failed: {msg}");
            }
        }
    }
}

/// Everything a property test file needs, mirroring
/// `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
    pub use crate::{
        Arbitrary, BoxedStrategy, Just, Strategy, TestCaseError, TestCaseResult, Union,
    };

    /// The `prop::` facade (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::collection;
    }

    /// Returns the canonical strategy for `T` (full value range).
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

/// Declares property tests. Each `fn name(pat in strategy, ...) { .. }`
/// expands to a `#[test]` that runs the body over [`CASES`] generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases(
                    stringify!($name),
                    ($($strat,)*),
                    |($($arg,)*)| -> $crate::TestCaseResult {
                        $body
                        Ok(())
                    },
                );
            }
        )*
    };
}

/// Uniformly picks one of several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Like `assert!`, but reports through the property-test harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        // `{}`-interpolate the stringified condition rather than
        // concat!-ing it into the format string, so conditions that
        // contain braces (`matches!(x, E::V { .. })`) stay valid.
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Like `assert_eq!`, but reports through the property-test harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?} == {:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?} == {:?}`: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Like `assert_ne!`, but reports through the property-test harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?} != {:?}`", l, r);
    }};
}

/// Rejects the current case (without failing) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(concat!(
                "assume failed: ",
                stringify!($cond)
            )));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_maps(x in 0u8..10, y in (0i32..5).prop_map(|v| v * 2)) {
            prop_assert!(x < 10);
            prop_assert!(y % 2 == 0 && (0..10).contains(&y));
        }

        #[test]
        fn oneof_and_collections(
            v in collection::vec(prop_oneof![Just(1u32), Just(2), 5u32..7], 1..20),
            b in any::<bool>(),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&x| x == 1 || x == 2 || x == 5 || x == 6));
            prop_assume!(b);
            prop_assert!(b);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let one: Vec<u32> = {
            let mut rng = crate::TestRng::seed_from_u64(crate::seed_for("t", 0));
            (0..8).map(|_| (0u32..100).generate(&mut rng)).collect()
        };
        let two: Vec<u32> = {
            let mut rng = crate::TestRng::seed_from_u64(crate::seed_for("t", 0));
            (0..8).map(|_| (0u32..100).generate(&mut rng)).collect()
        };
        assert_eq!(one, two);
    }

    use rand::SeedableRng;
}
