//! Offline drop-in subset of the [`rand`](https://crates.io/crates/rand)
//! crate (0.9 API surface).
//!
//! The build environment for this repository has no access to
//! crates.io, so the workspace vendors the *small* slice of `rand` it
//! actually uses: a seedable small RNG ([`rngs::SmallRng`]) and
//! [`Rng::random_range`] over primitive-integer ranges. The generator
//! is `splitmix64` + `xoshiro256**` — statistically solid for test
//! vectors and fully deterministic for a given seed, which is all the
//! simulator needs (workload generation, property tests, traffic
//! fuzzing).
//!
//! ```
//! use rand::rngs::SmallRng;
//! use rand::{Rng, SeedableRng};
//!
//! let mut rng = SmallRng::seed_from_u64(42);
//! let x: i64 = rng.random_range(-8..=8);
//! assert!((-8..=8).contains(&x));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// A source of random `u64` words.
pub trait RngCore {
    /// Returns the next random 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// An RNG that can be constructed from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (via `splitmix64`
    /// expansion, so nearby seeds give unrelated streams).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (half-open or
    /// inclusive). Panics on an empty range, like upstream `rand`.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Samples a value from the full range of `T` (the
    /// `StandardUniform` distribution in upstream `rand`).
    fn random<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Samples a `bool` that is `true` with probability `p`.
    /// Panics unless `0.0 <= p <= 1.0`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        // Compare against a 53-bit uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

/// Types samplable uniformly over their whole value range via
/// [`Rng::random`].
pub trait Standard {
    /// Draws one full-range value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// A type that can be sampled uniformly from an integer range.
pub trait SampleUniform: Copy {
    /// Samples uniformly from `[low, high]` (both inclusive).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// A range type usable with [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd + One> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_inclusive(rng, self.start, self.end.minus_one())
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        assert!(low <= high, "cannot sample empty range");
        T::sample_inclusive(rng, low, high)
    }
}

/// Helper for turning a half-open bound into an inclusive one.
pub trait One {
    /// Returns `self - 1`.
    fn minus_one(self) -> Self;
}

macro_rules! impl_uniform {
    ($($t:ty),*) => {$(
        impl One for $t {
            fn minus_one(self) -> Self {
                self - 1
            }
        }

        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as i128).wrapping_sub(low as i128) as u128 + 1;
                // Rejection sampling over the top 2^128 % span values
                // keeps the draw exactly uniform.
                let zone = u128::MAX - (u128::MAX - span + 1) % span;
                loop {
                    let wide = (rng.next_u64() as u128) << 64 | rng.next_u64() as u128;
                    if wide <= zone {
                        return ((low as i128).wrapping_add((wide % span) as i128)) as $t;
                    }
                }
            }
        }
    )*};
}

impl_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Small, fast generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small-state deterministic generator (`xoshiro256**`).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 seed expansion, as recommended by the
            // xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let a: Vec<u32> = {
            let mut r = SmallRng::seed_from_u64(7);
            (0..16).map(|_| r.random_range(0u32..1000)).collect()
        };
        let b: Vec<u32> = {
            let mut r = SmallRng::seed_from_u64(7);
            (0..16).map(|_| r.random_range(0u32..1000)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn ranges_are_respected() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = r.random_range(-5i64..=5);
            assert!((-5..=5).contains(&x));
            let y = r.random_range(0usize..3);
            assert!(y < 3);
            let z = r.random_range(10u8..11);
            assert_eq!(z, 10);
        }
    }

    #[test]
    fn covers_full_span() {
        let mut r = SmallRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[r.random_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
