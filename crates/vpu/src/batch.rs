//! Monomorphised per-line batch kernels for the VPU datapath.
//!
//! [`crate::Vpu`] originally walked vector registers element-at-a-time
//! through `Sew`-generic accessors, materialising every operand as a
//! `Vec<i64>` — the dominant simulator cost of compute-phase sweeps.
//! These kernels instead run one tight loop per (operation, element
//! width) pair directly over little-endian byte slices; the `Sew` match
//! happens once per vector instruction instead of once per element, and
//! the compiler monomorphises and vectorises the inner loops.
//!
//! Semantics are bit-for-bit those of the original i64 reference code
//! (wrapping two's complement at the selected width), including the
//! quirky shift behaviour it inherited from evaluating in i64:
//!
//! * `Sll` masks the shift amount by 63 (u64 `wrapping_shl`), then any
//!   shift ≥ the element width produces 0 — so a shift amount of 64
//!   wraps to 0 and leaves the element unchanged;
//! * `Srl`/`Sra` reduce the shift amount modulo the element width.

use arcane_isa::vector::VOp;

/// A machine element type the datapath operates on (i8/i16/i32),
/// mirroring the reference interpreter's i64-at-width semantics.
pub(crate) trait Elem: Copy {
    /// Size of one element in bytes.
    const BYTES: usize;
    /// Smallest representable value (identity for max-reduction).
    const MIN: Self;

    /// Reads one little-endian element from the head of `b`.
    fn load(b: &[u8]) -> Self;
    /// Writes one little-endian element to the head of `b`.
    fn store(self, b: &mut [u8]);
    /// Sign-extends to i64 (reduction results, scalar interop).
    fn to_i64(self) -> i64;
    /// Truncates an i64 to this width (scalar splat).
    fn from_i64(v: i64) -> Self;

    fn wadd(self, o: Self) -> Self;
    fn wsub(self, o: Self) -> Self;
    fn wmul(self, o: Self) -> Self;
    fn emax(self, o: Self) -> Self;
    fn emin(self, o: Self) -> Self;
    fn band(self, o: Self) -> Self;
    fn bor(self, o: Self) -> Self;
    fn bxor(self, o: Self) -> Self;
    /// `Sll` with the reference engine's u64 semantics (see module docs).
    fn shl64(self, o: Self) -> Self;
    /// Logical right shift, amount reduced modulo the element width.
    fn shr_l(self, o: Self) -> Self;
    /// Arithmetic right shift, amount reduced modulo the element width.
    fn shr_a(self, o: Self) -> Self;
}

macro_rules! impl_elem {
    ($t:ty, $u:ty, $bytes:literal) => {
        impl Elem for $t {
            const BYTES: usize = $bytes;
            const MIN: Self = <$t>::MIN;

            #[inline(always)]
            fn load(b: &[u8]) -> Self {
                <$t>::from_le_bytes(b[..$bytes].try_into().unwrap())
            }

            #[inline(always)]
            fn store(self, b: &mut [u8]) {
                b[..$bytes].copy_from_slice(&self.to_le_bytes());
            }

            #[inline(always)]
            fn to_i64(self) -> i64 {
                self as i64
            }

            #[inline(always)]
            fn from_i64(v: i64) -> Self {
                v as $t
            }

            #[inline(always)]
            fn wadd(self, o: Self) -> Self {
                self.wrapping_add(o)
            }

            #[inline(always)]
            fn wsub(self, o: Self) -> Self {
                self.wrapping_sub(o)
            }

            #[inline(always)]
            fn wmul(self, o: Self) -> Self {
                self.wrapping_mul(o)
            }

            #[inline(always)]
            fn emax(self, o: Self) -> Self {
                self.max(o)
            }

            #[inline(always)]
            fn emin(self, o: Self) -> Self {
                self.min(o)
            }

            #[inline(always)]
            fn band(self, o: Self) -> Self {
                self & o
            }

            #[inline(always)]
            fn bor(self, o: Self) -> Self {
                self | o
            }

            #[inline(always)]
            fn bxor(self, o: Self) -> Self {
                self ^ o
            }

            #[inline(always)]
            fn shl64(self, o: Self) -> Self {
                // Reference: wrap((x as u64).wrapping_shl(y as u32)):
                // u64 shifts mask the amount by 63; ≥ BITS clears the
                // low element bits.
                let s = (o as u32) & 63;
                if s >= <$u>::BITS {
                    0
                } else {
                    ((self as $u) << s) as $t
                }
            }

            #[inline(always)]
            fn shr_l(self, o: Self) -> Self {
                let s = (o as u32) % <$u>::BITS;
                ((self as $u) >> s) as $t
            }

            #[inline(always)]
            fn shr_a(self, o: Self) -> Self {
                let s = (o as u32) % <$u>::BITS;
                self >> s
            }
        }
    };
}

impl_elem!(i8, u8, 1);
impl_elem!(i16, u16, 2);
impl_elem!(i32, u32, 4);

/// Applies `op` element-wise over `n` elements: `dst[i] = a[i] op b[i]`
/// (for `Macc`, `dst[i] += a[i] * b[i]`). The slices must each hold at
/// least `n * E::BYTES` bytes; `a` and `b` must not alias `dst` (the
/// caller stages sources in scratch lines).
pub(crate) fn binary<E: Elem>(op: VOp, n: usize, dst: &mut [u8], a: &[u8], b: &[u8]) {
    macro_rules! lanes {
        (|$x:ident, $y:ident| $e:expr) => {
            for ((d, ax), bx) in dst
                .chunks_exact_mut(E::BYTES)
                .zip(a.chunks_exact(E::BYTES))
                .zip(b.chunks_exact(E::BYTES))
                .take(n)
            {
                let $x = E::load(ax);
                let $y = E::load(bx);
                ($e).store(d);
            }
        };
    }
    match op {
        VOp::Add => lanes!(|x, y| x.wadd(y)),
        VOp::Sub => lanes!(|x, y| x.wsub(y)),
        VOp::Mul => lanes!(|x, y| x.wmul(y)),
        VOp::Macc => {
            for ((d, ax), bx) in dst
                .chunks_exact_mut(E::BYTES)
                .zip(a.chunks_exact(E::BYTES))
                .zip(b.chunks_exact(E::BYTES))
                .take(n)
            {
                let acc = E::load(d);
                acc.wadd(E::load(ax).wmul(E::load(bx))).store(d);
            }
        }
        VOp::Max => lanes!(|x, y| x.emax(y)),
        VOp::Min => lanes!(|x, y| x.emin(y)),
        VOp::Sll => lanes!(|x, y| x.shl64(y)),
        VOp::Srl => lanes!(|x, y| x.shr_l(y)),
        VOp::Sra => lanes!(|x, y| x.shr_a(y)),
        VOp::And => lanes!(|x, y| x.band(y)),
        VOp::Or => lanes!(|x, y| x.bor(y)),
        VOp::Xor => lanes!(|x, y| x.bxor(y)),
    }
}

/// Fills the first `n` elements of `dst` with `v`.
pub(crate) fn splat<E: Elem>(n: usize, dst: &mut [u8], v: E) {
    for d in dst.chunks_exact_mut(E::BYTES).take(n) {
        v.store(d);
    }
}

/// Wrapping sum of the first `n` elements (the reference engine wraps
/// at element width after every partial sum).
pub(crate) fn red_sum<E: Elem>(n: usize, src: &[u8]) -> i64 {
    src.chunks_exact(E::BYTES)
        .take(n)
        .fold(E::from_i64(0), |acc, c| acc.wadd(E::load(c)))
        .to_i64()
}

/// Maximum of the first `n` elements (`E::MIN` when `n == 0`).
pub(crate) fn red_max<E: Elem>(n: usize, src: &[u8]) -> i64 {
    src.chunks_exact(E::BYTES)
        .take(n)
        .fold(E::MIN, |acc, c| acc.emax(E::load(c)))
        .to_i64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shift_semantics_match_the_i64_reference() {
        // Reference semantics for one element, as the original code
        // computed them.
        fn ref_sll(x: i64, y: i64, bits: u32) -> i64 {
            let v = (x as u64).wrapping_shl(y as u32) as i64;
            // wrap to width
            (v << (64 - bits)) >> (64 - bits)
        }
        for (x, y) in [(0x7fi8, 1i8), (-1, 8), (3, 64), (5, -1), (1, 31)] {
            let got = x.shl64(y);
            let want = ref_sll(x as i64, y as i64, 8) as i8;
            assert_eq!(got, want, "sll({x}, {y})");
        }
        // Shift of 64 wraps to 0 in u64 => element unchanged.
        assert_eq!(3i8.shl64(64), 3);
        // Shift of 32 clears an i8 but is amount 0 for Srl (mod 8).
        assert_eq!(3i8.shl64(32), 0);
        assert_eq!((-8i8).shr_l(32), -8);
        assert_eq!((-8i8).shr_a(1), -4);
        assert_eq!((-8i8).shr_l(1), 124);
    }

    #[test]
    fn macc_accumulates_in_place() {
        let mut d = (100i32).to_le_bytes().to_vec();
        let a = (3i32).to_le_bytes().to_vec();
        let b = (-7i32).to_le_bytes().to_vec();
        binary::<i32>(VOp::Macc, 1, &mut d, &a, &b);
        assert_eq!(i32::from_le_bytes(d[..4].try_into().unwrap()), 100 - 21);
    }

    #[test]
    fn reductions_wrap_at_width() {
        let src = [0x7f, 1]; // 127 + 1 wraps to -128 in i8
        assert_eq!(red_sum::<i8>(2, &src), -128);
        assert_eq!(red_max::<i8>(2, &src), 127);
        assert_eq!(red_max::<i8>(0, &src), i8::MIN as i64);
    }

    #[test]
    fn splat_fills_prefix_only() {
        let mut d = vec![0u8; 8];
        splat::<i16>(2, &mut d, -2i16);
        assert_eq!(&d, &[0xfe, 0xff, 0xfe, 0xff, 0, 0, 0, 0]);
    }
}
