//! NM-Carus-style near-memory vector processing unit (VPU).
//!
//! In ARCANE the LLC data array is built from NM-Carus instances: each
//! VPU owns 32 vector registers of 1 KiB, and those vector registers
//! **are** the cache lines (the LLC has `n_vpus × 32` lines). In normal
//! cache mode the controller reads and writes the lines; in compute mode
//! the eCPU dispatches vector micro-programs that stream over them
//! through an `N × 32-bit` lane datapath with sub-word SIMD — which is
//! exactly why 8-bit workloads enjoy a 4× throughput advantage over
//! 32-bit ones in the paper's Figure 4.
//!
//! [`Vpu::execute`] interprets a program of
//! [`arcane_isa::vector::VInstr`] with wrapping two's-complement
//! semantics and returns the datapath cycles from the lane-limited
//! [`VpuTiming`] model. Results are bit-exact against the golden scalar
//! models (property-tested). Element-wise operations run as per-line
//! batch kernels monomorphised per [`Sew`] over little-endian byte
//! slices (the `batch` module) rather than element-at-a-time `i64`
//! loops — the per-element width dispatch of the original interpreter
//! was the dominant compute-phase cost of whole-sweep simulations.
//!
//! # Examples
//!
//! ```
//! use arcane_isa::vector::{Sr, VInstr, VOp, Vr};
//! use arcane_sim::Sew;
//! use arcane_vpu::{Vpu, VpuConfig};
//!
//! let mut vpu = Vpu::new(VpuConfig::with_lanes(4));
//! let v = |i| Vr::new(i).unwrap();
//! vpu.line_mut(0)[..4].copy_from_slice(&[1, 2, 3, 4]);
//! vpu.line_mut(1)[..4].copy_from_slice(&[10, 20, 30, 40]);
//! let prog = [
//!     VInstr::SetVl { vl: 4, sew: Sew::Byte },
//!     VInstr::OpVV { op: VOp::Add, vd: v(2), vs1: v(0), vs2: v(1) },
//! ];
//! let stats = vpu.execute(&prog).unwrap();
//! assert_eq!(&vpu.line(2)[..4], &[11, 22, 33, 44]);
//! assert!(stats.cycles > 0);
//! # let _ = Sr::new(0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;

use arcane_isa::vector::{Sr, VInstr, VOp, Vr};
use arcane_sim::Sew;
use std::error::Error;
use std::fmt;

/// Static configuration of one VPU instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VpuConfig {
    /// Number of 32-bit lanes in the datapath (the paper evaluates
    /// 2, 4 and 8).
    pub lanes: usize,
    /// Number of vector registers (= cache lines contributed to the LLC).
    pub vregs: usize,
    /// Bytes per vector register (= cache line size; 1 KiB in the paper).
    pub vlen_bytes: usize,
    /// Fixed pipeline overhead charged per vector instruction
    /// (decode + first-fill of the lane pipeline).
    pub op_overhead: u64,
}

impl VpuConfig {
    /// The paper's VPU shape (32 × 1 KiB registers) with `lanes` lanes.
    pub const fn with_lanes(lanes: usize) -> Self {
        VpuConfig {
            lanes,
            vregs: 32,
            vlen_bytes: 1024,
            op_overhead: 2,
        }
    }

    /// Capacity of the register file in bytes (= cache slice size).
    pub const fn capacity_bytes(&self) -> usize {
        self.vregs * self.vlen_bytes
    }

    /// Maximum vector length in elements for a given element width.
    pub const fn max_vl(&self, sew: Sew) -> usize {
        self.vlen_bytes / sew.bytes()
    }

    /// Datapath throughput in bytes per cycle (32-bit lanes).
    pub const fn bytes_per_cycle(&self) -> u64 {
        (self.lanes * 4) as u64
    }
}

impl Default for VpuConfig {
    fn default() -> Self {
        VpuConfig::with_lanes(4)
    }
}

/// Lane-limited cycle model helpers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VpuTiming {
    cfg: VpuConfig,
}

impl VpuTiming {
    /// Creates the timing view of a configuration.
    pub const fn new(cfg: VpuConfig) -> Self {
        VpuTiming { cfg }
    }

    /// Cycles for one element-wise pass over `vl` elements of width
    /// `sew`: `op_overhead + ceil(vl · sew / (4 · lanes))`.
    pub fn elementwise(&self, vl: usize, sew: Sew) -> u64 {
        let bytes = (vl * sew.bytes()) as u64;
        self.cfg.op_overhead + bytes.div_ceil(self.cfg.bytes_per_cycle()).max(1)
    }

    /// Cycles for a reduction: one element-wise pass plus a
    /// log₂(lanes) combine tree.
    pub fn reduction(&self, vl: usize, sew: Sew) -> u64 {
        self.elementwise(vl, sew) + (self.cfg.lanes.max(2)).ilog2() as u64
    }
}

/// Error raised by [`Vpu::execute`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VpuError {
    /// `vsetvl` requested more elements than a vector register holds.
    VlTooLarge {
        /// Requested vector length.
        vl: usize,
        /// Maximum for the configured `vlen` and element width.
        max: usize,
    },
    /// An instruction named a vector register beyond the configured file.
    BadVreg {
        /// The register index.
        index: u8,
    },
}

impl fmt::Display for VpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VpuError::VlTooLarge { vl, max } => {
                write!(f, "vsetvl {vl} exceeds the register capacity of {max}")
            }
            VpuError::BadVreg { index } => write!(f, "vector register v{index} does not exist"),
        }
    }
}

impl Error for VpuError {}

/// Execution statistics of one micro-program.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Datapath cycles consumed.
    pub cycles: u64,
    /// Vector instructions retired.
    pub instrs: u64,
}

/// One NM-Carus vector processing unit.
///
/// The byte array behind the vector registers is exposed line-by-line
/// ([`Vpu::line`] / [`Vpu::line_mut`]) because in ARCANE those lines are
/// simultaneously the cache data array: the controller services hits
/// from them and the DMA fills them during kernel allocation.
#[derive(Debug, Clone)]
pub struct Vpu {
    cfg: VpuConfig,
    timing: VpuTiming,
    data: Vec<u8>,
    sregs: [u32; 32],
    vl: usize,
    sew: Sew,
    /// Staging lines for the batch kernels: sources are copied here so
    /// the destination line can be written in place even when an
    /// instruction names the same register as source and destination.
    scratch_a: Vec<u8>,
    scratch_b: Vec<u8>,
}

impl Vpu {
    /// Creates a VPU with zeroed registers.
    pub fn new(cfg: VpuConfig) -> Self {
        Vpu {
            cfg,
            timing: VpuTiming::new(cfg),
            data: vec![0; cfg.capacity_bytes()],
            sregs: [0; 32],
            vl: cfg.max_vl(Sew::Word),
            sew: Sew::Word,
            scratch_a: vec![0; cfg.vlen_bytes],
            scratch_b: vec![0; cfg.vlen_bytes],
        }
    }

    /// The VPU configuration.
    pub const fn config(&self) -> &VpuConfig {
        &self.cfg
    }

    /// The timing model.
    pub const fn timing(&self) -> &VpuTiming {
        &self.timing
    }

    /// Read-only view of vector register / cache line `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn line(&self, idx: usize) -> &[u8] {
        let vlen = self.cfg.vlen_bytes;
        &self.data[idx * vlen..(idx + 1) * vlen]
    }

    /// Mutable view of vector register / cache line `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn line_mut(&mut self, idx: usize) -> &mut [u8] {
        let vlen = self.cfg.vlen_bytes;
        &mut self.data[idx * vlen..(idx + 1) * vlen]
    }

    /// Writes scalar register `rs` (the eCPU does this before dispatch).
    pub fn set_sreg(&mut self, rs: Sr, value: u32) {
        self.sregs[rs.index() as usize] = value;
    }

    /// Reads scalar register `rs`.
    pub fn sreg(&self, rs: Sr) -> u32 {
        self.sregs[rs.index() as usize]
    }

    /// Currently configured vector length in elements.
    pub const fn vl(&self) -> usize {
        self.vl
    }

    /// Currently configured element width.
    pub const fn sew(&self) -> Sew {
        self.sew
    }

    fn check_vreg(&self, v: Vr) -> Result<usize, VpuError> {
        let i = v.index() as usize;
        if i < self.cfg.vregs {
            Ok(i)
        } else {
            Err(VpuError::BadVreg { index: v.index() })
        }
    }

    /// Executes a vector micro-program and returns its statistics.
    ///
    /// # Errors
    ///
    /// Returns [`VpuError`] on an over-long `vsetvl` or an out-of-range
    /// register; partially executed programs leave their side effects
    /// (as the hardware would).
    pub fn execute(&mut self, prog: &[VInstr]) -> Result<ExecStats, VpuError> {
        let mut stats = ExecStats::default();
        for instr in prog {
            stats.cycles += self.execute_one(instr)?;
            stats.instrs += 1;
        }
        Ok(stats)
    }

    /// Executes a single vector instruction, returning its cycles.
    ///
    /// # Errors
    ///
    /// See [`Vpu::execute`].
    pub fn execute_one(&mut self, instr: &VInstr) -> Result<u64, VpuError> {
        match *instr {
            VInstr::SetVl { vl, sew } => {
                let max = self.cfg.max_vl(sew);
                if vl as usize > max {
                    return Err(VpuError::VlTooLarge {
                        vl: vl as usize,
                        max,
                    });
                }
                self.vl = vl as usize;
                self.sew = sew;
                Ok(1)
            }
            VInstr::OpVV { op, vd, vs1, vs2 } => {
                let d = self.check_vreg(vd)?;
                let a = self.check_vreg(vs1)?;
                let b = self.check_vreg(vs2)?;
                self.stage_line(a, false);
                self.stage_line(b, true);
                self.batch_binary(op, d);
                Ok(self.timing.elementwise(self.vl, self.sew))
            }
            VInstr::OpVX { op, vd, vs1, rs } => {
                let d = self.check_vreg(vd)?;
                let a = self.check_vreg(vs1)?;
                let scalar = self.truncate(self.sregs[rs.index() as usize]);
                self.stage_line(a, false);
                self.stage_splat(scalar);
                self.batch_binary(op, d);
                Ok(self.timing.elementwise(self.vl, self.sew))
            }
            VInstr::SlideDown { vd, vs1, offset } => {
                let d = self.check_vreg(vd)?;
                let a = self.check_vreg(vs1)?;
                let sz = self.sew.bytes();
                let vlen = self.cfg.vlen_bytes;
                let off = offset as usize;
                // Slides read the full register, so data beyond `vl+off`
                // is still reachable; elements past the register end
                // read as zero.
                let n_copy = self.cfg.max_vl(self.sew).saturating_sub(off).min(self.vl);
                let Vpu {
                    data, scratch_a, ..
                } = self;
                scratch_a[..vlen].copy_from_slice(&data[a * vlen..(a + 1) * vlen]);
                let dst = &mut data[d * vlen..d * vlen + self.vl * sz];
                dst[..n_copy * sz].copy_from_slice(&scratch_a[off * sz..(off + n_copy) * sz]);
                dst[n_copy * sz..].fill(0);
                Ok(self.timing.elementwise(self.vl, self.sew))
            }
            VInstr::SlideUp { vd, vs1, offset } => {
                let d = self.check_vreg(vd)?;
                let a = self.check_vreg(vs1)?;
                let sz = self.sew.bytes();
                let vlen = self.cfg.vlen_bytes;
                let off = offset as usize;
                let n = self.vl.saturating_sub(off);
                let Vpu {
                    data, scratch_a, ..
                } = self;
                scratch_a[..n * sz].copy_from_slice(&data[a * vlen..a * vlen + n * sz]);
                data[d * vlen + off * sz..d * vlen + (off + n) * sz]
                    .copy_from_slice(&scratch_a[..n * sz]);
                Ok(self.timing.elementwise(self.vl, self.sew))
            }
            VInstr::BroadcastX { vd, rs } => {
                let d = self.check_vreg(vd)?;
                let scalar = self.truncate(self.sregs[rs.index() as usize]);
                let (vl, vlen) = (self.vl, self.cfg.vlen_bytes);
                let nb = vl * self.sew.bytes();
                let dst = &mut self.data[d * vlen..d * vlen + nb];
                match self.sew {
                    Sew::Byte => batch::splat::<i8>(vl, dst, scalar as i8),
                    Sew::Half => batch::splat::<i16>(vl, dst, scalar as i16),
                    Sew::Word => batch::splat::<i32>(vl, dst, scalar as i32),
                }
                Ok(self.timing.elementwise(self.vl, self.sew))
            }
            VInstr::Move { vd, vs1 } => {
                let d = self.check_vreg(vd)?;
                let a = self.check_vreg(vs1)?;
                let vlen = self.cfg.vlen_bytes;
                let nb = self.vl * self.sew.bytes();
                self.data.copy_within(a * vlen..a * vlen + nb, d * vlen);
                Ok(self.timing.elementwise(self.vl, self.sew))
            }
            VInstr::RedSum { vd, vs1 } => {
                let d = self.check_vreg(vd)?;
                let a = self.check_vreg(vs1)?;
                let sum = match self.sew {
                    Sew::Byte => batch::red_sum::<i8>(self.vl, self.line(a)),
                    Sew::Half => batch::red_sum::<i16>(self.vl, self.line(a)),
                    Sew::Word => batch::red_sum::<i32>(self.vl, self.line(a)),
                };
                self.write_elem(d, 0, sum);
                Ok(self.timing.reduction(self.vl, self.sew))
            }
            VInstr::RedMax { vd, vs1 } => {
                let d = self.check_vreg(vd)?;
                let a = self.check_vreg(vs1)?;
                let m = match self.sew {
                    Sew::Byte => batch::red_max::<i8>(self.vl, self.line(a)),
                    Sew::Half => batch::red_max::<i16>(self.vl, self.line(a)),
                    Sew::Word => batch::red_max::<i32>(self.vl, self.line(a)),
                };
                self.write_elem(d, 0, m);
                Ok(self.timing.reduction(self.vl, self.sew))
            }
        }
    }

    /// Copies the active `vl · sew` bytes of `line` into one of the two
    /// staging buffers (sources are staged so the destination can alias
    /// either operand).
    fn stage_line(&mut self, line: usize, second: bool) {
        let vlen = self.cfg.vlen_bytes;
        let nb = self.vl * self.sew.bytes();
        let Vpu {
            data,
            scratch_a,
            scratch_b,
            ..
        } = self;
        let dst = if second { scratch_b } else { scratch_a };
        dst[..nb].copy_from_slice(&data[line * vlen..line * vlen + nb]);
    }

    /// Fills the second staging buffer with a broadcast scalar
    /// (already truncated to the active width).
    fn stage_splat(&mut self, scalar: i64) {
        let vl = self.vl;
        match self.sew {
            Sew::Byte => batch::splat::<i8>(vl, &mut self.scratch_b, scalar as i8),
            Sew::Half => batch::splat::<i16>(vl, &mut self.scratch_b, scalar as i16),
            Sew::Word => batch::splat::<i32>(vl, &mut self.scratch_b, scalar as i32),
        }
    }

    /// Runs the monomorphised batch kernel for `op` over the staged
    /// sources, writing destination line `d` in place.
    fn batch_binary(&mut self, op: VOp, d: usize) {
        let vlen = self.cfg.vlen_bytes;
        let vl = self.vl;
        let nb = vl * self.sew.bytes();
        let sew = self.sew;
        let Vpu {
            data,
            scratch_a,
            scratch_b,
            ..
        } = self;
        let dst = &mut data[d * vlen..d * vlen + nb];
        match sew {
            Sew::Byte => batch::binary::<i8>(op, vl, dst, scratch_a, scratch_b),
            Sew::Half => batch::binary::<i16>(op, vl, dst, scratch_a, scratch_b),
            Sew::Word => batch::binary::<i32>(op, vl, dst, scratch_a, scratch_b),
        }
    }

    fn truncate(&self, v: u32) -> i64 {
        match self.sew {
            Sew::Byte => v as u8 as i8 as i64,
            Sew::Half => v as u16 as i16 as i64,
            Sew::Word => v as i32 as i64,
        }
    }

    fn write_elem(&mut self, line: usize, i: usize, v: i64) {
        let sew = self.sew;
        let o = i * sew.bytes();
        let bytes = self.line_mut(line);
        match sew {
            Sew::Byte => bytes[o] = v as u8,
            Sew::Half => bytes[o..o + 2].copy_from_slice(&(v as i16).to_le_bytes()),
            Sew::Word => bytes[o..o + 4].copy_from_slice(&(v as i32).to_le_bytes()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u8) -> Vr {
        Vr::new(i).unwrap()
    }

    fn s(i: u8) -> Sr {
        Sr::new(i).unwrap()
    }

    fn vpu() -> Vpu {
        Vpu::new(VpuConfig::with_lanes(4))
    }

    fn set_words(vpu: &mut Vpu, line: usize, vals: &[i32]) {
        for (i, &x) in vals.iter().enumerate() {
            vpu.line_mut(line)[i * 4..i * 4 + 4].copy_from_slice(&x.to_le_bytes());
        }
    }

    fn get_words(vpu: &Vpu, line: usize, n: usize) -> Vec<i32> {
        (0..n)
            .map(|i| {
                let b = &vpu.line(line)[i * 4..i * 4 + 4];
                i32::from_le_bytes([b[0], b[1], b[2], b[3]])
            })
            .collect()
    }

    #[test]
    fn add_and_macc_word() {
        let mut u = vpu();
        set_words(&mut u, 0, &[1, -2, 3, i32::MAX]);
        set_words(&mut u, 1, &[10, 20, -30, 1]);
        set_words(&mut u, 2, &[100, 100, 100, 100]);
        u.execute(&[
            VInstr::SetVl {
                vl: 4,
                sew: Sew::Word,
            },
            VInstr::OpVV {
                op: VOp::Macc,
                vd: v(2),
                vs1: v(0),
                vs2: v(1),
            },
        ])
        .unwrap();
        assert_eq!(
            get_words(&u, 2, 4),
            vec![110, 60, 10, 100i32.wrapping_add(i32::MAX)]
        );
    }

    #[test]
    fn byte_arithmetic_wraps() {
        let mut u = vpu();
        u.line_mut(0)[..2].copy_from_slice(&[0x7f, 0x80]);
        u.line_mut(1)[..2].copy_from_slice(&[1, 0xff]);
        u.execute(&[
            VInstr::SetVl {
                vl: 2,
                sew: Sew::Byte,
            },
            VInstr::OpVV {
                op: VOp::Add,
                vd: v(2),
                vs1: v(0),
                vs2: v(1),
            },
        ])
        .unwrap();
        assert_eq!(&u.line(2)[..2], &[0x80, 0x7f]); // 127+1=-128, -128+-1=127
    }

    #[test]
    fn scalar_broadcast_and_vx_ops() {
        let mut u = vpu();
        set_words(&mut u, 0, &[5, -5, 0, 2]);
        u.set_sreg(s(3), 3);
        u.execute(&[
            VInstr::SetVl {
                vl: 4,
                sew: Sew::Word,
            },
            VInstr::OpVX {
                op: VOp::Mul,
                vd: v(1),
                vs1: v(0),
                rs: s(3),
            },
            VInstr::BroadcastX { vd: v(2), rs: s(3) },
        ])
        .unwrap();
        assert_eq!(get_words(&u, 1, 4), vec![15, -15, 0, 6]);
        assert_eq!(get_words(&u, 2, 4), vec![3, 3, 3, 3]);
    }

    #[test]
    fn relu_via_max_vx() {
        let mut u = vpu();
        set_words(&mut u, 0, &[5, -5, 0, -1]);
        u.set_sreg(s(0), 0);
        u.execute(&[
            VInstr::SetVl {
                vl: 4,
                sew: Sew::Word,
            },
            VInstr::OpVX {
                op: VOp::Max,
                vd: v(0),
                vs1: v(0),
                rs: s(0),
            },
        ])
        .unwrap();
        assert_eq!(get_words(&u, 0, 4), vec![5, 0, 0, 0]);
    }

    #[test]
    fn slide_down_pulls_beyond_vl() {
        let mut u = vpu();
        set_words(&mut u, 0, &[1, 2, 3, 4, 5, 6]);
        u.execute(&[
            VInstr::SetVl {
                vl: 4,
                sew: Sew::Word,
            },
            VInstr::SlideDown {
                vd: v(1),
                vs1: v(0),
                offset: 2,
            },
        ])
        .unwrap();
        // elements 2..6 visible: slide reads the full register
        assert_eq!(get_words(&u, 1, 4), vec![3, 4, 5, 6]);
    }

    #[test]
    fn slide_up_preserves_prefix() {
        let mut u = vpu();
        set_words(&mut u, 0, &[1, 2, 3, 4]);
        set_words(&mut u, 1, &[9, 9, 9, 9]);
        u.execute(&[
            VInstr::SetVl {
                vl: 4,
                sew: Sew::Word,
            },
            VInstr::SlideUp {
                vd: v(1),
                vs1: v(0),
                offset: 1,
            },
        ])
        .unwrap();
        assert_eq!(get_words(&u, 1, 4), vec![9, 1, 2, 3]);
    }

    #[test]
    fn reductions() {
        let mut u = vpu();
        set_words(&mut u, 0, &[1, -2, 30, 4]);
        u.execute(&[
            VInstr::SetVl {
                vl: 4,
                sew: Sew::Word,
            },
            VInstr::RedSum {
                vd: v(1),
                vs1: v(0),
            },
            VInstr::RedMax {
                vd: v(2),
                vs1: v(0),
            },
        ])
        .unwrap();
        assert_eq!(get_words(&u, 1, 1), vec![33]);
        assert_eq!(get_words(&u, 2, 1), vec![30]);
    }

    #[test]
    fn cycle_model_scales_with_lanes_and_sew() {
        let cfg2 = VpuConfig::with_lanes(2);
        let cfg8 = VpuConfig::with_lanes(8);
        let t2 = VpuTiming::new(cfg2);
        let t8 = VpuTiming::new(cfg8);
        // 1024 int32 elements = 4096 bytes: 2 lanes -> 512 cycles, 8 -> 128.
        assert_eq!(t2.elementwise(1024, Sew::Word), 2 + 512);
        assert_eq!(t8.elementwise(1024, Sew::Word), 2 + 128);
        // int8 is 4x faster for the same element count.
        assert_eq!(t8.elementwise(1024, Sew::Byte), 2 + 32);
    }

    #[test]
    fn setvl_rejects_oversize() {
        let mut u = vpu();
        let err = u
            .execute(&[VInstr::SetVl {
                vl: 2048,
                sew: Sew::Word,
            }])
            .unwrap_err();
        assert_eq!(err, VpuError::VlTooLarge { vl: 2048, max: 256 });
        // int8 allows the full 1024
        u.execute(&[VInstr::SetVl {
            vl: 1024,
            sew: Sew::Byte,
        }])
        .unwrap();
    }

    #[test]
    fn lines_alias_vector_registers() {
        let mut u = vpu();
        u.line_mut(7)[0] = 42;
        assert_eq!(u.line(7)[0], 42);
        assert_eq!(u.config().capacity_bytes(), 32 * 1024);
    }
}
