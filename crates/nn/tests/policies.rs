//! Acceptance grid for the scheduler-policy × VPU-count matrix: the
//! int8 transformer encoder block must run end-to-end **bit-exact**
//! against its golden model on 1, 2 and 4 VPU instances under all
//! three placement policies (ISSUE 3 acceptance criteria), and the
//! policies must actually change placement where placement can differ.

use arcane_core::{ArcaneConfig, SchedulerKind};
use arcane_nn::suite;
use arcane_sim::Sew;

fn cfg(n_vpus: usize, scheduler: SchedulerKind) -> ArcaneConfig {
    let mut c = ArcaneConfig::with_lanes(8);
    c.n_vpus = n_vpus;
    c.scheduler = scheduler;
    c
}

#[test]
fn transformer_block_bit_exact_across_policy_and_vpu_grid() {
    let block = suite::transformer_block(12, 16, 24, Sew::Byte, 2024);
    for n_vpus in [1usize, 2, 4] {
        for scheduler in SchedulerKind::ALL {
            // Split the row-parallel kernels as wide as the VPU array.
            let r = block.run_verified(cfg(n_vpus, scheduler), n_vpus);
            assert!(r.cycles > 0, "{scheduler} x {n_vpus}");
            let per = r.kernels_per_vpu(n_vpus);
            assert_eq!(
                per.iter().sum::<usize>(),
                r.kernels,
                "{scheduler} x {n_vpus}: every kernel placed"
            );
        }
    }
}

#[test]
fn depthwise_and_residual_bit_exact_across_policies() {
    let dws = suite::depthwise_separable(12, 12, 3, Sew::Byte, 77);
    let res = suite::residual_bottleneck(16, 16, Sew::Byte, 78);
    for scheduler in SchedulerKind::ALL {
        dws.run_verified(cfg(4, scheduler), 2);
        res.run_verified(cfg(4, scheduler), 4);
    }
}

#[test]
fn round_robin_rotates_across_vpus() {
    let block = suite::transformer_block(12, 16, 24, Sew::Byte, 2024);
    let r = block.run_verified(cfg(4, SchedulerKind::RoundRobin), 4);
    let per = r.kernels_per_vpu(4);
    // A rotation must touch every VPU on a chain this long.
    assert!(per.iter().all(|&n| n > 0), "round-robin placement: {per:?}");
}

/// On a pure kernel chain no host access ever dirties a line, so every
/// policy degenerates to the same earliest-available rotation. Real
/// divergence needs mixed host/kernel traffic: dirty a VPU-0 line with
/// a host store, then ask each policy to place a kernel.
#[test]
fn policies_disagree_under_host_dirty_lines() {
    use arcane_core::ArcaneLlc;
    use arcane_isa::xmnmc::{self, kernel_id, MatReg, FUNC5_XMR};
    use arcane_mem::{AccessSize, Memory};
    use arcane_rv32::XifResponse;

    let placement_under = |scheduler: SchedulerKind| -> usize {
        let mut c = ArcaneConfig::with_lanes(8);
        c.scheduler = scheduler;
        let mut llc = ArcaneLlc::new(c);
        let base = 0x2000_0000u32;
        // Host store: allocates (and dirties) a line on VPU 0.
        llc.host_access(base + 0x8_0000, true, 7, AccessSize::Word, 0)
            .unwrap();
        // Seed a tiny ReLU workload elsewhere and offload it.
        for i in 0..64u32 {
            llc.ext_mut().write_u32(base + i * 4, i).unwrap();
        }
        let m = |i: u8| MatReg::new(i).unwrap();
        for (f, vals, t) in [
            (FUNC5_XMR, xmnmc::pack_xmr(base, 1, m(0), 8, 8), 100),
            (
                FUNC5_XMR,
                xmnmc::pack_xmr(base + 0x1000, 1, m(1), 8, 8),
                110,
            ),
            (
                kernel_id::LEAKY_RELU,
                xmnmc::pack_kernel(3, 0, m(1), m(0), m(0), m(0)),
                120,
            ),
        ] {
            assert!(matches!(
                llc.offload_xmnmc(f, Sew::Word, vals, t),
                XifResponse::Accept { .. }
            ));
        }
        llc.records()[0].vpu
    };

    // The dirty line sits on VPU 0: least-dirty and most-free both
    // steer away from it, the oblivious rotation starts right on it.
    assert_eq!(placement_under(SchedulerKind::RoundRobin), 0);
    assert_ne!(placement_under(SchedulerKind::LeastDirty), 0);
    assert_ne!(placement_under(SchedulerKind::MostFree), 0);
}

#[test]
fn single_vpu_policies_are_cycle_identical() {
    // With one VPU there is no placement freedom: every policy must
    // produce the exact same schedule, hence identical cycle counts.
    let block = suite::residual_bottleneck(8, 12, Sew::Byte, 5);
    let cycles: Vec<u64> = SchedulerKind::ALL
        .iter()
        .map(|&s| block.run_verified(cfg(1, s), 1).cycles)
        .collect();
    assert_eq!(cycles[0], cycles[1]);
    assert_eq!(cycles[1], cycles[2]);
}
