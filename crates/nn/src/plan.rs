//! Memory planner: external-memory placement of every graph tensor.
//!
//! The planner lays the graph's tensors out as a contiguous arena from
//! a base address, one 1 KiB-aligned region per storage-owning tensor
//! (the same alignment idiom as [`arcane_system::Layout`]). Aligning
//! regions to the cache-line size means a kernel chain's intermediates
//! map onto whole VPU cache lines: once a producing kernel has written
//! a tensor, the consuming kernel's allocation DMA finds the lines
//! LLC-resident and the bytes never make a round trip the host can
//! observe between kernels — the Address Table orders the chain.
//!
//! [`View`](crate::graph::TensorKind::Alias) tensors own no storage:
//! they resolve to their root tensor's address with their own shape.

use crate::graph::{LayerGraph, TensorId, TensorKind};

/// Cache-line/alignment quantum of the arena (= the 1 KiB VLEN).
pub const ALIGN: u32 = 1024;

fn align_up(x: u32) -> u32 {
    (x + (ALIGN - 1)) & !(ALIGN - 1)
}

/// Where one tensor lives: base address plus its (dense) geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// Base address in external memory.
    pub addr: u32,
    /// Rows.
    pub rows: usize,
    /// Columns.
    pub cols: usize,
}

impl Placement {
    /// Row pitch in bytes for element size `esz` (tensors are dense).
    pub const fn pitch(&self, esz: usize) -> u32 {
        (self.cols * esz) as u32
    }

    /// Address of row `r`.
    pub const fn row_addr(&self, r: usize, esz: usize) -> u32 {
        self.addr + r as u32 * self.pitch(esz)
    }

    /// Total bytes of the dense tensor.
    pub const fn bytes(&self, esz: usize) -> usize {
        self.rows * self.cols * esz
    }
}

/// The planned layout of one graph: per-tensor placements and the
/// arena extent.
#[derive(Debug, Clone)]
pub struct GraphLayout {
    places: Vec<Placement>,
    /// First byte of the arena.
    pub base: u32,
    /// One past the last arena byte.
    pub end: u32,
}

impl GraphLayout {
    /// Plans the layout of `graph` starting at `base`.
    ///
    /// Inputs are placed first (in declaration order, so the seeding
    /// contract is stable), then every storage-owning intermediate in
    /// creation order; aliases resolve to their root's address.
    pub fn plan(graph: &LayerGraph, base: u32) -> GraphLayout {
        let esz = graph.sew().bytes();
        let n = graph.tensors().len();
        let mut places = vec![
            Placement {
                addr: 0,
                rows: 0,
                cols: 0
            };
            n
        ];
        let mut cursor = align_up(base);
        let mut assign = |places: &mut Vec<Placement>, id: usize| {
            let t = &graph.tensors()[id];
            places[id] = Placement {
                addr: cursor,
                rows: t.rows,
                cols: t.cols,
            };
            cursor = align_up(cursor + (t.elems() * esz) as u32);
        };
        // Inputs first, then producing intermediates.
        for (i, t) in graph.tensors().iter().enumerate() {
            if t.kind == TensorKind::Input {
                assign(&mut places, i);
            }
        }
        for (i, t) in graph.tensors().iter().enumerate() {
            if t.kind == TensorKind::Intermediate {
                assign(&mut places, i);
            }
        }
        // Aliases: their root's address, their own shape.
        for i in 0..n {
            if let TensorKind::Alias(_) = graph.tensors()[i].kind {
                let root = graph.storage_root(TensorId(i));
                let t = &graph.tensors()[i];
                places[i] = Placement {
                    addr: places[root.0].addr,
                    rows: t.rows,
                    cols: t.cols,
                };
            }
        }
        GraphLayout {
            places,
            base: align_up(base),
            end: cursor,
        }
    }

    /// Placement of a tensor.
    pub fn place(&self, id: TensorId) -> Placement {
        self.places[id.0]
    }

    /// Arena footprint in bytes (inputs + all intermediates).
    pub fn arena_bytes(&self) -> usize {
        (self.end - self.base) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arcane_sim::Sew;

    #[test]
    fn placements_are_aligned_and_disjoint() {
        let mut g = LayerGraph::new(Sew::Byte);
        let x = g.input("x", 10, 10);
        let f = g.input("f", 3, 3);
        let c = g.conv2d(x, f);
        let r = g.leaky_relu(c, 3);
        g.mark_output(r);
        let l = GraphLayout::plan(&g, 0x2000_0000);
        let ids = [x, f, c, r];
        for id in ids {
            assert_eq!(l.place(id).addr % ALIGN, 0, "{id}");
        }
        // Regions in placement order must not overlap.
        let mut spans: Vec<(u32, u32)> = ids
            .iter()
            .map(|&id| {
                let p = l.place(id);
                (p.addr, p.addr + p.bytes(1) as u32)
            })
            .collect();
        spans.sort_unstable();
        for w in spans.windows(2) {
            assert!(w[0].1 <= w[1].0, "overlap: {w:?}");
        }
        assert_eq!(l.arena_bytes(), (l.end - l.base) as usize);
    }

    #[test]
    fn alias_shares_root_address() {
        let mut g = LayerGraph::new(Sew::Half);
        let x = g.input("x", 4, 6);
        let v = g.view(x, 2, 12);
        let l = GraphLayout::plan(&g, 0x2000_0000);
        assert_eq!(l.place(v).addr, l.place(x).addr);
        assert_eq!((l.place(v).rows, l.place(v).cols), (2, 12));
    }
}
