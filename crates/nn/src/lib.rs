//! # arcane-nn — the int8 layer-graph runtime
//!
//! The paper's evaluation stops at single kernels; ARCANE's Address
//! Table and Kernel Scheduler are built for *chains* of near-memory
//! kernels whose intermediates never leave the LLC (§III–IV). This
//! crate turns that capability into a runtime:
//!
//! 1. **IR** — [`LayerGraph`]: a small, shape-checked layer-graph of
//!    int8/int16/int32 tensors (conv, depthwise conv, GeMM, residual
//!    add, requantise, LeakyReLU, max-pool, transpose, zero-copy
//!    views), with composite [`LayerGraph::attention_block`] /
//!    [`LayerGraph::mlp_block`] / [`LayerGraph::transformer_block`]
//!    builders;
//! 2. **Planner** — [`GraphLayout`]: cache-line-aligned arena placement
//!    of every tensor so chained kernels find their operands
//!    LLC-resident;
//! 3. **Compiler** — [`compile`]: lowers the graph to a real host
//!    program (the `xmnmc` instruction stream of Listing 1), splitting
//!    row-parallel nodes across 1/2/4 VPU instances
//!    ([`CompileOptions::instances`]);
//! 4. **Runner** — [`run_graph`]: executes the program end-to-end on
//!    the full [`arcane_system::ArcaneSoc`] and reads the outputs back;
//! 5. **Suite** — [`suite`]: the three evaluation workloads
//!    (depthwise-separable conv layer, residual bottleneck with
//!    requantise fusion, int8 transformer encoder block), each verified
//!    bit-exactly against its golden model in `arcane_workloads`.
//!
//! # Examples
//!
//! Build, compile and run a tiny residual block, bit-exact against the
//! golden pipeline:
//!
//! ```
//! use arcane_core::ArcaneConfig;
//! use arcane_nn::suite;
//! use arcane_sim::Sew;
//!
//! let block = suite::residual_bottleneck(4, 8, Sew::Byte, 42);
//! let report = block.run_verified(ArcaneConfig::with_lanes(4), 1);
//! assert_eq!(report.kernels, 6); // gemm, requant, relu, gemm, requant, add
//! assert!(report.cycles > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compile;
mod graph;
mod plan;
mod run;
pub mod suite;

pub use arcane_fabric::HostTraffic;
pub use arcane_isa::launch::LaunchMode;
pub use compile::{compile, split_rows, CompileError, CompileOptions, DescriptorTable, NnProgram};
pub use graph::{LayerGraph, Node, Tensor, TensorId, TensorKind};
pub use plan::{GraphLayout, Placement, ALIGN};
pub use run::{run_graph, run_graph_with_engine, GraphRunReport};
