//! The layer-graph IR: tensors, layer nodes and composite blocks.
//!
//! A [`LayerGraph`] is a small, topologically ordered intermediate
//! representation of a quantised-integer network slice. Each builder
//! method performs shape inference immediately (panicking on
//! inconsistent graphs — this is a construction-time contract, exactly
//! like the kernel library's `validate`), so a graph that builds is a
//! graph the compiler can lower.
//!
//! Tensors are dense row-major matrices of one element width
//! ([`Sew`]); the zero-copy [`LayerGraph::view`] reinterprets an
//! existing tensor's bytes under a new shape (the NCHW-plane ↔ matrix
//! reshapes a pointwise convolution needs).

use arcane_sim::Sew;
use std::fmt;

/// Handle to a tensor in a [`LayerGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TensorId(pub(crate) usize);

impl fmt::Display for TensorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// How a tensor gets its bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TensorKind {
    /// Seeded by the host before the graph runs.
    Input,
    /// Produced by a node.
    Intermediate,
    /// Zero-copy reshape of another tensor (no storage of its own).
    Alias(TensorId),
}

/// One tensor: a dense `rows × cols` matrix at the graph's width.
#[derive(Debug, Clone)]
pub struct Tensor {
    /// Debug name (inputs get caller names, intermediates get op names).
    pub name: String,
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Storage class.
    pub kind: TensorKind,
}

impl Tensor {
    /// Total elements.
    pub fn elems(&self) -> usize {
        self.rows * self.cols
    }
}

/// One layer node: an operation consuming tensors and producing `dest`.
///
/// Every variant lowers to one or more `xmnmc` kernel invocations; the
/// scalar fields carry the kernels' `α`/`β` immediates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Node {
    /// Single-channel valid 2-D convolution (`xmk3`).
    Conv2d {
        /// Input image.
        input: TensorId,
        /// Square filter.
        filter: TensorId,
        /// Output image.
        dest: TensorId,
    },
    /// Depthwise valid convolution over `channels` stacked planes: one
    /// `xmk3` per channel, each on its own plane slice — the natural
    /// multi-VPU fan-out unit.
    DepthwiseConv {
        /// Stacked input planes (`C·H × W`).
        input: TensorId,
        /// Stacked filter planes (`C·K × K`).
        filter: TensorId,
        /// Plane count `C`.
        channels: usize,
        /// Stacked output planes (`C·H' × W'`).
        dest: TensorId,
    },
    /// Matrix multiply `dest = A × B` (`xmk0`, α = 1, β = 0);
    /// row-splittable across VPU instances.
    Gemm {
        /// Left operand.
        a: TensorId,
        /// Right operand.
        b: TensorId,
        /// Product.
        dest: TensorId,
    },
    /// Element-wise residual addition (`xmk5`); row-splittable.
    ResidualAdd {
        /// First addend (the residual path).
        a: TensorId,
        /// Second addend.
        b: TensorId,
        /// Sum.
        dest: TensorId,
    },
    /// Scale-and-shift requantisation `dest = (x · mul) >> shift`
    /// (`xmk6`); row-splittable.
    Requantise {
        /// Input.
        input: TensorId,
        /// Multiplier.
        mul: i16,
        /// Arithmetic right shift (0..32).
        shift: i16,
        /// Output.
        dest: TensorId,
    },
    /// Shift-based LeakyReLU `dest = x ≥ 0 ? x : x >> shift` (`xmk1`);
    /// row-splittable.
    LeakyRelu {
        /// Input.
        input: TensorId,
        /// Negative-slope shift (0..32; 31 ≈ hard ReLU).
        shift: i16,
        /// Output.
        dest: TensorId,
    },
    /// 2-D max-pooling (`xmk2`).
    MaxPool {
        /// Input.
        input: TensorId,
        /// Window size.
        win: usize,
        /// Stride.
        stride: usize,
        /// Pooled output.
        dest: TensorId,
    },
    /// Matrix transpose (`xmk7`).
    Transpose {
        /// Input.
        input: TensorId,
        /// Transposed output.
        dest: TensorId,
    },
}

impl Node {
    /// The tensor this node produces.
    pub fn dest(&self) -> TensorId {
        match *self {
            Node::Conv2d { dest, .. }
            | Node::DepthwiseConv { dest, .. }
            | Node::Gemm { dest, .. }
            | Node::ResidualAdd { dest, .. }
            | Node::Requantise { dest, .. }
            | Node::LeakyRelu { dest, .. }
            | Node::MaxPool { dest, .. }
            | Node::Transpose { dest, .. } => dest,
        }
    }

    /// Kernel mnemonic of the node (reports, debug output).
    pub fn op_name(&self) -> &'static str {
        match self {
            Node::Conv2d { .. } => "conv2d",
            Node::DepthwiseConv { .. } => "depthwise_conv",
            Node::Gemm { .. } => "gemm",
            Node::ResidualAdd { .. } => "residual_add",
            Node::Requantise { .. } => "requantise",
            Node::LeakyRelu { .. } => "leaky_relu",
            Node::MaxPool { .. } => "maxpool",
            Node::Transpose { .. } => "transpose",
        }
    }
}

/// A topologically ordered layer graph at one element width.
#[derive(Debug, Clone)]
pub struct LayerGraph {
    sew: Sew,
    tensors: Vec<Tensor>,
    nodes: Vec<Node>,
    outputs: Vec<TensorId>,
}

impl LayerGraph {
    /// An empty graph whose tensors all use width `sew`.
    pub fn new(sew: Sew) -> Self {
        LayerGraph {
            sew,
            tensors: Vec::new(),
            nodes: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// Element width of every tensor in the graph.
    pub fn sew(&self) -> Sew {
        self.sew
    }

    /// All tensors, indexed by [`TensorId`].
    pub fn tensors(&self) -> &[Tensor] {
        &self.tensors
    }

    /// Nodes in execution (= insertion) order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Tensors marked as graph outputs, in marking order.
    pub fn outputs(&self) -> &[TensorId] {
        &self.outputs
    }

    /// Input tensors in declaration order (the seeding contract of the
    /// runner: the i-th provided matrix fills the i-th input).
    pub fn inputs(&self) -> Vec<TensorId> {
        self.tensors
            .iter()
            .enumerate()
            .filter(|(_, t)| t.kind == TensorKind::Input)
            .map(|(i, _)| TensorId(i))
            .collect()
    }

    /// The tensor behind a handle.
    pub fn tensor(&self, id: TensorId) -> &Tensor {
        &self.tensors[id.0]
    }

    /// `(rows, cols)` of a tensor.
    pub fn shape(&self, id: TensorId) -> (usize, usize) {
        let t = self.tensor(id);
        (t.rows, t.cols)
    }

    /// Follows alias links to the tensor that owns the storage.
    pub fn storage_root(&self, id: TensorId) -> TensorId {
        match self.tensor(id).kind {
            TensorKind::Alias(parent) => self.storage_root(parent),
            _ => id,
        }
    }

    fn push_tensor(
        &mut self,
        name: String,
        rows: usize,
        cols: usize,
        kind: TensorKind,
    ) -> TensorId {
        assert!(rows > 0 && cols > 0, "{name}: tensors must be non-empty");
        self.tensors.push(Tensor {
            name,
            rows,
            cols,
            kind,
        });
        TensorId(self.tensors.len() - 1)
    }

    /// Declares an input tensor.
    pub fn input(&mut self, name: &str, rows: usize, cols: usize) -> TensorId {
        self.push_tensor(name.to_string(), rows, cols, TensorKind::Input)
    }

    /// Marks `id` as a graph output (readable after the run, and the
    /// host program synchronises on it).
    pub fn mark_output(&mut self, id: TensorId) {
        assert!(id.0 < self.tensors.len(), "unknown tensor {id}");
        if !self.outputs.contains(&id) {
            self.outputs.push(id);
        }
    }

    /// Zero-copy reshape: a new tensor over `input`'s storage with a
    /// different `rows × cols` factorisation.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn view(&mut self, input: TensorId, rows: usize, cols: usize) -> TensorId {
        let src = self.tensor(input);
        assert_eq!(
            src.elems(),
            rows * cols,
            "view must preserve the element count of {input}"
        );
        let name = format!("{}.view", src.name);
        self.push_tensor(name, rows, cols, TensorKind::Alias(input))
    }

    fn intermediate(&mut self, op: &str, rows: usize, cols: usize) -> TensorId {
        let name = format!("{op}{}", self.nodes.len());
        self.push_tensor(name, rows, cols, TensorKind::Intermediate)
    }

    /// Single-channel valid 2-D convolution.
    ///
    /// # Panics
    ///
    /// Panics if the filter is not square or exceeds the input.
    pub fn conv2d(&mut self, input: TensorId, filter: TensorId) -> TensorId {
        let (h, w) = self.shape(input);
        let (fr, fc) = self.shape(filter);
        assert_eq!(fr, fc, "conv2d filter must be square");
        assert!(fr <= h && fr <= w, "conv2d filter exceeds the input");
        let dest = self.intermediate("conv", h - fr + 1, w - fr + 1);
        self.nodes.push(Node::Conv2d {
            input,
            filter,
            dest,
        });
        dest
    }

    /// Depthwise convolution over `channels` stacked planes.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent plane geometry.
    pub fn depthwise_conv(
        &mut self,
        input: TensorId,
        filter: TensorId,
        channels: usize,
    ) -> TensorId {
        assert!(channels > 0, "depthwise needs at least one channel");
        let (rows, w) = self.shape(input);
        let (fr, k) = self.shape(filter);
        assert_eq!(rows % channels, 0, "depthwise input must stack C planes");
        assert_eq!(fr, channels * k, "depthwise filter must stack C planes");
        let h = rows / channels;
        assert!(k <= h && k <= w, "depthwise filter exceeds a plane");
        let dest = self.intermediate("dwconv", channels * (h - k + 1), w - k + 1);
        self.nodes.push(Node::DepthwiseConv {
            input,
            filter,
            channels,
            dest,
        });
        dest
    }

    /// Matrix multiply `A × B`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions differ.
    pub fn gemm(&mut self, a: TensorId, b: TensorId) -> TensorId {
        let (m, ka) = self.shape(a);
        let (kb, n) = self.shape(b);
        assert_eq!(ka, kb, "gemm inner dimensions differ");
        let dest = self.intermediate("gemm", m, n);
        self.nodes.push(Node::Gemm { a, b, dest });
        dest
    }

    /// Element-wise residual addition.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn residual_add(&mut self, a: TensorId, b: TensorId) -> TensorId {
        assert_eq!(self.shape(a), self.shape(b), "residual_add shape mismatch");
        let (r, c) = self.shape(a);
        let dest = self.intermediate("add", r, c);
        self.nodes.push(Node::ResidualAdd { a, b, dest });
        dest
    }

    /// Scale-and-shift requantisation `(x · mul) >> shift`.
    ///
    /// # Panics
    ///
    /// Panics if `shift` is outside `0..32`.
    pub fn requantise(&mut self, input: TensorId, mul: i16, shift: i16) -> TensorId {
        assert!((0..32).contains(&shift), "requantise shift must be 0..32");
        let (r, c) = self.shape(input);
        let dest = self.intermediate("requant", r, c);
        self.nodes.push(Node::Requantise {
            input,
            mul,
            shift,
            dest,
        });
        dest
    }

    /// Shift-based LeakyReLU.
    ///
    /// # Panics
    ///
    /// Panics if `shift` is outside `0..32`.
    pub fn leaky_relu(&mut self, input: TensorId, shift: i16) -> TensorId {
        assert!((0..32).contains(&shift), "leaky_relu shift must be 0..32");
        let (r, c) = self.shape(input);
        let dest = self.intermediate("relu", r, c);
        self.nodes.push(Node::LeakyRelu { input, shift, dest });
        dest
    }

    /// 2-D max-pooling with window `win` and stride `stride`.
    ///
    /// # Panics
    ///
    /// Panics if the window exceeds the input.
    pub fn maxpool(&mut self, input: TensorId, win: usize, stride: usize) -> TensorId {
        assert!(
            win >= 1 && stride >= 1,
            "maxpool window/stride must be >= 1"
        );
        let (r, c) = self.shape(input);
        assert!(win <= r && win <= c, "maxpool window exceeds the input");
        let dest = self.intermediate("pool", (r - win) / stride + 1, (c - win) / stride + 1);
        self.nodes.push(Node::MaxPool {
            input,
            win,
            stride,
            dest,
        });
        dest
    }

    /// Matrix transpose.
    pub fn transpose(&mut self, input: TensorId) -> TensorId {
        let (r, c) = self.shape(input);
        let dest = self.intermediate("transpose", c, r);
        self.nodes.push(Node::Transpose { input, dest });
        dest
    }

    // ----- composite blocks -------------------------------------------------

    /// ReLU-attention block with residual: the quantised-integer
    /// attention surrogate built entirely from Table I kernels
    /// (see [`arcane_workloads::transformer_encoder_block`]):
    /// `X + requant(relu(requant(Q·Kᵀ)) · V)` with `Q/K/V = X·Wq/Wk/Wv`.
    pub fn attention_block(
        &mut self,
        x: TensorId,
        wq: TensorId,
        wk: TensorId,
        wv: TensorId,
        shift: i16,
        relu_shift: i16,
    ) -> TensorId {
        let q = self.gemm(x, wq);
        let k = self.gemm(x, wk);
        let v = self.gemm(x, wv);
        let kt = self.transpose(k);
        let s = self.gemm(q, kt);
        let sq = self.requantise(s, 1, shift);
        let a = self.leaky_relu(sq, relu_shift);
        let p = self.gemm(a, v);
        let pq = self.requantise(p, 1, shift);
        self.residual_add(x, pq)
    }

    /// Two-GeMM MLP block with residual:
    /// `X + requant(relu(requant(X·W1)) · W2)`.
    pub fn mlp_block(
        &mut self,
        x: TensorId,
        w1: TensorId,
        w2: TensorId,
        shift: i16,
        relu_shift: i16,
    ) -> TensorId {
        let h = self.gemm(x, w1);
        let hq = self.requantise(h, 1, shift);
        let ha = self.leaky_relu(hq, relu_shift);
        let y = self.gemm(ha, w2);
        let yq = self.requantise(y, 1, shift);
        self.residual_add(x, yq)
    }

    /// A full int8 transformer encoder block: attention + residual,
    /// then MLP + residual.
    #[allow(clippy::too_many_arguments)]
    pub fn transformer_block(
        &mut self,
        x: TensorId,
        wq: TensorId,
        wk: TensorId,
        wv: TensorId,
        w1: TensorId,
        w2: TensorId,
        shift: i16,
        relu_shift: i16,
    ) -> TensorId {
        let x1 = self.attention_block(x, wq, wk, wv, shift, relu_shift);
        self.mlp_block(x1, w1, w2, shift, relu_shift)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_inference_chain() {
        let mut g = LayerGraph::new(Sew::Byte);
        let x = g.input("x", 8, 8);
        let f = g.input("f", 3, 3);
        let c = g.conv2d(x, f);
        assert_eq!(g.shape(c), (6, 6));
        let p = g.maxpool(c, 2, 2);
        assert_eq!(g.shape(p), (3, 3));
        let t = g.transpose(p);
        assert_eq!(g.shape(t), (3, 3));
        g.mark_output(t);
        assert_eq!(g.outputs(), [t]);
        assert_eq!(g.inputs(), [x, f]);
    }

    #[test]
    fn view_aliases_storage() {
        let mut g = LayerGraph::new(Sew::Byte);
        let x = g.input("x", 6, 4);
        let v = g.view(x, 2, 12);
        assert_eq!(g.shape(v), (2, 12));
        assert_eq!(g.storage_root(v), x);
        let vv = g.view(v, 24, 1);
        assert_eq!(g.storage_root(vv), x);
    }

    #[test]
    #[should_panic(expected = "gemm inner dimensions differ")]
    fn gemm_shape_mismatch_panics() {
        let mut g = LayerGraph::new(Sew::Byte);
        let a = g.input("a", 2, 3);
        let b = g.input("b", 4, 2);
        g.gemm(a, b);
    }

    #[test]
    fn transformer_block_node_count() {
        let mut g = LayerGraph::new(Sew::Byte);
        let x = g.input("x", 8, 8);
        let w = [
            g.input("wq", 8, 8),
            g.input("wk", 8, 8),
            g.input("wv", 8, 8),
            g.input("w1", 8, 16),
            g.input("w2", 16, 8),
        ];
        let y = g.transformer_block(x, w[0], w[1], w[2], w[3], w[4], 2, 3);
        assert_eq!(g.shape(y), (8, 8));
        // 7 GeMMs + transpose + 4 requant + 2 relu + 2 residual adds.
        assert_eq!(g.nodes().len(), 16);
    }
}
