//! End-to-end graph execution on the full ARCANE SoC.
//!
//! The runner seeds the graph's input tensors into external memory,
//! loads the compiled host program, runs it on the instruction-set
//! simulator (predecoded block engine by default, the reference
//! interpreter under `ARCANE_INTERP=1`), and reads every output tensor
//! back — mirroring `arcane_system::driver` for graph workloads.

use crate::compile::{compile, CompileOptions, NnProgram};
use crate::graph::LayerGraph;
use arcane_core::{ArcaneConfig, KernelRecord, LaunchMode};
use arcane_mem::Memory;
use arcane_sim::{ChannelUtil, EngineMode, LaunchStats, PhaseBreakdown};
use arcane_system::report::PhaseSplitRow;
use arcane_system::{ArcaneSoc, EXT_BASE};
use arcane_workloads::Matrix;

/// Simulation fuel: generous headroom for the largest graph programs.
const FUEL: u64 = 4_000_000_000;

/// Outcome of one graph run.
#[derive(Debug, Clone)]
pub struct GraphRunReport {
    /// Total cycles (program start → last kernel writeback).
    pub cycles: u64,
    /// Host instructions retired.
    pub instret: u64,
    /// `xmkN` kernels executed.
    pub kernels: usize,
    /// Kernel phase breakdown summed over the chain.
    pub phases: PhaseBreakdown,
    /// Output tensors, in [`LayerGraph::outputs`] order.
    pub outputs: Vec<Matrix>,
    /// Per-kernel records (id, VPU placement, phase timing).
    pub records: Vec<KernelRecord>,
    /// `xmr` rebinds the C-RT resolved by renaming.
    pub renames: u64,
    /// Dirty cache lines written back (kernel flushes + host-traffic
    /// evictions — the cost the scheduler-policy ablation measures).
    pub writebacks: u64,
    /// Per-channel utilisation (eCPU + fabric ports) over the run.
    pub channels: Vec<ChannelUtil>,
    /// Launch backend the program ran under.
    pub launch: LaunchMode,
    /// Descriptor launch-pipeline counters (all zero in legacy mode).
    pub launch_stats: LaunchStats,
}

impl GraphRunReport {
    /// Number of kernels the scheduler placed on each VPU
    /// (index = VPU instance).
    pub fn kernels_per_vpu(&self, n_vpus: usize) -> Vec<usize> {
        let mut per = vec![0usize; n_vpus];
        for r in &self.records {
            per[r.vpu] += 1;
        }
        per
    }

    /// One row of the machine-generated preamble/compute/decode split
    /// table (EXPERIMENTS.md "NN layer graphs"; render with
    /// [`arcane_system::report::format_phase_split_table`]).
    pub fn split_row(&self, label: impl Into<String>) -> PhaseSplitRow {
        PhaseSplitRow {
            label: label.into(),
            kernels: self.kernels,
            cycles: self.cycles,
            phases: self.phases,
            decode_cycles: self.launch_stats.decode_cycles,
        }
    }
}

/// Compiles and runs `graph` on an [`ArcaneSoc`] built from `cfg`,
/// with an explicit engine choice (differential testing).
///
/// `inputs` seeds the graph's input tensors in declaration order.
///
/// # Panics
///
/// Panics if an input shape disagrees with its tensor, the host
/// program faults (e.g. a rejected offload), or the run exhausts fuel.
pub fn run_graph_with_engine(
    cfg: ArcaneConfig,
    graph: &LayerGraph,
    inputs: &[Matrix],
    opts: &CompileOptions,
    engine: EngineMode,
) -> GraphRunReport {
    let sew = graph.sew();
    let program: NnProgram = compile(graph, EXT_BASE, opts).expect("graph must compile");
    assert!(
        (program.mem_end - EXT_BASE) as usize <= cfg.ext_size,
        "graph arena (plus descriptor tables and host-traffic window) exceeds external memory"
    );

    // The SoC must decode what the compiler emitted: the launch mode is
    // a program property, so it overrides the config knob.
    let mut cfg = cfg;
    cfg.launch = program.launch;
    let mut soc = ArcaneSoc::new(cfg);
    // Seed the descriptor tables (the driver's command rings).
    for table in &program.tables {
        let bytes: Vec<u8> = table.words.iter().flat_map(|w| w.to_le_bytes()).collect();
        soc.llc_mut()
            .ext_mut()
            .write_bytes(table.addr, &bytes)
            .unwrap();
    }
    let input_ids = graph.inputs();
    assert_eq!(
        input_ids.len(),
        inputs.len(),
        "graph declares {} inputs, {} provided",
        input_ids.len(),
        inputs.len()
    );
    for (&id, mat) in input_ids.iter().zip(inputs) {
        let p = program.layout.place(id);
        assert_eq!(
            (p.rows, p.cols),
            (mat.rows(), mat.cols()),
            "input shape mismatch for {}",
            graph.tensor(id).name
        );
        soc.llc_mut()
            .ext_mut()
            .write_bytes(p.addr, &mat.to_bytes(sew))
            .unwrap();
    }

    soc.load_program(&program.asm);
    let run = match soc.run_with_engine(FUEL, engine) {
        Ok(run) => run,
        Err(e) => panic!(
            "graph host program faulted: {e} (kernel error: {:?})",
            soc.llc().last_error()
        ),
    };
    assert_eq!(
        run.stop,
        arcane_rv32::StopReason::Break,
        "graph program must run to completion (fuel?)"
    );

    let llc = soc.llc();
    let mut outputs = Vec::with_capacity(graph.outputs().len());
    for &out in graph.outputs() {
        let p = program.layout.place(out);
        let mut bytes = vec![0u8; p.bytes(sew.bytes())];
        llc.ext().read_bytes(p.addr, &mut bytes).unwrap();
        outputs.push(Matrix::from_bytes(p.rows, p.cols, sew, &bytes));
    }
    let records = llc.records().to_vec();
    let phases = records
        .iter()
        .fold(PhaseBreakdown::default(), |acc, r| acc + r.phases);
    GraphRunReport {
        cycles: run.cycles.max(llc.completion_time()),
        instret: run.instret,
        kernels: records.len(),
        phases,
        outputs,
        records,
        renames: llc.renames(),
        writebacks: llc.stats().writebacks.get(),
        channels: llc.channel_utilisation(),
        launch: program.launch,
        launch_stats: *llc.launch_stats(),
    }
}

/// [`run_graph_with_engine`] on the environment-selected engine.
///
/// # Panics
///
/// Panics under the same conditions as [`run_graph_with_engine`].
pub fn run_graph(
    cfg: ArcaneConfig,
    graph: &LayerGraph,
    inputs: &[Matrix],
    opts: &CompileOptions,
) -> GraphRunReport {
    run_graph_with_engine(cfg, graph, inputs, opts, EngineMode::current())
}
