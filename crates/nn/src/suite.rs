//! The canned graph workloads of the evaluation: builders that pair a
//! [`LayerGraph`] with deterministic inputs and the bit-exact golden
//! outputs from `arcane_workloads`.

use crate::compile::CompileOptions;
use crate::graph::LayerGraph;
use crate::run::{run_graph, GraphRunReport};
use arcane_core::ArcaneConfig;
use arcane_sim::Sew;
use arcane_workloads::{self as workloads, Matrix};

/// Requantisation shift used throughout the suite.
pub const SHIFT: i16 = 2;
/// LeakyReLU negative-slope shift used throughout the suite.
pub const RELU_SHIFT: i16 = 3;
/// Operand value range (small, keeps int8 numerically interesting).
const RANGE: i64 = 4;

/// A ready-to-run workload: graph + seeded inputs + golden outputs.
#[derive(Debug, Clone)]
pub struct BuiltGraph {
    /// Workload label (reports, bench tables).
    pub name: &'static str,
    /// The layer graph.
    pub graph: LayerGraph,
    /// Input matrices in declaration order.
    pub inputs: Vec<Matrix>,
    /// Expected output matrices in [`LayerGraph::outputs`] order.
    pub golden: Vec<Matrix>,
}

impl BuiltGraph {
    /// Runs the workload on `cfg` with `instances`-way kernel splitting
    /// and verifies every output bit-exactly against the golden model.
    ///
    /// # Panics
    ///
    /// Panics on any output mismatch or host fault.
    pub fn run_verified(&self, cfg: ArcaneConfig, instances: usize) -> GraphRunReport {
        self.run_verified_with(cfg, &CompileOptions::with_instances(instances))
    }

    /// [`BuiltGraph::run_verified`] with explicit compiler options —
    /// the entry the mixed-traffic ablation uses (host-traffic stores
    /// land in a scratch window past the arena, so outputs still
    /// verify bit-exactly).
    ///
    /// # Panics
    ///
    /// Panics on any output mismatch or host fault.
    pub fn run_verified_with(&self, cfg: ArcaneConfig, opts: &CompileOptions) -> GraphRunReport {
        let report = run_graph(cfg, &self.graph, &self.inputs, opts);
        let instances = opts.instances;
        assert_eq!(
            report.outputs.len(),
            self.golden.len(),
            "{}: output count",
            self.name
        );
        for (i, (got, want)) in report.outputs.iter().zip(&self.golden).enumerate() {
            assert_eq!(
                got, want,
                "{}: output {i} diverges from the golden model (instances={instances})",
                self.name
            );
        }
        report
    }
}

/// The depthwise-separable conv layer: depthwise conv over `channels`
/// planes, 1×1 pointwise mix as a GeMM over the flattened planes,
/// requantise, LeakyReLU.
///
/// # Panics
///
/// Panics if a flattened conv plane would exceed the 1 KiB vector
/// length (keep `(h-k+1)·(w-k+1)·esz ≤ 1024`).
pub fn depthwise_separable(h: usize, w: usize, k: usize, sew: Sew, seed: u64) -> BuiltGraph {
    let channels = 3;
    let (oh, ow) = (h - k + 1, w - k + 1);
    assert!(
        oh * ow * sew.bytes() <= 1024,
        "pointwise GeMM rows must fit one vector register"
    );
    let mut rng = workloads::rng(seed);
    let a = workloads::random_matrix(&mut rng, channels * h, w, sew, RANGE);
    let f = workloads::random_matrix(&mut rng, channels * k, k, sew, RANGE);
    let pw = workloads::random_matrix(&mut rng, 1, channels, sew, RANGE);

    let mut g = LayerGraph::new(sew);
    let x = g.input("x", channels * h, w);
    let fd = g.input("f_dw", channels * k, k);
    let wp = g.input("w_pw", 1, channels);
    let dw = g.depthwise_conv(x, fd, channels);
    let planes = g.view(dw, channels, oh * ow);
    let mixed = g.gemm(wp, planes);
    let q = g.requantise(mixed, 1, SHIFT);
    let y = g.leaky_relu(q, RELU_SHIFT);
    g.mark_output(y);

    let golden = workloads::depthwise_separable_layer(
        &a,
        &f,
        &pw,
        channels,
        SHIFT as u32,
        RELU_SHIFT as u32,
        sew,
    );
    BuiltGraph {
        name: "depthwise_separable",
        graph: g,
        inputs: vec![a, f, pw],
        golden: vec![golden],
    }
}

/// The residual bottleneck with requantise fusion: two GeMMs, each
/// requantised, a LeakyReLU between them, and the residual add.
pub fn residual_bottleneck(n: usize, d: usize, sew: Sew, seed: u64) -> BuiltGraph {
    let mut rng = workloads::rng(seed);
    let x = workloads::random_matrix(&mut rng, n, d, sew, RANGE);
    let w1 = workloads::random_matrix(&mut rng, d, d, sew, RANGE);
    let w2 = workloads::random_matrix(&mut rng, d, d, sew, RANGE);

    let mut g = LayerGraph::new(sew);
    let tx = g.input("x", n, d);
    let tw1 = g.input("w1", d, d);
    let tw2 = g.input("w2", d, d);
    let h = g.gemm(tx, tw1);
    let hq = g.requantise(h, 1, SHIFT);
    let ha = g.leaky_relu(hq, RELU_SHIFT);
    let y = g.gemm(ha, tw2);
    let yq = g.requantise(y, 1, SHIFT);
    let out = g.residual_add(tx, yq);
    g.mark_output(out);

    let golden = workloads::residual_bottleneck(&x, &w1, &w2, SHIFT as u32, RELU_SHIFT as u32, sew);
    BuiltGraph {
        name: "residual_bottleneck",
        graph: g,
        inputs: vec![x, w1, w2],
        golden: vec![golden],
    }
}

/// The int8 transformer encoder block: ReLU-attention with residual,
/// then the two-GeMM MLP with residual — a 16-node graph that lowers
/// to the longest kernel chain in the tree.
pub fn transformer_block(t: usize, d: usize, f: usize, sew: Sew, seed: u64) -> BuiltGraph {
    let mut rng = workloads::rng(seed);
    let x = workloads::random_matrix(&mut rng, t, d, sew, RANGE);
    let wq = workloads::random_matrix(&mut rng, d, d, sew, RANGE);
    let wk = workloads::random_matrix(&mut rng, d, d, sew, RANGE);
    let wv = workloads::random_matrix(&mut rng, d, d, sew, RANGE);
    let w1 = workloads::random_matrix(&mut rng, d, f, sew, RANGE);
    let w2 = workloads::random_matrix(&mut rng, f, d, sew, RANGE);

    let mut g = LayerGraph::new(sew);
    let tx = g.input("x", t, d);
    let twq = g.input("wq", d, d);
    let twk = g.input("wk", d, d);
    let twv = g.input("wv", d, d);
    let tw1 = g.input("w1", d, f);
    let tw2 = g.input("w2", f, d);
    let y = g.transformer_block(tx, twq, twk, twv, tw1, tw2, SHIFT, RELU_SHIFT);
    g.mark_output(y);

    let golden = workloads::transformer_encoder_block(
        &x,
        &wq,
        &wk,
        &wv,
        &w1,
        &w2,
        SHIFT as u32,
        RELU_SHIFT as u32,
        sew,
    );
    BuiltGraph {
        name: "transformer_block",
        graph: g,
        inputs: vec![x, wq, wk, wv, w1, w2],
        golden: vec![golden],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(lanes: usize) -> ArcaneConfig {
        ArcaneConfig::with_lanes(lanes)
    }

    #[test]
    fn depthwise_separable_runs_bit_exact() {
        let b = depthwise_separable(10, 10, 3, Sew::Byte, 7);
        let r = b.run_verified(cfg(8), 1);
        // 3 channel convs + pointwise GeMM + requant + relu.
        assert_eq!(r.kernels, 6);
        assert!(r.cycles > 0);
    }

    #[test]
    fn residual_bottleneck_runs_bit_exact_all_widths() {
        for sew in Sew::ALL {
            let b = residual_bottleneck(8, 12, sew, 3);
            let r = b.run_verified(cfg(8), 1);
            assert_eq!(r.kernels, 6, "{sew}");
        }
    }

    #[test]
    fn transformer_block_runs_bit_exact() {
        let b = transformer_block(8, 12, 16, Sew::Byte, 5);
        let r = b.run_verified(cfg(8), 1);
        assert_eq!(r.kernels, 16);
        assert!(r.renames > 0, "chain must exercise renaming");
    }

    #[test]
    fn conv2d_and_maxpool_nodes_run_bit_exact() {
        // The canned workloads never emit Conv2d or MaxPool nodes; this
        // pins their lowering (operand binding order, α/β packing of
        // stride/window) end-to-end against the golden models.
        let sew = Sew::Byte;
        let mut rng = workloads::rng(31);
        let a = workloads::random_matrix(&mut rng, 12, 12, sew, RANGE);
        let f = workloads::random_matrix(&mut rng, 3, 3, sew, RANGE);
        let mut g = LayerGraph::new(sew);
        let ta = g.input("a", 12, 12);
        let tf = g.input("f", 3, 3);
        let c = g.conv2d(ta, tf);
        let p = g.maxpool(c, 3, 2);
        let t = g.transpose(p);
        g.mark_output(t);
        let conv = workloads::conv2d(&a, &f, sew);
        let want = workloads::transpose(&workloads::maxpool(&conv, 3, 2));
        let built = BuiltGraph {
            name: "conv_maxpool",
            graph: g,
            inputs: vec![a, f],
            golden: vec![want],
        };
        let r = built.run_verified(cfg(4), 1);
        assert_eq!(r.kernels, 3);
        // The descriptor backend's lowering of the same node kinds must
        // stay in lockstep with the legacy walk: same slice structure,
        // same bit-exact outputs.
        let d = built.run_verified_with(cfg(4), &CompileOptions::descriptor(1));
        assert_eq!(d.kernels, 3);
        assert_eq!(d.outputs, r.outputs);
        assert_eq!(d.launch_stats.descriptors, 3);
    }

    #[test]
    fn instance_split_is_bit_exact_and_spreads_vpus() {
        let b = residual_bottleneck(16, 16, Sew::Byte, 9);
        let r = b.run_verified(cfg(8), 4);
        assert!(r.kernels > 6, "splitting must emit more kernels");
        let per = r.kernels_per_vpu(4);
        assert!(
            per.iter().filter(|&&n| n > 0).count() > 1,
            "kernels must land on more than one VPU: {per:?}"
        );
    }
}
