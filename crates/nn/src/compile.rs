//! Graph → kernel-chain compiler: lowers a [`LayerGraph`] to the
//! `xmnmc` instruction stream of a host program.
//!
//! Two launch backends share the planner and implement the same
//! per-node slicing rules ([`CompileOptions::launch`]); the rules are
//! written out twice (`Emitter::node` and `lower_to_launches`) because
//! the legacy stream must stay byte-identical to the pre-descriptor
//! tree — keep the two walks in lockstep when adding node types (the
//! cross-mode tests below and the suite's bit-exact runs pin every
//! current node kind in both backends):
//!
//! * **Legacy** (default) — the host-program idiom of the paper's
//!   Listing 1 (and `arcane_system::programs::offload`): for every
//!   kernel the host materialises the three packed operand registers,
//!   issues the `xmr` reservations for the operands the kernel touches,
//!   then issues the `xmkN` itself. A fixed trio of logical matrix
//!   registers (`m0` = destination, `m1`/`m2` = sources) is rebound
//!   before every kernel — the C-RT's renaming gives each binding a
//!   fresh physical identity, so chained kernels keep their captured
//!   operands while the host moves on (§IV-B1). This backend's
//!   instruction stream is byte-identical to the pre-descriptor tree.
//! * **Descriptor** — the batched launch pipeline (ARCHITECTURE.md
//!   "Launch pipeline"): a linear-scan tensor-register allocator keeps
//!   hot operand regions bound across the whole kernel chain over all
//!   sixteen matrix registers, and each node lowers to **one**
//!   [`DescriptorBatch`] covering its VPU slices instead of a
//!   `pack_xmr`/`xmkN` train per slice. The encoded batches live in a
//!   table region past the tensor arena ([`NnProgram::tables`], seeded
//!   by the runner like any other program data), and the host launches
//!   each with a single `xmb`.
//!
//! **Multi-VPU dispatch**: with [`CompileOptions::instances`] > 1 the
//! compiler splits every row-parallel node (GeMM, residual add,
//! requantise, LeakyReLU) into that many kernel invocations on disjoint
//! row slices, and a depthwise convolution always fans out one `xmk3`
//! per channel plane. The Kernel Scheduler then spreads the slices
//! across VPU instances under the configured placement policy.

use crate::graph::{LayerGraph, Node, TensorId};
use crate::plan::{GraphLayout, Placement};
use arcane_fabric::{HostTraffic, HostTrafficGen};
use arcane_isa::asm::Asm;
use arcane_isa::launch::{
    xmb_instr, DescriptorBatch, LaunchDescriptor, LaunchMode, OperandBinding,
};
use arcane_isa::reg::{A0, A1, A2, T0, T1};
use arcane_isa::rv32::LoadOp;
use arcane_isa::xmnmc::{self, kernel_id, MatReg, NUM_MAT_REGS};
use arcane_sim::Sew;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Cache-line size the traffic window is laid out in (= VLEN = the
/// arena's placement alignment, so the scratch window always starts
/// on a fresh line past the tensors).
const LINE_BYTES: u32 = crate::plan::ALIGN;

/// Error produced by [`compile`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompileError {
    /// The graph marks no output tensor, so the program would have
    /// nothing to synchronise on.
    NoOutputs,
    /// `instances` was zero.
    ZeroInstances,
    /// A tensor (or row slice) exceeds the 16-bit row/column fields of
    /// the `xmr`/descriptor binding encoding.
    DimensionTooLarge {
        /// Rows of the offending region.
        rows: usize,
        /// Columns of the offending region.
        cols: usize,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::NoOutputs => f.write_str("graph needs at least one output"),
            CompileError::ZeroInstances => f.write_str("instances must be >= 1"),
            CompileError::DimensionTooLarge { rows, cols } => write!(
                f,
                "tensor dimension {rows}x{cols} exceeds the 16-bit xmr encoding"
            ),
        }
    }
}

impl Error for CompileError {}

/// Compiler knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompileOptions {
    /// Target number of kernel invocations per row-parallel node
    /// (1 = one kernel per node; 2/4 = the multi-instance split of
    /// §V-C applied to the whole graph).
    pub instances: usize,
    /// Synthetic host traffic: after every `period` kernels the host
    /// program dirties `bytes` of a scratch window past the tensor
    /// arena (one word store per cache line) — the mixed host/kernel
    /// load under which scheduler and arbiter policies diverge.
    pub host_traffic: Option<HostTraffic>,
    /// Launch backend: the paper's per-instruction `xmr`/`xmkN` path
    /// (default) or the batched descriptor pipeline (DESIGN.md §4.6).
    pub launch: LaunchMode,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            instances: 1,
            host_traffic: None,
            launch: LaunchMode::Legacy,
        }
    }
}

impl CompileOptions {
    /// Options with `instances`-way splitting and no host traffic.
    pub fn with_instances(instances: usize) -> Self {
        CompileOptions {
            instances,
            ..CompileOptions::default()
        }
    }

    /// Options with `instances`-way splitting on the descriptor-batch
    /// launch pipeline.
    pub fn descriptor(instances: usize) -> Self {
        CompileOptions {
            instances,
            launch: LaunchMode::Descriptor,
            ..CompileOptions::default()
        }
    }
}

/// One encoded descriptor table: seeded into external memory at `addr`
/// before the program runs (the runner does this, the way a driver
/// prepares a command ring).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DescriptorTable {
    /// Base address of the table in external memory.
    pub addr: u32,
    /// The encoded batch words.
    pub words: Vec<u32>,
}

/// A compiled graph: the host program plus its memory plan.
#[derive(Debug)]
pub struct NnProgram {
    /// The assembled host program (load with `ArcaneSoc::load_program`).
    pub asm: Asm,
    /// Tensor placements backing the program's operand addresses.
    pub layout: GraphLayout,
    /// `xmkN` invocations emitted (descriptors under the batched
    /// pipeline).
    pub kernels: usize,
    /// Operand-region bindings emitted: `xmr` reservations on the
    /// legacy path, fresh descriptor bindings under the batched
    /// pipeline (where the register allocator's reuse makes this much
    /// smaller than `3 × kernels`).
    pub reservations: usize,
    /// Host store instructions injected by the traffic knob.
    pub host_stores: usize,
    /// End of everything the program touches in external memory
    /// (tensor arena, descriptor tables, host-traffic scratch window).
    pub mem_end: u32,
    /// Launch backend this program was compiled for (the SoC must run
    /// with the matching [`arcane_core::ArcaneConfig::launch`]).
    pub launch: LaunchMode,
    /// Descriptor batches emitted (zero on the legacy path).
    pub batches: usize,
    /// Encoded descriptor tables to seed before running (empty on the
    /// legacy path).
    pub tables: Vec<DescriptorTable>,
}

/// Splits `total` rows into `n` (clamped to `total`) contiguous chunks,
/// returned as `(first_row, n_rows)`, sizes differing by at most one.
pub fn split_rows(total: usize, n: usize) -> Vec<(usize, usize)> {
    let n = n.clamp(1, total);
    let base = total / n;
    let extra = total % n;
    let mut out = Vec::with_capacity(n);
    let mut y = 0;
    for i in 0..n {
        let len = base + usize::from(i < extra);
        out.push((y, len));
        y += len;
    }
    out
}

fn align_line(x: u32) -> u32 {
    x.next_multiple_of(LINE_BYTES)
}

fn check_dims(rows: usize, cols: usize) -> Result<(), CompileError> {
    if rows <= u16::MAX as usize && cols <= u16::MAX as usize {
        Ok(())
    } else {
        Err(CompileError::DimensionTooLarge { rows, cols })
    }
}

struct Emitter<'g> {
    graph: &'g LayerGraph,
    layout: GraphLayout,
    asm: Asm,
    sew: Sew,
    esz: usize,
    kernels: usize,
    reservations: usize,
    traffic: Option<(HostTraffic, HostTrafficGen)>,
    host_stores: usize,
}

const MD: u8 = 0;
const MS1: u8 = 1;
const MS2: u8 = 2;

fn m(i: u8) -> MatReg {
    MatReg::new(i).expect("matrix register")
}

impl Emitter<'_> {
    fn vals(&mut self, vals: (u32, u32, u32)) {
        self.asm.li(A0, vals.0 as i32);
        self.asm.li(A1, vals.1 as i32);
        self.asm.li(A2, vals.2 as i32);
    }

    /// `xmr` binding `reg` to a dense `rows × cols` region at `addr`.
    fn xmr(&mut self, reg: u8, addr: u32, rows: usize, cols: usize) -> Result<(), CompileError> {
        check_dims(rows, cols)?;
        self.vals(xmnmc::pack_xmr(addr, 1, m(reg), cols as u16, rows as u16));
        self.asm.raw(xmnmc::xmr_instr(self.sew, A0, A1, A2));
        self.reservations += 1;
        Ok(())
    }

    /// Binds `reg` to a row slice `[y0, y0 + rows)` of a placement.
    fn bind_slice(
        &mut self,
        reg: u8,
        p: Placement,
        y0: usize,
        rows: usize,
    ) -> Result<(), CompileError> {
        self.xmr(reg, p.row_addr(y0, self.esz), rows, p.cols)
    }

    /// Binds `reg` to a whole tensor.
    fn bind(&mut self, reg: u8, t: TensorId) -> Result<(), CompileError> {
        let p = self.layout.place(t);
        self.xmr(reg, p.addr, p.rows, p.cols)
    }

    /// `xmkN` on the currently bound registers.
    fn xmk(&mut self, id: u8, alpha: i16, beta: i16) {
        // Unused source slots name ms1 — always bound, never read.
        self.vals(xmnmc::pack_kernel(
            alpha,
            beta,
            m(MD),
            m(MS1),
            m(MS2),
            m(MS1),
        ));
        self.asm.raw(xmnmc::xmk_instr(id, self.sew, A0, A1, A2));
        self.kernels += 1;
        self.emit_host_traffic();
    }

    /// After every `period`-th kernel offload, the host dirties the
    /// scratch window: one word store per cache line (the generator
    /// walks the window round-robin, so the working set is re-dirtied
    /// on every burst).
    fn emit_host_traffic(&mut self) {
        let Some((knob, traffic_gen)) = self.traffic.as_mut() else {
            return;
        };
        if !self.kernels.is_multiple_of(knob.period) {
            return;
        }
        let addrs = traffic_gen.burst(knob.bytes);
        for addr in addrs {
            self.asm.li(T0, addr as i32);
            self.asm.li(T1, self.host_stores as i32);
            self.asm.sw(T1, T0, 0);
            self.host_stores += 1;
        }
    }

    /// Emits a row-parallel unary kernel (`input → dest`, same shape),
    /// split into `instances` row slices.
    fn unary_rowwise(
        &mut self,
        id: u8,
        alpha: i16,
        beta: i16,
        input: TensorId,
        dest: TensorId,
        instances: usize,
    ) -> Result<(), CompileError> {
        let pi = self.layout.place(input);
        let pd = self.layout.place(dest);
        for (y0, rows) in split_rows(pd.rows, instances) {
            self.bind_slice(MS1, pi, y0, rows)?;
            self.bind_slice(MD, pd, y0, rows)?;
            self.xmk(id, alpha, beta);
        }
        Ok(())
    }

    fn node(&mut self, node: &Node, instances: usize) -> Result<(), CompileError> {
        match *node {
            Node::Conv2d {
                input,
                filter,
                dest,
            } => {
                self.bind(MS1, input)?;
                self.bind(MS2, filter)?;
                self.bind(MD, dest)?;
                self.xmk(kernel_id::CONV2D, 0, 0);
            }
            Node::DepthwiseConv {
                input,
                filter,
                channels,
                dest,
            } => {
                let pi = self.layout.place(input);
                let pf = self.layout.place(filter);
                let pd = self.layout.place(dest);
                let (h, k, oh) = (pi.rows / channels, pf.rows / channels, pd.rows / channels);
                for c in 0..channels {
                    self.bind_slice(MS1, pi, c * h, h)?;
                    self.bind_slice(MS2, pf, c * k, k)?;
                    self.bind_slice(MD, pd, c * oh, oh)?;
                    self.xmk(kernel_id::CONV2D, 0, 0);
                }
            }
            Node::Gemm { a, b, dest } => {
                let pa = self.layout.place(a);
                let pd = self.layout.place(dest);
                self.bind(MS2, b)?;
                for (y0, rows) in split_rows(pa.rows, instances) {
                    self.bind_slice(MS1, pa, y0, rows)?;
                    self.bind_slice(MD, pd, y0, rows)?;
                    self.xmk(kernel_id::GEMM, 1, 0);
                }
            }
            Node::ResidualAdd { a, b, dest } => {
                let pa = self.layout.place(a);
                let pb = self.layout.place(b);
                let pd = self.layout.place(dest);
                for (y0, rows) in split_rows(pd.rows, instances) {
                    self.bind_slice(MS1, pa, y0, rows)?;
                    self.bind_slice(MS2, pb, y0, rows)?;
                    self.bind_slice(MD, pd, y0, rows)?;
                    self.xmk(kernel_id::MAT_ADD, 0, 0);
                }
            }
            Node::Requantise {
                input,
                mul,
                shift,
                dest,
            } => self.unary_rowwise(kernel_id::MAT_SCALE, mul, shift, input, dest, instances)?,
            Node::LeakyRelu { input, shift, dest } => {
                self.unary_rowwise(kernel_id::LEAKY_RELU, shift, 0, input, dest, instances)?
            }
            Node::MaxPool {
                input,
                win,
                stride,
                dest,
            } => {
                self.bind(MS1, input)?;
                self.bind(MD, dest)?;
                self.xmk(kernel_id::MAXPOOL, stride as i16, win as i16);
            }
            Node::Transpose { input, dest } => {
                self.bind(MS1, input)?;
                self.bind(MD, dest)?;
                self.xmk(kernel_id::TRANSPOSE, 0, 0);
            }
        }
        Ok(())
    }
}

fn load_op(sew: Sew) -> LoadOp {
    match sew {
        Sew::Byte => LoadOp::Lb,
        Sew::Half => LoadOp::Lh,
        Sew::Word => LoadOp::Lw,
    }
}

// ---------------------------------------------------------------------
// Descriptor backend: launch list, linear-scan allocation, batching.
// ---------------------------------------------------------------------

/// A dense operand region a kernel binds: the allocator's unit of
/// reuse. Two launches naming the same region share one live binding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Region {
    addr: u32,
    rows: u16,
    cols: u16,
}

impl Region {
    fn new(addr: u32, rows: usize, cols: usize) -> Result<Region, CompileError> {
        check_dims(rows, cols)?;
        Ok(Region {
            addr,
            rows: rows as u16,
            cols: cols as u16,
        })
    }

    fn of(p: Placement) -> Result<Region, CompileError> {
        Region::new(p.addr, p.rows, p.cols)
    }

    fn slice(p: Placement, y0: usize, rows: usize, esz: usize) -> Result<Region, CompileError> {
        Region::new(p.row_addr(y0, esz), rows, p.cols)
    }
}

/// One kernel invocation in region form (`ms2 == ms1` for kernels that
/// never read a second source — the slot is bound, never read, exactly
/// like the legacy backend's `ms3 = ms1` idiom).
#[derive(Debug, Clone, Copy)]
struct Launch {
    kernel: u8,
    alpha: i16,
    beta: i16,
    md: Region,
    ms1: Region,
    ms2: Region,
}

impl Launch {
    fn regions(&self) -> [Region; 3] {
        [self.ms1, self.ms2, self.md]
    }
}

/// Walks the graph with the same per-node slicing rules as the legacy
/// emitter and returns the flat launch list plus the number of launches
/// each node contributed (= the batch framing).
fn lower_to_launches(
    graph: &LayerGraph,
    layout: &GraphLayout,
    esz: usize,
    instances: usize,
) -> Result<(Vec<Launch>, Vec<usize>), CompileError> {
    let mut launches = Vec::new();
    let mut per_node = Vec::with_capacity(graph.nodes().len());
    let unary = |launches: &mut Vec<Launch>,
                 id: u8,
                 alpha: i16,
                 beta: i16,
                 input: TensorId,
                 dest: TensorId|
     -> Result<usize, CompileError> {
        let pi = layout.place(input);
        let pd = layout.place(dest);
        let slices = split_rows(pd.rows, instances);
        for &(y0, rows) in &slices {
            let ms1 = Region::slice(pi, y0, rows, esz)?;
            launches.push(Launch {
                kernel: id,
                alpha,
                beta,
                md: Region::slice(pd, y0, rows, esz)?,
                ms1,
                ms2: ms1,
            });
        }
        Ok(slices.len())
    };
    for node in graph.nodes() {
        let n = match *node {
            Node::Conv2d {
                input,
                filter,
                dest,
            } => {
                let ms1 = Region::of(layout.place(input))?;
                launches.push(Launch {
                    kernel: kernel_id::CONV2D,
                    alpha: 0,
                    beta: 0,
                    md: Region::of(layout.place(dest))?,
                    ms1,
                    ms2: Region::of(layout.place(filter))?,
                });
                1
            }
            Node::DepthwiseConv {
                input,
                filter,
                channels,
                dest,
            } => {
                let pi = layout.place(input);
                let pf = layout.place(filter);
                let pd = layout.place(dest);
                let (h, k, oh) = (pi.rows / channels, pf.rows / channels, pd.rows / channels);
                for c in 0..channels {
                    launches.push(Launch {
                        kernel: kernel_id::CONV2D,
                        alpha: 0,
                        beta: 0,
                        md: Region::slice(pd, c * oh, oh, esz)?,
                        ms1: Region::slice(pi, c * h, h, esz)?,
                        ms2: Region::slice(pf, c * k, k, esz)?,
                    });
                }
                channels
            }
            Node::Gemm { a, b, dest } => {
                let pa = layout.place(a);
                let pd = layout.place(dest);
                let ms2 = Region::of(layout.place(b))?;
                let slices = split_rows(pa.rows, instances);
                for &(y0, rows) in &slices {
                    launches.push(Launch {
                        kernel: kernel_id::GEMM,
                        alpha: 1,
                        beta: 0,
                        md: Region::slice(pd, y0, rows, esz)?,
                        ms1: Region::slice(pa, y0, rows, esz)?,
                        ms2,
                    });
                }
                slices.len()
            }
            Node::ResidualAdd { a, b, dest } => {
                let pa = layout.place(a);
                let pb = layout.place(b);
                let pd = layout.place(dest);
                let slices = split_rows(pd.rows, instances);
                for &(y0, rows) in &slices {
                    launches.push(Launch {
                        kernel: kernel_id::MAT_ADD,
                        alpha: 0,
                        beta: 0,
                        md: Region::slice(pd, y0, rows, esz)?,
                        ms1: Region::slice(pa, y0, rows, esz)?,
                        ms2: Region::slice(pb, y0, rows, esz)?,
                    });
                }
                slices.len()
            }
            Node::Requantise {
                input,
                mul,
                shift,
                dest,
            } => unary(&mut launches, kernel_id::MAT_SCALE, mul, shift, input, dest)?,
            Node::LeakyRelu { input, shift, dest } => {
                unary(&mut launches, kernel_id::LEAKY_RELU, shift, 0, input, dest)?
            }
            Node::MaxPool {
                input,
                win,
                stride,
                dest,
            } => {
                let ms1 = Region::of(layout.place(input))?;
                launches.push(Launch {
                    kernel: kernel_id::MAXPOOL,
                    alpha: stride as i16,
                    beta: win as i16,
                    md: Region::of(layout.place(dest))?,
                    ms1,
                    ms2: ms1,
                });
                1
            }
            Node::Transpose { input, dest } => {
                let ms1 = Region::of(layout.place(input))?;
                launches.push(Launch {
                    kernel: kernel_id::TRANSPOSE,
                    alpha: 0,
                    beta: 0,
                    md: Region::of(layout.place(dest))?,
                    ms1,
                    ms2: ms1,
                });
                1
            }
        };
        per_node.push(n);
    }
    Ok((launches, per_node))
}

/// Linear-scan allocation of operand regions onto the sixteen logical
/// matrix registers: a region already live in a register is reused with
/// no fresh binding; a fresh binding takes a free register or evicts
/// the live region whose next use is furthest away (never one the
/// current launch needs). This is what keeps hot tensors — weights
/// shared by every slice, chain intermediates — bound across the whole
/// kernel chain.
struct RegAlloc {
    contents: [Option<Region>; NUM_MAT_REGS as usize],
    /// Remaining use positions per region, front = soonest.
    next_use: HashMap<Region, std::collections::VecDeque<usize>>,
}

impl RegAlloc {
    fn new(launches: &[Launch]) -> Self {
        let mut next_use: HashMap<Region, std::collections::VecDeque<usize>> = HashMap::new();
        for (p, l) in launches.iter().enumerate() {
            let mut seen: [Option<Region>; 3] = [None; 3];
            for (i, r) in l.regions().into_iter().enumerate() {
                if !seen[..i].contains(&Some(r)) {
                    next_use.entry(r).or_default().push_back(p);
                }
                seen[i] = Some(r);
            }
        }
        RegAlloc {
            contents: [None; NUM_MAT_REGS as usize],
            next_use,
        }
    }

    fn reg_of(&self, r: Region) -> Option<MatReg> {
        self.contents
            .iter()
            .position(|c| *c == Some(r))
            .map(|i| m(i as u8))
    }

    /// Allocates every distinct region of `launch` (position `p`),
    /// returning the fresh bindings it needs, in operand order.
    fn allocate(&mut self, p: usize, launch: &Launch) -> Vec<OperandBinding> {
        let mut fresh = Vec::new();
        let regions = launch.regions();
        let mut distinct: Vec<Region> = Vec::with_capacity(3);
        for r in regions {
            if !distinct.contains(&r) {
                distinct.push(r);
            }
        }
        // This position is consumed for every distinct region first, so
        // eviction decisions below see only *future* uses.
        for r in &distinct {
            let q = self.next_use.get_mut(r).expect("region was indexed");
            debug_assert_eq!(q.front(), Some(&p));
            q.pop_front();
        }
        for r in distinct {
            if self.reg_of(r).is_some() {
                continue; // hot region: binding stays live, no xmr cost
            }
            let slot = self.pick_slot(&regions);
            self.contents[slot] = Some(r);
            fresh.push(OperandBinding {
                reg: m(slot as u8),
                addr: r.addr,
                stride: 1,
                cols: r.cols,
                rows: r.rows,
            });
        }
        fresh
    }

    /// A free register, or the live region with the furthest next use
    /// that the current launch does not name.
    fn pick_slot(&self, in_use: &[Region; 3]) -> usize {
        if let Some(free) = self.contents.iter().position(Option::is_none) {
            return free;
        }
        let mut best = None;
        for (i, c) in self.contents.iter().enumerate() {
            let r = c.expect("no free slot");
            if in_use.contains(&r) {
                continue;
            }
            let next = self
                .next_use
                .get(&r)
                .and_then(|q| q.front().copied())
                .unwrap_or(usize::MAX);
            if best.is_none_or(|(_, n)| next > n) {
                best = Some((i, next));
            }
        }
        best.expect("more matrix registers than launch operands").0
    }
}

struct DescEmitter {
    asm: Asm,
    kernels: usize,
    reservations: usize,
    traffic: Option<(HostTraffic, HostTrafficGen)>,
    host_stores: usize,
    tables: Vec<DescriptorTable>,
}

impl DescEmitter {
    /// Replays the legacy traffic rule — a burst after every
    /// `period`-th kernel — for the kernels the just-issued batch
    /// covers, so both backends inject identical store sequences.
    fn emit_host_traffic(&mut self, first_kernel: usize) {
        let Some((knob, traffic_gen)) = self.traffic.as_mut() else {
            return;
        };
        for k in first_kernel + 1..=self.kernels {
            if !k.is_multiple_of(knob.period) {
                continue;
            }
            let addrs = traffic_gen.burst(knob.bytes);
            for addr in addrs {
                self.asm.li(T0, addr as i32);
                self.asm.li(T1, self.host_stores as i32);
                self.asm.sw(T1, T0, 0);
                self.host_stores += 1;
            }
        }
    }

    /// Encodes one batch, places its table at `cursor`, and emits the
    /// `xmb` launch. Returns the table end address.
    fn xmb(&mut self, batch: DescriptorBatch, cursor: u32) -> u32 {
        let first_kernel = self.kernels;
        self.kernels += batch.descriptors.len();
        self.reservations += batch
            .descriptors
            .iter()
            .map(|d| d.bindings.len())
            .sum::<usize>();
        let words = batch.encode();
        let end = cursor + 4 * words.len() as u32;
        self.asm.li(A0, cursor as i32);
        self.asm.li(A1, words.len() as i32);
        self.asm.li(A2, self.tables.len() as i32);
        self.asm.raw(xmb_instr(A0, A1, A2));
        self.tables.push(DescriptorTable {
            addr: cursor,
            words,
        });
        self.emit_host_traffic(first_kernel);
        end
    }
}

fn compile_descriptor(
    graph: &LayerGraph,
    layout: GraphLayout,
    opts: &CompileOptions,
) -> Result<NnProgram, CompileError> {
    let sew = graph.sew();
    let esz = sew.bytes();
    let (launches, per_node) = lower_to_launches(graph, &layout, esz, opts.instances)?;
    let mut alloc = RegAlloc::new(&launches);

    // Descriptor tables live line-aligned past the tensor arena; the
    // traffic scratch window moves past them.
    let desc_base = align_line(layout.end);
    let mut cursor = desc_base;

    // Build all batches first so the traffic window base is known
    // before any store is emitted... the table region size depends only
    // on the launch list, which is already fixed.
    let mut batches: Vec<DescriptorBatch> = Vec::with_capacity(per_node.len());
    let mut pos = 0usize;
    let mut token = 0u16;
    for &n in &per_node {
        let mut descriptors = Vec::with_capacity(n);
        for launch in &launches[pos..pos + n] {
            let bindings = alloc.allocate(pos + descriptors.len(), launch);
            let reg = |r: Region| alloc.reg_of(r).expect("allocated above");
            let ms1 = reg(launch.ms1);
            descriptors.push(LaunchDescriptor {
                kernel: launch.kernel,
                width: sew,
                alpha: launch.alpha,
                beta: launch.beta,
                md: reg(launch.md),
                ms1,
                ms2: reg(launch.ms2),
                ms3: ms1,
                bindings,
                token,
            });
            token = token.wrapping_add(1);
        }
        pos += n;
        batches.push(DescriptorBatch { descriptors });
    }
    let table_bytes: u32 = batches.iter().map(|b| b.bytes() as u32).sum();
    let desc_end = desc_base + table_bytes;

    let scratch = align_line(desc_end);
    let traffic = opts.host_traffic.map(|knob| {
        let span = knob.bytes.next_multiple_of(LINE_BYTES).max(LINE_BYTES);
        (knob, HostTrafficGen::new(scratch, span, LINE_BYTES))
    });
    let mem_end = match &traffic {
        Some((knob, _)) => scratch + knob.bytes.next_multiple_of(LINE_BYTES).max(LINE_BYTES),
        None => desc_end,
    };

    let mut e = DescEmitter {
        asm: Asm::new(),
        kernels: 0,
        reservations: 0,
        traffic,
        host_stores: 0,
        tables: Vec::new(),
    };
    for batch in batches {
        cursor = e.xmb(batch, cursor);
    }
    debug_assert_eq!(cursor, desc_end);

    // Synchronise on every output (same idiom as the legacy backend).
    let op = load_op(sew);
    for &out in graph.outputs() {
        let addr = layout.place(out).addr;
        e.asm.li(T0, addr as i32);
        e.asm.load(op, T1, T0, 0);
    }
    e.asm.ebreak();
    let batches = e.tables.len();
    Ok(NnProgram {
        asm: e.asm,
        layout,
        kernels: e.kernels,
        reservations: e.reservations,
        host_stores: e.host_stores,
        mem_end,
        launch: LaunchMode::Descriptor,
        batches,
        tables: e.tables,
    })
}

fn compile_legacy(
    graph: &LayerGraph,
    layout: GraphLayout,
    opts: &CompileOptions,
) -> Result<NnProgram, CompileError> {
    // The traffic scratch window sits line-aligned past the tensor
    // arena, sized to one burst, so stores dirty cache lines without
    // touching any operand.
    let scratch = align_line(layout.end);
    let traffic = opts.host_traffic.map(|knob| {
        let span = knob.bytes.next_multiple_of(LINE_BYTES).max(LINE_BYTES);
        (knob, HostTrafficGen::new(scratch, span, LINE_BYTES))
    });
    let mem_end = match &traffic {
        Some((knob, _)) => scratch + knob.bytes.next_multiple_of(LINE_BYTES).max(LINE_BYTES),
        None => layout.end,
    };
    let mut e = Emitter {
        graph,
        layout,
        asm: Asm::new(),
        sew: graph.sew(),
        esz: graph.sew().bytes(),
        kernels: 0,
        reservations: 0,
        traffic,
        host_stores: 0,
    };
    for node in graph.nodes() {
        e.node(node, opts.instances)?;
    }
    // Synchronise on every output.
    let op = load_op(e.sew);
    for &out in e.graph.outputs() {
        let addr = e.layout.place(out).addr;
        e.asm.li(T0, addr as i32);
        e.asm.load(op, T1, T0, 0);
    }
    e.asm.ebreak();
    Ok(NnProgram {
        asm: e.asm,
        layout: e.layout,
        kernels: e.kernels,
        reservations: e.reservations,
        host_stores: e.host_stores,
        mem_end,
        launch: LaunchMode::Legacy,
        batches: 0,
        tables: Vec::new(),
    })
}

/// Compiles `graph` into a host program whose tensors live in an arena
/// starting at `base`.
///
/// The emitted program issues the whole kernel chain (per-instruction
/// `xmr`/`xmkN` on the legacy path, `xmb` descriptor batches under
/// [`LaunchMode::Descriptor`]), then performs one synchronising load of
/// the first element of every output tensor — the Address Table stalls
/// each load until the producing kernel's writeback retires (the
/// paper's synchronisation idiom).
///
/// # Errors
///
/// Returns [`CompileError`] when the graph has no outputs, `instances`
/// is zero, or a tensor dimension exceeds the 16-bit `xmr`/binding
/// encoding.
pub fn compile(
    graph: &LayerGraph,
    base: u32,
    opts: &CompileOptions,
) -> Result<NnProgram, CompileError> {
    if graph.outputs().is_empty() {
        return Err(CompileError::NoOutputs);
    }
    if opts.instances < 1 {
        return Err(CompileError::ZeroInstances);
    }
    let layout = GraphLayout::plan(graph, base);
    match opts.launch {
        LaunchMode::Legacy => compile_legacy(graph, layout, opts),
        LaunchMode::Descriptor => compile_descriptor(graph, layout, opts),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gemm_graph(rows: usize, cols: usize) -> LayerGraph {
        let mut g = LayerGraph::new(Sew::Byte);
        let x = g.input("x", rows, cols);
        let w = g.input("w", cols, cols);
        let y = g.gemm(x, w);
        g.mark_output(y);
        g
    }

    #[test]
    fn split_rows_covers_total() {
        for (total, n) in [(10, 4), (3, 4), (16, 1), (7, 7)] {
            let s = split_rows(total, n);
            assert_eq!(s.iter().map(|&(_, l)| l).sum::<usize>(), total);
            assert!(s.iter().all(|&(_, l)| l > 0));
            let mut y = 0;
            for &(y0, l) in &s {
                assert_eq!(y0, y);
                y += l;
            }
        }
    }

    #[test]
    fn instance_split_multiplies_gemm_kernels() {
        let g = gemm_graph(8, 8);
        let one = compile(&g, 0x2000_0000, &CompileOptions::with_instances(1)).unwrap();
        let four = compile(&g, 0x2000_0000, &CompileOptions::with_instances(4)).unwrap();
        assert_eq!(one.kernels, 1);
        assert_eq!(four.kernels, 4);
        assert!(four.reservations > one.reservations);
    }

    #[test]
    fn oversized_dimension_is_a_typed_error() {
        // 70_000 rows exceed the 16-bit xmr row field: both backends
        // must surface the typed error through compile()'s result.
        let mut g = LayerGraph::new(Sew::Byte);
        let x = g.input("x", 70_000, 4);
        let y = g.leaky_relu(x, 3);
        g.mark_output(y);
        for opts in [
            CompileOptions::with_instances(1),
            CompileOptions::descriptor(1),
        ] {
            assert_eq!(
                compile(&g, 0x2000_0000, &opts).unwrap_err(),
                CompileError::DimensionTooLarge {
                    rows: 70_000,
                    cols: 4
                },
            );
        }
    }

    #[test]
    fn degenerate_graphs_are_typed_errors() {
        let mut g = LayerGraph::new(Sew::Byte);
        let _ = g.input("x", 4, 4);
        assert_eq!(
            compile(&g, 0x2000_0000, &CompileOptions::default()).unwrap_err(),
            CompileError::NoOutputs
        );
        let g = gemm_graph(4, 4);
        let opts = CompileOptions {
            instances: 0,
            ..CompileOptions::default()
        };
        assert_eq!(
            compile(&g, 0x2000_0000, &opts).unwrap_err(),
            CompileError::ZeroInstances
        );
    }

    #[test]
    fn host_traffic_knob_emits_line_strided_stores() {
        let mut g = LayerGraph::new(Sew::Byte);
        let x = g.input("x", 8, 8);
        let w = g.input("w", 8, 8);
        let mut t = g.gemm(x, w);
        for _ in 0..3 {
            t = g.leaky_relu(t, 3);
        }
        g.mark_output(t);
        let quiet = compile(&g, 0x2000_0000, &CompileOptions::default()).unwrap();
        assert_eq!(quiet.host_stores, 0);
        assert_eq!(quiet.mem_end, quiet.layout.end);

        let opts = CompileOptions {
            instances: 1,
            host_traffic: Some(HostTraffic::new(2, 3 * LINE_BYTES)),
            ..CompileOptions::default()
        };
        let noisy = compile(&g, 0x2000_0000, &opts).unwrap();
        // 4 kernels → bursts after kernels 2 and 4, 3 stores each.
        assert_eq!(noisy.kernels, 4);
        assert_eq!(noisy.host_stores, 6);
        assert!(noisy.mem_end >= noisy.layout.end + 3 * LINE_BYTES);
        assert!(noisy.mem_end.is_multiple_of(LINE_BYTES));

        // The descriptor backend injects the same store train, placed
        // past its table region.
        let dopts = CompileOptions {
            launch: LaunchMode::Descriptor,
            ..opts
        };
        let dnoisy = compile(&g, 0x2000_0000, &dopts).unwrap();
        assert_eq!(dnoisy.host_stores, 6);
        assert!(dnoisy.tables.iter().all(|t| t.addr >= dnoisy.layout.end));
    }

    #[test]
    fn depthwise_fans_out_per_channel() {
        let mut g = LayerGraph::new(Sew::Byte);
        let x = g.input("x", 3 * 6, 6);
        let f = g.input("f", 3 * 3, 3);
        let y = g.depthwise_conv(x, f, 3);
        g.mark_output(y);
        let p = compile(&g, 0x2000_0000, &CompileOptions::default()).unwrap();
        assert_eq!(p.kernels, 3);
    }

    #[test]
    fn descriptor_mode_emits_one_batch_per_node() {
        let mut g = LayerGraph::new(Sew::Byte);
        let x = g.input("x", 8, 8);
        let w = g.input("w", 8, 8);
        let t = g.gemm(x, w);
        let q = g.requantise(t, 1, 2);
        let y = g.leaky_relu(q, 3);
        g.mark_output(y);
        let p = compile(&g, 0x2000_0000, &CompileOptions::descriptor(4)).unwrap();
        assert_eq!(p.batches, 3, "one batch per node");
        assert_eq!(p.kernels, 12, "4 slices per row-parallel node");
        assert_eq!(p.tables.len(), 3);
        // Tables are contiguous, line-aligned past the arena.
        assert!(p.tables[0].addr >= p.layout.end);
        assert!(p.tables[0].addr.is_multiple_of(LINE_BYTES));
        for w in p.tables.windows(2) {
            assert_eq!(w[0].addr + 4 * w[0].words.len() as u32, w[1].addr);
        }
        assert!(p.mem_end >= p.tables.last().unwrap().addr);
        // Every table decodes back to a well-formed batch.
        for t in &p.tables {
            assert!(DescriptorBatch::decode(&t.words).is_ok());
        }
    }

    #[test]
    fn allocator_keeps_hot_tensors_bound() {
        // 4-way GeMM: legacy rebinds B for the node once plus A/dest
        // per slice (9 xmr); the allocator binds each distinct region
        // exactly once here (no capacity pressure at 16 registers).
        let g = gemm_graph(8, 8);
        let legacy = compile(&g, 0x2000_0000, &CompileOptions::with_instances(4)).unwrap();
        let desc = compile(&g, 0x2000_0000, &CompileOptions::descriptor(4)).unwrap();
        assert_eq!(legacy.kernels, desc.kernels);
        assert_eq!(legacy.reservations, 9);
        assert_eq!(desc.reservations, 9, "distinct regions bound once");

        // A chain re-reads intermediates: the legacy backend rebinds
        // them per kernel, the allocator does not.
        let mut g = LayerGraph::new(Sew::Byte);
        let x = g.input("x", 8, 8);
        let w = g.input("w", 8, 8);
        let mut t = g.gemm(x, w);
        for _ in 0..4 {
            t = g.leaky_relu(t, 3);
        }
        g.mark_output(t);
        let legacy = compile(&g, 0x2000_0000, &CompileOptions::with_instances(1)).unwrap();
        let desc = compile(&g, 0x2000_0000, &CompileOptions::descriptor(1)).unwrap();
        assert!(
            desc.reservations < legacy.reservations,
            "chain reuse must cut bindings: {} vs {}",
            desc.reservations,
            legacy.reservations
        );
    }

    #[test]
    fn allocator_evicts_under_register_pressure() {
        // More distinct live regions than matrix registers: a long
        // chain of residual adds touching many tensors. The program
        // must still compile, with every launch's operands bound.
        let mut g = LayerGraph::new(Sew::Byte);
        let mut acc = g.input("x0", 4, 8);
        let mut others = Vec::new();
        for i in 0..20 {
            let t = g.input(&format!("x{}", i + 1), 4, 8);
            others.push(t);
        }
        for t in others {
            acc = g.residual_add(acc, t);
        }
        g.mark_output(acc);
        let p = compile(&g, 0x2000_0000, &CompileOptions::descriptor(1)).unwrap();
        assert_eq!(p.kernels, 20);
        assert!(
            p.reservations > 3,
            "pressure must force rebinds beyond the first three"
        );
        for t in &p.tables {
            DescriptorBatch::decode(&t.words).expect("well-formed batch");
        }
    }
}
