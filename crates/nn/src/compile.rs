//! Graph → kernel-chain compiler: lowers a [`LayerGraph`] to the
//! `xmnmc` instruction stream of a host program.
//!
//! Lowering follows the host-program idiom of the paper's Listing 1
//! (and `arcane_system::programs::offload`): for every kernel the host
//! materialises the three packed operand registers, issues the `xmr`
//! reservations for the operands the kernel touches, then issues the
//! `xmkN` itself. A fixed trio of logical matrix registers
//! (`m0` = destination, `m1`/`m2` = sources) is rebound before every
//! kernel — the C-RT's renaming gives each binding a fresh physical
//! identity, so chained kernels keep their captured operands while the
//! host moves on (§IV-B1).
//!
//! **Multi-VPU dispatch**: with [`CompileOptions::instances`] > 1 the
//! compiler splits every row-parallel node (GeMM, residual add,
//! requantise, LeakyReLU) into that many kernel invocations on disjoint
//! row slices, and a depthwise convolution always fans out one `xmk3`
//! per channel plane. The Kernel Scheduler then spreads the slices
//! across VPU instances under the configured placement policy.

use crate::graph::{LayerGraph, Node, TensorId};
use crate::plan::{GraphLayout, Placement};
use arcane_fabric::{HostTraffic, HostTrafficGen};
use arcane_isa::asm::Asm;
use arcane_isa::reg::{A0, A1, A2, T0, T1};
use arcane_isa::rv32::LoadOp;
use arcane_isa::xmnmc::{self, kernel_id, MatReg};
use arcane_sim::Sew;

/// Cache-line size the traffic window is laid out in (= VLEN = the
/// arena's placement alignment, so the scratch window always starts
/// on a fresh line past the tensors).
const LINE_BYTES: u32 = crate::plan::ALIGN;

/// Compiler knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompileOptions {
    /// Target number of kernel invocations per row-parallel node
    /// (1 = one kernel per node; 2/4 = the multi-instance split of
    /// §V-C applied to the whole graph).
    pub instances: usize,
    /// Synthetic host traffic: after every `period` kernels the host
    /// program dirties `bytes` of a scratch window past the tensor
    /// arena (one word store per cache line) — the mixed host/kernel
    /// load under which scheduler and arbiter policies diverge.
    pub host_traffic: Option<HostTraffic>,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            instances: 1,
            host_traffic: None,
        }
    }
}

impl CompileOptions {
    /// Options with `instances`-way splitting and no host traffic.
    pub fn with_instances(instances: usize) -> Self {
        CompileOptions {
            instances,
            ..CompileOptions::default()
        }
    }
}

/// A compiled graph: the host program plus its memory plan.
#[derive(Debug)]
pub struct NnProgram {
    /// The assembled host program (load with `ArcaneSoc::load_program`).
    pub asm: Asm,
    /// Tensor placements backing the program's operand addresses.
    pub layout: GraphLayout,
    /// `xmkN` invocations emitted.
    pub kernels: usize,
    /// `xmr` reservations emitted.
    pub reservations: usize,
    /// Host store instructions injected by the traffic knob.
    pub host_stores: usize,
    /// End of everything the program touches in external memory
    /// (tensor arena plus the host-traffic scratch window).
    pub mem_end: u32,
}

/// Splits `total` rows into `n` (clamped to `total`) contiguous chunks,
/// returned as `(first_row, n_rows)`, sizes differing by at most one.
pub fn split_rows(total: usize, n: usize) -> Vec<(usize, usize)> {
    let n = n.clamp(1, total);
    let base = total / n;
    let extra = total % n;
    let mut out = Vec::with_capacity(n);
    let mut y = 0;
    for i in 0..n {
        let len = base + usize::from(i < extra);
        out.push((y, len));
        y += len;
    }
    out
}

struct Emitter<'g> {
    graph: &'g LayerGraph,
    layout: GraphLayout,
    asm: Asm,
    sew: Sew,
    esz: usize,
    kernels: usize,
    reservations: usize,
    traffic: Option<(HostTraffic, HostTrafficGen)>,
    host_stores: usize,
}

const MD: u8 = 0;
const MS1: u8 = 1;
const MS2: u8 = 2;

fn m(i: u8) -> MatReg {
    MatReg::new(i).expect("matrix register")
}

impl Emitter<'_> {
    fn vals(&mut self, vals: (u32, u32, u32)) {
        self.asm.li(A0, vals.0 as i32);
        self.asm.li(A1, vals.1 as i32);
        self.asm.li(A2, vals.2 as i32);
    }

    /// `xmr` binding `reg` to a dense `rows × cols` region at `addr`.
    fn xmr(&mut self, reg: u8, addr: u32, rows: usize, cols: usize) {
        assert!(
            rows <= u16::MAX as usize && cols <= u16::MAX as usize,
            "tensor dimension exceeds the xmr encoding"
        );
        self.vals(xmnmc::pack_xmr(addr, 1, m(reg), cols as u16, rows as u16));
        self.asm.raw(xmnmc::xmr_instr(self.sew, A0, A1, A2));
        self.reservations += 1;
    }

    /// Binds `reg` to a row slice `[y0, y0 + rows)` of a placement.
    fn bind_slice(&mut self, reg: u8, p: Placement, y0: usize, rows: usize) {
        self.xmr(reg, p.row_addr(y0, self.esz), rows, p.cols);
    }

    /// Binds `reg` to a whole tensor.
    fn bind(&mut self, reg: u8, t: TensorId) {
        let p = self.layout.place(t);
        self.xmr(reg, p.addr, p.rows, p.cols);
    }

    /// `xmkN` on the currently bound registers.
    fn xmk(&mut self, id: u8, alpha: i16, beta: i16) {
        // Unused source slots name ms1 — always bound, never read.
        self.vals(xmnmc::pack_kernel(
            alpha,
            beta,
            m(MD),
            m(MS1),
            m(MS2),
            m(MS1),
        ));
        self.asm.raw(xmnmc::xmk_instr(id, self.sew, A0, A1, A2));
        self.kernels += 1;
        self.emit_host_traffic();
    }

    /// After every `period`-th kernel offload, the host dirties the
    /// scratch window: one word store per cache line (the generator
    /// walks the window round-robin, so the working set is re-dirtied
    /// on every burst).
    fn emit_host_traffic(&mut self) {
        let Some((knob, traffic_gen)) = self.traffic.as_mut() else {
            return;
        };
        if !self.kernels.is_multiple_of(knob.period) {
            return;
        }
        let addrs = traffic_gen.burst(knob.bytes);
        for addr in addrs {
            self.asm.li(T0, addr as i32);
            self.asm.li(T1, self.host_stores as i32);
            self.asm.sw(T1, T0, 0);
            self.host_stores += 1;
        }
    }

    /// Emits a row-parallel unary kernel (`input → dest`, same shape),
    /// split into `instances` row slices.
    fn unary_rowwise(
        &mut self,
        id: u8,
        alpha: i16,
        beta: i16,
        input: TensorId,
        dest: TensorId,
        instances: usize,
    ) {
        let pi = self.layout.place(input);
        let pd = self.layout.place(dest);
        for (y0, rows) in split_rows(pd.rows, instances) {
            self.bind_slice(MS1, pi, y0, rows);
            self.bind_slice(MD, pd, y0, rows);
            self.xmk(id, alpha, beta);
        }
    }

    fn node(&mut self, node: &Node, instances: usize) {
        match *node {
            Node::Conv2d {
                input,
                filter,
                dest,
            } => {
                self.bind(MS1, input);
                self.bind(MS2, filter);
                self.bind(MD, dest);
                self.xmk(kernel_id::CONV2D, 0, 0);
            }
            Node::DepthwiseConv {
                input,
                filter,
                channels,
                dest,
            } => {
                let pi = self.layout.place(input);
                let pf = self.layout.place(filter);
                let pd = self.layout.place(dest);
                let (h, k, oh) = (pi.rows / channels, pf.rows / channels, pd.rows / channels);
                for c in 0..channels {
                    self.bind_slice(MS1, pi, c * h, h);
                    self.bind_slice(MS2, pf, c * k, k);
                    self.bind_slice(MD, pd, c * oh, oh);
                    self.xmk(kernel_id::CONV2D, 0, 0);
                }
            }
            Node::Gemm { a, b, dest } => {
                let pa = self.layout.place(a);
                let pd = self.layout.place(dest);
                self.bind(MS2, b);
                for (y0, rows) in split_rows(pa.rows, instances) {
                    self.bind_slice(MS1, pa, y0, rows);
                    self.bind_slice(MD, pd, y0, rows);
                    self.xmk(kernel_id::GEMM, 1, 0);
                }
            }
            Node::ResidualAdd { a, b, dest } => {
                let pa = self.layout.place(a);
                let pb = self.layout.place(b);
                let pd = self.layout.place(dest);
                for (y0, rows) in split_rows(pd.rows, instances) {
                    self.bind_slice(MS1, pa, y0, rows);
                    self.bind_slice(MS2, pb, y0, rows);
                    self.bind_slice(MD, pd, y0, rows);
                    self.xmk(kernel_id::MAT_ADD, 0, 0);
                }
            }
            Node::Requantise {
                input,
                mul,
                shift,
                dest,
            } => self.unary_rowwise(kernel_id::MAT_SCALE, mul, shift, input, dest, instances),
            Node::LeakyRelu { input, shift, dest } => {
                self.unary_rowwise(kernel_id::LEAKY_RELU, shift, 0, input, dest, instances)
            }
            Node::MaxPool {
                input,
                win,
                stride,
                dest,
            } => {
                self.bind(MS1, input);
                self.bind(MD, dest);
                self.xmk(kernel_id::MAXPOOL, stride as i16, win as i16);
            }
            Node::Transpose { input, dest } => {
                self.bind(MS1, input);
                self.bind(MD, dest);
                self.xmk(kernel_id::TRANSPOSE, 0, 0);
            }
        }
    }
}

fn load_op(sew: Sew) -> LoadOp {
    match sew {
        Sew::Byte => LoadOp::Lb,
        Sew::Half => LoadOp::Lh,
        Sew::Word => LoadOp::Lw,
    }
}

/// Compiles `graph` into a host program whose tensors live in an arena
/// starting at `base`.
///
/// The emitted program issues the whole kernel chain, then performs one
/// synchronising load of the first element of every output tensor —
/// the Address Table stalls each load until the producing kernel's
/// writeback retires (the paper's synchronisation idiom).
///
/// # Panics
///
/// Panics if the graph has no outputs or a tensor dimension exceeds
/// the `xmr` encoding.
pub fn compile(graph: &LayerGraph, base: u32, opts: &CompileOptions) -> NnProgram {
    assert!(
        !graph.outputs().is_empty(),
        "graph needs at least one output"
    );
    assert!(opts.instances >= 1, "instances must be >= 1");
    let layout = GraphLayout::plan(graph, base);
    // The traffic scratch window sits line-aligned past the tensor
    // arena, sized to one burst, so stores dirty cache lines without
    // touching any operand.
    let scratch = layout.end.next_multiple_of(LINE_BYTES);
    let traffic = opts.host_traffic.map(|knob| {
        let span = knob.bytes.next_multiple_of(LINE_BYTES).max(LINE_BYTES);
        (knob, HostTrafficGen::new(scratch, span, LINE_BYTES))
    });
    let mem_end = match &traffic {
        Some((knob, _)) => scratch + knob.bytes.next_multiple_of(LINE_BYTES).max(LINE_BYTES),
        None => layout.end,
    };
    let mut e = Emitter {
        graph,
        layout,
        asm: Asm::new(),
        sew: graph.sew(),
        esz: graph.sew().bytes(),
        kernels: 0,
        reservations: 0,
        traffic,
        host_stores: 0,
    };
    for node in graph.nodes() {
        e.node(node, opts.instances);
    }
    // Synchronise on every output.
    let op = load_op(e.sew);
    for &out in e.graph.outputs() {
        let addr = e.layout.place(out).addr;
        e.asm.li(T0, addr as i32);
        e.asm.load(op, T1, T0, 0);
    }
    e.asm.ebreak();
    NnProgram {
        asm: e.asm,
        layout: e.layout,
        kernels: e.kernels,
        reservations: e.reservations,
        host_stores: e.host_stores,
        mem_end,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_rows_covers_total() {
        for (total, n) in [(10, 4), (3, 4), (16, 1), (7, 7)] {
            let s = split_rows(total, n);
            assert_eq!(s.iter().map(|&(_, l)| l).sum::<usize>(), total);
            assert!(s.iter().all(|&(_, l)| l > 0));
            let mut y = 0;
            for &(y0, l) in &s {
                assert_eq!(y0, y);
                y += l;
            }
        }
    }

    #[test]
    fn instance_split_multiplies_gemm_kernels() {
        let build = || {
            let mut g = LayerGraph::new(Sew::Byte);
            let x = g.input("x", 8, 8);
            let w = g.input("w", 8, 8);
            let y = g.gemm(x, w);
            g.mark_output(y);
            g
        };
        let g = build();
        let one = compile(&g, 0x2000_0000, &CompileOptions::with_instances(1));
        let four = compile(&g, 0x2000_0000, &CompileOptions::with_instances(4));
        assert_eq!(one.kernels, 1);
        assert_eq!(four.kernels, 4);
        assert!(four.reservations > one.reservations);
    }

    #[test]
    fn host_traffic_knob_emits_line_strided_stores() {
        let mut g = LayerGraph::new(Sew::Byte);
        let x = g.input("x", 8, 8);
        let w = g.input("w", 8, 8);
        let mut t = g.gemm(x, w);
        for _ in 0..3 {
            t = g.leaky_relu(t, 3);
        }
        g.mark_output(t);
        let quiet = compile(&g, 0x2000_0000, &CompileOptions::default());
        assert_eq!(quiet.host_stores, 0);
        assert_eq!(quiet.mem_end, quiet.layout.end);

        let opts = CompileOptions {
            instances: 1,
            host_traffic: Some(HostTraffic::new(2, 3 * LINE_BYTES)),
        };
        let noisy = compile(&g, 0x2000_0000, &opts);
        // 4 kernels → bursts after kernels 2 and 4, 3 stores each.
        assert_eq!(noisy.kernels, 4);
        assert_eq!(noisy.host_stores, 6);
        assert!(noisy.mem_end >= noisy.layout.end + 3 * LINE_BYTES);
        assert!(noisy.mem_end.is_multiple_of(LINE_BYTES));
    }

    #[test]
    fn depthwise_fans_out_per_channel() {
        let mut g = LayerGraph::new(Sew::Byte);
        let x = g.input("x", 3 * 6, 6);
        let f = g.input("f", 3 * 3, 3);
        let y = g.depthwise_conv(x, f, 3);
        g.mark_output(y);
        let p = compile(&g, 0x2000_0000, &CompileOptions::default());
        assert_eq!(p.kernels, 3);
    }
}
