//! Gap-scheduling calendar for shared hardware resources.
//!
//! The ARCANE LLC has agents every kernel must share: the single 2-D
//! DMA channel, the single eCPU (which dispatches every vector
//! instruction) and the fabric banks between the controller complex and
//! the VPU array. Because kernels are simulated eagerly one after
//! another while their cycle intervals interleave on the real hardware,
//! a plain "free-at" cursor would serialise kernels that actually
//! overlap. [`ResourceChannel`] instead keeps a calendar of busy
//! windows and books each request into the earliest gap that fits —
//! first-come-first-served per kernel, interleaved across kernels.

/// A shared, single-ported resource booked in absolute-cycle windows.
#[derive(Debug, Clone, Default)]
pub struct ResourceChannel {
    /// Busy windows sorted by start time.
    windows: Vec<(u64, u64)>,
}

impl ResourceChannel {
    /// Creates an idle resource.
    pub fn new() -> Self {
        ResourceChannel::default()
    }

    /// Books `duration` cycles starting no earlier than `earliest`;
    /// returns the `(start, end)` actually granted (the earliest gap
    /// that fits).
    ///
    /// Windows are disjoint and sorted, so starts *and* ends are both
    /// increasing: the search skips every window ending at or before
    /// `earliest` by binary search, and freshly booked windows coalesce
    /// with exact neighbours. The busy set is identical to booking each
    /// window separately — only the representation is compacted, which
    /// keeps the back-to-back issue pattern of a long kernel (millions
    /// of eCPU slots) at a handful of windows instead of O(n²) scans.
    pub fn reserve(&mut self, earliest: u64, duration: u64) -> (u64, u64) {
        if duration == 0 {
            return (earliest, earliest);
        }
        let mut t = earliest;
        let mut i = self.windows.partition_point(|&(_, e)| e <= t);
        while i < self.windows.len() {
            let (s, e) = self.windows[i];
            if s >= t + duration {
                break; // the gap before this window fits
            }
            t = e; // collide: try right after this window
            i += 1;
        }
        let win = (t, t + duration);
        let touches_prev = i > 0 && self.windows[i - 1].1 == win.0;
        let touches_next = i < self.windows.len() && self.windows[i].0 == win.1;
        match (touches_prev, touches_next) {
            (true, true) => {
                self.windows[i - 1].1 = self.windows[i].1;
                self.windows.remove(i);
            }
            (true, false) => self.windows[i - 1].1 = win.1,
            (false, true) => self.windows[i].0 = win.0,
            (false, false) => self.windows.insert(i, win),
        }
        (win.0, win.1)
    }

    /// Books `total` cycles of *preemptible* work starting no earlier
    /// than `earliest`, split into chunks of at most `chunk` cycles that
    /// weave into whatever gaps exist (the C-RT is a preemptive runtime:
    /// IRQ decoding interleaves with kernel dispatch, §IV-B).
    ///
    /// Returns `(first_start, last_end)`.
    pub fn reserve_fragmented(&mut self, earliest: u64, total: u64, chunk: u64) -> (u64, u64) {
        assert!(chunk > 0, "chunk must be positive");
        let mut remaining = total;
        let mut t = earliest;
        let mut first = None;
        while remaining > 0 {
            let d = remaining.min(chunk);
            let (s, e) = self.reserve(t, d);
            if first.is_none() {
                first = Some(s);
            }
            t = e;
            remaining -= d;
        }
        (first.unwrap_or(earliest), t)
    }

    /// Length of the free gap beginning at the earliest idle cycle at
    /// or after `earliest` (the slice a work-conserving arbiter would
    /// hand out next). Returns `(gap_start, gap_len)`; `gap_len` is
    /// `u64::MAX` for the open-ended gap past the last window.
    fn next_gap(&self, earliest: u64) -> (u64, u64) {
        let mut t = earliest;
        let mut i = self.windows.partition_point(|&(_, e)| e <= t);
        while i < self.windows.len() {
            let (s, e) = self.windows[i];
            if s > t {
                return (t, s - t); // gap before window i
            }
            t = e; // we are inside (or at the edge of) window i
            i += 1;
        }
        (t, u64::MAX)
    }

    /// Books `total` cycles of *work-conserving* shared-resource time
    /// starting no earlier than `earliest`: every idle slice is taken
    /// as found, in bursts of at most `burst` cycles, so concurrent
    /// transactions interleave at burst granularity instead of pushing
    /// each other's whole phases to the horizon. This is the eager-
    /// simulation equivalent of a round-robin bus arbiter: a stream
    /// booked later weaves into every gap the earlier streams left.
    ///
    /// Returns `(first_start, last_end, bursts_granted)`.
    pub fn reserve_packed(&mut self, earliest: u64, total: u64, burst: u64) -> (u64, u64, u64) {
        assert!(burst > 0, "burst must be positive");
        if total == 0 {
            return (earliest, earliest, 0);
        }
        let mut remaining = total;
        let mut t = earliest;
        let mut first = None;
        let mut bursts = 0;
        while remaining > 0 {
            let (gap_start, gap_len) = self.next_gap(t);
            let d = remaining.min(burst).min(gap_len);
            let (s, e) = self.reserve(gap_start, d);
            debug_assert_eq!((s, e), (gap_start, gap_start + d));
            if first.is_none() {
                first = Some(s);
            }
            bursts += 1;
            remaining -= d;
            t = e;
        }
        (first.unwrap_or(earliest), t, bursts)
    }

    /// Latest booked end time (0 when idle forever).
    pub fn horizon(&self) -> u64 {
        self.windows.iter().map(|&(_, e)| e).max().unwrap_or(0)
    }

    /// The booked busy windows, sorted by start time. Disjoint and
    /// maximally coalesced: consecutive windows never touch.
    pub fn windows(&self) -> &[(u64, u64)] {
        &self.windows
    }

    /// Drops windows ending at or before `now`.
    pub fn prune(&mut self, now: u64) {
        self.windows.retain(|&(_, e)| e > now);
    }

    /// Number of booked windows.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// `true` when nothing is booked.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Total busy cycles booked (utilisation numerator).
    pub fn busy_cycles(&self) -> u64 {
        self.windows.iter().map(|&(s, e)| e - s).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_requests_append() {
        let mut c = ResourceChannel::new();
        assert_eq!(c.reserve(0, 10), (0, 10));
        assert_eq!(c.reserve(10, 5), (10, 15));
        assert_eq!(c.horizon(), 15);
    }

    #[test]
    fn later_request_fills_earlier_gap() {
        let mut c = ResourceChannel::new();
        c.reserve(0, 10); // [0, 10)
        c.reserve(50, 10); // [50, 60)
                           // A kernel simulated later but wanting cycle 12 slots into the gap.
        assert_eq!(c.reserve(12, 20), (12, 32));
        // And one that does not fit before 50 goes after 60.
        assert_eq!(c.reserve(12, 30), (60, 90));
    }

    #[test]
    fn collision_pushes_right() {
        let mut c = ResourceChannel::new();
        c.reserve(0, 100);
        assert_eq!(c.reserve(40, 10), (100, 110));
    }

    #[test]
    fn zero_duration_is_free() {
        let mut c = ResourceChannel::new();
        c.reserve(0, 10);
        assert_eq!(c.reserve(5, 0), (5, 5));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn adjacent_windows_pack_tightly() {
        let mut c = ResourceChannel::new();
        c.reserve(0, 10);
        c.reserve(20, 10);
        assert_eq!(c.reserve(0, 10), (10, 20), "exact-fit gap");
        assert_eq!(c.busy_cycles(), 30);
    }

    #[test]
    fn prune_keeps_future_windows() {
        let mut c = ResourceChannel::new();
        c.reserve(0, 10);
        c.reserve(20, 10);
        c.prune(15);
        assert_eq!(c.len(), 1);
        assert_eq!(c.horizon(), 30);
    }

    #[test]
    fn packed_fills_sub_burst_gaps() {
        // A comb of 6-busy/6-free windows: fragmented booking with a
        // 16-cycle chunk cannot use the 6-cycle gaps, packed booking
        // fills every one of them.
        let mut c = ResourceChannel::new();
        for k in 0..10u64 {
            c.reserve(12 * k, 6);
        }
        let (first, end, bursts) = c.reserve_packed(0, 30, 16);
        assert_eq!(first, 6, "first grant lands in the first gap");
        assert_eq!(end, 60, "five 6-cycle gaps absorb 30 cycles");
        assert_eq!(bursts, 5);
        // The comb is now solid up to 60.
        assert_eq!(c.windows()[0], (0, 66));
    }

    #[test]
    fn packed_respects_burst_cap() {
        let mut c = ResourceChannel::new();
        let (first, end, bursts) = c.reserve_packed(100, 40, 16);
        assert_eq!((first, end), (100, 140), "idle channel grants densely");
        assert_eq!(bursts, 3, "16 + 16 + 8");
        assert_eq!(c.len(), 1, "adjacent bursts coalesce");
    }

    #[test]
    fn packed_books_exactly_total() {
        let mut c = ResourceChannel::new();
        c.reserve(0, 5);
        c.reserve(8, 5);
        let before = c.busy_cycles();
        let (_, _, _) = c.reserve_packed(0, 20, 4);
        assert_eq!(c.busy_cycles(), before + 20);
    }
}
