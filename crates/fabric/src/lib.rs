//! # arcane-fabric — the burst-level shared-memory fabric
//!
//! Everything between the ARCANE controller complex (eCPU, 2-D DMA,
//! host slave port) and the VPU array shares one path: operand bursts
//! DMA'd during allocation, consolidation bursts during writeback,
//! host miss refills, and the dispatch of vector instructions into the
//! VPU controllers. This crate models that path explicitly:
//!
//! * [`ResourceChannel`] — the gap-scheduling calendar every shared
//!   resource (fabric bank, eCPU) is booked on;
//! * [`Fabric`] — `1 + n_vpus` request ports multiplexed onto a
//!   configurable set of bank calendars ([`FabricConfig`]: `banks`,
//!   `bytes_per_cycle`, `burst_bytes`);
//! * [`ArbiterPolicy`] / [`ArbiterKind`] — pluggable grant
//!   disciplines: [`WholePhase`] (the legacy contiguous-window model,
//!   cycle-identical to the pre-fabric calendar), [`RoundRobinBurst`]
//!   (work-conserving burst interleaving) and [`PriorityHost`]
//!   (contiguous host grants over burst-interleaved kernels);
//! * [`HostTrafficGen`] — deterministic synthetic host stores injected
//!   between kernel offloads, the mixed-traffic load under which
//!   scheduler and arbiter policies actually diverge.
//!
//! # Examples
//!
//! Two overlapping transactions on one bank: whole-phase pushes the
//! second past the first, a burst arbiter weaves it into the gap the
//! first left.
//!
//! ```
//! use arcane_fabric::{ArbiterKind, Fabric, FabricConfig};
//!
//! let mut cfg = FabricConfig::default();
//! cfg.arbiter = ArbiterKind::RoundRobinBurst;
//! let mut fabric = Fabric::new(cfg, 2);
//! let p1 = Fabric::vpu_port(0);
//! let p2 = Fabric::vpu_port(1);
//! fabric.request(p1, 0x2000_0000, 0, 100);
//! fabric.request(p1, 0x2000_0000, 500, 100); // idle gap [100, 500)
//! let grant = fabric.request(p2, 0x2000_0000, 0, 600);
//! assert_eq!(grant.start, 100, "second stream fills the gap");
//! assert!(grant.bursts >= 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod channel;
mod fabric;
mod traffic;

pub use channel::ResourceChannel;
pub use fabric::{
    ArbiterKind, ArbiterPolicy, Fabric, FabricConfig, Grant, PortStats, PriorityHost,
    RoundRobinBurst, WholePhase, HOST_PORT,
};
pub use traffic::{HostTraffic, HostTrafficGen};
