//! Synthetic host-traffic generation.
//!
//! Scheduler and arbiter policies only diverge under *mixed*
//! host/kernel traffic: a kernel chain alone never dirties a cache
//! line from the host side, so every placement policy degenerates to
//! the same earliest-available rotation. [`HostTrafficGen`] produces
//! the deterministic, line-strided store pattern that graph programs
//! and ablations inject between kernel offloads to create that
//! contention.

/// Host-traffic knob for compiled graph programs: every `period`
/// kernels, the host dirties `bytes` of external memory (one word
/// store per cache line touched).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostTraffic {
    /// Kernels between traffic bursts (≥ 1).
    pub period: usize,
    /// Span of external memory each burst dirties, in bytes.
    pub bytes: u32,
}

impl HostTraffic {
    /// A burst of `bytes` dirtied after every `period` kernels.
    ///
    /// # Panics
    ///
    /// Panics when `period` is zero.
    pub fn new(period: usize, bytes: u32) -> Self {
        assert!(period > 0, "traffic period must be at least one kernel");
        HostTraffic { period, bytes }
    }
}

/// Deterministic generator of line-strided host store addresses over a
/// scratch window `[base, base + span)`.
///
/// Each [`HostTrafficGen::burst`] yields one address per cache line
/// (the cheapest store pattern that dirties a line), walking the
/// window round-robin so repeated bursts keep re-dirtying the same
/// working set — the steady-state host load of a mixed workload.
#[derive(Debug, Clone)]
pub struct HostTrafficGen {
    base: u32,
    span: u32,
    line: u32,
    cursor: u32,
}

impl HostTrafficGen {
    /// A generator over `[base, base + span)` with `line`-byte cache
    /// lines.
    ///
    /// # Panics
    ///
    /// Panics when `line` is zero or `span < line`.
    pub fn new(base: u32, span: u32, line: u32) -> Self {
        assert!(line > 0, "line size must be positive");
        assert!(span >= line, "window must hold at least one line");
        HostTrafficGen {
            base,
            span: span - span % line,
            line,
            cursor: 0,
        }
    }

    /// The next store address (one per line, wrapping at the window
    /// end).
    pub fn next_store(&mut self) -> u32 {
        let addr = self.base + self.cursor;
        self.cursor = (self.cursor + self.line) % self.span;
        addr
    }

    /// The store addresses of one burst dirtying `bytes` of the
    /// window (one word store per line, `ceil(bytes / line)` stores).
    pub fn burst(&mut self, bytes: u32) -> Vec<u32> {
        let n = bytes.div_ceil(self.line);
        (0..n).map(|_| self.next_store()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_is_line_strided_and_wraps() {
        let mut g = HostTrafficGen::new(0x1000, 4096, 1024);
        assert_eq!(g.burst(2048), vec![0x1000, 0x1400]);
        assert_eq!(g.burst(3000), vec![0x1800, 0x1c00, 0x1000]);
    }

    #[test]
    fn partial_line_rounds_up() {
        let mut g = HostTrafficGen::new(0, 2048, 1024);
        assert_eq!(g.burst(1).len(), 1);
        assert_eq!(g.burst(1025).len(), 2);
    }

    #[test]
    fn window_truncates_to_whole_lines() {
        let mut g = HostTrafficGen::new(0, 2500, 1024);
        // 2500 → 2048-byte window: two lines, then wrap.
        assert_eq!(g.burst(4096), vec![0, 1024, 0, 1024]);
    }

    #[test]
    fn knob_validates_period() {
        let t = HostTraffic::new(2, 8192);
        assert_eq!((t.period, t.bytes), (2, 8192));
    }
}
