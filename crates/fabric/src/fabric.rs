//! The burst-level shared-memory fabric between the ARCANE controller
//! complex (eCPU + 2-D DMA + host slave port) and the VPU array.
//!
//! The fabric owns one request port per VPU controller plus one host
//! port, and books every transaction on a set of bank calendars under a
//! pluggable [`ArbiterPolicy`]:
//!
//! * [`ArbiterKind::WholePhase`] — the legacy model and the default:
//!   each kernel DMA transaction is one contiguous busy window on the
//!   shared channel (cycle-identical to the pre-fabric calendar
//!   booking), host refills ride a dedicated slave path that never
//!   contends, and vector issue stays on the exclusive eCPU calendar.
//! * [`ArbiterKind::RoundRobinBurst`] — every transaction is decomposed
//!   into line-sized bursts that weave into whatever gaps concurrent
//!   transactions left (work-conserving round-robin arbitration), and
//!   vector instructions reach the VPUs as small dispatch descriptors
//!   over the same fabric (autonomous per-VPU sequencers instead of
//!   per-instruction eCPU software issue).
//! * [`ArbiterKind::PriorityHost`] — like round-robin-burst for kernel
//!   traffic, but host transactions are granted contiguously at the
//!   earliest gap, minimising host miss latency at the cost of kernel
//!   burst stalls.

use crate::channel::ResourceChannel;
use std::fmt;

/// Index of the host slave port (VPU controller `v` is port `v + 1`).
pub const HOST_PORT: usize = 0;

/// Geometry and arbitration policy of the shared fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FabricConfig {
    /// Grant discipline for the shared path.
    pub arbiter: ArbiterKind,
    /// Independent fabric banks; transactions to different banks never
    /// contend. 1 = the single shared channel of the paper.
    pub banks: usize,
    /// Payload bandwidth of one bank in bytes per cycle (the shared
    /// bus width; the LLC derives its DMA payload bandwidth from this).
    pub bytes_per_cycle: u64,
    /// Burst granularity in bytes (one cache line: the unit a burst
    /// arbiter grants before re-arbitrating).
    pub burst_bytes: u64,
    /// Size of one vector-instruction dispatch descriptor in bytes
    /// (opcode word + operand word), used when the arbiter routes
    /// issue traffic over the fabric.
    pub issue_bytes: u64,
}

impl FabricConfig {
    /// The paper's shared path: one bank, 32-bit bus, 1 KiB line
    /// bursts, whole-phase arbitration.
    pub const fn default_config() -> Self {
        FabricConfig {
            arbiter: ArbiterKind::WholePhase,
            banks: 1,
            bytes_per_cycle: 4,
            burst_bytes: 1024,
            issue_bytes: 8,
        }
    }

    /// Cycles one full burst occupies a bank.
    pub const fn burst_cycles(&self) -> u64 {
        let bpc = if self.bytes_per_cycle == 0 {
            1
        } else {
            self.bytes_per_cycle
        };
        let c = self.burst_bytes.div_ceil(bpc);
        if c == 0 {
            1
        } else {
            c
        }
    }

    /// Cycles a payload of `bytes` occupies a bank at the configured
    /// bus width (minimum one cycle for a non-empty payload). This is
    /// the exact fuel a launch-descriptor batch burns on its way to the
    /// eCPU's decoder.
    pub const fn payload_cycles(&self, bytes: u64) -> u64 {
        let bpc = if self.bytes_per_cycle == 0 {
            1
        } else {
            self.bytes_per_cycle
        };
        let c = bytes.div_ceil(bpc);
        if c == 0 {
            1
        } else {
            c
        }
    }

    /// Cycles one vector-instruction dispatch descriptor occupies a
    /// bank (burst arbiters only).
    pub const fn issue_cycles(&self) -> u64 {
        let bpc = if self.bytes_per_cycle == 0 {
            1
        } else {
            self.bytes_per_cycle
        };
        let c = self.issue_bytes.div_ceil(bpc);
        if c == 0 {
            1
        } else {
            c
        }
    }
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig::default_config()
    }
}

/// One granted transaction: the absolute-cycle span it occupies and
/// the number of bursts it was decomposed into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// First cycle of the first burst.
    pub start: u64,
    /// Last cycle (exclusive) of the last burst.
    pub end: u64,
    /// Bursts the transaction was granted as (1 = contiguous).
    pub bursts: u64,
}

/// A fabric grant discipline: how one transaction's cycles are laid
/// out on a bank calendar relative to everything already booked.
///
/// Implementations must book exactly `duration` busy cycles (except
/// [`ArbiterPolicy::grant_host`] under a policy whose host path does
/// not contend) and must never grant before `earliest`.
pub trait ArbiterPolicy: fmt::Debug + Send + Sync {
    /// Policy mnemonic (ablation tables, reports).
    fn name(&self) -> &'static str;

    /// Books a kernel-port transaction (DMA burst train or an issue
    /// descriptor train).
    fn grant_kernel(
        &self,
        chan: &mut ResourceChannel,
        earliest: u64,
        duration: u64,
        burst: u64,
    ) -> Grant;

    /// Books a host-port transaction (miss refill / writeback line).
    fn grant_host(
        &self,
        chan: &mut ResourceChannel,
        earliest: u64,
        duration: u64,
        burst: u64,
    ) -> Grant;

    /// `true` when vector-instruction dispatch rides the fabric as
    /// descriptor bursts (autonomous per-VPU sequencers); `false` when
    /// it stays on the exclusive eCPU calendar (software issue).
    fn issue_on_fabric(&self) -> bool;
}

/// The legacy discipline: one contiguous busy window per transaction,
/// placed in the earliest gap that fits the whole phase. Host refills
/// ride a dedicated slave path and never touch the shared calendar.
/// Cycle-identical to the pre-fabric `ResourceChannel` model.
#[derive(Debug, Clone, Copy, Default)]
pub struct WholePhase;

impl ArbiterPolicy for WholePhase {
    fn name(&self) -> &'static str {
        "whole-phase"
    }

    fn grant_kernel(
        &self,
        chan: &mut ResourceChannel,
        earliest: u64,
        duration: u64,
        _burst: u64,
    ) -> Grant {
        let (start, end) = chan.reserve(earliest, duration);
        Grant {
            start,
            end,
            bursts: 1,
        }
    }

    fn grant_host(
        &self,
        _chan: &mut ResourceChannel,
        earliest: u64,
        duration: u64,
        _burst: u64,
    ) -> Grant {
        // Dedicated host slave path: fixed service latency, no
        // contention with kernel traffic (the legacy model).
        Grant {
            start: earliest,
            end: earliest + duration,
            bursts: 1,
        }
    }

    fn issue_on_fabric(&self) -> bool {
        false
    }
}

/// Work-conserving round-robin: every transaction is decomposed into
/// bursts that fill the earliest idle slices, so concurrent streams
/// interleave at burst granularity. Host and kernel traffic share the
/// banks symmetrically.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobinBurst;

impl ArbiterPolicy for RoundRobinBurst {
    fn name(&self) -> &'static str {
        "round-robin-burst"
    }

    fn grant_kernel(
        &self,
        chan: &mut ResourceChannel,
        earliest: u64,
        duration: u64,
        burst: u64,
    ) -> Grant {
        let (start, end, bursts) = chan.reserve_packed(earliest, duration, burst);
        Grant { start, end, bursts }
    }

    fn grant_host(
        &self,
        chan: &mut ResourceChannel,
        earliest: u64,
        duration: u64,
        burst: u64,
    ) -> Grant {
        self.grant_kernel(chan, earliest, duration, burst)
    }

    fn issue_on_fabric(&self) -> bool {
        true
    }
}

/// Round-robin bursts for kernel traffic, contiguous earliest-gap
/// grants for the host: the host's miss refills are never split, so
/// host latency is minimised while kernel bursts weave around them.
#[derive(Debug, Clone, Copy, Default)]
pub struct PriorityHost;

impl ArbiterPolicy for PriorityHost {
    fn name(&self) -> &'static str {
        "priority-host"
    }

    fn grant_kernel(
        &self,
        chan: &mut ResourceChannel,
        earliest: u64,
        duration: u64,
        burst: u64,
    ) -> Grant {
        let (start, end, bursts) = chan.reserve_packed(earliest, duration, burst);
        Grant { start, end, bursts }
    }

    fn grant_host(
        &self,
        chan: &mut ResourceChannel,
        earliest: u64,
        duration: u64,
        _burst: u64,
    ) -> Grant {
        let (start, end) = chan.reserve(earliest, duration);
        Grant {
            start,
            end,
            bursts: 1,
        }
    }

    fn issue_on_fabric(&self) -> bool {
        true
    }
}

/// Configuration-level selector for the arbiter policy (a `Copy` enum
/// so [`FabricConfig`] stays a plain value; the trait objects behind it
/// are zero-sized statics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ArbiterKind {
    /// [`WholePhase`] — the legacy calendar model and the default.
    #[default]
    WholePhase,
    /// [`RoundRobinBurst`] — burst-interleaved, symmetric ports.
    RoundRobinBurst,
    /// [`PriorityHost`] — burst-interleaved kernels, contiguous host.
    PriorityHost,
}

impl ArbiterKind {
    /// Every selectable policy, in ablation-table order.
    pub const ALL: [ArbiterKind; 3] = [
        ArbiterKind::WholePhase,
        ArbiterKind::RoundRobinBurst,
        ArbiterKind::PriorityHost,
    ];

    /// The policy implementation behind this selector.
    pub fn policy(self) -> &'static dyn ArbiterPolicy {
        match self {
            ArbiterKind::WholePhase => &WholePhase,
            ArbiterKind::RoundRobinBurst => &RoundRobinBurst,
            ArbiterKind::PriorityHost => &PriorityHost,
        }
    }

    /// Policy mnemonic (ablation tables).
    pub fn name(self) -> &'static str {
        self.policy().name()
    }
}

impl fmt::Display for ArbiterKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-port traffic accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PortStats {
    /// Transactions issued through this port.
    pub requests: u64,
    /// Bursts the transactions were granted as.
    pub bursts: u64,
    /// Service cycles of the port's transactions. Under the burst
    /// arbiters every one of these cycles occupies a bank calendar;
    /// under [`WholePhase`] the host port's transactions ride the
    /// dedicated slave path instead, so the host row's busy cycles
    /// count that path's occupancy, not bank time (the sum over ports
    /// can then exceed [`Fabric::busy_cycles`]).
    pub busy_cycles: u64,
    /// Cycles transactions spent waiting beyond their service time
    /// (`completion − earliest − duration`, summed).
    pub wait_cycles: u64,
}

impl PortStats {
    /// Fraction of `horizon` this port kept its path busy.
    pub fn occupancy(&self, horizon: u64) -> f64 {
        if horizon == 0 {
            0.0
        } else {
            self.busy_cycles as f64 / horizon as f64
        }
    }
}

/// The shared-memory fabric: `1 + n_vpus` request ports multiplexed
/// onto `banks` bank calendars under the configured arbiter.
#[derive(Debug, Clone)]
pub struct Fabric {
    cfg: FabricConfig,
    banks: Vec<ResourceChannel>,
    ports: Vec<PortStats>,
}

impl Fabric {
    /// Builds the fabric with one host port plus `n_vpus` VPU
    /// controller ports.
    ///
    /// # Panics
    ///
    /// Panics when the configuration names zero banks.
    pub fn new(cfg: FabricConfig, n_vpus: usize) -> Self {
        assert!(cfg.banks >= 1, "fabric needs at least one bank");
        Fabric {
            banks: vec![ResourceChannel::new(); cfg.banks],
            ports: vec![PortStats::default(); 1 + n_vpus],
            cfg,
        }
    }

    /// The configuration this fabric was built with.
    pub const fn config(&self) -> &FabricConfig {
        &self.cfg
    }

    /// Number of request ports (host + VPU controllers).
    pub fn n_ports(&self) -> usize {
        self.ports.len()
    }

    /// The request port of VPU controller `vpu`.
    pub fn vpu_port(vpu: usize) -> usize {
        vpu + 1
    }

    /// Human-readable port name (`host`, `vpu0`, `vpu1`, …).
    pub fn port_label(port: usize) -> String {
        if port == HOST_PORT {
            "host".into()
        } else {
            format!("vpu{}", port - 1)
        }
    }

    /// `true` when the configured arbiter routes vector-instruction
    /// dispatch over the fabric instead of the exclusive eCPU calendar.
    pub fn issue_on_fabric(&self) -> bool {
        self.cfg.arbiter.policy().issue_on_fabric()
    }

    fn bank_of_addr(&self, addr: u32) -> usize {
        (addr as u64 / self.cfg.burst_bytes.max(1)) as usize % self.banks.len()
    }

    fn record(&mut self, port: usize, earliest: u64, duration: u64, grant: Grant) -> Grant {
        let p = &mut self.ports[port];
        p.requests += 1;
        p.bursts += grant.bursts;
        p.busy_cycles += duration;
        p.wait_cycles += (grant.end - earliest).saturating_sub(duration);
        grant
    }

    /// Books a data transaction of `duration` cycles touching external
    /// address `addr` (bank selection) for `port`, starting no earlier
    /// than `earliest`. Returns the grant; the caller's time cursor
    /// should advance to `grant.end`.
    pub fn request(&mut self, port: usize, addr: u32, earliest: u64, duration: u64) -> Grant {
        let policy = self.cfg.arbiter.policy();
        let burst = self.cfg.burst_cycles();
        let bank = self.bank_of_addr(addr);
        let chan = &mut self.banks[bank];
        let grant = if port == HOST_PORT {
            policy.grant_host(chan, earliest, duration, burst)
        } else {
            policy.grant_kernel(chan, earliest, duration, burst)
        };
        self.record(port, earliest, duration, grant)
    }

    /// Books the dispatch of `n_instrs` vector instructions to the VPU
    /// behind `port` (burst arbiters only — under
    /// [`ArbiterKind::WholePhase`] issue stays on the eCPU calendar and
    /// this must not be called).
    ///
    /// Descriptors stream over the bank the VPU's control queue lives
    /// on (`port − 1 mod banks`), `issue_bytes` each.
    ///
    /// # Panics
    ///
    /// Panics when called under an arbiter that keeps issue on the
    /// eCPU, or for the host port.
    pub fn issue(&mut self, port: usize, earliest: u64, n_instrs: u64) -> Grant {
        assert!(
            self.issue_on_fabric(),
            "issue traffic stays on the eCPU under {}",
            self.cfg.arbiter
        );
        assert_ne!(port, HOST_PORT, "the host port does not dispatch kernels");
        let duration = n_instrs * self.cfg.issue_cycles();
        let burst = self.cfg.burst_cycles();
        let bank = (port - 1) % self.banks.len();
        let policy = self.cfg.arbiter.policy();
        let grant = policy.grant_kernel(&mut self.banks[bank], earliest, duration, burst);
        self.record(port, earliest, duration, grant)
    }

    /// Books the transfer of one launch-descriptor batch of `bytes`
    /// from the table at `addr` to the eCPU's decoder, for `port`.
    ///
    /// Batches are control traffic on the *shared* path under every
    /// arbiter: whole-phase grants them as one contiguous window (they
    /// contend with kernel DMA, unlike the host's dedicated slave
    /// path), while the burst arbiters weave them burst-by-burst into
    /// whatever gaps concurrent DMA trains left — which is what keeps
    /// batch fetches off the critical path of in-flight allocations.
    pub fn issue_batch(&mut self, port: usize, addr: u32, earliest: u64, bytes: u64) -> Grant {
        let duration = self.cfg.payload_cycles(bytes);
        let burst = self.cfg.burst_cycles();
        let bank = self.bank_of_addr(addr);
        let policy = self.cfg.arbiter.policy();
        let grant = policy.grant_kernel(&mut self.banks[bank], earliest, duration, burst);
        self.record(port, earliest, duration, grant)
    }

    /// Per-port traffic statistics, indexed by port.
    pub fn port_stats(&self) -> &[PortStats] {
        &self.ports
    }

    /// Total busy cycles across all banks.
    pub fn busy_cycles(&self) -> u64 {
        self.banks.iter().map(|b| b.busy_cycles()).sum()
    }

    /// Latest booked cycle across all banks.
    pub fn horizon(&self) -> u64 {
        self.banks.iter().map(|b| b.horizon()).max().unwrap_or(0)
    }

    /// The bank calendars (tests and diagnostics).
    pub fn bank_channels(&self) -> &[ResourceChannel] {
        &self.banks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(arbiter: ArbiterKind) -> FabricConfig {
        FabricConfig {
            arbiter,
            ..FabricConfig::default_config()
        }
    }

    #[test]
    fn default_config_shape() {
        let c = FabricConfig::default();
        assert_eq!(c.arbiter, ArbiterKind::WholePhase);
        assert_eq!(c.banks, 1);
        assert_eq!(c.burst_cycles(), 256);
        assert_eq!(c.issue_cycles(), 2);
    }

    #[test]
    fn whole_phase_matches_direct_reserve() {
        let mut f = Fabric::new(cfg(ArbiterKind::WholePhase), 2);
        let mut direct = ResourceChannel::new();
        for (port, t, d) in [(1, 0, 500), (2, 100, 300), (1, 150, 700), (2, 0, 40)] {
            let g = f.request(port, 0x2000_0000, t, d);
            let (s, e) = direct.reserve(t, d);
            assert_eq!((g.start, g.end), (s, e));
            assert_eq!(g.bursts, 1);
        }
    }

    #[test]
    fn whole_phase_host_path_never_contends() {
        let mut f = Fabric::new(cfg(ArbiterKind::WholePhase), 1);
        f.request(1, 0x2000_0000, 0, 10_000);
        let g = f.request(HOST_PORT, 0x2000_0000, 50, 500);
        assert_eq!((g.start, g.end), (50, 550), "host sees fixed latency");
        assert_eq!(f.port_stats()[HOST_PORT].wait_cycles, 0);
    }

    #[test]
    fn round_robin_burst_interleaves_overlapping_streams() {
        let mut f = Fabric::new(cfg(ArbiterKind::RoundRobinBurst), 2);
        // Port 1 books a long phase; port 2's later transaction weaves
        // into slices instead of starting after it.
        let a = f.request(1, 0x2000_0000, 0, 2000);
        let b = f.request(2, 0x2000_0000, 0, 600);
        assert_eq!((a.start, a.end), (0, 2000));
        assert!(b.start >= 2000, "bank fully busy: grants land after");
        // But gaps let a latecomer in early.
        let mut f = Fabric::new(cfg(ArbiterKind::RoundRobinBurst), 2);
        f.request(1, 0x2000_0000, 0, 100);
        f.request(1, 0x2000_0000, 500, 100); // gap [100, 500)
        let g = f.request(2, 0x2000_0000, 0, 600);
        assert_eq!(g.start, 100, "burst grant fills the gap");
        assert!(g.bursts >= 2);
    }

    #[test]
    fn priority_host_keeps_host_contiguous() {
        let mut f = Fabric::new(cfg(ArbiterKind::PriorityHost), 1);
        // Comb of kernel bursts.
        for k in 0..20u64 {
            f.request(1, 0x2000_0000, 40 * k, 20);
        }
        // A host line that fits a gap lands in the earliest one; one
        // that does not is never split — it goes past the comb whole.
        let small = f.request(HOST_PORT, 0x2000_0000, 0, 15);
        assert_eq!(small.bursts, 1, "host transaction is never split");
        assert_eq!((small.start, small.end), (20, 35), "earliest whole gap");
        let big = f.request(HOST_PORT, 0x2000_0000, 0, 30);
        assert_eq!(big.bursts, 1, "host transaction is never split");
        assert_eq!((big.start, big.end), (780, 810), "no 30-cycle gap fits");
    }

    #[test]
    fn banks_remove_cross_bank_contention() {
        let mut c = cfg(ArbiterKind::WholePhase);
        c.banks = 2;
        let mut f = Fabric::new(c, 2);
        // Addresses one line apart land on different banks.
        let a = f.request(1, 0x2000_0000, 0, 1000);
        let b = f.request(2, 0x2000_0400, 0, 1000);
        assert_eq!((a.start, b.start), (0, 0), "no contention across banks");
    }

    #[test]
    fn issue_rides_fabric_only_under_burst_arbiters() {
        let mut f = Fabric::new(cfg(ArbiterKind::RoundRobinBurst), 2);
        let g = f.issue(1, 0, 3);
        assert_eq!(g.end - g.start, 3 * f.config().issue_cycles());
        assert!(!Fabric::new(cfg(ArbiterKind::WholePhase), 2).issue_on_fabric());
    }

    #[test]
    fn issue_batch_contends_on_the_shared_path_under_whole_phase() {
        let mut f = Fabric::new(cfg(ArbiterKind::WholePhase), 2);
        f.request(1, 0x2000_0000, 0, 1000);
        // A 64-byte batch = 16 payload cycles on the 4 B/cyc bus,
        // granted contiguously after the booked DMA phase.
        let g = f.issue_batch(HOST_PORT, 0x2000_0000, 0, 64);
        assert_eq!((g.start, g.end), (1000, 1016));
        assert_eq!(g.bursts, 1, "whole-phase grants batches contiguously");
    }

    #[test]
    fn issue_batch_weaves_into_gaps_under_round_robin() {
        let mut f = Fabric::new(cfg(ArbiterKind::RoundRobinBurst), 2);
        f.request(1, 0x2000_0000, 0, 10);
        f.request(1, 0x2000_0000, 20, 10); // gap [10, 20)
        let g = f.issue_batch(HOST_PORT, 0x2000_0000, 0, 64);
        assert_eq!(g.start, 10, "batch fills the DMA gap");
        assert!(g.bursts >= 2);
    }

    #[test]
    fn payload_cycles_is_exact() {
        let c = FabricConfig::default_config();
        assert_eq!(c.payload_cycles(0), 1);
        assert_eq!(c.payload_cycles(4), 1);
        assert_eq!(c.payload_cycles(65), 17);
    }

    #[test]
    fn port_stats_accumulate() {
        let mut f = Fabric::new(cfg(ArbiterKind::WholePhase), 1);
        f.request(1, 0x2000_0000, 0, 100);
        f.request(1, 0x2000_0000, 0, 50); // pushed behind the first
        let s = f.port_stats()[1];
        assert_eq!(s.requests, 2);
        assert_eq!(s.busy_cycles, 150);
        assert_eq!(s.wait_cycles, 100, "second transaction waited");
        assert!((s.occupancy(150) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn labels_and_ports() {
        assert_eq!(Fabric::port_label(HOST_PORT), "host");
        assert_eq!(Fabric::port_label(Fabric::vpu_port(2)), "vpu2");
        let names: Vec<&str> = ArbiterKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names, ["whole-phase", "round-robin-burst", "priority-host"]);
    }
}
