//! Shared helpers for the benchmark harnesses that regenerate every
//! table and figure of the ARCANE paper.
//!
//! Each bench target (`cargo bench -p arcane-bench --bench <name>`)
//! first prints the regenerated table/figure data next to the paper's
//! published values, then runs a small criterion measurement so the
//! harness also tracks simulator performance over time.
//!
//! Set `ARCANE_FAST=1` to shrink the sweeps (useful in CI).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use arcane_sim::Sew;
use arcane_system::ConvLayerParams;

/// `true` when the abbreviated sweep is requested.
pub fn fast_mode() -> bool {
    std::env::var_os("ARCANE_FAST").is_some_and(|v| v != "0")
}

/// Input sizes for the Figure 3/4 sweeps.
pub fn sweep_sizes() -> Vec<usize> {
    if fast_mode() {
        vec![16, 32, 64]
    } else {
        vec![16, 32, 64, 128, 256]
    }
}

/// Filter sizes of Figure 4.
pub fn sweep_filters() -> Vec<usize> {
    if fast_mode() {
        vec![3]
    } else {
        vec![3, 5, 7]
    }
}

/// Data widths of Figure 4.
pub fn sweep_widths() -> Vec<Sew> {
    Sew::ALL.to_vec()
}

/// The conv-layer workload used for criterion measurements (small, so
/// `cargo bench` stays quick).
pub fn probe_params() -> ConvLayerParams {
    ConvLayerParams::new(32, 32, 3, Sew::Byte)
}

/// Prints a horizontal rule sized to `width`.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Formats a cycle count with thousands separators.
pub fn fmt_cycles(c: u64) -> String {
    let s = c.to_string();
    let mut out = String::new();
    for (i, ch) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(ch);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_formatting() {
        assert_eq!(fmt_cycles(1), "1");
        assert_eq!(fmt_cycles(1234), "1,234");
        assert_eq!(fmt_cycles(1234567), "1,234,567");
    }

    #[test]
    fn sweeps_nonempty() {
        assert!(!sweep_sizes().is_empty());
        assert!(!sweep_filters().is_empty());
        assert_eq!(sweep_widths().len(), 3);
    }
}
