//! Table I — the ARCANE custom kernel set: mnemonics, operand packing
//! and encode/decode round-trips for every kernel × width.

use arcane_isa::reg::{A0, A1, A2};
use arcane_isa::xmnmc::{self, kernel_id, MatReg, XInstr, XmnmcOp, FUNC5_XMR};
use arcane_sim::Sew;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn print_table1() {
    println!("\n== Table I: ARCANE custom kernels (xmnmc, custom-2 opcode 0x5b) ==");
    arcane_bench::rule(78);
    println!(
        "{:<14} {:<38} description",
        "mnemonic", "data sources (hi/lo of rs1 | rs2 | rs3)"
    );
    arcane_bench::rule(78);
    let rows: [(u8, &str, &str); 6] = [
        (
            FUNC5_XMR,
            "hi(&A) lo(&A) | stride md | cols rows",
            "Matrix reserve",
        ),
        (
            kernel_id::GEMM,
            "alpha beta   | ms3 md    | ms1 ms2",
            "GeMM",
        ),
        (
            kernel_id::LEAKY_RELU,
            "alpha -      | -   md    | ms1 -",
            "LeakyReLU",
        ),
        (
            kernel_id::MAXPOOL,
            "stride win   | -   md    | ms1 -",
            "Maxpooling",
        ),
        (
            kernel_id::CONV2D,
            "-      -     | -   md    | ms1 ms2",
            "2D Conv.",
        ),
        (
            kernel_id::CONV_LAYER_3CH,
            "-      -     | -   md    | ms1 ms2",
            "3-ch. 2D Conv. Layer",
        ),
    ];
    for (func5, sources, desc) in rows {
        let base = xmnmc::mnemonic(func5, Sew::Word);
        let mn = format!("{}.[w,h,b]", base.trim_end_matches(".w"));
        println!("{mn:<14} {sources:<38} {desc}");
        // Prove each row round-trips through the binary encoding.
        for width in Sew::ALL {
            let x = XInstr {
                func5,
                width,
                rs1: A0,
                rs2: A1,
                rs3: A2,
            };
            let word = xmnmc::encode_raw(&x);
            assert_eq!(xmnmc::decode_raw(word).unwrap(), x);
        }
    }
    arcane_bench::rule(78);
    // Demonstrate the Listing-1 operand packing end to end.
    let m = |i| MatReg::new(i).unwrap();
    let (r1, r2, r3) = xmnmc::pack_xmr(0x2000_0000, 1, m(0), 64, 192);
    let x = XInstr {
        func5: FUNC5_XMR,
        width: Sew::Byte,
        rs1: A0,
        rs2: A1,
        rs3: A2,
    };
    let op = XmnmcOp::decode(&x, r1, r2, r3).unwrap();
    println!("example: xmr.b m0, A(64x192) decodes to {op:?}");
    println!();
}

fn bench(c: &mut Criterion) {
    print_table1();
    c.bench_function("xmnmc_encode_decode", |b| {
        let x = XInstr {
            func5: kernel_id::CONV_LAYER_3CH,
            width: Sew::Byte,
            rs1: A0,
            rs2: A1,
            rs3: A2,
        };
        b.iter(|| {
            let w = xmnmc::encode_raw(black_box(&x));
            xmnmc::decode_raw(black_box(w)).unwrap()
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
