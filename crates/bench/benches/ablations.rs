//! Ablation studies on the design choices DESIGN.md calls out:
//!
//! 1. **Kernel-queue depth** — the statically allocated queue (§IV-B)
//!    absorbs offload bursts; how much host stall does a shallow queue
//!    cost?
//! 2. **DMA bandwidth** — the allocation phase is bus-width bound; how
//!    does the phase split move with the DMA's bytes/cycle?
//! 3. **VPU count** — multi-instance scaling against the shared DMA
//!    channel and eCPU (the §V-C sub-linearity).

use arcane_core::ArcaneConfig;
use arcane_sim::{Phase, Sew};
use arcane_system::driver::{run_arcane_conv_with, run_scalar_conv};
use arcane_system::ConvLayerParams;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn queue_depth_ablation() {
    println!("\n== Ablation 1: kernel-queue depth (8 back-to-back xmk4, 32x32 int8) ==");
    arcane_bench::rule(64);
    println!(
        "{:>12} {:>16} {:>16}",
        "queue depth", "total cycles", "hazard stalls"
    );
    arcane_bench::rule(64);
    let p = ConvLayerParams::new(32, 32, 3, Sew::Byte);
    for depth in [1usize, 2, 4, 8] {
        let mut cfg = ArcaneConfig::with_lanes(8);
        cfg.kernel_queue_capacity = depth;
        // 4 instances issue 4 kernels back-to-back; shallow queues make
        // the host wait at the bridge.
        let r = run_arcane_conv_with(cfg, &p, 4);
        println!(
            "{depth:>12} {:>16} {:>16}",
            arcane_bench::fmt_cycles(r.cycles),
            arcane_bench::fmt_cycles(r.stall_cycles)
        );
    }
    println!("observation: the end-to-end time is kernel-bound either way — the stall");
    println!("only *moves*: a shallow queue blocks the host at the bridge handshake,");
    println!("a deep one lets it run ahead and blocks it at the result read (the");
    println!("hazard-stall column). The queue buys overlap, not throughput.");
}

fn dma_bandwidth_ablation() {
    println!("\n== Ablation 2: DMA bandwidth (8-lane, 64x64 int32, 3x3) ==");
    arcane_bench::rule(72);
    println!(
        "{:>14} {:>14} {:>12} {:>12} {:>12}",
        "bytes/cycle", "total cyc", "alloc %", "compute %", "writeback %"
    );
    arcane_bench::rule(72);
    let p = ConvLayerParams::new(64, 64, 3, Sew::Word);
    for bw in [2u64, 4, 8, 16] {
        let mut cfg = ArcaneConfig::with_lanes(8);
        cfg.dma.bytes_per_cycle = bw;
        let r = run_arcane_conv_with(cfg, &p, 1);
        let ph = r.phases.unwrap();
        println!(
            "{bw:>14} {:>14} {:>11.1}% {:>11.1}% {:>11.1}%",
            arcane_bench::fmt_cycles(ph.total()),
            100.0 * ph.share(Phase::Allocation),
            100.0 * ph.share(Phase::Compute),
            100.0 * ph.share(Phase::Writeback),
        );
    }
    println!("expectation: the allocation share collapses as the bus widens; compute");
    println!("becomes the ceiling (why the paper pairs wide VPUs with a 2-D DMA).");
}

fn vpu_count_ablation() {
    let size = if arcane_bench::fast_mode() { 32 } else { 128 };
    println!("\n== Ablation 3: VPU count (multi-instance, {size}x{size} int8, 7x7) ==");
    arcane_bench::rule(64);
    println!("{:>10} {:>16} {:>14}", "VPUs", "total cycles", "vs scalar");
    arcane_bench::rule(64);
    let p = ConvLayerParams::new(size, size, 7, Sew::Byte);
    let s = run_scalar_conv(&p);
    for n_vpus in [1usize, 2, 4] {
        let mut cfg = ArcaneConfig::with_lanes(8);
        cfg.n_vpus = n_vpus;
        let r = run_arcane_conv_with(cfg, &p, n_vpus.min(4));
        println!(
            "{n_vpus:>10} {:>16} {:>13.1}x",
            arcane_bench::fmt_cycles(r.cycles),
            r.speedup_over(&s)
        );
    }
    println!("expectation: gains appear once per-kernel compute outweighs the shared");
    println!("DMA/eCPU work, and stay sub-linear — the paper's 120x multi-instance vs");
    println!("84x single-instance shows the same bound.");
    println!();
}

fn bench(c: &mut Criterion) {
    queue_depth_ablation();
    dma_bandwidth_ablation();
    vpu_count_ablation();
    let p = ConvLayerParams::new(32, 32, 3, Sew::Byte);
    c.bench_function("arcane_queue_depth_1", |b| {
        let mut cfg = ArcaneConfig::with_lanes(8);
        cfg.kernel_queue_capacity = 1;
        b.iter(|| run_arcane_conv_with(black_box(cfg), &p, 4).cycles)
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
