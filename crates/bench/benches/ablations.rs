//! Ablation studies on the design choices DESIGN.md calls out:
//!
//! 1. **Kernel-queue depth** — the statically allocated queue (§IV-B)
//!    absorbs offload bursts; how much host stall does a shallow queue
//!    cost?
//! 2. **DMA bandwidth** — the allocation phase is bus-width bound; how
//!    does the phase split move with the DMA's bytes/cycle?
//! 3. **VPU count** — multi-instance scaling against the shared DMA
//!    channel and eCPU (the §V-C sub-linearity).
//! 4. **Scheduler policy** — least-dirty vs round-robin vs most-free
//!    placement (DESIGN.md §4.4) across 1/2/4 VPUs, on both the conv
//!    workload and an `arcane-nn` graph chain with mixed host traffic.

use arcane_core::{ArcaneConfig, SchedulerKind};
use arcane_nn::suite;
use arcane_sim::{Phase, Sew};
use arcane_system::driver::{run_arcane_conv_with, run_scalar_conv};
use arcane_system::ConvLayerParams;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn queue_depth_ablation() {
    println!("\n== Ablation 1: kernel-queue depth (8 back-to-back xmk4, 32x32 int8) ==");
    arcane_bench::rule(64);
    println!(
        "{:>12} {:>16} {:>16}",
        "queue depth", "total cycles", "hazard stalls"
    );
    arcane_bench::rule(64);
    let p = ConvLayerParams::new(32, 32, 3, Sew::Byte);
    for depth in [1usize, 2, 4, 8] {
        let mut cfg = ArcaneConfig::with_lanes(8);
        cfg.kernel_queue_capacity = depth;
        // 4 instances issue 4 kernels back-to-back; shallow queues make
        // the host wait at the bridge.
        let r = run_arcane_conv_with(cfg, &p, 4);
        println!(
            "{depth:>12} {:>16} {:>16}",
            arcane_bench::fmt_cycles(r.cycles),
            arcane_bench::fmt_cycles(r.stall_cycles)
        );
    }
    println!("observation: the end-to-end time is kernel-bound either way — the stall");
    println!("only *moves*: a shallow queue blocks the host at the bridge handshake,");
    println!("a deep one lets it run ahead and blocks it at the result read (the");
    println!("hazard-stall column). The queue buys overlap, not throughput.");
}

fn dma_bandwidth_ablation() {
    println!("\n== Ablation 2: DMA bandwidth (8-lane, 64x64 int32, 3x3) ==");
    arcane_bench::rule(72);
    println!(
        "{:>14} {:>14} {:>12} {:>12} {:>12}",
        "bytes/cycle", "total cyc", "alloc %", "compute %", "writeback %"
    );
    arcane_bench::rule(72);
    let p = ConvLayerParams::new(64, 64, 3, Sew::Word);
    for bw in [2u64, 4, 8, 16] {
        let mut cfg = ArcaneConfig::with_lanes(8);
        // The shared-path width is a fabric parameter; the LLC derives
        // the DMA payload bandwidth from it.
        cfg.fabric.bytes_per_cycle = bw;
        let r = run_arcane_conv_with(cfg, &p, 1);
        let ph = r.phases.unwrap();
        println!(
            "{bw:>14} {:>14} {:>11.1}% {:>11.1}% {:>11.1}%",
            arcane_bench::fmt_cycles(ph.total()),
            100.0 * ph.share(Phase::Allocation),
            100.0 * ph.share(Phase::Compute),
            100.0 * ph.share(Phase::Writeback),
        );
    }
    println!("expectation: the allocation share collapses as the bus widens; compute");
    println!("becomes the ceiling (why the paper pairs wide VPUs with a 2-D DMA).");
}

fn vpu_count_ablation() {
    let size = if arcane_bench::fast_mode() { 32 } else { 128 };
    println!("\n== Ablation 3: VPU count (multi-instance, {size}x{size} int8, 7x7) ==");
    arcane_bench::rule(64);
    println!("{:>10} {:>16} {:>14}", "VPUs", "total cycles", "vs scalar");
    arcane_bench::rule(64);
    let p = ConvLayerParams::new(size, size, 7, Sew::Byte);
    let s = run_scalar_conv(&p);
    for n_vpus in [1usize, 2, 4] {
        let mut cfg = ArcaneConfig::with_lanes(8);
        cfg.n_vpus = n_vpus;
        let r = run_arcane_conv_with(cfg, &p, n_vpus.min(4));
        println!(
            "{n_vpus:>10} {:>16} {:>13.1}x",
            arcane_bench::fmt_cycles(r.cycles),
            r.speedup_over(&s)
        );
    }
    println!("expectation: gains appear once per-kernel compute outweighs the shared");
    println!("DMA/eCPU work, and stay sub-linear — the paper's 120x multi-instance vs");
    println!("84x single-instance shows the same bound.");
    println!();
}

fn scheduler_policy_ablation() {
    let size = if arcane_bench::fast_mode() { 32 } else { 64 };
    println!("\n== Ablation 4: scheduler policy x VPU count ==");
    println!("(conv {size}x{size} int8 7x7 multi-instance | transformer-block graph)");
    arcane_bench::rule(76);
    println!(
        "{:>6} {:>13} {:>13} {:>13}   {:>24}",
        "VPUs", "least-dirty", "round-robin", "most-free", "graph kernels/VPU (rr)"
    );
    arcane_bench::rule(76);
    let p = ConvLayerParams::new(size, size, 7, Sew::Byte);
    let (t, d, f) = if arcane_bench::fast_mode() {
        (12, 16, 24)
    } else {
        (16, 24, 32)
    };
    let graph = suite::transformer_block(t, d, f, Sew::Byte, 44);
    for n_vpus in [1usize, 2, 4] {
        let mut cells = Vec::new();
        let mut rr_spread = String::new();
        for scheduler in SchedulerKind::ALL {
            let mut cfg = ArcaneConfig::with_lanes(8);
            cfg.n_vpus = n_vpus;
            cfg.scheduler = scheduler;
            let conv = run_arcane_conv_with(cfg, &p, n_vpus.min(4));
            let g = graph.run_verified(cfg, n_vpus);
            cells.push(conv.cycles + g.cycles);
            if scheduler == SchedulerKind::RoundRobin {
                rr_spread = format!("{:?}", g.kernels_per_vpu(n_vpus));
            }
        }
        println!(
            "{n_vpus:>6} {:>13} {:>13} {:>13}   {:>24}",
            arcane_bench::fmt_cycles(cells[0]),
            arcane_bench::fmt_cycles(cells[1]),
            arcane_bench::fmt_cycles(cells[2]),
            rr_spread,
        );
    }
    println!("observation: on pure kernel chains every policy degenerates to the same");
    println!("earliest-available rotation (no host store ever dirties a line), so the");
    println!("columns agree; the policies only diverge under mixed host/kernel");
    println!("traffic — see the mixed-traffic table below.");
    scheduler_mixed_traffic_ablation();
}

/// Mixed host/kernel traffic, generated from a graph program: the
/// `host_traffic` compiler knob makes the transformer-block host
/// program dirty a line-strided scratch window between offloads, so
/// placement policy changes how many forced writebacks each kernel's
/// allocation pays — the scenario the paper's least-dirty heuristic
/// was designed for (§IV-B2), previously hand-rolled here.
fn scheduler_mixed_traffic_ablation() {
    use arcane_nn::{CompileOptions, HostTraffic};

    let (t, d, f) = if arcane_bench::fast_mode() {
        (12, 16, 24)
    } else {
        (16, 24, 32)
    };
    let graph = suite::transformer_block(t, d, f, Sew::Byte, 44);
    let traffic = HostTraffic::new(2, 24 * 1024);
    let opts = CompileOptions {
        instances: 1,
        host_traffic: Some(traffic),
        ..CompileOptions::default()
    };
    let prog = arcane_nn::compile(&graph.graph, arcane_system::EXT_BASE, &opts)
        .expect("transformer graph must compile");
    println!(
        "\n-- mixed host/kernel traffic (transformer graph, {} KiB dirtied every {} kernels,",
        traffic.bytes / 1024,
        traffic.period
    );
    println!(
        "   {} host stores injected by the compiler) --",
        prog.host_stores
    );
    println!(
        "{:>14} {:>16} {:>14}",
        "policy", "total cycles", "writebacks"
    );
    for scheduler in SchedulerKind::ALL {
        let mut cfg = ArcaneConfig::with_lanes(8);
        cfg.scheduler = scheduler;
        let r = graph.run_verified_with(cfg, &opts);
        println!(
            "{:>14} {:>16} {:>14}",
            scheduler.name(),
            arcane_bench::fmt_cycles(r.cycles),
            r.writebacks,
        );
    }
    println!("expectation: least-dirty steers kernels away from host-dirtied VPUs and");
    println!("pays the fewest forced writebacks; the oblivious rotation walks into");
    println!("them. Same graph, same golden outputs — only placement differs.");
}

fn bench(c: &mut Criterion) {
    queue_depth_ablation();
    dma_bandwidth_ablation();
    vpu_count_ablation();
    scheduler_policy_ablation();
    let p = ConvLayerParams::new(32, 32, 3, Sew::Byte);
    c.bench_function("arcane_queue_depth_1", |b| {
        let mut cfg = ArcaneConfig::with_lanes(8);
        cfg.kernel_queue_capacity = 1;
        b.iter(|| run_arcane_conv_with(black_box(cfg), &p, 4).cycles)
    });
    let graph = suite::transformer_block(12, 16, 24, Sew::Byte, 44);
    c.bench_function("arcane_sched_round_robin_graph", |b| {
        let mut cfg = ArcaneConfig::with_lanes(8);
        cfg.scheduler = SchedulerKind::RoundRobin;
        b.iter(|| black_box(&graph).run_verified(cfg, 4).cycles)
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
