//! Table II — synthesis results: area of the 2/4/8-lane ARCANE
//! configurations versus the baseline X-HEEP, regenerated from the
//! component-level 65 nm area model.

use arcane_area::AreaModel;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn print_table2() {
    let m = AreaModel::calibrated();
    let base = m.baseline_xheep();
    println!("\n== Table II: synthesis results with 16 KiB eMEM (65 nm area model) ==");
    arcane_bench::rule(86);
    println!(
        "{:<28} {:>12} {:>12} {:>12} {:>14}",
        "configuration", "area [um^2]", "area [mm^2]", "area [kGE]", "overhead"
    );
    arcane_bench::rule(86);
    for lanes in [2usize, 4, 8] {
        let a = m.arcane(4, lanes);
        println!(
            "{:<28} {:>12.3e} {:>12.2} {:>12.0} {:>13.1}%",
            a.name,
            a.total_um2(),
            a.total_mm2(),
            a.total_kge(),
            m.overhead_percent(4, lanes)
        );
    }
    println!(
        "{:<28} {:>12.3e} {:>12.2} {:>12.0} {:>14}",
        base.name,
        base.total_um2(),
        base.total_mm2(),
        base.total_kge(),
        "baseline"
    );
    arcane_bench::rule(86);
    println!(
        "paper:   ARCANE 2.88 / 3.03 / 3.34 mm^2 (+21.7% / +28.3% / +41.3%), X-HEEP 2.36 mm^2"
    );
    println!("paper:   1996 / 2105 / 2318 kGE vs 1640 kGE baseline\n");
}

fn bench(c: &mut Criterion) {
    print_table2();
    c.bench_function("area_model_eval", |b| {
        let m = AreaModel::calibrated();
        b.iter(|| {
            let mut total = 0.0;
            for lanes in [2usize, 4, 8] {
                total += m.arcane(black_box(4), black_box(lanes)).total_um2();
            }
            total
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
