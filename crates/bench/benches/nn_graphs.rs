//! NN layer-graph workloads compiled to kernel chains (`arcane-nn`):
//! the multi-layer evaluation the paper stops short of.
//!
//! Prints the cycle counts of the three graph workloads
//! (depthwise-separable conv, residual bottleneck with requantise
//! fusion, int8 transformer encoder block) across 1/2/4 VPU instances,
//! then runs one criterion point per workload so the perf-smoke
//! baselines cover the graph runtime.

use arcane_core::ArcaneConfig;
use arcane_nn::suite::{self, BuiltGraph};
use arcane_sim::Sew;
use arcane_system::format_phase_split_table;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn cfg(n_vpus: usize) -> ArcaneConfig {
    let mut c = ArcaneConfig::with_lanes(8);
    c.n_vpus = n_vpus;
    c
}

fn graph_table(block: &BuiltGraph) {
    println!("\n== {} (int8, least-dirty) ==", block.name);
    arcane_bench::rule(104);
    let rows: Vec<_> = [1usize, 2, 4]
        .iter()
        .map(|&n_vpus| {
            block
                .run_verified(cfg(n_vpus), n_vpus)
                .split_row(format!("{} x{n_vpus}", block.name))
        })
        .collect();
    print!("{}", format_phase_split_table(&rows));
}

fn sizes() -> (BuiltGraph, BuiltGraph, BuiltGraph) {
    if arcane_bench::fast_mode() {
        (
            suite::depthwise_separable(16, 16, 3, Sew::Byte, 11),
            suite::residual_bottleneck(24, 24, Sew::Byte, 12),
            suite::transformer_block(16, 24, 32, Sew::Byte, 13),
        )
    } else {
        (
            suite::depthwise_separable(32, 32, 3, Sew::Byte, 11),
            suite::residual_bottleneck(48, 48, Sew::Byte, 12),
            suite::transformer_block(32, 48, 64, Sew::Byte, 13),
        )
    }
}

fn bench(c: &mut Criterion) {
    let (dws, res, xfm) = sizes();
    for block in [&dws, &res, &xfm] {
        graph_table(block);
    }
    println!("\nobservation: with this co-simulation model every slice kernel pays the");
    println!("full C-RT preamble on the single eCPU, so splitting small graphs across");
    println!("VPUs buys overlap only once per-kernel compute outweighs ~2k decode");
    println!("cycles — the same bound as the §V-C multi-instance sweep.");
    println!();

    // Criterion probes at fixed small sizes (baseline-tracked).
    let probe_dws = suite::depthwise_separable(12, 12, 3, Sew::Byte, 21);
    let probe_res = suite::residual_bottleneck(16, 16, Sew::Byte, 22);
    let probe_xfm = suite::transformer_block(12, 16, 24, Sew::Byte, 23);
    c.bench_function("nn_depthwise_separable_12x12_int8", |b| {
        b.iter(|| black_box(&probe_dws).run_verified(cfg(4), 1).cycles)
    });
    c.bench_function("nn_residual_bottleneck_16x16_int8", |b| {
        b.iter(|| black_box(&probe_res).run_verified(cfg(4), 2).cycles)
    });
    c.bench_function("nn_transformer_block_t12_d16_int8", |b| {
        b.iter(|| black_box(&probe_xfm).run_verified(cfg(4), 4).cycles)
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
