//! Figure 4 — speedup of the single-instance ARCANE configurations and
//! of the CV32E40PX (XCVPULP) baseline over the scalar CV32E40X, for
//! every filter size, input size and data width. Every number comes
//! from executing the corresponding machine code on the simulator.

use arcane_system::driver::{run_arcane_conv, run_scalar_conv, run_xcvpulp_conv};
use arcane_system::ConvLayerParams;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn print_fig4() {
    println!("\n== Figure 4: speedup over CV32E40X (3-ch conv layer) ==");
    for sew in arcane_bench::sweep_widths() {
        for k in arcane_bench::sweep_filters() {
            println!("\n-- {k}x{k} filter, {sew} --");
            arcane_bench::rule(78);
            println!(
                "{:>6} {:>14} {:>10} {:>10} {:>10} {:>10}",
                "input", "scalar cyc", "XCVPULP", "ARCANE-2", "ARCANE-4", "ARCANE-8"
            );
            arcane_bench::rule(78);
            for size in arcane_bench::sweep_sizes() {
                if size <= k {
                    continue;
                }
                let p = ConvLayerParams::new(size, size, k, sew);
                let s = run_scalar_conv(&p);
                let v = run_xcvpulp_conv(&p);
                let a2 = run_arcane_conv(2, &p, 1);
                let a4 = run_arcane_conv(4, &p, 1);
                let a8 = run_arcane_conv(8, &p, 1);
                println!(
                    "{size:>6} {:>14} {:>9.2}x {:>9.2}x {:>9.2}x {:>9.2}x",
                    arcane_bench::fmt_cycles(s.cycles),
                    v.speedup_over(&s),
                    a2.speedup_over(&s),
                    a4.speedup_over(&s),
                    a8.speedup_over(&s),
                );
            }
        }
    }
    println!();
    println!("paper anchors: XCVPULP peaks at 8.6x; ARCANE-8 at 256x256 int8 reaches 30x (3x3)");
    println!("and 84x (7x7, conclusion); XCVPULP outperforms ARCANE at small inputs; 2-lane");
    println!("saturates earliest. See EXPERIMENTS.md for the paper-vs-measured discussion.\n");
}

fn bench(c: &mut Criterion) {
    print_fig4();
    let p = arcane_bench::probe_params();
    c.bench_function("scalar_conv_32x32_int8", |b| {
        b.iter(|| run_scalar_conv(black_box(&p)).cycles)
    });
    c.bench_function("xcvpulp_conv_32x32_int8", |b| {
        b.iter(|| run_xcvpulp_conv(black_box(&p)).cycles)
    });
    c.bench_function("arcane8_conv_32x32_int8", |b| {
        b.iter(|| run_arcane_conv(8, black_box(&p), 1).cycles)
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
