//! Figure 2 — area split of X-HEEP + ARCANE (4-lane) versus
//! X-HEEP + standard data LLC, regenerated from the area model.

use arcane_area::{AreaModel, Component};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn print_split(name: &str, parts: &[(Component, f64, usize)], total: f64) {
    println!("\n{name} — {:.2} mm^2", total / 1e6);
    arcane_bench::rule(46);
    for (c, area, n) in parts {
        let share = 100.0 * area * *n as f64 / total;
        let label = if *n > 1 {
            format!("{} x{}", c.label(), n)
        } else {
            c.label().to_owned()
        };
        println!("  {label:<24} {share:>5.1} %");
    }
}

fn print_fig2() {
    let m = AreaModel::calibrated();
    println!("\n== Figure 2: area split, 128 KiB LLC configurations ==");
    let b = m.baseline_xheep();
    print_split(&b.name, &b.parts, b.total_um2());
    let a = m.arcane(4, 4);
    print_split(&a.name, &a.parts, a.total_um2());
    println!();
    println!(
        "check: vector subsystems {:.1} % of ARCANE total (paper: 4 x 22 % of the LLC subsystem)",
        a.share(Component::VecSubsys)
    );
    println!(
        "check: cache control logic {:.1} % of total (paper: < 4 %)\n",
        a.share(Component::LlcCtl) + a.share(Component::ECpuSubsys)
    );
}

fn bench(c: &mut Criterion) {
    print_fig2();
    c.bench_function("area_split_eval", |b| {
        let m = AreaModel::calibrated();
        b.iter(|| {
            let a = m.arcane(black_box(4), black_box(4));
            a.share(Component::VecSubsys)
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
