//! §V-C — comparison with the state of the art: peak throughput and
//! area efficiency versus BLADE and Intel CNC, plus the multi-instance
//! (4 VPUs × 8 lanes) speedup measurement.

use arcane_area::{peak_gops, AreaModel, BLADE, INTEL_CNC};
use arcane_sim::Sew;
use arcane_system::driver::{run_arcane_conv, run_scalar_conv, run_xcvpulp_conv};
use arcane_system::ConvLayerParams;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn print_peak_comparison() {
    println!("\n== Section V-C: state-of-the-art comparison ==");
    let m = AreaModel::calibrated();
    let arcane_area = m.arcane(4, 8).total_um2();
    let arcane_gops = peak_gops(4, 8, 265.0);
    arcane_bench::rule(78);
    println!(
        "{:<12} {:>12} {:>10} {:>14}  flexibility",
        "system", "area [um^2]", "GOPS", "GOPS/mm^2"
    );
    arcane_bench::rule(78);
    println!(
        "{:<12} {:>12.3e} {:>10.1} {:>14.1}  software-extensible matrix ISA",
        "ARCANE",
        arcane_area,
        arcane_gops,
        arcane_gops / (arcane_area / 1e6)
    );
    for p in [BLADE, INTEL_CNC] {
        println!(
            "{:<12} {:>12.3e} {:>10.1} {:>14.1}  {}",
            p.name,
            p.area_um2,
            p.gops,
            p.gops_per_mm2(),
            p.flexibility
        );
    }
    arcane_bench::rule(78);
    println!(
        "ARCANE vs BLADE: {:.1}x throughput (paper 3.2x), {:.2}x area (paper 3.18x)",
        arcane_gops / BLADE.gops,
        arcane_area / BLADE.area_um2
    );
    println!(
        "Intel CNC vs ARCANE: {:.2}x peak throughput (paper 1.47x)",
        INTEL_CNC.gops / arcane_gops
    );
}

fn print_multi_instance() {
    let size = if arcane_bench::fast_mode() { 64 } else { 256 };
    let k = 7;
    let p = ConvLayerParams::new(size, size, k, Sew::Byte);
    println!("\n-- multi-instance mode: {size}x{size} int8, {k}x{k} filter --");
    let s = run_scalar_conv(&p);
    let v = run_xcvpulp_conv(&p);
    let single = run_arcane_conv(8, &p, 1);
    let multi = run_arcane_conv(8, &p, 4);
    arcane_bench::rule(70);
    for r in [&s, &v, &single, &multi] {
        println!(
            "{:<24} {:>14} cycles  {:>8.1}x vs scalar",
            r.label,
            arcane_bench::fmt_cycles(r.cycles),
            r.speedup_over(&s)
        );
    }
    arcane_bench::rule(70);
    println!(
        "multi-instance gain over single: {:.2}x (paper: 120x/84x = 1.43x; both",
        single.cycles as f64 / multi.cycles as f64
    );
    println!("sub-linear — the shared DMA channel and eCPU bound the scaling).");
    println!(
        "conclusion anchors: ARCANE-8 7x7 int8 = {:.1}x vs scalar (paper 84x), {:.1}x vs",
        single.speedup_over(&s),
        s.cycles as f64 / single.cycles as f64 / (s.cycles as f64 / v.cycles as f64)
    );
    println!("XCVPULP (paper 16x).\n");
}

fn bench(c: &mut Criterion) {
    print_peak_comparison();
    print_multi_instance();
    let p = ConvLayerParams::new(32, 32, 3, Sew::Byte);
    c.bench_function("arcane8_multi_instance_32x32", |b| {
        b.iter(|| run_arcane_conv(8, black_box(&p), 4).cycles)
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
