//! Fabric-arbitration ablation (DESIGN.md §4.5): the §V-C
//! multi-instance band re-validated with the shared-path serialisation
//! artefact removed.
//!
//! Under the legacy `whole-phase` arbiter every DMA transaction books
//! one contiguous window and every vector instruction costs exclusive
//! eCPU cycles, so multi-instance scaling flattens at 2 VPUs (the
//! plateau ROADMAP calls out). The burst arbiters decompose the same
//! traffic into line-sized bursts that interleave across ports and
//! stream dispatch descriptors to per-VPU sequencers — the 4-VPU
//! configuration then beats the 2-VPU one, which is the paper's own
//! multi-instance claim (120× multi vs 84× single).
//!
//! Three tables:
//! 1. arbiter × VPU count on the 7×7 int8 conv (vs the scalar core);
//! 2. fabric geometry (`bytes_per_cycle` × `banks`) under
//!    round-robin-burst — the DMA-bandwidth ablation as a fabric
//!    configuration;
//! 3. per-channel utilisation of the 4-VPU run under both arbiters.

use arcane_core::ArcaneConfig;
use arcane_fabric::ArbiterKind;
use arcane_sim::Sew;
use arcane_system::driver::{run_arcane_conv_with, run_scalar_conv};
use arcane_system::{format_channel_table, ConvLayerParams};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn conv_size() -> usize {
    if arcane_bench::fast_mode() {
        32
    } else {
        128
    }
}

fn cfg_with(arbiter: ArbiterKind, n_vpus: usize) -> ArcaneConfig {
    let mut cfg = ArcaneConfig::with_lanes(8);
    cfg.n_vpus = n_vpus;
    cfg.fabric.arbiter = arbiter;
    cfg
}

fn multi_instance_table() {
    let size = conv_size();
    println!("\n== Fabric arbitration x VPU count ({size}x{size} int8, 7x7) ==");
    arcane_bench::rule(78);
    println!(
        "{:>20} {:>6} {:>16} {:>12} {:>14}",
        "arbiter", "VPUs", "total cycles", "vs scalar", "4v/2v ratio"
    );
    arcane_bench::rule(78);
    let p = ConvLayerParams::new(size, size, 7, Sew::Byte);
    let s = run_scalar_conv(&p);
    for arbiter in ArbiterKind::ALL {
        let mut cycles = Vec::new();
        for n_vpus in [1usize, 2, 4] {
            let r = run_arcane_conv_with(cfg_with(arbiter, n_vpus), &p, n_vpus);
            let ratio = if n_vpus == 4 {
                format!("{:>13.2}x", cycles[1] as f64 / r.cycles as f64)
            } else {
                String::new()
            };
            println!(
                "{:>20} {n_vpus:>6} {:>16} {:>11.1}x {:>14}",
                arbiter.name(),
                arcane_bench::fmt_cycles(r.cycles),
                r.speedup_over(&s),
                ratio
            );
            cycles.push(r.cycles);
        }
        arcane_bench::rule(78);
    }
    println!("whole-phase reproduces the committed plateau (4 VPUs ≈ 2 VPUs): the");
    println!("serialisation is whole-window booking on the shared path, not compute.");
    println!("The burst arbiters remove the artefact and 4 VPUs pull ahead of 2.");
}

fn fabric_geometry_table() {
    let size = if arcane_bench::fast_mode() { 32 } else { 64 };
    println!("\n== Fabric geometry under round-robin-burst ({size}x{size} int8 7x7, 4 VPUs) ==");
    arcane_bench::rule(64);
    println!(
        "{:>14} {:>8} {:>16} {:>12}",
        "bytes/cycle", "banks", "total cycles", "wait cyc"
    );
    arcane_bench::rule(64);
    let p = ConvLayerParams::new(size, size, 7, Sew::Byte);
    for bw in [2u64, 4, 8] {
        for banks in [1usize, 2, 4] {
            let mut cfg = cfg_with(ArbiterKind::RoundRobinBurst, 4);
            cfg.fabric.bytes_per_cycle = bw;
            cfg.fabric.banks = banks;
            let r = run_arcane_conv_with(cfg, &p, 4);
            let wait: u64 = r.channels.iter().map(|c| c.wait_cycles).sum();
            println!(
                "{bw:>14} {banks:>8} {:>16} {:>12}",
                arcane_bench::fmt_cycles(r.cycles),
                arcane_bench::fmt_cycles(wait)
            );
        }
    }
    println!("wider buses shrink every burst; extra banks only help while port");
    println!("streams actually collide (the wait column, not the total, collapses).");
}

fn port_utilisation_table() {
    let size = if arcane_bench::fast_mode() { 32 } else { 64 };
    let p = ConvLayerParams::new(size, size, 7, Sew::Byte);
    for arbiter in [ArbiterKind::WholePhase, ArbiterKind::RoundRobinBurst] {
        let r = run_arcane_conv_with(cfg_with(arbiter, 4), &p, 4);
        println!(
            "\n-- per-channel utilisation, 4 VPUs, {} ({size}x{size} int8 7x7) --",
            arbiter.name()
        );
        print!("{}", format_channel_table(&r.channels));
    }
    println!("\nunder whole-phase the eCPU carries every vector instruction (high ecpu");
    println!("busy, idle fabric ports); the burst arbiters move dispatch onto the");
    println!("per-VPU ports and the eCPU drops to preamble work.");
}

fn bench(c: &mut Criterion) {
    multi_instance_table();
    fabric_geometry_table();
    port_utilisation_table();
    let p = ConvLayerParams::new(32, 32, 7, Sew::Byte);
    c.bench_function("fabric_whole_phase_x4_32x32", |b| {
        let cfg = cfg_with(ArbiterKind::WholePhase, 4);
        b.iter(|| run_arcane_conv_with(black_box(cfg), &p, 4).cycles)
    });
    c.bench_function("fabric_rr_burst_x4_32x32", |b| {
        let cfg = cfg_with(ArbiterKind::RoundRobinBurst, 4);
        b.iter(|| run_arcane_conv_with(black_box(cfg), &p, 4).cycles)
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
