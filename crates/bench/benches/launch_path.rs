//! Launch-pipeline ablation (DESIGN.md §4.6): the legacy
//! per-instruction `xmr`/`xmkN` path against the batched
//! launch-descriptor pipeline, across 1/2/4-way multi-VPU graph
//! splitting on the transformer-encoder workload.
//!
//! The table is machine-generated from `GraphRunReport::split_row`
//! (the same rows EXPERIMENTS.md tabulates): in legacy mode every
//! slice kernel pays the full C-RT preamble on the single eCPU and
//! splitting *inflates* total cycles; under descriptor batches the
//! batch is decoded once and replayed per slice, so 2/4-way splitting
//! becomes a net win.

use arcane_core::ArcaneConfig;
use arcane_nn::{suite, CompileOptions, LaunchMode};
use arcane_sim::Sew;
use arcane_system::format_phase_split_table;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn opts(launch: LaunchMode, instances: usize) -> CompileOptions {
    match launch {
        LaunchMode::Legacy => CompileOptions::with_instances(instances),
        LaunchMode::Descriptor => CompileOptions::descriptor(instances),
    }
}

fn cfg(n_vpus: usize) -> ArcaneConfig {
    let mut c = ArcaneConfig::with_lanes(8);
    c.n_vpus = n_vpus;
    c
}

fn launch_table() {
    let (t, d, f) = if arcane_bench::fast_mode() {
        (12, 16, 24)
    } else {
        (32, 48, 64)
    };
    let xfm = suite::transformer_block(t, d, f, Sew::Byte, 13);
    println!("\n== Launch pipeline: legacy vs descriptor (transformer T={t} D={d} F={f}, int8) ==");
    arcane_bench::rule(104);
    let mut rows = Vec::new();
    let mut ecpu_busy = Vec::new();
    for launch in LaunchMode::ALL {
        for n_vpus in [1usize, 2, 4] {
            let r = xfm.run_verified_with(cfg(n_vpus), &opts(launch, n_vpus));
            let ecpu = &r.channels[0];
            ecpu_busy.push(format!(
                "{launch} x{n_vpus}: eCPU {:>4.1}% busy, {} batches, {} bindings",
                100.0 * ecpu.occupancy(),
                r.launch_stats.batches,
                r.launch_stats.bindings,
            ));
            rows.push(r.split_row(format!("transformer x{n_vpus} / {launch}")));
        }
    }
    print!("{}", format_phase_split_table(&rows));
    arcane_bench::rule(104);
    for line in &ecpu_busy {
        println!("  {line}");
    }
    println!("observation: legacy splitting is preamble-bound on the single eCPU (total");
    println!("cycles rise with the split). Descriptor batches amortise the preamble —");
    println!("one batch entry per node, a table-walk per slice — so the split overlaps");
    println!("on the VPUs and 2/4-way becomes a net win, with the residual eCPU decode");
    println!("cost visible in the decode-cycles column.");
}

fn bench(c: &mut Criterion) {
    launch_table();

    // Criterion probes at a fixed small size (baseline-tracked by the
    // perf-smoke job).
    let probe = suite::transformer_block(12, 16, 24, Sew::Byte, 13);
    c.bench_function("launch_legacy_xfm_x4", |b| {
        b.iter(|| {
            black_box(&probe)
                .run_verified_with(cfg(4), &CompileOptions::with_instances(4))
                .cycles
        })
    });
    c.bench_function("launch_descriptor_xfm_x4", |b| {
        b.iter(|| {
            black_box(&probe)
                .run_verified_with(cfg(4), &CompileOptions::descriptor(4))
                .cycles
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
