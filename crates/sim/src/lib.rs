//! Simulation primitives shared by every ARCANE component model.
//!
//! This crate provides the small vocabulary used throughout the
//! reproduction of the ARCANE paper (DAC 2025):
//!
//! * [`Clock`] — a monotonic cycle counter shared by co-simulated
//!   components (host CPU, eCPU runtime, DMA, VPUs).
//! * [`Phase`] / [`PhaseBreakdown`] — the four kernel execution phases the
//!   paper's Figure 3 decomposes (*preamble*, *allocation*, *compute*,
//!   *writeback*).
//! * [`Sew`] — selected element width of a vector/matrix operand
//!   (the `.b` / `.h` / `.w` suffix of the `xmnmc` instructions).
//! * [`Counter`] and [`CacheStats`] — lightweight event statistics.
//! * [`EngineMode`] — selects the host-core execution engine (predecoded
//!   block stepping by default, `ARCANE_INTERP=1` for the reference
//!   interpreter).
//!
//! # Examples
//!
//! ```
//! use arcane_sim::{Clock, Phase, PhaseBreakdown};
//!
//! let mut clk = Clock::new();
//! clk.advance(10);
//! let mut phases = PhaseBreakdown::default();
//! phases.charge(Phase::Preamble, 10);
//! assert_eq!(clk.now(), 10);
//! assert_eq!(phases.total(), 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod engine;
mod phase;
mod stats;

pub use clock::Clock;
pub use engine::EngineMode;
pub use phase::{Phase, PhaseBreakdown};
pub use stats::{CacheStats, ChannelUtil, Counter, LaunchStats};

use std::fmt;

/// Selected element width (SEW) of a matrix/vector operand.
///
/// Mirrors the `.w` / `.h` / `.b` width suffixes of the `xmnmc` extension
/// (32-, 16- and 8-bit integers respectively). The VPU lanes are 32 bits
/// wide and use sub-word SIMD for the narrower widths, which is where the
/// paper's 8-bit throughput advantage comes from.
///
/// # Examples
///
/// ```
/// use arcane_sim::Sew;
/// assert_eq!(Sew::Byte.bytes(), 1);
/// assert_eq!(Sew::Word.elems_per_lane(), 1);
/// assert_eq!(Sew::Byte.elems_per_lane(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Sew {
    /// 8-bit elements (`.b` suffix, `int8`).
    Byte,
    /// 16-bit elements (`.h` suffix, `int16`).
    Half,
    /// 32-bit elements (`.w` suffix, `int32`).
    Word,
}

impl Sew {
    /// Size of one element in bytes.
    pub const fn bytes(self) -> usize {
        match self {
            Sew::Byte => 1,
            Sew::Half => 2,
            Sew::Word => 4,
        }
    }

    /// Number of elements processed per 32-bit lane per cycle
    /// (sub-word SIMD packing factor).
    pub const fn elems_per_lane(self) -> usize {
        4 / self.bytes()
    }

    /// All widths, widest first (iteration helper for sweeps).
    pub const ALL: [Sew; 3] = [Sew::Word, Sew::Half, Sew::Byte];

    /// Conventional C-type name (`int8`/`int16`/`int32`), used in reports.
    pub const fn c_name(self) -> &'static str {
        match self {
            Sew::Byte => "int8",
            Sew::Half => "int16",
            Sew::Word => "int32",
        }
    }

    /// Instruction suffix letter used by the `xmnmc` mnemonics.
    pub const fn suffix(self) -> char {
        match self {
            Sew::Byte => 'b',
            Sew::Half => 'h',
            Sew::Word => 'w',
        }
    }

    /// Decodes the 2-bit width field used by the `xmnmc` encodings.
    pub const fn from_bits(bits: u8) -> Option<Sew> {
        match bits {
            0 => Some(Sew::Word),
            1 => Some(Sew::Half),
            2 => Some(Sew::Byte),
            _ => None,
        }
    }

    /// Encodes this width into the 2-bit field used by the `xmnmc` encodings.
    pub const fn to_bits(self) -> u8 {
        match self {
            Sew::Word => 0,
            Sew::Half => 1,
            Sew::Byte => 2,
        }
    }
}

impl fmt::Display for Sew {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.c_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sew_roundtrip() {
        for sew in Sew::ALL {
            assert_eq!(Sew::from_bits(sew.to_bits()), Some(sew));
        }
        assert_eq!(Sew::from_bits(3), None);
    }

    #[test]
    fn sew_packing() {
        assert_eq!(Sew::Byte.elems_per_lane(), 4);
        assert_eq!(Sew::Half.elems_per_lane(), 2);
        assert_eq!(Sew::Word.elems_per_lane(), 1);
    }

    #[test]
    fn sew_display() {
        assert_eq!(Sew::Word.to_string(), "int32");
        assert_eq!(Sew::Byte.suffix(), 'b');
    }
}
