//! Lightweight event statistics used by the memory-system models.

use std::fmt;

/// A saturating event counter.
///
/// # Examples
///
/// ```
/// use arcane_sim::Counter;
/// let mut c = Counter::new();
/// c.incr();
/// c.add(4);
/// assert_eq!(c.get(), 5);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter at zero.
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Increments by one.
    #[inline]
    pub fn incr(&mut self) {
        self.0 = self.0.saturating_add(1);
    }

    /// Adds `n` events.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 = self.0.saturating_add(n);
    }

    /// Current count.
    pub const fn get(&self) -> u64 {
        self.0
    }

    /// Resets to zero.
    pub fn reset(&mut self) {
        self.0 = 0;
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// Hit/miss/writeback statistics for a cache model.
///
/// # Examples
///
/// ```
/// use arcane_sim::CacheStats;
/// let mut s = CacheStats::default();
/// s.hits.add(9);
/// s.misses.incr();
/// assert!((s.hit_rate() - 0.9).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses resolved within the cache.
    pub hits: Counter,
    /// Accesses requiring a line refill.
    pub misses: Counter,
    /// Dirty lines written back to backing memory.
    pub writebacks: Counter,
    /// Accesses stalled by a lock or a busy-computing line.
    pub stalls: Counter,
    /// Total cycles spent stalled.
    pub stall_cycles: Counter,
}

impl CacheStats {
    /// Total number of accesses observed.
    pub fn accesses(&self) -> u64 {
        self.hits.get() + self.misses.get()
    }

    /// Hit rate in `[0, 1]`; zero when no accesses were recorded.
    pub fn hit_rate(&self) -> f64 {
        let n = self.accesses();
        if n == 0 {
            0.0
        } else {
            self.hits.get() as f64 / n as f64
        }
    }

    /// Clears every counter.
    pub fn reset(&mut self) {
        *self = CacheStats::default();
    }
}

/// Counters of the descriptor launch pipeline over a run: how many
/// batches the eCPU decoded, how many kernel launches they carried,
/// and what the decode work cost — the "decode" column of the
/// per-kernel preamble/compute/decode split. All zero on the legacy
/// per-instruction launch path.
///
/// # Examples
///
/// ```
/// use arcane_sim::LaunchStats;
/// let mut s = LaunchStats::default();
/// s.batches += 1;
/// s.descriptors += 4;
/// assert!((s.descriptors_per_batch() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LaunchStats {
    /// Descriptor batches fetched and decoded.
    pub batches: u64,
    /// Launch descriptors replayed (= kernels launched through the
    /// batched pipeline).
    pub descriptors: u64,
    /// Fresh operand bindings the descriptors installed.
    pub bindings: u64,
    /// Encoded batch bytes carried over the fabric to the decoder.
    pub batch_bytes: u64,
    /// eCPU cycles spent in batch entry + descriptor replay (the
    /// amortised successor of the legacy per-kernel preamble).
    pub decode_cycles: u64,
}

impl LaunchStats {
    /// Mean descriptors per batch (zero when no batch ran).
    pub fn descriptors_per_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.descriptors as f64 / self.batches as f64
        }
    }
}

/// Utilisation of one shared channel or fabric port over a run: how
/// many cycles it was busy, how long its clients waited for grants,
/// and what fraction of the run it was occupied.
///
/// # Examples
///
/// ```
/// use arcane_sim::ChannelUtil;
/// let u = ChannelUtil { label: "dma".into(), busy_cycles: 250,
///                       wait_cycles: 50, requests: 10, horizon: 1000 };
/// assert!((u.occupancy() - 0.25).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelUtil {
    /// Channel/port name (`ecpu`, `host`, `vpu0`, …).
    pub label: String,
    /// Cycles the channel was booked busy.
    pub busy_cycles: u64,
    /// Cycles clients waited beyond their service time.
    pub wait_cycles: u64,
    /// Transactions issued through the channel.
    pub requests: u64,
    /// Run length the occupancy is measured against.
    pub horizon: u64,
}

impl ChannelUtil {
    /// Busy fraction of the horizon in `[0, 1]` (zero when the horizon
    /// is empty).
    pub fn occupancy(&self) -> f64 {
        if self.horizon == 0 {
            0.0
        } else {
            self.busy_cycles as f64 / self.horizon as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_util_occupancy_handles_empty_horizon() {
        let u = ChannelUtil {
            label: "x".into(),
            busy_cycles: 5,
            wait_cycles: 0,
            requests: 1,
            horizon: 0,
        };
        assert_eq!(u.occupancy(), 0.0);
    }

    #[test]
    fn counter_saturates() {
        let mut c = Counter::new();
        c.add(u64::MAX);
        c.incr();
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn hit_rate_empty_is_zero() {
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn reset_clears_all() {
        let mut s = CacheStats::default();
        s.hits.add(3);
        s.stall_cycles.add(100);
        s.reset();
        assert_eq!(s.accesses(), 0);
        assert_eq!(s.stall_cycles.get(), 0);
    }
}
