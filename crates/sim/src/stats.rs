//! Lightweight event statistics used by the memory-system models.

use std::fmt;

/// A saturating event counter.
///
/// # Examples
///
/// ```
/// use arcane_sim::Counter;
/// let mut c = Counter::new();
/// c.incr();
/// c.add(4);
/// assert_eq!(c.get(), 5);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter at zero.
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Increments by one.
    #[inline]
    pub fn incr(&mut self) {
        self.0 = self.0.saturating_add(1);
    }

    /// Adds `n` events.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 = self.0.saturating_add(n);
    }

    /// Current count.
    pub const fn get(&self) -> u64 {
        self.0
    }

    /// Resets to zero.
    pub fn reset(&mut self) {
        self.0 = 0;
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// Hit/miss/writeback statistics for a cache model.
///
/// # Examples
///
/// ```
/// use arcane_sim::CacheStats;
/// let mut s = CacheStats::default();
/// s.hits.add(9);
/// s.misses.incr();
/// assert!((s.hit_rate() - 0.9).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses resolved within the cache.
    pub hits: Counter,
    /// Accesses requiring a line refill.
    pub misses: Counter,
    /// Dirty lines written back to backing memory.
    pub writebacks: Counter,
    /// Accesses stalled by a lock or a busy-computing line.
    pub stalls: Counter,
    /// Total cycles spent stalled.
    pub stall_cycles: Counter,
}

impl CacheStats {
    /// Total number of accesses observed.
    pub fn accesses(&self) -> u64 {
        self.hits.get() + self.misses.get()
    }

    /// Hit rate in `[0, 1]`; zero when no accesses were recorded.
    pub fn hit_rate(&self) -> f64 {
        let n = self.accesses();
        if n == 0 {
            0.0
        } else {
            self.hits.get() as f64 / n as f64
        }
    }

    /// Clears every counter.
    pub fn reset(&mut self) {
        *self = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_saturates() {
        let mut c = Counter::new();
        c.add(u64::MAX);
        c.incr();
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn hit_rate_empty_is_zero() {
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn reset_clears_all() {
        let mut s = CacheStats::default();
        s.hits.add(3);
        s.stall_cycles.add(100);
        s.reset();
        assert_eq!(s.accesses(), 0);
        assert_eq!(s.stall_cycles.get(), 0);
    }
}
