//! Execution-engine selection for the instruction-set simulators.
//!
//! Every SoC model runs its host core through the predecoded
//! block-stepping engine by default; setting `ARCANE_INTERP=1` in the
//! environment forces the original fetch-decode-execute interpreter.
//! The two engines produce bit- and cycle-identical results (enforced by
//! the differential tests in `crates/rv32/tests`); the escape hatch
//! exists so any future divergence can be bisected from the command
//! line without rebuilding.

use std::sync::OnceLock;

/// Which execution engine a core uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EngineMode {
    /// Predecoded basic-block stepping with a PC-keyed block cache.
    #[default]
    Block,
    /// The per-instruction fetch-decode-execute reference interpreter.
    Interp,
}

impl EngineMode {
    /// Reads the mode from the `ARCANE_INTERP` environment variable
    /// (set and not `"0"` → [`EngineMode::Interp`]).
    pub fn from_env() -> Self {
        match std::env::var_os("ARCANE_INTERP") {
            Some(v) if v != "0" => EngineMode::Interp,
            _ => EngineMode::Block,
        }
    }

    /// The process-wide mode, resolved from the environment once on
    /// first use (benches and examples pick the engine purely through
    /// `ARCANE_INTERP`). Tests that need both engines in one process
    /// should pass a mode explicitly instead of mutating the
    /// environment.
    pub fn current() -> Self {
        static MODE: OnceLock<EngineMode> = OnceLock::new();
        *MODE.get_or_init(EngineMode::from_env)
    }

    /// Short label used in reports and logs.
    pub const fn label(self) -> &'static str {
        match self {
            EngineMode::Block => "block",
            EngineMode::Interp => "interp",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_block() {
        assert_eq!(EngineMode::default(), EngineMode::Block);
        assert_eq!(EngineMode::Block.label(), "block");
        assert_eq!(EngineMode::Interp.label(), "interp");
    }

    #[test]
    fn current_is_stable() {
        assert_eq!(EngineMode::current(), EngineMode::current());
    }
}
