//! Kernel execution phase accounting (the decomposition of the paper's
//! Figure 3: preamble / allocation / compute / writeback).

use std::fmt;
use std::ops::{Add, AddAssign};

/// One of the four kernel execution phases distinguished by the paper.
///
/// * `Preamble` — software decoding of the offloaded instruction, matrix
///   reservations (`xmr`) and scheduling work performed by the C-RT.
/// * `Allocation` — 2-D DMA transfers placing operand tiles into the
///   selected VPU's cache lines, plus lock management.
/// * `Compute` — vector micro-program execution on the VPU (including the
///   eCPU issue overhead for each vector instruction).
/// * `Writeback` — consolidation of the destination matrix back into a
///   contiguous array and AT/cache state release.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Software decode + reservation + scheduling.
    Preamble,
    /// Operand tile DMA-in.
    Allocation,
    /// Vector kernel execution.
    Compute,
    /// Result DMA-out and release.
    Writeback,
}

impl Phase {
    /// All phases in pipeline order.
    pub const ALL: [Phase; 4] = [
        Phase::Preamble,
        Phase::Allocation,
        Phase::Compute,
        Phase::Writeback,
    ];

    /// Short lowercase label used in reports and bench output.
    pub const fn label(self) -> &'static str {
        match self {
            Phase::Preamble => "preamble",
            Phase::Allocation => "allocation",
            Phase::Compute => "compute",
            Phase::Writeback => "writeback",
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Cycle totals for each kernel execution phase.
///
/// # Examples
///
/// ```
/// use arcane_sim::{Phase, PhaseBreakdown};
/// let mut b = PhaseBreakdown::default();
/// b.charge(Phase::Compute, 80);
/// b.charge(Phase::Allocation, 20);
/// assert_eq!(b.total(), 100);
/// assert!((b.share(Phase::Compute) - 0.8).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseBreakdown {
    /// Cycles spent in the preamble phase.
    pub preamble: u64,
    /// Cycles spent in the allocation phase.
    pub allocation: u64,
    /// Cycles spent in the compute phase.
    pub compute: u64,
    /// Cycles spent in the writeback phase.
    pub writeback: u64,
}

impl PhaseBreakdown {
    /// A breakdown with all phases at zero cycles.
    pub const fn new() -> Self {
        PhaseBreakdown {
            preamble: 0,
            allocation: 0,
            compute: 0,
            writeback: 0,
        }
    }

    /// Adds `cycles` to the given phase.
    pub fn charge(&mut self, phase: Phase, cycles: u64) {
        *self.get_mut(phase) += cycles;
    }

    /// Cycles recorded for `phase`.
    pub const fn get(&self, phase: Phase) -> u64 {
        match phase {
            Phase::Preamble => self.preamble,
            Phase::Allocation => self.allocation,
            Phase::Compute => self.compute,
            Phase::Writeback => self.writeback,
        }
    }

    fn get_mut(&mut self, phase: Phase) -> &mut u64 {
        match phase {
            Phase::Preamble => &mut self.preamble,
            Phase::Allocation => &mut self.allocation,
            Phase::Compute => &mut self.compute,
            Phase::Writeback => &mut self.writeback,
        }
    }

    /// Sum of all phases.
    pub const fn total(&self) -> u64 {
        self.preamble + self.allocation + self.compute + self.writeback
    }

    /// Fraction of the total spent in `phase` (0.0 when the total is zero).
    pub fn share(&self, phase: Phase) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.get(phase) as f64 / total as f64
        }
    }

    /// Fraction of the total spent outside the compute phase.
    pub fn overhead_share(&self) -> f64 {
        1.0 - self.share(Phase::Compute)
    }
}

impl Add for PhaseBreakdown {
    type Output = PhaseBreakdown;

    fn add(mut self, rhs: PhaseBreakdown) -> PhaseBreakdown {
        self += rhs;
        self
    }
}

impl AddAssign for PhaseBreakdown {
    fn add_assign(&mut self, rhs: PhaseBreakdown) {
        self.preamble += rhs.preamble;
        self.allocation += rhs.allocation;
        self.compute += rhs.compute;
        self.writeback += rhs.writeback;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_and_total() {
        let mut b = PhaseBreakdown::new();
        for (i, p) in Phase::ALL.iter().enumerate() {
            b.charge(*p, (i as u64 + 1) * 10);
        }
        assert_eq!(b.total(), 10 + 20 + 30 + 40);
        assert_eq!(b.get(Phase::Writeback), 40);
    }

    #[test]
    fn shares_sum_to_one() {
        let mut b = PhaseBreakdown::new();
        b.charge(Phase::Preamble, 1);
        b.charge(Phase::Allocation, 2);
        b.charge(Phase::Compute, 3);
        b.charge(Phase::Writeback, 4);
        let s: f64 = Phase::ALL.iter().map(|p| b.share(*p)).sum();
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_breakdown_has_zero_shares() {
        let b = PhaseBreakdown::default();
        assert_eq!(b.share(Phase::Compute), 0.0);
        assert_eq!(b.total(), 0);
    }

    #[test]
    fn addition_accumulates() {
        let mut a = PhaseBreakdown::new();
        a.charge(Phase::Compute, 5);
        let mut b = PhaseBreakdown::new();
        b.charge(Phase::Compute, 7);
        b.charge(Phase::Preamble, 1);
        let c = a + b;
        assert_eq!(c.compute, 12);
        assert_eq!(c.preamble, 1);
    }
}
