//! Monotonic cycle counter shared by co-simulated components.

/// A monotonic simulation clock counting elapsed hardware cycles.
///
/// ARCANE co-simulates several agents (host CPU, bridge, eCPU runtime,
/// DMA engine, VPUs). Each agent charges the cycles it consumes to a
/// shared `Clock`; agents that run concurrently instead compute a
/// *completion time* and use [`Clock::advance_to`] to synchronise.
///
/// # Examples
///
/// ```
/// use arcane_sim::Clock;
/// let mut clk = Clock::new();
/// clk.advance(5);
/// clk.advance_to(3); // already past 3: no-op
/// assert_eq!(clk.now(), 5);
/// clk.advance_to(9);
/// assert_eq!(clk.now(), 9);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Clock {
    now: u64,
}

impl Clock {
    /// Creates a clock at cycle zero.
    pub const fn new() -> Self {
        Clock { now: 0 }
    }

    /// Current simulation time in cycles.
    pub const fn now(&self) -> u64 {
        self.now
    }

    /// Advances the clock by `cycles`.
    pub fn advance(&mut self, cycles: u64) {
        self.now += cycles;
    }

    /// Advances the clock to absolute time `t` if `t` is in the future;
    /// does nothing otherwise (time never moves backwards).
    pub fn advance_to(&mut self, t: u64) {
        if t > self.now {
            self.now = t;
        }
    }

    /// Resets the clock to cycle zero.
    pub fn reset(&mut self) {
        self.now = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_monotonically() {
        let mut c = Clock::new();
        c.advance(7);
        assert_eq!(c.now(), 7);
        c.advance_to(4);
        assert_eq!(c.now(), 7, "advance_to must never rewind");
        c.advance_to(20);
        assert_eq!(c.now(), 20);
    }

    #[test]
    fn reset_returns_to_zero() {
        let mut c = Clock::new();
        c.advance(100);
        c.reset();
        assert_eq!(c.now(), 0);
    }
}
