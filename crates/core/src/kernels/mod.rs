//! The user-configurable kernel library of the C-RT (paper §IV-B).
//!
//! Every complex `xmkN` instruction resolves, through an O(1) table
//! lookup on `func5`, to an implementation of the [`Kernel`] trait. The
//! library ships the five kernels of Table I plus three extension
//! kernels (`xmk5`-`xmk7`) and accepts user kernels
//! before "compilation" (here: at construction time), which is the
//! software-defined ISA extensibility the paper advertises.

mod conv;
mod elementwise;
mod gemm;
mod pool;
mod relu;

pub use conv::{Conv2d, ConvLayer3ch};
pub use elementwise::{MatAdd, MatScale, Transpose};
pub use gemm::Gemm;
pub use pool::MaxPool;
pub use relu::LeakyRelu;

use crate::runtime::ctx::KernelCtx;
use crate::runtime::map::MatView;
use arcane_isa::launch::LaunchDecodeError;
use arcane_isa::xmnmc::{kernel_id, MatReg};
use arcane_sim::Sew;
use arcane_vpu::VpuError;
use std::error::Error;
use std::fmt;

/// Fully resolved arguments of one kernel invocation.
#[derive(Debug, Clone, Copy)]
pub struct ResolvedArgs {
    /// Element width of the operation.
    pub width: Sew,
    /// First scalar parameter (kernel-specific meaning).
    pub alpha: i16,
    /// Second scalar parameter (kernel-specific meaning).
    pub beta: i16,
    /// Destination binding.
    pub md: MatView,
    /// First source binding (if the logical register was bound).
    pub ms1: Option<MatView>,
    /// Second source binding.
    pub ms2: Option<MatView>,
    /// Third source binding.
    pub ms3: Option<MatView>,
}

/// Error raised while decoding, validating or executing a kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelError {
    /// `func5` does not name a registered kernel (host receives the
    /// CV-X-IF *kill*).
    UnknownKernel {
        /// The unknown `func5` value.
        id: u8,
    },
    /// A kernel operand names an unbound logical matrix register.
    UnboundMatrix {
        /// The offending register.
        reg: MatReg,
    },
    /// Operand shapes are inconsistent with the kernel contract.
    ShapeMismatch {
        /// Human-readable description of the violated constraint.
        what: &'static str,
    },
    /// A matrix row exceeds the vector length (column tiling is not
    /// implemented; the paper's evaluation stays within one line too).
    RowTooWide {
        /// Row width in elements.
        cols: usize,
        /// Maximum representable width for this element size.
        max: usize,
    },
    /// Operand widths disagree with the instruction width suffix.
    WidthMismatch,
    /// An `xmb` launch-batch failed to decode (descriptor pipeline).
    Launch(LaunchDecodeError),
    /// The VPU rejected a vector instruction (runtime bug).
    Vpu(VpuError),
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::UnknownKernel { id } => write!(f, "no kernel registered for func5={id}"),
            KernelError::UnboundMatrix { reg } => {
                write!(f, "matrix register {reg} has no xmr binding")
            }
            KernelError::ShapeMismatch { what } => write!(f, "operand shape mismatch: {what}"),
            KernelError::RowTooWide { cols, max } => {
                write!(
                    f,
                    "matrix row of {cols} elements exceeds the {max}-element vector"
                )
            }
            KernelError::WidthMismatch => {
                f.write_str("operand width differs from instruction suffix")
            }
            KernelError::Launch(e) => write!(f, "launch-batch decode failed: {e}"),
            KernelError::Vpu(e) => write!(f, "vector unit fault: {e}"),
        }
    }
}

impl Error for KernelError {}

impl From<VpuError> for KernelError {
    fn from(e: VpuError) -> Self {
        KernelError::Vpu(e)
    }
}

/// A complex matrix kernel: the micro-program behind one `xmkN`.
///
/// Implementations validate their operands in [`Kernel::validate`]
/// (the *preamble* of §IV-B1, run in the interrupt handler) and perform
/// the tiled allocate/compute/writeback sequence in [`Kernel::run`].
pub trait Kernel: fmt::Debug + Send {
    /// Kernel mnemonic (e.g. `"gemm"`).
    fn name(&self) -> &'static str;

    /// Validates operand shapes and returns the *source* views the
    /// kernel will read (registered in the Address Table for WAR
    /// protection). The destination is always `args.md`.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError`] when the operands violate the kernel's
    /// contract; the host then receives the CV-X-IF kill.
    fn validate(&self, args: &ResolvedArgs) -> Result<Vec<MatView>, KernelError>;

    /// Executes the kernel on the context's VPU, tile by tile.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError`] on internal faults (these abort the
    /// simulation; real hardware would raise an eCPU exception).
    fn run(&self, args: &ResolvedArgs, ctx: &mut KernelCtx<'_>) -> Result<(), KernelError>;
}

/// The O(1) `func5 → kernel` dispatch table.
pub struct KernelLib {
    slots: [Option<Box<dyn Kernel>>; 31],
}

impl fmt::Debug for KernelLib {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<(usize, &str)> = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|k| (i, k.name())))
            .collect();
        f.debug_struct("KernelLib")
            .field("kernels", &names)
            .finish()
    }
}

impl KernelLib {
    /// An empty library (no kernels registered).
    pub fn empty() -> Self {
        KernelLib {
            slots: std::array::from_fn(|_| None),
        }
    }

    /// The library shipped with the C-RT: the five kernels of Table I
    /// plus the `xmk5`-`xmk7` extensions (add, scale-shift, transpose).
    pub fn builtin() -> Self {
        let mut lib = KernelLib::empty();
        lib.register(kernel_id::GEMM, Box::new(Gemm));
        lib.register(kernel_id::LEAKY_RELU, Box::new(LeakyRelu));
        lib.register(kernel_id::MAXPOOL, Box::new(MaxPool));
        lib.register(kernel_id::CONV2D, Box::new(Conv2d));
        lib.register(kernel_id::CONV_LAYER_3CH, Box::new(ConvLayer3ch));
        lib.register(kernel_id::MAT_ADD, Box::new(MatAdd));
        lib.register(kernel_id::MAT_SCALE, Box::new(MatScale));
        lib.register(kernel_id::TRANSPOSE, Box::new(Transpose));
        lib
    }

    /// Registers (or replaces) the kernel behind `func5 = id`.
    ///
    /// # Panics
    ///
    /// Panics if `id > 30` (`31` encodes `xmr`).
    pub fn register(&mut self, id: u8, kernel: Box<dyn Kernel>) {
        assert!(id <= 30, "kernel ids are 0..=30");
        self.slots[id as usize] = Some(kernel);
    }

    /// Looks up the kernel behind `id`.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::UnknownKernel`] when the slot is empty.
    pub fn get(&self, id: u8) -> Result<&dyn Kernel, KernelError> {
        self.slots
            .get(id as usize)
            .and_then(|s| s.as_deref())
            .ok_or(KernelError::UnknownKernel { id })
    }

    /// Number of registered kernels.
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// `true` when no kernels are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for KernelLib {
    fn default() -> Self {
        KernelLib::builtin()
    }
}

pub(crate) fn require(
    view: Option<MatView>,
    reg_name: &'static str,
) -> Result<MatView, KernelError> {
    view.ok_or(KernelError::ShapeMismatch { what: reg_name })
}

pub(crate) fn check_width(view: &MatView, width: Sew) -> Result<(), KernelError> {
    if view.sew == width {
        Ok(())
    } else {
        Err(KernelError::WidthMismatch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_library_has_table1_kernels() {
        let lib = KernelLib::builtin();
        assert_eq!(lib.len(), 8);
        assert_eq!(lib.get(kernel_id::GEMM).unwrap().name(), "gemm");
        assert_eq!(
            lib.get(kernel_id::CONV_LAYER_3CH).unwrap().name(),
            "conv_layer_3ch"
        );
        assert!(matches!(
            lib.get(9),
            Err(KernelError::UnknownKernel { id: 9 })
        ));
    }

    #[test]
    #[should_panic(expected = "kernel ids are 0..=30")]
    fn registering_reserved_id_panics() {
        KernelLib::empty().register(31, Box::new(Gemm));
    }
}
