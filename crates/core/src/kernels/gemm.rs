//! `xmk0` — General Matrix Multiplication.

use super::{check_width, require, Kernel, KernelError, ResolvedArgs};
use crate::runtime::ctx::KernelCtx;
use crate::runtime::map::MatView;
use arcane_isa::vector::{Sr, VInstr, VOp, Vr};

fn vr(i: usize) -> Vr {
    Vr::new(i as u8).expect("vreg index in range")
}

fn sr(i: u8) -> Sr {
    Sr::new(i).expect("sreg index in range")
}

/// GeMM: `R = α·(A × B) + β·C` with wrapping arithmetic at the
/// instruction width.
///
/// Operands (Table I): `md` = R (M×N), `ms1` = A (M×K), `ms2` = B (K×N),
/// `ms3` = C (M×N, consumed only when `β ≠ 0`).
///
/// The micro-program keeps a stripe of `R` rows as accumulators, loads
/// `B` in row tiles and drives `vmacc.vx` with the `A` scalars read
/// through the eCPU port — the row-broadcast formulation NM-Carus uses.
#[derive(Debug, Clone, Copy, Default)]
pub struct Gemm;

/// Row-stripe height (accumulator registers).
const SM: usize = 8;
/// `B`-tile height (rows of B resident at once).
const TK: usize = 12;

impl Kernel for Gemm {
    fn name(&self) -> &'static str {
        "gemm"
    }

    fn validate(&self, args: &ResolvedArgs) -> Result<Vec<MatView>, KernelError> {
        let a = require(args.ms1, "gemm needs ms1 (A)")?;
        let b = require(args.ms2, "gemm needs ms2 (B)")?;
        check_width(&a, args.width)?;
        check_width(&b, args.width)?;
        check_width(&args.md, args.width)?;
        if a.cols != b.rows {
            return Err(KernelError::ShapeMismatch {
                what: "gemm inner dimensions (A.cols, B.rows) differ",
            });
        }
        if (args.md.rows, args.md.cols) != (a.rows, b.cols) {
            return Err(KernelError::ShapeMismatch {
                what: "gemm destination must be (A.rows, B.cols)",
            });
        }
        let mut sources = vec![a, b];
        if args.beta != 0 {
            let c = require(args.ms3, "gemm with beta != 0 needs ms3 (C)")?;
            check_width(&c, args.width)?;
            if (c.rows, c.cols) != (args.md.rows, args.md.cols) {
                return Err(KernelError::ShapeMismatch {
                    what: "gemm C must match the destination shape",
                });
            }
            sources.push(c);
        }
        Ok(sources)
    }

    fn run(&self, args: &ResolvedArgs, ctx: &mut KernelCtx<'_>) -> Result<(), KernelError> {
        let a = args.ms1.expect("validated");
        let b = args.ms2.expect("validated");
        let out = args.md;
        let sew = args.width;
        let (m_total, k_total) = (a.rows, a.cols);

        // Register layout: [0..SM) accumulators, [SM..2SM) A rows,
        // [2SM..2SM+TK) B tile, then C temp and scratch.
        let acc0 = 0;
        let arow0 = SM;
        let brow0 = 2 * SM;
        let ctmp = 2 * SM + TK;

        ctx.set_scalar(sr(0), 0);
        ctx.set_scalar(sr(2), args.alpha as i32 as u32);
        ctx.set_scalar(sr(3), args.beta as i32 as u32);

        let mut m0 = 0;
        while m0 < m_total {
            let sm = SM.min(m_total - m0);
            // A rows must fit one register each (cols = K).
            ctx.set_vl(k_total, sew)?;
            ctx.load_rows(&a, m0, sm, arow0)?;
            // Accumulators work at N elements.
            ctx.set_vl(b.cols, sew)?;
            for m in 0..sm {
                ctx.exec(&[VInstr::BroadcastX {
                    vd: vr(acc0 + m),
                    rs: sr(0),
                }])?;
            }
            let mut k0 = 0;
            while k0 < k_total {
                let tk = TK.min(k_total - k0);
                ctx.load_rows(&b, k0, tk, brow0)?;
                for m in 0..sm {
                    for k in 0..tk {
                        let a_mk = ctx.peek(vr(arow0 + m), k0 + k, sew) as i32 as u32;
                        ctx.set_scalar(sr(1), a_mk);
                        ctx.exec(&[VInstr::OpVX {
                            op: VOp::Macc,
                            vd: vr(acc0 + m),
                            vs1: vr(brow0 + k),
                            rs: sr(1),
                        }])?;
                    }
                }
                k0 += tk;
            }
            // Scale and add beta*C, then write the stripe back.
            for m in 0..sm {
                if args.alpha != 1 {
                    ctx.exec(&[VInstr::OpVX {
                        op: VOp::Mul,
                        vd: vr(acc0 + m),
                        vs1: vr(acc0 + m),
                        rs: sr(2),
                    }])?;
                }
                if args.beta != 0 {
                    let c = args.ms3.expect("validated");
                    ctx.load_rows(&c, m0 + m, 1, ctmp)?;
                    ctx.exec(&[
                        VInstr::OpVX {
                            op: VOp::Mul,
                            vd: vr(ctmp),
                            vs1: vr(ctmp),
                            rs: sr(3),
                        },
                        VInstr::OpVV {
                            op: VOp::Add,
                            vd: vr(acc0 + m),
                            vs1: vr(acc0 + m),
                            vs2: vr(ctmp),
                        },
                    ])?;
                }
                ctx.store_row(acc0 + m, out.cols, sew, out.row_addr(m0 + m));
            }
            m0 += sm;
        }
        Ok(())
    }
}
