//! `xmk3` / `xmk4` — 2-D convolution kernels.
//!
//! `xmk3` is a single-channel valid convolution; `xmk4` is the paper's
//! flagship fused kernel: a 3-channel convolutional layer integrating
//! 2-D convolution, ReLU activation and 2×2/2 max-pooling, supporting
//! matrices of arbitrary dimensions (§IV-A2).

use super::pool::out_dim;
use super::{check_width, require, Kernel, KernelError, ResolvedArgs};
use crate::runtime::ctx::KernelCtx;
use crate::runtime::map::MatView;
use arcane_isa::vector::{Sr, VInstr, VOp, Vr};

fn vr(i: usize) -> Vr {
    Vr::new(i as u8).expect("vreg index in range")
}

fn sr(i: u8) -> Sr {
    Sr::new(i).expect("sreg index in range")
}

/// Emits the tap loop for one channel of one stripe: for every filter
/// tap `(ky, kx)`, broadcast the tap and fused-multiply-accumulate the
/// slid input row into each accumulator row.
#[allow(clippy::too_many_arguments)]
fn accumulate_taps(
    ctx: &mut KernelCtx<'_>,
    filter: &MatView,
    f_row0_vreg: usize,
    f_row0: usize,
    k: usize,
    in0: usize,
    acc0: usize,
    tmp: usize,
    rows: usize,
    sew: arcane_sim::Sew,
) -> Result<(), KernelError> {
    for ky in 0..k {
        for kx in 0..k {
            let tap = ctx.peek(vr(f_row0_vreg + ky), kx, sew) as i32 as u32;
            let _ = (filter, f_row0);
            ctx.set_scalar(sr(1), tap);
            for sy in 0..rows {
                ctx.exec(&[
                    VInstr::SlideDown {
                        vd: vr(tmp),
                        vs1: vr(in0 + sy + ky),
                        offset: kx as u16,
                    },
                    VInstr::OpVX {
                        op: VOp::Macc,
                        vd: vr(acc0 + sy),
                        vs1: vr(tmp),
                        rs: sr(1),
                    },
                ])?;
            }
        }
    }
    Ok(())
}

/// Single-channel valid 2-D convolution:
/// `R[y][x] = Σ_{ky,kx} A[y+ky][x+kx] · F[ky][kx]`.
///
/// Operands (Table I): `md` = R, `ms1` = A (H×W), `ms2` = F (K×K).
#[derive(Debug, Clone, Copy, Default)]
pub struct Conv2d;

impl Kernel for Conv2d {
    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn validate(&self, args: &ResolvedArgs) -> Result<Vec<MatView>, KernelError> {
        let a = require(args.ms1, "conv2d needs ms1 (input)")?;
        let f = require(args.ms2, "conv2d needs ms2 (filter)")?;
        check_width(&a, args.width)?;
        check_width(&f, args.width)?;
        check_width(&args.md, args.width)?;
        if f.rows != f.cols || f.rows == 0 {
            return Err(KernelError::ShapeMismatch {
                what: "conv2d filter must be square and non-empty",
            });
        }
        let k = f.rows;
        if a.rows < k || a.cols < k {
            return Err(KernelError::ShapeMismatch {
                what: "conv2d input smaller than the filter",
            });
        }
        if (args.md.rows, args.md.cols) != (a.rows - k + 1, a.cols - k + 1) {
            return Err(KernelError::ShapeMismatch {
                what: "conv2d destination must be (H-K+1, W-K+1)",
            });
        }
        Ok(vec![a, f])
    }

    fn run(&self, args: &ResolvedArgs, ctx: &mut KernelCtx<'_>) -> Result<(), KernelError> {
        let a = args.ms1.expect("validated");
        let f = args.ms2.expect("validated");
        let out = args.md;
        let sew = args.width;
        let k = f.rows;

        // Layout: filter rows [0..k), inputs [k..k+S+K-1), accumulators
        // next, one scratch register last.
        let stripe = ((ctx.vregs() - 2 - 2 * k) / 2).clamp(1, 8);
        let in0 = k;
        let acc0 = in0 + stripe + k - 1;
        let tmp = acc0 + stripe;

        ctx.set_scalar(sr(0), 0);
        ctx.set_vl(f.cols, sew)?;
        ctx.load_rows(&f, 0, k, 0)?;

        let mut y0 = 0;
        while y0 < out.rows {
            let rows = stripe.min(out.rows - y0);
            ctx.set_vl(a.cols, sew)?;
            ctx.load_rows(&a, y0, rows + k - 1, in0)?;
            for sy in 0..rows {
                ctx.exec(&[VInstr::BroadcastX {
                    vd: vr(acc0 + sy),
                    rs: sr(0),
                }])?;
            }
            accumulate_taps(ctx, &f, 0, 0, k, in0, acc0, tmp, rows, sew)?;
            for sy in 0..rows {
                ctx.store_row(acc0 + sy, out.cols, sew, out.row_addr(y0 + sy));
            }
            y0 += rows;
        }
        Ok(())
    }
}

/// The fused 3-channel convolutional layer (`xmk4`): 3-channel valid
/// convolution summed across channels, ReLU, then 2×2 max-pooling with
/// stride 2.
///
/// Operands (Table I): `md` = pooled output, `ms1` = input planes
/// stacked row-wise (`3H × W`), `ms2` = filter planes stacked row-wise
/// (`3K × K`).
///
/// Extension (used by the multi-instance evaluation): `α`/`β` select a
/// *row slice* of the convolution output — `α` is the first conv row
/// and `β` the number of conv rows to compute (both must be even;
/// `β = 0` means the whole image). The destination is the pooled slice.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConvLayer3ch;

/// Pooling window/stride of the fused layer.
const POOL: usize = 2;

impl ConvLayer3ch {
    /// Conv-output geometry for an input of `rows × cols` stacked planes.
    fn conv_dims(a: &MatView, k: usize) -> (usize, usize, usize) {
        let h = a.rows / 3;
        (h, out_dim(h, k, 1), out_dim(a.cols, k, 1))
    }
}

impl Kernel for ConvLayer3ch {
    fn name(&self) -> &'static str {
        "conv_layer_3ch"
    }

    fn validate(&self, args: &ResolvedArgs) -> Result<Vec<MatView>, KernelError> {
        let a = require(args.ms1, "conv_layer needs ms1 (input planes)")?;
        let f = require(args.ms2, "conv_layer needs ms2 (filter planes)")?;
        check_width(&a, args.width)?;
        check_width(&f, args.width)?;
        check_width(&args.md, args.width)?;
        if a.rows % 3 != 0 {
            return Err(KernelError::ShapeMismatch {
                what: "conv_layer input must stack 3 channel planes row-wise",
            });
        }
        if f.cols == 0 || f.rows != 3 * f.cols {
            return Err(KernelError::ShapeMismatch {
                what: "conv_layer filter must stack 3 square planes row-wise",
            });
        }
        let k = f.cols;
        let (h, ch, cw) = Self::conv_dims(&a, k);
        if h < k || a.cols < k {
            return Err(KernelError::ShapeMismatch {
                what: "conv_layer input plane smaller than the filter",
            });
        }
        let (y0, n_rows) = slice_params(args, ch)?;
        let _ = y0;
        let (ph, pw) = (n_rows / POOL, cw / POOL);
        if (args.md.rows, args.md.cols) != (ph, pw) {
            return Err(KernelError::ShapeMismatch {
                what: "conv_layer destination must be the pooled slice shape",
            });
        }
        Ok(vec![a, f])
    }

    fn run(&self, args: &ResolvedArgs, ctx: &mut KernelCtx<'_>) -> Result<(), KernelError> {
        let a = args.ms1.expect("validated");
        let f = args.ms2.expect("validated");
        let out = args.md;
        let sew = args.width;
        let k = f.cols;
        let (h, ch, cw) = Self::conv_dims(&a, k);
        let (y0_slice, n_rows) = slice_params(args, ch).expect("validated");
        let pw = cw / POOL;

        // Layout: filter plane [0..k), inputs [k..k+S+K-1),
        // accumulators next, one scratch last.
        let stripe = compute_stripe(ctx.vregs(), k);
        let in0 = k;
        let acc0 = in0 + stripe + k - 1;
        let tmp = acc0 + stripe;

        ctx.set_scalar(sr(0), 0);

        let mut y0 = y0_slice;
        let y_end = y0_slice + n_rows;
        while y0 < y_end {
            let rows = stripe.min(y_end - y0);
            ctx.set_vl(a.cols, sew)?;
            for sy in 0..rows {
                ctx.exec(&[VInstr::BroadcastX {
                    vd: vr(acc0 + sy),
                    rs: sr(0),
                }])?;
            }
            // One channel at a time: its filter plane and its input rows.
            for c in 0..3 {
                ctx.set_vl(f.cols, sew)?;
                ctx.load_rows(&f, c * k, k, 0)?;
                ctx.set_vl(a.cols, sew)?;
                ctx.load_rows(&a, c * h + y0, rows + k - 1, in0)?;
                accumulate_taps(ctx, &f, 0, c * k, k, in0, acc0, tmp, rows, sew)?;
            }
            // ReLU on every conv row of the stripe.
            for sy in 0..rows {
                ctx.exec(&[VInstr::OpVX {
                    op: VOp::Max,
                    vd: vr(acc0 + sy),
                    vs1: vr(acc0 + sy),
                    rs: sr(0),
                }])?;
            }
            // 2x2/2 max-pool: vertical pair reduction, then horizontal
            // neighbour max; valid results land at even indices.
            for p in 0..rows / POOL {
                let top = acc0 + 2 * p;
                ctx.exec(&[
                    VInstr::OpVV {
                        op: VOp::Max,
                        vd: vr(top),
                        vs1: vr(top),
                        vs2: vr(top + 1),
                    },
                    VInstr::SlideDown {
                        vd: vr(tmp),
                        vs1: vr(top),
                        offset: 1,
                    },
                    VInstr::OpVV {
                        op: VOp::Max,
                        vd: vr(top),
                        vs1: vr(top),
                        vs2: vr(tmp),
                    },
                ])?;
                let pooled_row = (y0 - y0_slice) / POOL + p;
                ctx.store_row_strided(top, 0, POOL, pw, sew, out.row_addr(pooled_row));
            }
            y0 += rows;
        }
        Ok(())
    }
}

/// Decodes the `α`/`β` row-slice extension; returns `(first_row, rows)`.
fn slice_params(args: &ResolvedArgs, conv_rows: usize) -> Result<(usize, usize), KernelError> {
    let even_rows = conv_rows & !1;
    let (y0, n) = if args.beta == 0 {
        (0, even_rows)
    } else {
        (args.alpha as usize, args.beta as usize)
    };
    if y0 % POOL != 0 || n % POOL != 0 || y0 + n > conv_rows.max(1) || n == 0 {
        return Err(KernelError::ShapeMismatch {
            what: "conv_layer row slice must be even-aligned and within the image",
        });
    }
    Ok((y0, n))
}

/// Largest even stripe height fitting the register budget:
/// `k (filter) + stripe + k - 1 (inputs) + stripe (accs) + 1 (scratch)`.
fn compute_stripe(vregs: usize, k: usize) -> usize {
    let budget = vregs as isize - 2 * k as isize;
    let s = (budget / 2).max(2) as usize & !1;
    s.clamp(2, 8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripe_fits_register_budget() {
        for k in [1usize, 3, 5, 7] {
            let s = compute_stripe(32, k);
            assert!(s >= 2 && s.is_multiple_of(2), "k={k}: stripe {s}");
            // filter k + inputs (s + k - 1) + accs s + scratch 1
            assert!(k + (s + k - 1) + s < 32, "k={k}: stripe {s} overflows");
        }
    }
}
