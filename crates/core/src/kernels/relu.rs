//! `xmk1` — LeakyReLU activation.

use super::{check_width, require, Kernel, KernelError, ResolvedArgs};
use crate::runtime::ctx::KernelCtx;
use crate::runtime::map::MatView;
use arcane_isa::vector::{Sr, VInstr, VOp, Vr};

fn vr(i: usize) -> Vr {
    Vr::new(i as u8).expect("vreg index in range")
}

fn sr(i: u8) -> Sr {
    Sr::new(i).expect("sreg index in range")
}

/// LeakyReLU: `out = x ≥ 0 ? x : x >> α` (negative slope `2^-α`,
/// the shift-based form used by quantised integer networks).
///
/// Operands (Table I): `md` = output, `ms1` = input, `α` = slope shift.
#[derive(Debug, Clone, Copy, Default)]
pub struct LeakyRelu;

impl Kernel for LeakyRelu {
    fn name(&self) -> &'static str {
        "leaky_relu"
    }

    fn validate(&self, args: &ResolvedArgs) -> Result<Vec<MatView>, KernelError> {
        let ms1 = require(args.ms1, "leaky_relu needs ms1")?;
        check_width(&ms1, args.width)?;
        check_width(&args.md, args.width)?;
        if (ms1.rows, ms1.cols) != (args.md.rows, args.md.cols) {
            return Err(KernelError::ShapeMismatch {
                what: "leaky_relu output shape must equal input shape",
            });
        }
        if args.alpha < 0 || args.alpha >= 32 {
            return Err(KernelError::ShapeMismatch {
                what: "leaky_relu slope shift must be in 0..32",
            });
        }
        Ok(vec![ms1])
    }

    fn run(&self, args: &ResolvedArgs, ctx: &mut KernelCtx<'_>) -> Result<(), KernelError> {
        let input = args.ms1.expect("validated");
        let out = args.md;
        let sew = args.width;
        ctx.set_vl(input.cols, sew)?;
        ctx.set_scalar(sr(0), 0);
        ctx.set_scalar(sr(1), args.alpha as u32);

        // Stripe: rows in vregs 0..stripe, scratch in the last register.
        let stripe = ctx.vregs() - 1;
        let tmp = vr(ctx.vregs() - 1);
        let mut row = 0;
        while row < input.rows {
            let n = stripe.min(input.rows - row);
            ctx.load_rows(&input, row, n, 0)?;
            for r in 0..n {
                let x = vr(r);
                ctx.exec(&[
                    // tmp = min(x, 0) >> alpha  (negative part, scaled)
                    VInstr::OpVX {
                        op: VOp::Min,
                        vd: tmp,
                        vs1: x,
                        rs: sr(0),
                    },
                    VInstr::OpVX {
                        op: VOp::Sra,
                        vd: tmp,
                        vs1: tmp,
                        rs: sr(1),
                    },
                    // x = max(x, 0) + tmp
                    VInstr::OpVX {
                        op: VOp::Max,
                        vd: x,
                        vs1: x,
                        rs: sr(0),
                    },
                    VInstr::OpVV {
                        op: VOp::Add,
                        vd: x,
                        vs1: x,
                        vs2: tmp,
                    },
                ])?;
                ctx.store_row(r, out.cols, sew, out.row_addr(row + r));
            }
            row += n;
        }
        Ok(())
    }
}
