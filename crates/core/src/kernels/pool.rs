//! `xmk2` — 2-D max-pooling.

use super::{check_width, require, Kernel, KernelError, ResolvedArgs};
use crate::runtime::ctx::KernelCtx;
use crate::runtime::map::MatView;
use arcane_isa::vector::{VInstr, VOp, Vr};

fn vr(i: usize) -> Vr {
    Vr::new(i as u8).expect("vreg index in range")
}

/// Max-pooling with window `β` and stride `α` (Table I: `stride`,
/// `win_size`): `out[y][x] = max A[y·s .. y·s+w)[x·s .. x·s+w)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct MaxPool;

/// Output dimension of a pooling/convolution sweep.
pub(crate) fn out_dim(input: usize, win: usize, stride: usize) -> usize {
    if input < win {
        0
    } else {
        (input - win) / stride + 1
    }
}

impl Kernel for MaxPool {
    fn name(&self) -> &'static str {
        "maxpool"
    }

    fn validate(&self, args: &ResolvedArgs) -> Result<Vec<MatView>, KernelError> {
        let ms1 = require(args.ms1, "maxpool needs ms1")?;
        check_width(&ms1, args.width)?;
        check_width(&args.md, args.width)?;
        let stride = args.alpha as usize;
        let win = args.beta as usize;
        if args.alpha < 1 || args.beta < 1 {
            return Err(KernelError::ShapeMismatch {
                what: "maxpool stride and window must be >= 1",
            });
        }
        if win > ms1.rows || win > ms1.cols {
            return Err(KernelError::ShapeMismatch {
                what: "maxpool window exceeds the input",
            });
        }
        let oh = out_dim(ms1.rows, win, stride);
        let ow = out_dim(ms1.cols, win, stride);
        if (args.md.rows, args.md.cols) != (oh, ow) {
            return Err(KernelError::ShapeMismatch {
                what: "maxpool destination shape must be ((r-w)/s+1, (c-w)/s+1)",
            });
        }
        Ok(vec![ms1])
    }

    fn run(&self, args: &ResolvedArgs, ctx: &mut KernelCtx<'_>) -> Result<(), KernelError> {
        let input = args.ms1.expect("validated");
        let out = args.md;
        let sew = args.width;
        let stride = args.alpha as usize;
        let win = args.beta as usize;

        ctx.set_vl(input.cols, sew)?;
        let vmax = vr(win); // vertical max
        let acc = vr(win + 1); // horizontal sweep accumulator
        let tmp = vr(win + 2);

        for y in 0..out.rows {
            // Allocate the `win` input rows of this output row.
            ctx.load_rows(&input, y * stride, win, 0)?;
            // Vertical reduction.
            ctx.exec(&[VInstr::Move {
                vd: vmax,
                vs1: vr(0),
            }])?;
            for r in 1..win {
                ctx.exec(&[VInstr::OpVV {
                    op: VOp::Max,
                    vd: vmax,
                    vs1: vmax,
                    vs2: vr(r),
                }])?;
            }
            // Horizontal sweep: acc[x] = max(vmax[x .. x+win)).
            ctx.exec(&[VInstr::Move { vd: acc, vs1: vmax }])?;
            for kx in 1..win {
                ctx.exec(&[
                    VInstr::SlideDown {
                        vd: tmp,
                        vs1: vmax,
                        offset: kx as u16,
                    },
                    VInstr::OpVV {
                        op: VOp::Max,
                        vd: acc,
                        vs1: acc,
                        vs2: tmp,
                    },
                ])?;
            }
            // Window maxima sit at every `stride`-th element.
            ctx.store_row_strided(win + 1, 0, stride, out.cols, sew, out.row_addr(y));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_dim_formula() {
        assert_eq!(out_dim(8, 2, 2), 4);
        assert_eq!(out_dim(7, 2, 2), 3);
        assert_eq!(out_dim(5, 3, 1), 3);
        assert_eq!(out_dim(2, 3, 1), 0);
    }
}
