//! `xmk5`–`xmk7` — element-wise and data-movement kernels.
//!
//! The paper ships five kernels (Table I) but reserves `func5` space for
//! up to 31 and advertises the software-defined decoder as the extension
//! point. These three kernels exercise that headroom and are the
//! natural next entries of a tinyML library: matrix addition, scalar
//! scale-and-shift (requantisation) and transpose.

use super::{check_width, require, Kernel, KernelError, ResolvedArgs};
use crate::runtime::ctx::KernelCtx;
use crate::runtime::map::MatView;
use arcane_isa::vector::{Sr, VInstr, VOp, Vr};

fn vr(i: usize) -> Vr {
    Vr::new(i as u8).expect("vreg index in range")
}

fn sr(i: u8) -> Sr {
    Sr::new(i).expect("sreg index in range")
}

/// `xmk5` — matrix addition: `R = A + B` (wrapping at the instruction
/// width). Operands: `md` = R, `ms1` = A, `ms2` = B.
#[derive(Debug, Clone, Copy, Default)]
pub struct MatAdd;

impl Kernel for MatAdd {
    fn name(&self) -> &'static str {
        "mat_add"
    }

    fn validate(&self, args: &ResolvedArgs) -> Result<Vec<MatView>, KernelError> {
        let a = require(args.ms1, "mat_add needs ms1 (A)")?;
        let b = require(args.ms2, "mat_add needs ms2 (B)")?;
        check_width(&a, args.width)?;
        check_width(&b, args.width)?;
        check_width(&args.md, args.width)?;
        if (a.rows, a.cols) != (args.md.rows, args.md.cols)
            || (b.rows, b.cols) != (args.md.rows, args.md.cols)
        {
            return Err(KernelError::ShapeMismatch {
                what: "mat_add operands must share one shape",
            });
        }
        Ok(vec![a, b])
    }

    fn run(&self, args: &ResolvedArgs, ctx: &mut KernelCtx<'_>) -> Result<(), KernelError> {
        let a = args.ms1.expect("validated");
        let b = args.ms2.expect("validated");
        let sew = args.width;
        ctx.set_vl(a.cols, sew)?;
        // Stripe the rows: half the registers for A, half for B.
        let stripe = (ctx.vregs() / 2).max(1);
        let mut row = 0;
        while row < a.rows {
            let n = stripe.min(a.rows - row);
            ctx.load_rows(&a, row, n, 0)?;
            ctx.load_rows(&b, row, n, stripe)?;
            for r in 0..n {
                ctx.exec(&[VInstr::OpVV {
                    op: VOp::Add,
                    vd: vr(r),
                    vs1: vr(r),
                    vs2: vr(stripe + r),
                }])?;
                ctx.store_row(r, args.md.cols, sew, args.md.row_addr(row + r));
            }
            row += n;
        }
        Ok(())
    }
}

/// `xmk6` — scale-and-shift (requantisation): `R = (A · α) >> β`
/// (arithmetic shift, wrapping at the instruction width).
/// Operands: `md` = R, `ms1` = A, `α` = multiplier, `β` = shift.
#[derive(Debug, Clone, Copy, Default)]
pub struct MatScale;

impl Kernel for MatScale {
    fn name(&self) -> &'static str {
        "mat_scale"
    }

    fn validate(&self, args: &ResolvedArgs) -> Result<Vec<MatView>, KernelError> {
        let a = require(args.ms1, "mat_scale needs ms1 (A)")?;
        check_width(&a, args.width)?;
        check_width(&args.md, args.width)?;
        if (a.rows, a.cols) != (args.md.rows, args.md.cols) {
            return Err(KernelError::ShapeMismatch {
                what: "mat_scale output shape must equal input shape",
            });
        }
        if args.beta < 0 || args.beta >= 32 {
            return Err(KernelError::ShapeMismatch {
                what: "mat_scale shift must be in 0..32",
            });
        }
        Ok(vec![a])
    }

    fn run(&self, args: &ResolvedArgs, ctx: &mut KernelCtx<'_>) -> Result<(), KernelError> {
        let a = args.ms1.expect("validated");
        let sew = args.width;
        ctx.set_vl(a.cols, sew)?;
        ctx.set_scalar(sr(2), args.alpha as i32 as u32);
        ctx.set_scalar(sr(3), args.beta as u32);
        let stripe = ctx.vregs();
        let mut row = 0;
        while row < a.rows {
            let n = stripe.min(a.rows - row);
            ctx.load_rows(&a, row, n, 0)?;
            for r in 0..n {
                ctx.exec(&[
                    VInstr::OpVX {
                        op: VOp::Mul,
                        vd: vr(r),
                        vs1: vr(r),
                        rs: sr(2),
                    },
                    VInstr::OpVX {
                        op: VOp::Sra,
                        vd: vr(r),
                        vs1: vr(r),
                        rs: sr(3),
                    },
                ])?;
                ctx.store_row(r, args.md.cols, sew, args.md.row_addr(row + r));
            }
            row += n;
        }
        Ok(())
    }
}

/// `xmk7` — transpose: `R = Aᵀ`. Operands: `md` = R (cols×rows),
/// `ms1` = A (rows×cols). Rows stream through the VPU and the 2-D DMA
/// scatters each one out as a destination column — the same
/// consolidation mechanism the writeback path uses (§IV-B3).
#[derive(Debug, Clone, Copy, Default)]
pub struct Transpose;

impl Kernel for Transpose {
    fn name(&self) -> &'static str {
        "transpose"
    }

    fn validate(&self, args: &ResolvedArgs) -> Result<Vec<MatView>, KernelError> {
        let a = require(args.ms1, "transpose needs ms1 (A)")?;
        check_width(&a, args.width)?;
        check_width(&args.md, args.width)?;
        if (a.rows, a.cols) != (args.md.cols, args.md.rows) {
            return Err(KernelError::ShapeMismatch {
                what: "transpose destination must be (A.cols, A.rows)",
            });
        }
        Ok(vec![a])
    }

    fn run(&self, args: &ResolvedArgs, ctx: &mut KernelCtx<'_>) -> Result<(), KernelError> {
        let a = args.ms1.expect("validated");
        let out = args.md;
        let sew = args.width;
        ctx.set_vl(a.cols, sew)?;
        let stripe = ctx.vregs();
        let pitch = out.pitch_bytes();
        let mut row = 0;
        while row < a.rows {
            let n = stripe.min(a.rows - row);
            ctx.load_rows(&a, row, n, 0)?;
            for r in 0..n {
                // Row (row + r) of A becomes column (row + r) of R.
                let dst = out.addr + (row + r) as u32 * sew.bytes() as u32;
                ctx.store_row_as_column(r, a.cols, sew, dst, pitch);
            }
            row += n;
        }
        Ok(())
    }
}
