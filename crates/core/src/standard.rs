//! The baseline "traditional" data LLC: identical geometry to ARCANE
//! (fully associative, 128 × 1 KiB lines, write-back, approximate LRU)
//! but with no compute capability. This is the cache of the baseline
//! X-HEEP system the paper compares against in Table II and Figure 4.

use crate::cache::{CacheTable, Victim};
use crate::config::ArcaneConfig;
use arcane_mem::{Access, AccessSize, BusError, ExtMem, Memory};
use arcane_sim::CacheStats;

/// A conventional write-back LLC in front of external memory.
#[derive(Debug)]
pub struct StandardLlc {
    table: CacheTable,
    data: Vec<u8>,
    ext: ExtMem,
    line_bytes: usize,
    stats: CacheStats,
}

impl StandardLlc {
    /// Builds a baseline cache with the same geometry as the given
    /// ARCANE configuration.
    pub fn new(cfg: &ArcaneConfig) -> Self {
        StandardLlc {
            table: CacheTable::new(cfg.n_lines(), cfg.line_bytes()),
            data: vec![0; cfg.capacity_bytes()],
            ext: ExtMem::new(
                cfg.ext_base,
                cfg.ext_size,
                cfg.ext_first_word,
                cfg.ext_per_word,
            ),
            line_bytes: cfg.line_bytes(),
            stats: CacheStats::default(),
        }
    }

    /// Read access to the backing external memory (workload seeding).
    pub fn ext(&self) -> &ExtMem {
        &self.ext
    }

    /// Write access to the backing external memory.
    pub fn ext_mut(&mut self) -> &mut ExtMem {
        &mut self.ext
    }

    /// Cache statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Flushes every dirty line to external memory (test/sync helper;
    /// data only, no timing).
    pub fn flush_all(&mut self) {
        for i in 0..self.table.len() {
            let l = *self.table.line(i);
            if l.valid && l.dirty {
                let o = i * self.line_bytes;
                let data = self.data[o..o + self.line_bytes].to_vec();
                self.ext
                    .write_bytes(l.tag, &data)
                    .expect("cached tag maps to ext memory");
                self.table.line_mut(i).dirty = false;
            }
        }
    }

    /// One host access through the cache. Returns data and cycles
    /// (1-cycle hit; miss adds writeback + refill bursts).
    ///
    /// # Errors
    ///
    /// Returns [`BusError::OutOfRange`] outside the cached region.
    pub fn host_access(
        &mut self,
        addr: u32,
        write: bool,
        value: u32,
        size: AccessSize,
        _now: u64,
    ) -> Result<Access, BusError> {
        if !self.ext.contains(addr, size.bytes()) {
            return Err(BusError::OutOfRange { addr });
        }
        // A misaligned access crossing a line boundary becomes two
        // transactions, one per line (as the bus adapter would split it).
        // Line size is a power of two, so the offset is a mask.
        let off_in_line = (addr as usize) & (self.line_bytes - 1);
        if off_in_line + size.bytes() as usize > self.line_bytes {
            return self.split_access(addr, write, value, size, _now);
        }
        let mut service = 0u64;
        let (line, tag) = match self.table.access(addr) {
            Some(hit) => {
                self.stats.hits.incr();
                hit
            }
            None => {
                self.stats.misses.incr();
                let i = match self.table.victim(0) {
                    Victim::Line(i) => i,
                    Victim::AllBusyUntil(_) => unreachable!("no busy lines without compute"),
                };
                service += self.refill(i, addr)?;
                self.table.touch(i);
                (i, self.table.line(i).tag)
            }
        };
        let off = line * self.line_bytes + (addr - tag) as usize;
        let n = size.bytes() as usize;
        let data = if write {
            let bytes = value.to_le_bytes();
            self.data[off..off + n].copy_from_slice(&bytes[..n]);
            self.table.line_mut(line).dirty = true;
            0
        } else {
            let mut b = [0u8; 4];
            b[..n].copy_from_slice(&self.data[off..off + n]);
            u32::from_le_bytes(b)
        };
        Ok(Access::new(data, service + 1))
    }

    /// A line-crossing access as the bus adapter would split it: one
    /// byte transaction per byte, in order. Semantically identical to
    /// recursing into [`StandardLlc::host_access`] per byte (same hit/
    /// miss counts, LRU updates and cycle charges); consecutive bytes
    /// that stay in the line just resolved skip the redundant re-probe,
    /// which matters because the XCVPULP kernels issue a misaligned
    /// word load per output element.
    fn split_access(
        &mut self,
        addr: u32,
        write: bool,
        value: u32,
        size: AccessSize,
        _now: u64,
    ) -> Result<Access, BusError> {
        let mut data = [0u8; 4];
        let mut cycles = 0u64;
        let vb = value.to_le_bytes();
        let lb = self.line_bytes as u32;
        let mut cur: Option<(usize, u32)> = None;
        for i in 0..size.bytes() {
            let a = addr + i;
            let (line, tag) = match cur {
                // Still inside the line of the previous byte: the probe
                // would hit that same line; apply its state changes
                // (touch + hit count) without re-probing.
                Some((line, tag)) if a.wrapping_sub(tag) < lb => {
                    self.table.touch(line);
                    self.stats.hits.incr();
                    (line, tag)
                }
                _ => match self.table.access(a) {
                    Some(hit) => {
                        self.stats.hits.incr();
                        hit
                    }
                    None => {
                        self.stats.misses.incr();
                        let victim = match self.table.victim(0) {
                            Victim::Line(v) => v,
                            Victim::AllBusyUntil(_) => {
                                unreachable!("no busy lines without compute")
                            }
                        };
                        cycles += self.refill(victim, a)?;
                        self.table.touch(victim);
                        (victim, self.table.line(victim).tag)
                    }
                },
            };
            cur = Some((line, tag));
            let off = line * self.line_bytes + (a - tag) as usize;
            if write {
                self.data[off] = vb[i as usize];
                self.table.line_mut(line).dirty = true;
            } else {
                data[i as usize] = self.data[off];
            }
            cycles += 1;
        }
        Ok(Access::new(u32::from_le_bytes(data), cycles))
    }

    fn refill(&mut self, i: usize, addr: u32) -> Result<u64, BusError> {
        let mut cycles = 0;
        let old = *self.table.line(i);
        let o = i * self.line_bytes;
        if old.valid && old.dirty {
            let data = self.data[o..o + self.line_bytes].to_vec();
            self.ext.write_bytes(old.tag, &data)?;
            cycles += self.ext.burst_cycles(self.line_bytes as u64);
            self.stats.writebacks.incr();
        }
        let tag = self.table.tag_of(addr);
        let mut buf = vec![0u8; self.line_bytes];
        self.ext.read_bytes(tag, &mut buf)?;
        self.data[o..o + self.line_bytes].copy_from_slice(&buf);
        cycles += self.ext.burst_cycles(self.line_bytes as u64);
        let l = self.table.line_mut(i);
        l.tag = tag;
        l.valid = true;
        l.dirty = false;
        Ok(cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ArcaneConfig;

    fn cache() -> StandardLlc {
        StandardLlc::new(&ArcaneConfig::with_lanes(4))
    }

    #[test]
    fn read_after_write_hits() {
        let mut c = cache();
        let a = 0x2000_0100;
        let w = c
            .host_access(a, true, 0xdead_beef, AccessSize::Word, 0)
            .unwrap();
        assert!(w.cycles > 1, "first touch misses");
        let r = c.host_access(a, false, 0, AccessSize::Word, 1).unwrap();
        assert_eq!(r.data, 0xdead_beef);
        assert_eq!(r.cycles, 1, "hit is single-cycle");
    }

    #[test]
    fn eviction_writes_back_dirty_data() {
        let mut c = cache();
        let base = 0x2000_0000u32;
        c.host_access(base, true, 42, AccessSize::Word, 0).unwrap();
        // Touch more than 128 distinct lines to force eviction.
        for i in 1..200u32 {
            c.host_access(base + i * 1024, false, 0, AccessSize::Word, i as u64)
                .unwrap();
        }
        // The dirty value must have survived in external memory.
        assert_eq!(c.ext().read_u32(base).unwrap(), 42);
        assert!(c.stats().writebacks.get() >= 1);
    }

    #[test]
    fn sub_word_accesses() {
        let mut c = cache();
        let a = 0x2000_0200;
        c.host_access(a, true, 0x11, AccessSize::Byte, 0).unwrap();
        c.host_access(a + 1, true, 0x22, AccessSize::Byte, 0)
            .unwrap();
        let r = c.host_access(a, false, 0, AccessSize::Half, 0).unwrap();
        assert_eq!(r.data, 0x2211);
    }

    #[test]
    fn out_of_range_is_rejected() {
        let mut c = cache();
        assert!(c
            .host_access(0x1000_0000, false, 0, AccessSize::Word, 0)
            .is_err());
    }
}
