//! Kernel Scheduler placement policies (paper §IV-B2, DESIGN.md §4.4).
//!
//! The C-RT's Kernel Scheduler picks which VPU instance runs each
//! offloaded kernel. The paper hardcodes *least-dirty* placement —
//! dispatching to the VPU whose cache lines need the fewest forced
//! flushes during allocation. That choice is a policy, not a law of the
//! architecture: the scheduler is C firmware, so alternatives are a
//! software swap. This module lifts the decision into a
//! [`SchedulerPolicy`] trait with the three implementations DESIGN.md
//! §4.4 names as the ablation axis, selected per configuration through
//! [`SchedulerKind`] on [`crate::ArcaneConfig`].

use std::fmt;

/// Per-VPU occupancy snapshot the scheduler consults for one placement
/// decision. All slices are indexed by VPU instance.
#[derive(Debug, Clone, Copy)]
pub struct SchedView<'a> {
    /// Valid **dirty** cache lines currently held by each VPU — lines
    /// an allocation would have to flush before reusing.
    pub dirty_lines: &'a [usize],
    /// **Invalid** (free) cache lines of each VPU — lines an allocation
    /// can claim without any writeback or eviction.
    pub free_lines: &'a [usize],
    /// Absolute cycle at which each VPU retires its queued work.
    pub free_at: &'a [u64],
    /// Kernels scheduled before this one (monotonic sequence number;
    /// the round-robin rotation cursor).
    pub seq: u64,
}

impl SchedView<'_> {
    /// Number of VPU instances under scheduling.
    pub fn n_vpus(&self) -> usize {
        self.free_at.len()
    }
}

/// A Kernel Scheduler placement policy: given the occupancy snapshot,
/// name the VPU instance the next kernel runs on.
///
/// Implementations must be pure functions of the view (the C-RT keeps
/// any rotation state in [`SchedView::seq`]) and must return an index
/// `< view.n_vpus()`.
pub trait SchedulerPolicy: fmt::Debug + Send + Sync {
    /// Policy mnemonic (ablation tables, records).
    fn name(&self) -> &'static str;

    /// Chooses the VPU for the next kernel.
    fn choose(&self, view: &SchedView<'_>) -> usize;
}

/// The paper's policy: the VPU with the fewest dirty lines, breaking
/// ties by earliest availability, then lowest index (§IV-B2). This is
/// bit- and cycle-identical to the previously hardcoded behaviour.
#[derive(Debug, Clone, Copy, Default)]
pub struct LeastDirty;

impl SchedulerPolicy for LeastDirty {
    fn name(&self) -> &'static str {
        "least-dirty"
    }

    fn choose(&self, view: &SchedView<'_>) -> usize {
        (0..view.n_vpus())
            .min_by_key(|&v| (view.dirty_lines[v], view.free_at[v], v))
            .expect("at least one VPU")
    }
}

/// Oblivious rotation: kernel `i` goes to VPU `i mod n`. The cheapest
/// policy a C-RT could run (one counter, no cache-state scan) — the
/// ablation's lower bound on scheduling intelligence.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobin;

impl SchedulerPolicy for RoundRobin {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn choose(&self, view: &SchedView<'_>) -> usize {
        (view.seq % view.n_vpus() as u64) as usize
    }
}

/// Greedy on free capacity: the VPU with the most invalid lines (the
/// most allocation head-room without evictions), breaking ties by
/// earliest availability, then lowest index.
#[derive(Debug, Clone, Copy, Default)]
pub struct MostFree;

impl SchedulerPolicy for MostFree {
    fn name(&self) -> &'static str {
        "most-free"
    }

    fn choose(&self, view: &SchedView<'_>) -> usize {
        (0..view.n_vpus())
            .min_by_key(|&v| (std::cmp::Reverse(view.free_lines[v]), view.free_at[v], v))
            .expect("at least one VPU")
    }
}

/// Configuration-level selector for the scheduler policy (kept as a
/// `Copy` enum so [`crate::ArcaneConfig`] stays a plain value type; the
/// trait objects behind it are zero-sized statics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// [`LeastDirty`] — the paper's policy and the default.
    #[default]
    LeastDirty,
    /// [`RoundRobin`] — oblivious rotation.
    RoundRobin,
    /// [`MostFree`] — greedy on invalid lines.
    MostFree,
}

impl SchedulerKind {
    /// Every selectable policy, in ablation-table order.
    pub const ALL: [SchedulerKind; 3] = [
        SchedulerKind::LeastDirty,
        SchedulerKind::RoundRobin,
        SchedulerKind::MostFree,
    ];

    /// The policy implementation behind this selector.
    pub fn policy(self) -> &'static dyn SchedulerPolicy {
        match self {
            SchedulerKind::LeastDirty => &LeastDirty,
            SchedulerKind::RoundRobin => &RoundRobin,
            SchedulerKind::MostFree => &MostFree,
        }
    }

    /// Policy mnemonic (ablation tables).
    pub fn name(self) -> &'static str {
        self.policy().name()
    }
}

impl fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view<'a>(
        dirty: &'a [usize],
        free: &'a [usize],
        free_at: &'a [u64],
        seq: u64,
    ) -> SchedView<'a> {
        SchedView {
            dirty_lines: dirty,
            free_lines: free,
            free_at,
            seq,
        }
    }

    #[test]
    fn least_dirty_matches_hardcoded_ordering() {
        // Fewest dirty wins; ties break on availability, then index.
        let v = view(&[3, 1, 1, 2], &[0, 0, 0, 0], &[10, 20, 5, 0], 7);
        assert_eq!(LeastDirty.choose(&v), 2);
        let tie = view(&[1, 1], &[0, 0], &[5, 5], 0);
        assert_eq!(LeastDirty.choose(&tie), 0);
    }

    #[test]
    fn round_robin_rotates_with_seq() {
        let d = [0usize; 3];
        let f = [0usize; 3];
        let t = [0u64; 3];
        for seq in 0..7 {
            let v = view(&d, &f, &t, seq);
            assert_eq!(RoundRobin.choose(&v), (seq % 3) as usize);
        }
    }

    #[test]
    fn most_free_prefers_invalid_lines() {
        let v = view(&[0, 0, 0], &[4, 9, 9], &[50, 50, 10], 0);
        // 9 free lines twice; earlier availability breaks the tie.
        assert_eq!(MostFree.choose(&v), 2);
    }

    #[test]
    fn kind_roundtrip_names() {
        assert_eq!(SchedulerKind::default(), SchedulerKind::LeastDirty);
        let names: Vec<&str> = SchedulerKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names, ["least-dirty", "round-robin", "most-free"]);
        assert_eq!(SchedulerKind::MostFree.to_string(), "most-free");
    }

    #[test]
    fn single_vpu_is_always_zero() {
        let v = view(&[5], &[0], &[99], 3);
        for k in SchedulerKind::ALL {
            assert_eq!(k.policy().choose(&v), 0, "{k}");
        }
    }
}
