//! The C-RT: the lightweight runtime system executed by the eCPU
//! (paper §IV-B). Its three modules — Kernel Decoder, Kernel Scheduler
//! and Matrix Allocator — live in [`crate::ArcaneLlc`] (decode/schedule) and
//! [`ctx`] (allocation services); [`map`] holds the logical matrix
//! register file with hazard-resolving renaming.

pub mod ctx;
pub mod map;
