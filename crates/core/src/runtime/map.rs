//! Logical matrix registers, bindings and hazard-resolving renaming
//! (paper §IV-B1).
//!
//! `xmr` binds a memory region and shape to a logical matrix register
//! *without* loading any data — allocation is deferred until a kernel
//! needs the operand. Rebinding a register that an earlier, still-queued
//! kernel uses would be a WAW hazard on the register file; the decoder
//! resolves it by **renaming**: every binding receives a fresh physical
//! id, and kernels capture the physical binding at decode time.

use arcane_isa::xmnmc::{MatReg, NUM_MAT_REGS};
use arcane_sim::Sew;

/// A resolved matrix operand: the physical binding a kernel works on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatView {
    /// Base address in system memory.
    pub addr: u32,
    /// Number of rows.
    pub rows: usize,
    /// Number of columns (elements per row).
    pub cols: usize,
    /// Row-pitch multiplier from `xmr` (1 = densely packed rows; the
    /// row pitch in elements is `stride × cols`).
    pub stride: usize,
    /// Element width.
    pub sew: Sew,
    /// Physical id assigned at binding time (renaming tag).
    pub phys_id: u32,
}

impl MatView {
    /// Row pitch in bytes.
    pub const fn pitch_bytes(&self) -> u32 {
        (self.stride * self.cols * self.sew.bytes()) as u32
    }

    /// Bytes in one (dense) row of data.
    pub const fn row_bytes(&self) -> u32 {
        (self.cols * self.sew.bytes()) as u32
    }

    /// Address of row `r`.
    pub const fn row_addr(&self, r: usize) -> u32 {
        self.addr + r as u32 * self.pitch_bytes()
    }

    /// First byte past the region the matrix occupies.
    pub const fn end_addr(&self) -> u32 {
        if self.rows == 0 {
            self.addr
        } else {
            self.row_addr(self.rows - 1) + self.row_bytes()
        }
    }

    /// Total elements.
    pub const fn elems(&self) -> usize {
        self.rows * self.cols
    }
}

/// The statically allocated matrix map of the C-RT: one slot per
/// logical matrix register plus a monotonically increasing physical id
/// counter implementing renaming.
#[derive(Debug, Clone)]
pub struct MatrixMap {
    slots: [Option<MatView>; NUM_MAT_REGS as usize],
    next_phys: u32,
    renames: u64,
}

impl Default for MatrixMap {
    fn default() -> Self {
        MatrixMap {
            slots: [None; NUM_MAT_REGS as usize],
            next_phys: 0,
            renames: 0,
        }
    }
}

impl MatrixMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        MatrixMap::default()
    }

    /// Binds `reg` to a new physical matrix; returns the view.
    ///
    /// A rebind of a live register is counted as a rename (the old
    /// physical binding stays captured by any kernel that resolved it
    /// earlier, so no hazard materialises).
    pub fn bind(
        &mut self,
        reg: MatReg,
        addr: u32,
        rows: usize,
        cols: usize,
        stride: usize,
        sew: Sew,
    ) -> MatView {
        let idx = reg.index() as usize;
        if self.slots[idx].is_some() {
            self.renames += 1;
        }
        let view = MatView {
            addr,
            rows,
            cols,
            stride,
            sew,
            phys_id: self.next_phys,
        };
        self.next_phys += 1;
        self.slots[idx] = Some(view);
        view
    }

    /// Resolves a logical register to its current physical binding.
    pub fn resolve(&self, reg: MatReg) -> Option<MatView> {
        self.slots[reg.index() as usize]
    }

    /// Number of rebinds that triggered renaming.
    pub const fn renames(&self) -> u64 {
        self.renames
    }

    /// Total bindings performed.
    pub const fn bindings(&self) -> u32 {
        self.next_phys
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(i: u8) -> MatReg {
        MatReg::new(i).unwrap()
    }

    #[test]
    fn view_geometry() {
        let v = MatView {
            addr: 0x1000,
            rows: 4,
            cols: 8,
            stride: 1,
            sew: Sew::Half,
            phys_id: 0,
        };
        assert_eq!(v.pitch_bytes(), 16);
        assert_eq!(v.row_addr(2), 0x1020);
        assert_eq!(v.end_addr(), 0x1000 + 4 * 16);
        assert_eq!(v.elems(), 32);
    }

    #[test]
    fn strided_view() {
        let v = MatView {
            addr: 0,
            rows: 2,
            cols: 4,
            stride: 2,
            sew: Sew::Word,
            phys_id: 0,
        };
        assert_eq!(v.pitch_bytes(), 32);
        assert_eq!(v.row_bytes(), 16);
        assert_eq!(v.end_addr(), 32 + 16);
    }

    #[test]
    fn rebinding_renames() {
        let mut map = MatrixMap::new();
        let a = map.bind(m(0), 0x1000, 2, 2, 1, Sew::Word);
        let b = map.bind(m(0), 0x2000, 4, 4, 1, Sew::Word);
        assert_ne!(a.phys_id, b.phys_id, "renaming allocates a fresh id");
        assert_eq!(map.renames(), 1);
        assert_eq!(map.resolve(m(0)).unwrap().addr, 0x2000);
        // The first binding is still usable by whoever captured it.
        assert_eq!(a.addr, 0x1000);
    }

    #[test]
    fn unbound_register_resolves_to_none() {
        let map = MatrixMap::new();
        assert!(map.resolve(m(5)).is_none());
    }
}
