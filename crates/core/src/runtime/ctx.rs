//! The kernel execution context: the Matrix Allocator and VPU dispatch
//! services a [`crate::kernels::Kernel`] uses while it runs.
//!
//! The context owns the kernel's *time cursor*. Every service charges
//! its cycles to one of the paper's four phases (preamble cycles are
//! charged by the decoder before the kernel starts):
//!
//! * [`KernelCtx::load_rows`] — **allocation**: controller lock, dirty
//!   flushes, 2-D DMA of operand rows into the VPU's cache lines;
//! * [`KernelCtx::exec`] / [`KernelCtx::set_scalar`] /
//!   [`KernelCtx::peek`] — **compute**: eCPU issue overhead plus VPU
//!   datapath cycles;
//! * [`KernelCtx::store_row`] / [`KernelCtx::store_row_strided`] —
//!   **writeback**: lock, consolidation DMA back to memory, cache-line
//!   release.

use crate::cache::{CacheTable, LockWindows, ResourceChannel};
use crate::config::CrtTiming;
use crate::kernels::KernelError;
use crate::runtime::map::MatView;
use arcane_fabric::{Fabric, PortStats};
use arcane_isa::vector::{Sr, VInstr, Vr};
use arcane_mem::{Dma2d, DmaJob, ExtMem, Memory};
use arcane_sim::{Phase, PhaseBreakdown, Sew};
use arcane_vpu::Vpu;

/// Execution services available to a running kernel.
#[derive(Debug)]
pub struct KernelCtx<'a> {
    pub(crate) vpus: &'a mut [Vpu],
    pub(crate) vpu_index: usize,
    pub(crate) vregs: usize,
    pub(crate) table: &'a mut CacheTable,
    pub(crate) ext: &'a mut ExtMem,
    pub(crate) dma: Dma2d,
    pub(crate) crt: CrtTiming,
    pub(crate) locks: &'a mut LockWindows,
    /// The shared fabric; this kernel's DMA and dispatch traffic goes
    /// through [`KernelCtx::port`].
    pub(crate) fabric: &'a mut Fabric,
    /// The fabric request port of the VPU running this kernel.
    pub(crate) port: usize,
    pub(crate) ecpu_chan: &'a mut ResourceChannel,
    pub(crate) ecpu_stats: &'a mut PortStats,
    /// Descriptor launch pipeline: the per-VPU decoder front end issues
    /// vector instructions and services scalar-register/element traffic
    /// locally, so those cycles are charged to this kernel's cursor
    /// instead of being serialised on the shared eCPU calendar.
    pub(crate) local_issue: bool,
    pub(crate) t: u64,
    pub(crate) phases: PhaseBreakdown,
    pub(crate) last_alloc_end: u64,
    pub(crate) writebacks: u64,
}

impl<'a> KernelCtx<'a> {
    /// Index of the VPU the scheduler assigned to this kernel.
    pub fn vpu_index(&self) -> usize {
        self.vpu_index
    }

    /// Number of vector registers available on the assigned VPU.
    pub fn vregs(&self) -> usize {
        self.vregs
    }

    /// Maximum vector length in elements for width `sew`.
    pub fn max_vl(&self, sew: Sew) -> usize {
        self.vpus[self.vpu_index].config().max_vl(sew)
    }

    /// Current time cursor (absolute cycles).
    pub fn now(&self) -> u64 {
        self.t
    }

    fn charge(&mut self, phase: Phase, cycles: u64) {
        self.t += cycles;
        self.phases.charge(phase, cycles);
    }

    /// Books eCPU time (the single controller core is shared by every
    /// concurrent kernel) and advances the cursor past the granted slot.
    fn ecpu_work(&mut self, phase: Phase, cycles: u64) {
        let t0 = self.t;
        let (_, end) = self.ecpu_chan.reserve(self.t, cycles);
        self.ecpu_stats.requests += 1;
        self.ecpu_stats.bursts += 1;
        self.ecpu_stats.busy_cycles += cycles;
        self.ecpu_stats.wait_cycles += (end - t0).saturating_sub(cycles);
        self.t = end;
        self.phases.charge(phase, end - t0);
    }

    /// Charges the dispatch of `n_instrs` vector instructions to the
    /// assigned VPU. Under the whole-phase arbiter this is eCPU
    /// software issue ([`CrtTiming::vinstr_issue`] exclusive cycles per
    /// instruction); under the burst arbiters the instructions travel
    /// as dispatch descriptors over the shared fabric to the VPU's own
    /// sequencer, contending with DMA bursts at burst granularity.
    /// Under the descriptor launch pipeline the per-VPU decoder replays
    /// the predecoded micro-program itself: the same per-instruction
    /// cost, but on this kernel's private cursor rather than the shared
    /// eCPU calendar.
    fn dispatch_work(&mut self, n_instrs: u64) {
        if self.fabric.issue_on_fabric() {
            let t0 = self.t;
            let grant = self.fabric.issue(self.port, self.t, n_instrs);
            self.t = grant.end;
            self.phases.charge(Phase::Compute, grant.end - t0);
        } else if self.local_issue {
            self.charge(Phase::Compute, self.crt.vinstr_issue * n_instrs);
        } else {
            self.ecpu_work(Phase::Compute, self.crt.vinstr_issue * n_instrs);
        }
    }

    /// Sets the active vector length and element width.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::Vpu`] if `vl` exceeds the register size.
    pub fn set_vl(&mut self, vl: usize, sew: Sew) -> Result<(), KernelError> {
        let cycles =
            self.vpus[self.vpu_index].execute_one(&VInstr::SetVl { vl: vl as u16, sew })?;
        self.dispatch_work(1);
        self.charge(Phase::Compute, cycles);
        Ok(())
    }

    /// Dispatches a vector micro-program to the VPU, charging eCPU issue
    /// overhead per instruction plus the datapath cycles.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::Vpu`] on a malformed program.
    pub fn exec(&mut self, prog: &[VInstr]) -> Result<(), KernelError> {
        let stats = self.vpus[self.vpu_index].execute(prog)?;
        self.dispatch_work(stats.instrs);
        self.charge(Phase::Compute, stats.cycles);
        Ok(())
    }

    /// Writes a VPU scalar register (filter taps, activation slopes, …).
    /// Charged to the shared eCPU on the legacy launch path, to the
    /// VPU-side descriptor decoder under the batched pipeline.
    pub fn set_scalar(&mut self, rs: Sr, value: u32) {
        self.vpus[self.vpu_index].set_sreg(rs, value);
        if self.local_issue {
            self.charge(Phase::Compute, self.crt.sreg_write);
        } else {
            self.ecpu_work(Phase::Compute, self.crt.sreg_write);
        }
    }

    /// Reads element `idx` of vector register `vreg` through the eCPU
    /// port (used by GeMM to fetch the `A` scalars) — or through the
    /// VPU-side decoder under the batched launch pipeline, where the
    /// read never touches the shared eCPU calendar.
    ///
    /// # Panics
    ///
    /// Panics if the element lies outside the register.
    pub fn peek(&mut self, vreg: Vr, idx: usize, sew: Sew) -> i64 {
        if self.local_issue {
            self.charge(Phase::Compute, self.crt.elem_read);
        } else {
            self.ecpu_work(Phase::Compute, self.crt.elem_read);
        }
        let line = self.vpus[self.vpu_index].line(vreg.index() as usize);
        let o = idx * sew.bytes();
        match sew {
            Sew::Byte => line[o] as i8 as i64,
            Sew::Half => i16::from_le_bytes([line[o], line[o + 1]]) as i64,
            Sew::Word => {
                i32::from_le_bytes([line[o], line[o + 1], line[o + 2], line[o + 3]]) as i64
            }
        }
    }

    fn line_index(&self, vreg: usize) -> usize {
        self.vpu_index * self.vregs + vreg
    }

    /// Flushes every valid dirty cache line overlapping `[start, end)`
    /// to external memory, returning the cycles consumed. This is the
    /// coherence step of the software-driven DMA (§III-A4): allocation
    /// reads must observe host stores that are still cache-resident.
    fn flush_range(&mut self, start: u32, end: u32) -> u64 {
        let idxs: Vec<usize> = self
            .table
            .lines_overlapping(start, end)
            .filter(|(_, l)| l.dirty)
            .map(|(i, _)| i)
            .collect();
        let mut cycles = 0;
        let line_bytes = self.table.line_bytes();
        for i in idxs {
            let tag = self.table.line(i).tag;
            let (v, r) = (i / self.vregs, i % self.vregs);
            let data = self.vpus[v].line(r).to_vec();
            self.ext
                .write_bytes(tag, &data)
                .expect("cached tag must map to external memory");
            cycles += self.ext.burst_cycles(line_bytes as u64);
            let l = self.table.line_mut(i);
            l.dirty = false;
            self.writebacks += 1;
        }
        cycles
    }

    /// Evicts whatever the cache holds in this VPU's register `vreg`
    /// (write-back if dirty), freeing it for kernel data.
    fn evict_vreg(&mut self, vreg: usize) -> u64 {
        let i = self.line_index(vreg);
        let l = *self.table.line(i);
        let mut cycles = 0;
        if l.valid {
            if l.dirty {
                let data = self.vpus[self.vpu_index].line(vreg).to_vec();
                self.ext
                    .write_bytes(l.tag, &data)
                    .expect("cached tag must map to external memory");
                cycles += self.ext.burst_cycles(self.table.line_bytes() as u64);
                self.writebacks += 1;
            }
            let l = self.table.line_mut(i);
            l.valid = false;
            l.dirty = false;
        }
        cycles
    }

    /// Loads `n_rows` rows of `mat`, starting at `row0`, into
    /// consecutive vector registers beginning at `vreg0` (one row per
    /// register). One 2-D DMA transaction under the controller lock.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::RowTooWide`] if a row exceeds the vector
    /// length.
    ///
    /// # Panics
    ///
    /// Panics if the rows lie outside external memory (the decoder
    /// validates operand ranges first).
    pub fn load_rows(
        &mut self,
        mat: &MatView,
        row0: usize,
        n_rows: usize,
        vreg0: usize,
    ) -> Result<(), KernelError> {
        let vlen = self.vpus[self.vpu_index].config().vlen_bytes;
        if mat.row_bytes() as usize > vlen {
            return Err(KernelError::RowTooWide {
                cols: mat.cols,
                max: vlen / mat.sew.bytes(),
            });
        }
        let t0 = self.t;
        let mut work = self.crt.lock_acquire + self.crt.tile_overhead;

        // Coherence: push host-dirty data for these rows out to memory.
        let start = mat.row_addr(row0);
        let end = mat.row_addr(row0 + n_rows - 1) + mat.row_bytes();
        work += self.flush_range(start, end);

        // Free the target registers.
        for v in vreg0..vreg0 + n_rows {
            work += self.evict_vreg(v);
        }

        self.t += work;

        // The shared fabric: the DMA's burst train is granted under the
        // configured arbiter (one contiguous window under whole-phase).
        let job = DmaJob {
            src: start,
            dst: 0, // destination is the VPU register file, filled below
            elem_bytes: mat.sew.bytes() as u32,
            cols: mat.cols as u32,
            rows: n_rows as u32,
            src_stride: mat.pitch_bytes(),
            dst_stride: vlen as u32,
        };
        let dma_cycles = self.dma.timing().cycles(&job)
            + self
                .ext
                .burst_cycles(job.bytes())
                .saturating_sub(job.bytes().div_ceil(4));
        let dma_end = self
            .fabric
            .request(self.port, start, self.t, dma_cycles)
            .end;

        // Functional copy: external memory -> vector registers.
        let row_bytes = mat.row_bytes() as usize;
        let mut buf = vec![0u8; row_bytes];
        for r in 0..n_rows {
            self.ext
                .read_bytes(mat.row_addr(row0 + r), &mut buf)
                .expect("operand rows must lie in external memory");
            let dst = self.vpus[self.vpu_index].line_mut(vreg0 + r);
            dst[..row_bytes].copy_from_slice(&buf);
            dst[row_bytes..].fill(0);
        }

        let t_end = dma_end + self.crt.lock_release;
        self.phases.charge(Phase::Allocation, t_end - t0);
        self.t = t_end;
        self.locks.add(t0, t_end);
        self.last_alloc_end = self.last_alloc_end.max(t_end);
        Ok(())
    }

    /// Zero-fills vector register `vreg` (also evicts cached data from
    /// that line). Charged as compute (a broadcast would do the same).
    pub fn clear_vreg(&mut self, vreg: usize) {
        let cycles = self.evict_vreg(vreg);
        self.vpus[self.vpu_index].line_mut(vreg).fill(0);
        let bw = self.vpus[self.vpu_index].config().bytes_per_cycle();
        let vlen = self.vpus[self.vpu_index].config().vlen_bytes as u64;
        self.charge(
            Phase::Compute,
            cycles + self.crt.vinstr_issue + vlen.div_ceil(bw),
        );
    }

    /// Writes the first `n_elems` elements of `vreg` densely to
    /// `dst_addr` (writeback consolidation DMA, under the lock).
    pub fn store_row(&mut self, vreg: usize, n_elems: usize, sew: Sew, dst_addr: u32) {
        self.store_row_strided(vreg, 0, 1, n_elems, sew, dst_addr);
    }

    /// Scatters the first `n` elements of `vreg` to `dst_addr` with
    /// `dst_pitch_bytes` between consecutive elements — a row written
    /// out as a *column* (2-D DMA with a one-element row), used by the
    /// transpose kernel.
    ///
    /// # Panics
    ///
    /// Panics if the destination lies outside external memory.
    pub fn store_row_as_column(
        &mut self,
        vreg: usize,
        n: usize,
        sew: Sew,
        dst_addr: u32,
        dst_pitch_bytes: u32,
    ) {
        let t0 = self.t;
        let mut work = self.crt.lock_acquire;
        let span = dst_pitch_bytes * (n as u32 - 1) + sew.bytes() as u32;
        work += self.flush_range(dst_addr, dst_addr + span);
        let stale: Vec<usize> = self
            .table
            .lines_overlapping(dst_addr, dst_addr + span)
            .map(|(i, _)| i)
            .collect();
        for i in stale {
            let l = self.table.line_mut(i);
            l.valid = false;
            l.dirty = false;
        }
        self.t += work;

        let job = DmaJob {
            src: 0,
            dst: dst_addr,
            elem_bytes: sew.bytes() as u32,
            cols: 1,
            rows: n as u32,
            src_stride: sew.bytes() as u32,
            dst_stride: dst_pitch_bytes,
        };
        // Scattered single-element writes cannot burst: every element
        // pays a random-access cost.
        let dma_cycles =
            self.dma.timing().cycles(&job) + self.ext.first_word_cycles() * n as u64 / 4;
        let dma_end = self
            .fabric
            .request(self.port, dst_addr, self.t, dma_cycles)
            .end;

        let src = self.vpus[self.vpu_index].line(vreg);
        let mut elems = Vec::with_capacity(n);
        for i in 0..n {
            let o = i * sew.bytes();
            elems.push(src[o..o + sew.bytes()].to_vec());
        }
        for (i, e) in elems.iter().enumerate() {
            self.ext
                .write_bytes(dst_addr + i as u32 * dst_pitch_bytes, e)
                .expect("kernel destination must lie in external memory");
        }

        let t_end = dma_end + self.crt.lock_release;
        self.phases.charge(Phase::Writeback, t_end - t0);
        self.t = t_end;
        self.locks.add(t0, t_end);
    }

    /// Gathers `n_out` elements of `vreg` — elements
    /// `first_elem, first_elem + elem_stride, …` — and writes them
    /// densely to `dst_addr`. This is how pooled/strided results are
    /// consolidated into a contiguous destination (§IV-B3).
    ///
    /// # Panics
    ///
    /// Panics if the destination lies outside external memory.
    pub fn store_row_strided(
        &mut self,
        vreg: usize,
        first_elem: usize,
        elem_stride: usize,
        n_out: usize,
        sew: Sew,
        dst_addr: u32,
    ) {
        let t0 = self.t;
        let mut work = self.crt.lock_acquire;

        let bytes_out = (n_out * sew.bytes()) as u32;
        // Preserve host-dirty bytes sharing cache lines with the
        // destination, then drop the stale cached copies.
        work += self.flush_range(dst_addr, dst_addr + bytes_out);
        let stale: Vec<usize> = self
            .table
            .lines_overlapping(dst_addr, dst_addr + bytes_out)
            .map(|(i, _)| i)
            .collect();
        for i in stale {
            let l = self.table.line_mut(i);
            l.valid = false;
            l.dirty = false;
        }
        self.t += work;

        let job = DmaJob {
            src: 0,
            dst: dst_addr,
            elem_bytes: sew.bytes() as u32,
            cols: 1,
            rows: n_out as u32,
            src_stride: (elem_stride * sew.bytes()) as u32,
            dst_stride: sew.bytes() as u32,
        };
        // A dense row (stride 1) is a single-row burst for the DMA.
        let dma_cycles = if elem_stride == 1 {
            let dense = DmaJob {
                cols: n_out as u32,
                rows: 1,
                src_stride: bytes_out,
                dst_stride: bytes_out,
                ..job
            };
            self.dma.timing().cycles(&dense)
        } else {
            self.dma.timing().cycles(&job)
        } + self
            .ext
            .burst_cycles(bytes_out as u64)
            .saturating_sub(bytes_out as u64 / 4);

        let dma_end = self
            .fabric
            .request(self.port, dst_addr, self.t, dma_cycles)
            .end;

        // Functional gather: vreg -> external memory.
        let src = self.vpus[self.vpu_index].line(vreg);
        let mut out = Vec::with_capacity(n_out * sew.bytes());
        for k in 0..n_out {
            let o = (first_elem + k * elem_stride) * sew.bytes();
            out.extend_from_slice(&src[o..o + sew.bytes()]);
        }
        self.ext
            .write_bytes(dst_addr, &out)
            .expect("kernel destination must lie in external memory");

        let t_end = dma_end + self.crt.lock_release;
        self.phases.charge(Phase::Writeback, t_end - t0);
        self.t = t_end;
        self.locks.add(t0, t_end);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheTable;
    use arcane_fabric::FabricConfig;
    use arcane_vpu::VpuConfig;

    fn fixture() -> (Vec<Vpu>, CacheTable, ExtMem, LockWindows) {
        let vpus = vec![Vpu::new(VpuConfig::with_lanes(4)); 2];
        let table = CacheTable::new(64, 1024);
        let ext = ExtMem::new(0x2000_0000, 1 << 20, 10, 1);
        (vpus, table, ext, LockWindows::new())
    }

    struct Shared {
        fabric: Fabric,
        ecpu: ResourceChannel,
        ecpu_stats: PortStats,
    }

    fn shared() -> Shared {
        Shared {
            fabric: Fabric::new(FabricConfig::default_config(), 2),
            ecpu: ResourceChannel::new(),
            ecpu_stats: PortStats::default(),
        }
    }

    fn ctx<'a>(
        vpus: &'a mut Vec<Vpu>,
        table: &'a mut CacheTable,
        ext: &'a mut ExtMem,
        locks: &'a mut LockWindows,
        sh: &'a mut Shared,
    ) -> KernelCtx<'a> {
        KernelCtx {
            vpus,
            vpu_index: 0,
            vregs: 32,
            table,
            ext,
            dma: Dma2d::default(),
            crt: CrtTiming::default_tariff(),
            locks,
            fabric: &mut sh.fabric,
            port: Fabric::vpu_port(0),
            ecpu_chan: &mut sh.ecpu,
            ecpu_stats: &mut sh.ecpu_stats,
            local_issue: false,
            t: 1000,
            phases: PhaseBreakdown::default(),
            last_alloc_end: 0,
            writebacks: 0,
        }
    }

    #[test]
    fn load_rows_copies_and_charges_allocation() {
        let (mut vpus, mut table, mut ext, mut locks) = fixture();
        for i in 0..64u32 {
            ext.write_u32(0x2000_0000 + i * 4, i).unwrap();
        }
        let mut chans = shared();
        let mut c = ctx(&mut vpus, &mut table, &mut ext, &mut locks, &mut chans);
        let mat = MatView {
            addr: 0x2000_0000,
            rows: 4,
            cols: 8,
            stride: 2, // pitch 16 elements
            sew: Sew::Word,
            phys_id: 0,
        };
        c.load_rows(&mat, 1, 2, 5).unwrap();
        assert!(c.phases.allocation > 0);
        assert_eq!(c.phases.compute, 0);
        // row 1 starts at element 16 (pitch = 2*8 = 16 words)
        let line = vpus[0].line(5);
        assert_eq!(i32::from_le_bytes([line[0], line[1], line[2], line[3]]), 16);
        assert!(!locks.is_empty(), "allocation must hold the lock");
    }

    #[test]
    fn row_too_wide_is_rejected() {
        let (mut vpus, mut table, mut ext, mut locks) = fixture();
        let mut chans = shared();
        let mut c = ctx(&mut vpus, &mut table, &mut ext, &mut locks, &mut chans);
        let mat = MatView {
            addr: 0x2000_0000,
            rows: 1,
            cols: 300, // 1200 bytes > 1024
            stride: 1,
            sew: Sew::Word,
            phys_id: 0,
        };
        assert!(matches!(
            c.load_rows(&mat, 0, 1, 0),
            Err(KernelError::RowTooWide { .. })
        ));
    }

    #[test]
    fn dirty_cache_line_is_flushed_before_allocation() {
        let (mut vpus, mut table, mut ext, mut locks) = fixture();
        // Host wrote 0xAB into a cached line covering the operand.
        let tag = 0x2000_0000;
        table.line_mut(40).valid = true;
        table.line_mut(40).dirty = true;
        table.line_mut(40).tag = tag;
        vpus[1].line_mut(8)[0] = 0xab; // line 40 = vpu 1, vreg 8
        let mut chans = shared();
        let mut c = ctx(&mut vpus, &mut table, &mut ext, &mut locks, &mut chans);
        let mat = MatView {
            addr: tag,
            rows: 1,
            cols: 4,
            stride: 1,
            sew: Sew::Byte,
            phys_id: 0,
        };
        c.load_rows(&mat, 0, 1, 0).unwrap();
        // The allocator must see the host's 0xAB, not stale memory.
        assert_eq!(vpus[0].line(0)[0], 0xab);
        assert!(!table.line(40).dirty, "flush clears dirty");
    }

    #[test]
    fn store_row_strided_gathers_elements() {
        let (mut vpus, mut table, mut ext, mut locks) = fixture();
        for i in 0..8 {
            vpus[0].line_mut(3)[i * 4..i * 4 + 4].copy_from_slice(&(i as i32).to_le_bytes());
        }
        let mut chans = shared();
        let mut c = ctx(&mut vpus, &mut table, &mut ext, &mut locks, &mut chans);
        c.store_row_strided(3, 0, 2, 4, Sew::Word, 0x2000_4000);
        assert!(c.phases.writeback > 0);
        for k in 0..4u32 {
            assert_eq!(ext.read_u32(0x2000_4000 + k * 4).unwrap(), 2 * k);
        }
    }

    #[test]
    fn compute_services_charge_compute_phase() {
        let (mut vpus, mut table, mut ext, mut locks) = fixture();
        let mut chans = shared();
        let mut c = ctx(&mut vpus, &mut table, &mut ext, &mut locks, &mut chans);
        c.set_vl(8, Sew::Word).unwrap();
        c.set_scalar(Sr::new(0).unwrap(), 7);
        let before = c.phases.compute;
        c.exec(&[VInstr::BroadcastX {
            vd: Vr::new(1).unwrap(),
            rs: Sr::new(0).unwrap(),
        }])
        .unwrap();
        assert!(c.phases.compute > before);
        assert_eq!(c.peek(Vr::new(1).unwrap(), 3, Sew::Word), 7);
    }

    #[test]
    fn local_issue_keeps_control_traffic_off_the_ecpu() {
        let (mut vpus, mut table, mut ext, mut locks) = fixture();
        let mut chans = shared();
        let mut c = ctx(&mut vpus, &mut table, &mut ext, &mut locks, &mut chans);
        c.local_issue = true;
        c.set_vl(8, Sew::Word).unwrap();
        c.set_scalar(Sr::new(0).unwrap(), 7);
        c.exec(&[VInstr::BroadcastX {
            vd: Vr::new(1).unwrap(),
            rs: Sr::new(0).unwrap(),
        }])
        .unwrap();
        assert_eq!(c.peek(Vr::new(1).unwrap(), 0, Sew::Word), 7);
        assert!(c.phases.compute > 0, "cycles still charged to the kernel");
        assert!(
            chans.ecpu.is_empty(),
            "descriptor-mode control traffic must not book the eCPU"
        );
        assert_eq!(chans.ecpu_stats.requests, 0);
    }

    #[test]
    fn dma_channel_serialises() {
        let (mut vpus, mut table, mut ext, mut locks) = fixture();
        let mut chans = shared();
        // Another kernel's transfer occupies the fabric around the time
        // this kernel wants it.
        chans
            .fabric
            .request(Fabric::vpu_port(1), 0x2000_0000, 0, 5_000);
        let mut c = ctx(&mut vpus, &mut table, &mut ext, &mut locks, &mut chans);
        let mat = MatView {
            addr: 0x2000_0000,
            rows: 1,
            cols: 4,
            stride: 1,
            sew: Sew::Word,
            phys_id: 0,
        };
        c.load_rows(&mat, 0, 1, 0).unwrap();
        assert!(c.now() > 5_000, "transfer must wait for the DMA channel");
    }
}
