//! The cache-controller lock (paper §III-A2).
//!
//! The Matrix Allocator acquires the lock before programming DMA
//! transfers (allocation and writeback) and releases it afterwards.
//! While the eCPU holds the lock the host CPU is blocked from accessing
//! the cache. Because kernel phases are scheduled with absolute cycle
//! times, the lock is represented as a set of *windows*: a host access
//! landing inside a window stalls to its end.

/// Absolute-time windows during which the eCPU holds the controller
/// lock.
#[derive(Debug, Clone, Default)]
pub struct LockWindows {
    /// Non-overlapping, sorted `(start, end)` windows.
    windows: Vec<(u64, u64)>,
}

impl LockWindows {
    /// Creates an empty set of windows.
    pub fn new() -> Self {
        LockWindows::default()
    }

    /// Records a lock hold from `start` (inclusive) to `end` (exclusive).
    ///
    /// # Panics
    ///
    /// Panics if `end < start`.
    pub fn add(&mut self, start: u64, end: u64) {
        assert!(end >= start, "lock window ends before it starts");
        if end == start {
            return;
        }
        self.windows.push((start, end));
        // Keep sorted; windows are appended roughly in order, so this is
        // nearly O(1) amortised.
        let mut i = self.windows.len() - 1;
        while i > 0 && self.windows[i - 1].0 > self.windows[i].0 {
            self.windows.swap(i - 1, i);
            i -= 1;
        }
    }

    /// If the host touches the cache at `now` while a window is open,
    /// returns the cycle at which the lock releases.
    pub fn stall_until(&self, now: u64) -> Option<u64> {
        // Scan from the most recent windows backwards: accesses arrive
        // in roughly increasing time order.
        for &(s, e) in self.windows.iter().rev() {
            if s <= now && now < e {
                return Some(e);
            }
            if e <= now {
                break;
            }
        }
        None
    }

    /// Drops windows that ended at or before `now` (bookkeeping bound).
    pub fn prune(&mut self, now: u64) {
        self.windows.retain(|&(_, e)| e > now);
    }

    /// Number of live windows.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// `true` when no windows are recorded.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_inside_window_stalls_to_end() {
        let mut w = LockWindows::new();
        w.add(100, 200);
        assert_eq!(w.stall_until(150), Some(200));
        assert_eq!(w.stall_until(99), None);
        assert_eq!(w.stall_until(200), None, "end is exclusive");
    }

    #[test]
    fn multiple_windows() {
        let mut w = LockWindows::new();
        w.add(100, 200);
        w.add(300, 400);
        assert_eq!(w.stall_until(350), Some(400));
        assert_eq!(w.stall_until(250), None);
    }

    #[test]
    fn out_of_order_insertion_is_sorted() {
        let mut w = LockWindows::new();
        w.add(300, 400);
        w.add(100, 200);
        assert_eq!(w.stall_until(150), Some(200));
        assert_eq!(w.stall_until(399), Some(400));
    }

    #[test]
    fn empty_window_is_ignored() {
        let mut w = LockWindows::new();
        w.add(5, 5);
        assert!(w.is_empty());
    }

    #[test]
    fn prune_drops_past_windows() {
        let mut w = LockWindows::new();
        w.add(0, 10);
        w.add(20, 30);
        w.prune(15);
        assert_eq!(w.len(), 1);
        assert_eq!(w.stall_until(25), Some(30));
    }
}
