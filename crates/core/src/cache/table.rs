//! The Cache Table (CT): fully-associative line state with a
//! counter-based approximate-LRU replacement policy (paper §III-A1).

/// State of one cache line.
///
/// A line is simultaneously one VPU vector register; `busy_until`
/// implements the *busy computing* status of §III-A2 — while a kernel
/// owns the line, normal cache operations must not touch it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineState {
    /// Line-aligned base address of the cached block (valid lines only).
    pub tag: u32,
    /// The line holds a cached copy of memory.
    pub valid: bool,
    /// The line diverges from backing memory (write-back policy).
    pub dirty: bool,
    /// Absolute cycle until which the line belongs to an in-flight
    /// kernel (`0` = free).
    pub busy_until: u64,
    /// Approximate-LRU age counter (higher = more recently used).
    /// The stored value is relative to [`LineState::lru_epoch`]; the
    /// table decays it lazily (see [`CacheTable::touch`]).
    pub lru: u8,
    /// Aging epoch in which `lru` was last written.
    pub lru_epoch: u32,
    /// The line caches part of a registered kernel *source* operand
    /// (streamlines AT lookups, §III-A3).
    pub is_src: bool,
    /// The line caches part of a registered kernel *destination*.
    pub is_dst: bool,
}

impl LineState {
    const fn empty() -> Self {
        LineState {
            tag: 0,
            valid: false,
            dirty: false,
            busy_until: 0,
            lru: 0,
            lru_epoch: 0,
            is_src: false,
            is_dst: false,
        }
    }

    /// `true` when a kernel owns the line at time `now`.
    pub const fn is_busy(&self, now: u64) -> bool {
        self.busy_until > now
    }
}

/// Outcome of a victim search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Victim {
    /// A line is available for replacement.
    Line(usize),
    /// Every line is busy computing until at least this cycle
    /// (the requester must stall and retry).
    AllBusyUntil(u64),
}

/// The fully-associative Cache Table.
///
/// The number of lines equals the aggregate vector-register capacity of
/// the system (`n_vpus × 32`), and the line length equals the maximum
/// supported vector size (1 KiB), exactly as §III-A1 prescribes.
#[derive(Debug, Clone)]
pub struct CacheTable {
    lines: Vec<LineState>,
    line_bytes: usize,
    /// Accesses since the last LRU aging pass.
    accesses_since_aging: u32,
    /// Aging period (accesses between global decays).
    aging_period: u32,
    /// Current aging epoch. A line's effective age is its stored `lru`
    /// decayed once per epoch elapsed since it was written — the same
    /// numbers an eager full-table decay pass would produce, without
    /// walking every line every period.
    epoch: u32,
    /// Recently-resolved `(tag, index)` pairs consulted before the
    /// associative scan. Entries are *hints*: every hit is validated
    /// against the line state, so external mutation through
    /// [`CacheTable::line_mut`] can never produce a wrong lookup —
    /// a stale hint just falls back to the scan.
    mru: [(u32, u32); MRU_WAYS],
}

/// Number of MRU lookup hints (sized for the working set of a conv
/// inner loop: output line + input rows + filter lines).
const MRU_WAYS: usize = 8;

impl CacheTable {
    /// Creates a table of `n_lines` lines of `line_bytes` each.
    ///
    /// # Panics
    ///
    /// Panics unless `line_bytes` is a power of two — tag and
    /// line-offset arithmetic here and in the LLCs mask instead of
    /// dividing.
    pub fn new(n_lines: usize, line_bytes: usize) -> Self {
        assert!(
            line_bytes.is_power_of_two(),
            "cache line size must be a power of two, got {line_bytes}"
        );
        CacheTable {
            lines: vec![LineState::empty(); n_lines],
            line_bytes,
            accesses_since_aging: 0,
            aging_period: 64,
            epoch: 0,
            mru: [(u32::MAX, u32::MAX); MRU_WAYS],
        }
    }

    /// Number of lines.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// `true` when the table has no lines.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// Line size in bytes.
    pub const fn line_bytes(&self) -> usize {
        self.line_bytes
    }

    /// The line-aligned tag of `addr`.
    pub fn tag_of(&self, addr: u32) -> u32 {
        addr & !(self.line_bytes as u32 - 1)
    }

    /// Immutable view of line `idx`.
    pub fn line(&self, idx: usize) -> &LineState {
        &self.lines[idx]
    }

    /// Mutable view of line `idx`.
    pub fn line_mut(&mut self, idx: usize) -> &mut LineState {
        &mut self.lines[idx]
    }

    /// Finds the valid line holding `addr`, if any, without updating
    /// LRU state.
    pub fn lookup(&mut self, addr: u32) -> Option<usize> {
        self.probe(addr).map(|(idx, _)| idx)
    }

    /// MRU-hinted associative probe: the single home of the lookup
    /// policy, shared by [`CacheTable::lookup`] and
    /// [`CacheTable::access`].
    ///
    /// The table is fully associative with at most one valid line per
    /// tag (refill only allocates after a lookup miss), so the hinted
    /// fast path and the associative scan return the same line. Hints
    /// are validated against the line state, so external mutation
    /// through [`CacheTable::line_mut`] can never produce a wrong
    /// result — a stale hint just falls back to the scan, which
    /// refreshes the hint array.
    fn probe(&mut self, addr: u32) -> Option<(usize, u32)> {
        let tag = self.tag_of(addr);
        for &(t, i) in &self.mru {
            if t == tag {
                let l = &self.lines[i as usize];
                if l.valid && l.tag == tag {
                    return Some((i as usize, tag));
                }
                break;
            }
        }
        let pos = self.lines.iter().position(|l| l.valid && l.tag == tag)?;
        self.mru.rotate_right(1);
        self.mru[0] = (tag, pos as u32);
        Some((pos, tag))
    }

    /// Marks line `idx` as just used (approximate LRU: the counter is
    /// set to the maximum; every [`aging period`](Self::new) accesses
    /// every counter decays by one — applied lazily via the epoch).
    pub fn touch(&mut self, idx: usize) {
        self.lines[idx].lru = u8::MAX;
        self.lines[idx].lru_epoch = self.epoch;
        self.accesses_since_aging += 1;
        if self.accesses_since_aging >= self.aging_period {
            self.accesses_since_aging = 0;
            self.epoch = self.epoch.wrapping_add(1);
        }
    }

    /// Effective (lazily decayed) age counter of line `idx` (higher =
    /// more recently used), as the eager per-period full-table decay
    /// would have left it.
    pub fn age_of(&self, idx: usize) -> u8 {
        self.effective_lru(&self.lines[idx])
    }

    /// Effective (lazily decayed) age of a line: the stored counter
    /// minus one per aging epoch elapsed since it was written, exactly
    /// as the eager per-period full-table decay would have left it.
    fn effective_lru(&self, l: &LineState) -> u8 {
        let elapsed = self.epoch.wrapping_sub(l.lru_epoch).min(255) as u8;
        l.lru.saturating_sub(elapsed)
    }

    /// Combined [`CacheTable::lookup`] + [`CacheTable::touch`] for the
    /// cache hit path; returns the line index and its tag.
    #[inline]
    pub fn access(&mut self, addr: u32) -> Option<(usize, u32)> {
        let hit = self.probe(addr)?;
        self.touch(hit.0);
        Some(hit)
    }

    /// Selects a replacement victim at time `now`: the non-busy line
    /// with the lowest age counter (invalid lines win immediately).
    pub fn victim(&self, now: u64) -> Victim {
        let mut best: Option<(usize, u16)> = None;
        let mut min_busy = u64::MAX;
        for (i, l) in self.lines.iter().enumerate() {
            if l.is_busy(now) {
                min_busy = min_busy.min(l.busy_until);
                continue;
            }
            if !l.valid {
                return Victim::Line(i);
            }
            // Prefer clean lines at equal age by biasing dirty lines up.
            let score = self.effective_lru(l) as u16 * 2 + l.dirty as u16;
            match best {
                Some((_, s)) if s <= score => {}
                _ => best = Some((i, score)),
            }
        }
        match best {
            Some((i, _)) => Victim::Line(i),
            None => Victim::AllBusyUntil(min_busy),
        }
    }

    /// Iterates over `(index, state)` of lines whose cached block
    /// overlaps `[start, end)`.
    pub fn lines_overlapping(
        &self,
        start: u32,
        end: u32,
    ) -> impl Iterator<Item = (usize, &LineState)> {
        let lb = self.line_bytes as u64;
        self.lines.iter().enumerate().filter(move |(_, l)| {
            l.valid && (l.tag as u64) < end as u64 && (l.tag as u64 + lb) > start as u64
        })
    }

    /// Number of valid dirty lines within the line-index range
    /// `[from, to)` (used by the scheduler's fewest-dirty-lines policy).
    pub fn dirty_in_range(&self, from: usize, to: usize) -> usize {
        self.lines[from..to]
            .iter()
            .filter(|l| l.valid && l.dirty)
            .count()
    }

    /// Number of **invalid** (free) lines within the line-index range
    /// `[from, to)` (used by the scheduler's most-free policy).
    pub fn free_in_range(&self, from: usize, to: usize) -> usize {
        self.lines[from..to].iter().filter(|l| !l.valid).count()
    }

    /// Debug invariant: no two valid lines share a tag.
    pub fn check_no_duplicate_tags(&self) -> bool {
        let mut tags: Vec<u32> = self
            .lines
            .iter()
            .filter(|l| l.valid)
            .map(|l| l.tag)
            .collect();
        tags.sort_unstable();
        tags.windows(2).all(|w| w[0] != w[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> CacheTable {
        CacheTable::new(8, 1024)
    }

    #[test]
    fn tag_alignment() {
        let t = table();
        assert_eq!(t.tag_of(0x2000_0000), 0x2000_0000);
        assert_eq!(t.tag_of(0x2000_03ff), 0x2000_0000);
        assert_eq!(t.tag_of(0x2000_0400), 0x2000_0400);
    }

    #[test]
    fn lookup_finds_valid_lines_only() {
        let mut t = table();
        t.line_mut(3).tag = 0x2000_0400;
        assert_eq!(t.lookup(0x2000_0410), None, "invalid line is not a hit");
        t.line_mut(3).valid = true;
        assert_eq!(t.lookup(0x2000_0410), Some(3));
    }

    #[test]
    fn victim_prefers_invalid_then_oldest() {
        let mut t = table();
        for i in 0..8 {
            let l = t.line_mut(i);
            l.valid = true;
            l.tag = 0x2000_0000 + (i as u32) * 1024;
        }
        t.touch(0);
        t.touch(1); // lines 2..7 remain at lru 0
        match t.victim(0) {
            Victim::Line(i) => assert!(i >= 2, "touched lines must not be victims"),
            v => panic!("{v:?}"),
        }
        t.line_mut(5).valid = false;
        assert_eq!(t.victim(0), Victim::Line(5), "invalid line wins");
    }

    #[test]
    fn victim_skips_busy_lines() {
        let mut t = table();
        for i in 0..8 {
            let l = t.line_mut(i);
            l.valid = true;
            l.tag = (i as u32) * 1024;
            l.busy_until = 100;
        }
        assert_eq!(t.victim(50), Victim::AllBusyUntil(100));
        t.line_mut(2).busy_until = 0;
        assert_eq!(t.victim(50), Victim::Line(2));
        // After the busy window expires everything is eligible again.
        assert!(matches!(t.victim(100), Victim::Line(_)));
    }

    #[test]
    fn clean_preferred_over_dirty_at_equal_age() {
        let mut t = table();
        for i in 0..8 {
            let l = t.line_mut(i);
            l.valid = true;
            l.tag = (i as u32) * 1024;
            l.dirty = i == 0;
        }
        match t.victim(0) {
            Victim::Line(i) => assert_ne!(i, 0),
            v => panic!("{v:?}"),
        }
    }

    #[test]
    fn aging_decays_counters() {
        let mut t = CacheTable::new(2, 1024);
        t.line_mut(0).valid = true;
        t.touch(0);
        assert_eq!(t.age_of(0), u8::MAX);
        for _ in 0..64 {
            t.touch(1);
        }
        assert!(t.age_of(0) < u8::MAX, "aging pass must decay counters");
        assert_eq!(t.age_of(1), u8::MAX, "line 1 was just touched");
    }

    #[test]
    fn overlap_iterator() {
        let mut t = table();
        t.line_mut(0).valid = true;
        t.line_mut(0).tag = 0x1000;
        t.line_mut(1).valid = true;
        t.line_mut(1).tag = 0x2000;
        let hits: Vec<usize> = t
            .lines_overlapping(0x13ff, 0x1401)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(hits, vec![0]);
        let hits: Vec<usize> = t
            .lines_overlapping(0x1000, 0x2400)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(hits, vec![0, 1]);
    }

    #[test]
    fn no_duplicate_tags_invariant() {
        let mut t = table();
        t.line_mut(0).valid = true;
        t.line_mut(0).tag = 0x1000;
        assert!(t.check_no_duplicate_tags());
        t.line_mut(1).valid = true;
        t.line_mut(1).tag = 0x1000;
        assert!(!t.check_no_duplicate_tags());
    }
}
