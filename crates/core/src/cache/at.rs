//! The Address Table (AT): kernel operand ranges and their protection
//! windows (paper §III-A3).
//!
//! Each entry records the start and end address of a kernel operand,
//! whether it is a source or a destination, and *until when* the
//! hazard-avoidance policy must block conflicting host accesses:
//!
//! * **sources** — host *stores* are blocked until allocation completes
//!   (WAR: the store must not overwrite data the allocator is copying);
//! * **destinations** — *all* host accesses are blocked until kernel
//!   writeback completes (RAW: reads would observe stale data; WAW: a
//!   store would be overwritten by the kernel result).

use std::error::Error;
use std::fmt;

/// Whether an operand region is read or written by its kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OperandKind {
    /// Kernel input (protected against host stores during allocation).
    Source,
    /// Kernel output (protected against all host accesses until
    /// writeback).
    Destination,
}

/// One Address Table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AtEntry {
    /// First byte of the operand region.
    pub start: u32,
    /// One past the last byte of the region.
    pub end: u32,
    /// Source or destination.
    pub kind: OperandKind,
    /// Absolute cycle at which the protection lapses
    /// (allocation end for sources, writeback end for destinations).
    pub protect_until: u64,
    /// Physical matrix id the region belongs to (after renaming).
    pub matrix: u32,
}

impl AtEntry {
    /// `true` when `[addr, addr+len)` overlaps this entry.
    pub fn overlaps(&self, addr: u32, len: u32) -> bool {
        (addr as u64) < self.end as u64 && (addr as u64 + len as u64) > self.start as u64
    }
}

/// Error raised when the statically sized AT is exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AtFull {
    /// Configured capacity.
    pub capacity: usize,
}

impl fmt::Display for AtFull {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "address table full ({} entries)", self.capacity)
    }
}

impl Error for AtFull {}

/// The statically allocated Address Table.
#[derive(Debug, Clone)]
pub struct AddressTable {
    entries: Vec<AtEntry>,
    capacity: usize,
}

impl AddressTable {
    /// Creates an AT with a fixed `capacity` (static allocation, per the
    /// C-RT philosophy of §IV-B).
    pub fn new(capacity: usize) -> Self {
        AddressTable {
            entries: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Live entries.
    pub fn entries(&self) -> &[AtEntry] {
        &self.entries
    }

    /// Registers an operand region.
    ///
    /// Expired entries (protection lapsed at or before `now`) are
    /// recycled first, mirroring the fixed-size table of the hardware.
    ///
    /// # Errors
    ///
    /// Returns [`AtFull`] when no slot can be recycled.
    pub fn register(&mut self, entry: AtEntry, now: u64) -> Result<(), AtFull> {
        self.entries.retain(|e| e.protect_until > now);
        if self.entries.len() >= self.capacity {
            return Err(AtFull {
                capacity: self.capacity,
            });
        }
        self.entries.push(entry);
        Ok(())
    }

    /// The cycle until which a host access must stall, if any.
    ///
    /// `is_store` selects the WAR rule for sources; destinations block
    /// both directions.
    pub fn stall_until(&self, addr: u32, len: u32, is_store: bool, now: u64) -> Option<u64> {
        let mut worst: Option<u64> = None;
        for e in &self.entries {
            if e.protect_until <= now || !e.overlaps(addr, len) {
                continue;
            }
            let blocks = match e.kind {
                OperandKind::Source => is_store,
                OperandKind::Destination => true,
            };
            if blocks {
                worst = Some(worst.map_or(e.protect_until, |w| w.max(e.protect_until)));
            }
        }
        worst
    }

    /// `true` when `[addr, addr+len)` overlaps any live operand
    /// (the CT consults this only for lines flagged src/dst, keeping the
    /// one-cycle hit path).
    pub fn is_operand(&self, addr: u32, len: u32, now: u64) -> bool {
        self.entries
            .iter()
            .any(|e| e.protect_until > now && e.overlaps(addr, len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(start: u32, end: u32, kind: OperandKind, until: u64) -> AtEntry {
        AtEntry {
            start,
            end,
            kind,
            protect_until: until,
            matrix: 0,
        }
    }

    #[test]
    fn source_blocks_stores_only() {
        let mut at = AddressTable::new(4);
        at.register(entry(0x100, 0x200, OperandKind::Source, 1000), 0)
            .unwrap();
        assert_eq!(at.stall_until(0x180, 4, true, 10), Some(1000), "WAR");
        assert_eq!(at.stall_until(0x180, 4, false, 10), None, "loads pass");
        assert_eq!(at.stall_until(0x180, 4, true, 1000), None, "expired");
    }

    #[test]
    fn destination_blocks_everything() {
        let mut at = AddressTable::new(4);
        at.register(entry(0x100, 0x200, OperandKind::Destination, 500), 0)
            .unwrap();
        assert_eq!(at.stall_until(0x1ff, 1, false, 10), Some(500), "RAW");
        assert_eq!(at.stall_until(0x1ff, 1, true, 10), Some(500), "WAW");
        assert_eq!(at.stall_until(0x200, 1, true, 10), None, "past end");
    }

    #[test]
    fn overlapping_entries_take_worst_case() {
        let mut at = AddressTable::new(4);
        at.register(entry(0x100, 0x200, OperandKind::Destination, 500), 0)
            .unwrap();
        at.register(entry(0x180, 0x280, OperandKind::Destination, 900), 0)
            .unwrap();
        assert_eq!(at.stall_until(0x190, 4, false, 0), Some(900));
    }

    #[test]
    fn expired_entries_recycle() {
        let mut at = AddressTable::new(1);
        at.register(entry(0, 16, OperandKind::Source, 100), 0)
            .unwrap();
        assert!(at
            .register(entry(32, 48, OperandKind::Source, 200), 50)
            .is_err());
        // At t=100 the first entry lapsed and its slot is reusable.
        at.register(entry(32, 48, OperandKind::Source, 200), 100)
            .unwrap();
        assert_eq!(at.entries().len(), 1);
    }

    #[test]
    fn is_operand_respects_time() {
        let mut at = AddressTable::new(2);
        at.register(entry(0x40, 0x80, OperandKind::Source, 100), 0)
            .unwrap();
        assert!(at.is_operand(0x40, 1, 0));
        assert!(!at.is_operand(0x40, 1, 100));
        assert!(!at.is_operand(0x80, 1, 0));
    }
}
