//! Cache-side state machines of the ARCANE LLC: the Cache Table, the
//! Address Table and the controller lock.

mod at;
mod channel;
mod locks;
mod table;

pub use at::{AddressTable, AtEntry, AtFull, OperandKind};
pub use channel::ResourceChannel;
pub use locks::LockWindows;
pub use table::{CacheTable, LineState, Victim};
