//! Cache-side state machines of the ARCANE LLC: the Cache Table, the
//! Address Table and the controller lock.

mod at;
mod locks;
mod table;

pub use at::{AddressTable, AtEntry, AtFull, OperandKind};
// The gap-scheduling calendar moved into `arcane-fabric` (the fabric
// banks and the eCPU are booked on the same structure); re-exported
// here so existing `arcane_core::cache::ResourceChannel` users keep
// working.
pub use arcane_fabric::ResourceChannel;
pub use locks::LockWindows;
pub use table::{CacheTable, LineState, Victim};
