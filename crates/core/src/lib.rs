//! # arcane-core — the ARCANE smart last-level cache
//!
//! This crate implements the primary contribution of *"ARCANE: Adaptive
//! RISC-V Cache Architecture for Near-memory Extensions"* (DAC 2025): a
//! last-level cache that doubles as a tightly-coupled near-memory matrix
//! coprocessor.
//!
//! The moving parts, mapped to the paper:
//!
//! | Paper section | Module |
//! |---|---|
//! | §III-A1 cache normal functioning (fully associative, approx-LRU, write-back) | [`cache::CacheTable`], [`StandardLlc`] |
//! | §III-A2 locking & hazard management | [`cache::LockWindows`], [`cache::AddressTable`] |
//! | §III-A3 Address Table | [`cache::AddressTable`] |
//! | §III-A4 software-driven 2-D DMA | [`runtime::ctx::KernelCtx`] |
//! | §III-B bridge (CV-X-IF offload, SW decode, commit/kill) | [`ArcaneLlc`]'s [`arcane_rv32::Coprocessor`] impl |
//! | §IV-A the `xmnmc` matrix ISA | [`arcane_isa::xmnmc`] (+ dispatch here) |
//! | §IV-B C-RT: decoder, scheduler, allocator | [`ArcaneLlc`], [`runtime`] |
//! | Table I kernel library | [`kernels`] |
//!
//! # Examples
//!
//! Offload a tiny 3-channel convolutional layer exactly like Listing 1
//! of the paper (reserve three matrices, launch `xmk4`):
//!
//! ```
//! use arcane_core::{ArcaneConfig, ArcaneLlc};
//! use arcane_isa::xmnmc::{self, kernel_id, MatReg};
//! use arcane_mem::Memory;
//! use arcane_rv32::{Coprocessor, XifResponse};
//! use arcane_sim::Sew;
//!
//! let mut llc = ArcaneLlc::new(ArcaneConfig::with_lanes(4));
//! let (a, f, r) = (0x2000_0000u32, 0x2001_0000u32, 0x2002_0000u32);
//! // 3 channel planes of 8x8 int32, 3 filter planes of 3x3.
//! for i in 0..(3 * 8 * 8) {
//!     llc.ext_mut().write_u32(a + i * 4, 1).unwrap();
//! }
//! for i in 0..(3 * 3 * 3) {
//!     llc.ext_mut().write_u32(f + i * 4, 1).unwrap();
//! }
//! let m = |i| MatReg::new(i).unwrap();
//! // xmr m0, A; xmr m1, F; xmr m2, R  — then xmk4 m2, m0, m1.
//! let (r1, r2, r3) = xmnmc::pack_xmr(a, 1, m(0), 8, 24);
//! let x = xmnmc::encode_raw(&xmnmc::XInstr { func5: 31, width: Sew::Word,
//!     rs1: arcane_isa::reg::A0, rs2: arcane_isa::reg::A1, rs3: arcane_isa::reg::A2 });
//! assert!(matches!(llc.offload(x, r1, r2, r3, 0), XifResponse::Accept { .. }));
//! let (r1, r2, r3) = xmnmc::pack_xmr(f, 1, m(1), 3, 9);
//! assert!(matches!(llc.offload(x, r1, r2, r3, 10), XifResponse::Accept { .. }));
//! let (r1, r2, r3) = xmnmc::pack_xmr(r, 1, m(2), 3, 3);
//! assert!(matches!(llc.offload(x, r1, r2, r3, 20), XifResponse::Accept { .. }));
//! let xk = xmnmc::encode_raw(&xmnmc::XInstr { func5: kernel_id::CONV_LAYER_3CH,
//!     width: Sew::Word, rs1: arcane_isa::reg::A0, rs2: arcane_isa::reg::A1,
//!     rs3: arcane_isa::reg::A2 });
//! let (r1, r2, r3) = xmnmc::pack_kernel(0, 0, m(2), m(0), m(1), m(0));
//! assert!(matches!(llc.offload(xk, r1, r2, r3, 30), XifResponse::Accept { .. }));
//! // conv of all-ones: every pooled output is 27 (3 channels x 9 taps).
//! assert_eq!(llc.ext().read_u32(r).unwrap(), 27);
//! assert_eq!(llc.records().len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
mod config;
pub mod kernels;
mod llc;
pub mod runtime;
pub mod sched;
mod standard;

pub use arcane_isa::launch::LaunchMode;
pub use config::{ArcaneConfig, CrtTiming};
pub use llc::{ArcaneLlc, KernelRecord};
pub use runtime::map::{MatView, MatrixMap};
pub use sched::{SchedulerKind, SchedulerPolicy};
pub use standard::StandardLlc;
