//! The ARCANE smart LLC: cache + tightly-coupled matrix coprocessor.
//!
//! This type ties every piece of the paper's Figure 1 together:
//!
//! * it is a **cache** — [`ArcaneLlc::host_access`] implements the
//!   fully-associative, write-back, approximate-LRU controller with the
//!   lock and hazard stalls of §III-A;
//! * it is a **coprocessor** — the [`Coprocessor`] implementation is the
//!   bridge of §III-B: it samples offloaded `xmnmc` instructions,
//!   decodes them in software (C-RT Kernel Decoder), places them on a
//!   VPU under the configured [`crate::sched::SchedulerPolicy`]
//!   (Kernel Scheduler; least-dirty by default) and runs them through
//!   the Matrix Allocator and the vector units.
//!
//! Co-simulation model: kernel *data* effects are applied eagerly in
//! host program order, while kernel *time* is laid out on an absolute
//! cycle axis (decode → allocation → compute → writeback). Host
//! accesses that would conflict (lock held, WAR on sources, RAW/WAW on
//! destinations, all lines busy) stall until the corresponding phase
//! completes — exactly the synchronisation the hardware enforces.

use crate::cache::{
    AddressTable, AtEntry, CacheTable, LockWindows, OperandKind, ResourceChannel, Victim,
};
use crate::config::ArcaneConfig;
use crate::kernels::{KernelError, KernelLib, ResolvedArgs};
use crate::runtime::ctx::KernelCtx;
use crate::runtime::map::MatView;
use crate::runtime::map::MatrixMap;
use crate::sched::SchedView;
use arcane_fabric::{Fabric, PortStats, HOST_PORT};
use arcane_isa::launch::{DescriptorBatch, LaunchMode, FUNC5_XMB};
use arcane_isa::xmnmc::{self, XmnmcOp};
use arcane_mem::{Access, AccessSize, BusError, Dma2d, ExtMem, Memory};
use arcane_rv32::{Coprocessor, XifResponse};
use arcane_sim::{CacheStats, ChannelUtil, LaunchStats, PhaseBreakdown, Sew};
use arcane_vpu::Vpu;
use std::collections::VecDeque;

/// Completed-kernel record: identity, placement and phase timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelRecord {
    /// `func5` kernel id.
    pub id: u8,
    /// Kernel mnemonic.
    pub name: &'static str,
    /// Element width.
    pub width: Sew,
    /// VPU the scheduler chose.
    pub vpu: usize,
    /// Absolute cycle the eCPU began decoding.
    pub decode_start: u64,
    /// Absolute cycle the writeback finished.
    pub end: u64,
    /// Cycles per phase (Figure 3's decomposition).
    pub phases: PhaseBreakdown,
}

/// The ARCANE LLC subsystem.
#[derive(Debug)]
pub struct ArcaneLlc {
    cfg: ArcaneConfig,
    vpus: Vec<Vpu>,
    table: CacheTable,
    at: AddressTable,
    locks: LockWindows,
    map: MatrixMap,
    lib: KernelLib,
    ext: ExtMem,
    dma: Dma2d,
    /// Writeback-completion times of queued kernels (fixed-capacity
    /// kernel queue back-pressure).
    queue_done: VecDeque<u64>,
    ecpu_free_at: u64,
    vpu_free_at: Vec<u64>,
    /// The shared memory fabric between the controller complex and the
    /// VPU array (kernel DMA bursts, dispatch descriptors, host
    /// refills under the burst arbiters).
    fabric: Fabric,
    ecpu_chan: ResourceChannel,
    ecpu_stats: PortStats,
    /// `xmr` decode work folded into the next kernel's preamble phase.
    pending_preamble: u64,
    /// Descriptor launch-pipeline counters (all zero in legacy mode).
    launch_stats: LaunchStats,
    /// Kernels scheduled so far (the round-robin rotation cursor).
    sched_seq: u64,
    records: Vec<KernelRecord>,
    stats: CacheStats,
    last_error: Option<KernelError>,
}

impl ArcaneLlc {
    /// Builds the subsystem from a configuration.
    ///
    /// The shared path's payload bandwidth is owned by the fabric:
    /// `cfg.dma.bytes_per_cycle` is overridden with
    /// `cfg.fabric.bytes_per_cycle` so the DMA engine and the fabric
    /// banks always agree on the bus width.
    pub fn new(mut cfg: ArcaneConfig) -> Self {
        cfg.dma.bytes_per_cycle = cfg.fabric.bytes_per_cycle;
        ArcaneLlc {
            vpus: (0..cfg.n_vpus).map(|_| Vpu::new(cfg.vpu)).collect(),
            table: CacheTable::new(cfg.n_lines(), cfg.line_bytes()),
            at: AddressTable::new(cfg.at_capacity),
            locks: LockWindows::new(),
            map: MatrixMap::new(),
            lib: KernelLib::builtin(),
            ext: ExtMem::new(
                cfg.ext_base,
                cfg.ext_size,
                cfg.ext_first_word,
                cfg.ext_per_word,
            ),
            dma: Dma2d::new(cfg.dma),
            queue_done: VecDeque::new(),
            ecpu_free_at: 0,
            vpu_free_at: vec![0; cfg.n_vpus],
            fabric: Fabric::new(cfg.fabric, cfg.n_vpus),
            ecpu_chan: ResourceChannel::new(),
            ecpu_stats: PortStats::default(),
            pending_preamble: 0,
            launch_stats: LaunchStats::default(),
            sched_seq: 0,
            records: Vec::new(),
            stats: CacheStats::default(),
            last_error: None,
            cfg,
        }
    }

    /// The configuration this instance was built with.
    pub const fn config(&self) -> &ArcaneConfig {
        &self.cfg
    }

    /// Read access to the external memory behind the cache
    /// (workload seeding and result checking).
    pub fn ext(&self) -> &ExtMem {
        &self.ext
    }

    /// Write access to the external memory behind the cache.
    pub fn ext_mut(&mut self) -> &mut ExtMem {
        &mut self.ext
    }

    /// Registers (or replaces) a user kernel — the software-defined ISA
    /// extensibility of §IV: new `xmkN` opcodes without hardware changes.
    ///
    /// # Panics
    ///
    /// Panics if `id > 30`.
    pub fn register_kernel(&mut self, id: u8, kernel: Box<dyn crate::kernels::Kernel>) {
        self.lib.register(id, kernel);
    }

    /// Records of every kernel executed so far, in completion order.
    pub fn records(&self) -> &[KernelRecord] {
        &self.records
    }

    /// Cache hit/miss/stall statistics for host accesses.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Number of `xmr` rebinds resolved by renaming.
    pub fn renames(&self) -> u64 {
        self.map.renames()
    }

    /// The kernel error behind the most recent rejected offload, if any.
    pub fn last_error(&self) -> Option<&KernelError> {
        self.last_error.as_ref()
    }

    /// The shared memory fabric (per-port traffic statistics, bank
    /// occupancy).
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// The eCPU booking calendar (busy cycles, horizon).
    pub fn ecpu_channel(&self) -> &ResourceChannel {
        &self.ecpu_chan
    }

    /// Descriptor launch-pipeline counters: batches decoded, descriptors
    /// replayed, decode cycles. All zero on the legacy launch path.
    pub const fn launch_stats(&self) -> &LaunchStats {
        &self.launch_stats
    }

    /// Per-channel utilisation over the run so far: the eCPU, then one
    /// row per fabric port (`host`, `vpu0`, …). Occupancy is measured
    /// against [`ArcaneLlc::completion_time`].
    pub fn channel_utilisation(&self) -> Vec<ChannelUtil> {
        let horizon = self
            .completion_time()
            .max(self.fabric.horizon())
            .max(self.ecpu_chan.horizon());
        let mut rows = vec![ChannelUtil {
            label: "ecpu".into(),
            busy_cycles: self.ecpu_chan.busy_cycles(),
            wait_cycles: self.ecpu_stats.wait_cycles,
            requests: self.ecpu_stats.requests,
            horizon,
        }];
        for (port, s) in self.fabric.port_stats().iter().enumerate() {
            rows.push(ChannelUtil {
                label: Fabric::port_label(port),
                busy_cycles: s.busy_cycles,
                wait_cycles: s.wait_cycles,
                requests: s.requests,
                horizon,
            });
        }
        rows
    }

    /// Absolute cycle at which all queued kernel work completes.
    pub fn completion_time(&self) -> u64 {
        self.vpu_free_at
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
            .max(self.ecpu_free_at)
    }

    fn line_data(&self, idx: usize) -> &[u8] {
        let vregs = self.cfg.vpu.vregs;
        self.vpus[idx / vregs].line(idx % vregs)
    }

    fn line_data_mut(&mut self, idx: usize) -> &mut [u8] {
        let vregs = self.cfg.vpu.vregs;
        self.vpus[idx / vregs].line_mut(idx % vregs)
    }

    /// One host CPU data access through the smart cache.
    ///
    /// Returns the data and the total cycles the host was occupied,
    /// including every stall (lock windows, hazard protection, busy
    /// lines, miss service).
    ///
    /// # Errors
    ///
    /// Returns [`BusError::OutOfRange`] when the address is not in the
    /// cached external-memory region.
    pub fn host_access(
        &mut self,
        addr: u32,
        write: bool,
        value: u32,
        size: AccessSize,
        now: u64,
    ) -> Result<Access, BusError> {
        if !self.ext.contains(addr, size.bytes()) {
            return Err(BusError::OutOfRange { addr });
        }

        // A misaligned access crossing a line boundary becomes two
        // transactions, one per line (as the bus adapter would split it).
        let line_bytes = self.cfg.line_bytes();
        if ((addr as usize) & (line_bytes - 1)) + size.bytes() as usize > line_bytes {
            let mut data = [0u8; 4];
            let mut cycles = 0;
            let vb = value.to_le_bytes();
            for i in 0..size.bytes() {
                let a = self.host_access(
                    addr + i,
                    write,
                    vb[i as usize] as u32,
                    AccessSize::Byte,
                    now,
                )?;
                data[i as usize] = a.data as u8;
                cycles += a.cycles;
            }
            return Ok(Access::new(u32::from_le_bytes(data), cycles));
        }

        // Hazard and lock stalls first (controller arbitration).
        let mut t = now;
        loop {
            if let Some(e) = self.locks.stall_until(t) {
                t = e;
                continue;
            }
            if let Some(e) = self.at.stall_until(addr, size.bytes(), write, t) {
                t = e;
                continue;
            }
            break;
        }
        if t > now {
            self.stats.stalls.incr();
            self.stats.stall_cycles.add(t - now);
        }

        // Cache lookup; single-cycle hit (§III-A1).
        let mut service = 0u64;
        let (line, tag) = match self.table.access(addr) {
            Some(hit) => {
                self.stats.hits.incr();
                hit
            }
            None => {
                self.stats.misses.incr();
                let i = loop {
                    match self.table.victim(t) {
                        Victim::Line(i) => break i,
                        Victim::AllBusyUntil(b) => {
                            self.stats.stalls.incr();
                            self.stats.stall_cycles.add(b - t);
                            t = b;
                        }
                    }
                };
                // The miss service (writeback + fill bursts) goes over
                // the fabric's host port: a dedicated fixed-latency
                // slave path under the whole-phase arbiter, contending
                // with kernel bursts under the burst arbiters.
                let raw = self.refill(i, addr)?;
                let grant = self.fabric.request(HOST_PORT, addr, t, raw);
                service += grant.end - t;
                self.table.touch(i);
                (i, self.table.line(i).tag)
            }
        };
        let off = (addr - tag) as usize;
        let n = size.bytes() as usize;
        let data = if write {
            let bytes = value.to_le_bytes();
            self.line_data_mut(line)[off..off + n].copy_from_slice(&bytes[..n]);
            self.table.line_mut(line).dirty = true;
            0
        } else {
            let mut b = [0u8; 4];
            b[..n].copy_from_slice(&self.line_data(line)[off..off + n]);
            u32::from_le_bytes(b)
        };

        Ok(Access::new(data, (t - now) + service + 1))
    }

    /// Evicts line `i` if needed and refills it with the block holding
    /// `addr`. Returns the service cycles (writeback + fill bursts).
    fn refill(&mut self, i: usize, addr: u32) -> Result<u64, BusError> {
        let line_bytes = self.cfg.line_bytes();
        let mut cycles = 0;
        let old = *self.table.line(i);
        if old.valid && old.dirty {
            let data = self.line_data(i).to_vec();
            self.ext.write_bytes(old.tag, &data)?;
            cycles += self.ext.burst_cycles(line_bytes as u64);
            self.stats.writebacks.incr();
        }
        let tag = self.table.tag_of(addr);
        let mut buf = vec![0u8; line_bytes];
        self.ext.read_bytes(tag, &mut buf)?;
        self.line_data_mut(i).copy_from_slice(&buf);
        cycles += self.ext.burst_cycles(line_bytes as u64);
        let l = self.table.line_mut(i);
        l.tag = tag;
        l.valid = true;
        l.dirty = false;
        Ok(cycles)
    }

    /// Kernel Scheduler: snapshots per-VPU occupancy and delegates the
    /// placement decision to the configured [`crate::sched::SchedulerPolicy`]
    /// (§IV-B2; least-dirty by default, DESIGN.md §4.4 for the others).
    fn choose_vpu(&mut self) -> usize {
        let vregs = self.cfg.vpu.vregs;
        let (dirty, free): (Vec<usize>, Vec<usize>) = (0..self.cfg.n_vpus)
            .map(|v| {
                (
                    self.table.dirty_in_range(v * vregs, (v + 1) * vregs),
                    self.table.free_in_range(v * vregs, (v + 1) * vregs),
                )
            })
            .unzip();
        let view = SchedView {
            dirty_lines: &dirty,
            free_lines: &free,
            free_at: &self.vpu_free_at,
            seq: self.sched_seq,
        };
        self.sched_seq += 1;
        let vpu = self.cfg.scheduler.policy().choose(&view);
        assert!(vpu < self.cfg.n_vpus, "policy chose a VPU out of range");
        vpu
    }

    fn reject(&mut self, err: KernelError) -> XifResponse {
        self.last_error = Some(err);
        XifResponse::Reject
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_reserve(
        &mut self,
        width: Sew,
        md: arcane_isa::xmnmc::MatReg,
        addr: u32,
        stride: u16,
        cols: u16,
        rows: u16,
        now: u64,
    ) -> XifResponse {
        let crt = self.cfg.crt;
        self.map.bind(
            md,
            addr,
            rows as usize,
            cols as usize,
            (stride as usize).max(1),
            width,
        );
        let work = crt.irq_entry + crt.decode + crt.xmr_bind;
        let earliest = now + crt.bridge_latency;
        let (_, end) = self.ecpu_chan.reserve_fragmented(earliest, work, 16);
        self.ecpu_stats.requests += 1;
        self.ecpu_stats.busy_cycles += work;
        self.ecpu_stats.wait_cycles += (end - earliest).saturating_sub(work);
        self.ecpu_free_at = self.ecpu_free_at.max(end);
        self.pending_preamble += work;
        XifResponse::Accept {
            writeback: None,
            cycles: crt.bridge_latency,
        }
    }

    /// Kernel Decoder front half: O(1) library lookup first (unknown
    /// `func5` is the kill path), then operand resolution and shape
    /// validation. Shared verbatim by the legacy per-instruction path
    /// and the descriptor-batch replay loop.
    #[allow(clippy::too_many_arguments)]
    fn resolve_launch(
        &self,
        id: u8,
        width: Sew,
        alpha: i16,
        beta: i16,
        md: arcane_isa::xmnmc::MatReg,
        ms1: arcane_isa::xmnmc::MatReg,
        ms2: arcane_isa::xmnmc::MatReg,
        ms3: arcane_isa::xmnmc::MatReg,
    ) -> Result<(ResolvedArgs, Vec<MatView>, &'static str), KernelError> {
        let kernel = self.lib.get(id)?;
        let md_view = self
            .map
            .resolve(md)
            .ok_or(KernelError::UnboundMatrix { reg: md })?;
        let args = ResolvedArgs {
            width,
            alpha,
            beta,
            md: md_view,
            ms1: self.map.resolve(ms1),
            ms2: self.map.resolve(ms2),
            ms3: self.map.resolve(ms3),
        };
        let sources = kernel.validate(&args)?;
        Ok((args, sources, kernel.name()))
    }

    /// Back half of a launch, after its preamble has been booked on the
    /// eCPU: schedule the kernel on a VPU, run it, and register its
    /// hazard windows. `local_issue` selects whether control traffic
    /// (vector issue, scalar writes, element reads) serialises on the
    /// shared eCPU (legacy) or stays on the VPU-side decoder
    /// (descriptor pipeline). Returns the kernel's writeback-completion
    /// cycle.
    #[allow(clippy::too_many_arguments)]
    fn execute_launch(
        &mut self,
        id: u8,
        name: &'static str,
        args: &ResolvedArgs,
        sources: &[MatView],
        decode_start: u64,
        decode_end: u64,
        preamble: u64,
        now: u64,
        local_issue: bool,
    ) -> Result<u64, KernelError> {
        // Scheduler: VPU choice and kernel start.
        let vpu = self.choose_vpu();
        let t_start = decode_end.max(self.vpu_free_at[vpu]);

        let mut ctx = KernelCtx {
            vpus: &mut self.vpus,
            vpu_index: vpu,
            vregs: self.cfg.vpu.vregs,
            table: &mut self.table,
            ext: &mut self.ext,
            dma: self.dma,
            crt: self.cfg.crt,
            locks: &mut self.locks,
            fabric: &mut self.fabric,
            port: Fabric::vpu_port(vpu),
            ecpu_chan: &mut self.ecpu_chan,
            ecpu_stats: &mut self.ecpu_stats,
            local_issue,
            t: t_start,
            phases: PhaseBreakdown {
                preamble,
                ..PhaseBreakdown::default()
            },
            last_alloc_end: t_start,
            writebacks: 0,
        };
        let kernel = self.lib.get(id).expect("resolved before execution");
        kernel.run(args, &mut ctx)?;
        let end = ctx.t;
        let phases = ctx.phases;
        let last_alloc_end = ctx.last_alloc_end;
        let wbs = ctx.writebacks;
        self.stats.writebacks.add(wbs);

        // Mark the VPU's lines busy-computing until the kernel retires.
        let vregs = self.cfg.vpu.vregs;
        for i in vpu * vregs..(vpu + 1) * vregs {
            let l = self.table.line_mut(i);
            l.busy_until = l.busy_until.max(end);
        }

        // Address Table: WAR protection on sources until the last
        // allocation, RAW/WAW protection on the destination until
        // writeback completes.
        for s in sources {
            let entry = AtEntry {
                start: s.addr,
                end: s.end_addr(),
                kind: OperandKind::Source,
                protect_until: last_alloc_end,
                matrix: s.phys_id,
            };
            if self.at.register(entry, now).is_err() {
                return Err(KernelError::ShapeMismatch {
                    what: "address table exhausted",
                });
            }
        }
        let dest_entry = AtEntry {
            start: args.md.addr,
            end: args.md.end_addr(),
            kind: OperandKind::Destination,
            protect_until: end,
            matrix: args.md.phys_id,
        };
        if self.at.register(dest_entry, now).is_err() {
            return Err(KernelError::ShapeMismatch {
                what: "address table exhausted",
            });
        }

        self.vpu_free_at[vpu] = end;
        self.queue_done.push_back(end);
        self.locks.prune(now.saturating_sub(1));
        self.records.push(KernelRecord {
            id,
            name,
            width: args.width,
            vpu,
            decode_start,
            end,
            phases,
        });
        Ok(end)
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_kernel(
        &mut self,
        id: u8,
        width: Sew,
        alpha: i16,
        beta: i16,
        md: arcane_isa::xmnmc::MatReg,
        ms1: arcane_isa::xmnmc::MatReg,
        ms2: arcane_isa::xmnmc::MatReg,
        ms3: arcane_isa::xmnmc::MatReg,
        now: u64,
    ) -> XifResponse {
        let crt = self.cfg.crt;

        // Kernel-queue back-pressure: the host handshake stalls until a
        // slot frees (fixed-capacity, statically allocated queue).
        while let Some(&front) = self.queue_done.front() {
            if front <= now {
                self.queue_done.pop_front();
            } else {
                break;
            }
        }
        let mut host_cycles = crt.bridge_latency;
        let mut t_now = now;
        if self.queue_done.len() >= self.cfg.kernel_queue_capacity {
            let free_at = self.queue_done[self.queue_done.len() - self.cfg.kernel_queue_capacity];
            host_cycles += free_at.saturating_sub(now);
            t_now = free_at;
        }

        let (args, sources, name) =
            match self.resolve_launch(id, width, alpha, beta, md, ms1, ms2, ms3) {
                Ok(v) => v,
                Err(e) => return self.reject(e),
            };

        // Preamble: IRQ entry, decode, scheduling, plus any pending xmr
        // work, booked on the (single) eCPU.
        let preamble = crt.irq_entry + crt.decode + crt.schedule + self.pending_preamble;
        self.pending_preamble = 0;
        let earliest = t_now + crt.bridge_latency;
        let (decode_start, decode_end) = self.ecpu_chan.reserve_fragmented(earliest, preamble, 16);
        self.ecpu_stats.requests += 1;
        self.ecpu_stats.busy_cycles += preamble;
        self.ecpu_stats.wait_cycles += (decode_end - earliest).saturating_sub(preamble);
        self.ecpu_free_at = self.ecpu_free_at.max(decode_end);

        match self.execute_launch(
            id,
            name,
            &args,
            &sources,
            decode_start,
            decode_end,
            preamble,
            now,
            false,
        ) {
            Ok(_) => XifResponse::Accept {
                writeback: None,
                cycles: host_cycles,
            },
            Err(e) => self.reject(e),
        }
    }

    /// The `xmb` handler: fetch one [`DescriptorBatch`] from external
    /// memory over the fabric, decode it **once** on the eCPU, and
    /// replay its descriptors (install bindings, resolve, schedule,
    /// run). Each replayed kernel pays only the amortised
    /// `desc_decode`/`desc_bind` tariff instead of the full legacy
    /// preamble, and the per-VPU decoders keep vector issue and
    /// scalar/element traffic off the shared eCPU calendar.
    ///
    /// The host handshake never blocks on the queue here: the decoder's
    /// replay cursor absorbs kernel-queue back-pressure instead.
    fn handle_batch(&mut self, addr: u32, words: u32, _token: u32, now: u64) -> XifResponse {
        let crt = self.cfg.crt;

        // Functional fetch of the encoded batch.
        let mut bytes = vec![0u8; words as usize * 4];
        if self.ext.read_bytes(addr, &mut bytes).is_err() {
            return self.reject(KernelError::ShapeMismatch {
                what: "descriptor batch lies outside external memory",
            });
        }
        let stream: Vec<u32> = bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        let batch = match DescriptorBatch::decode(&stream) {
            Ok(b) => b,
            Err(e) => return self.reject(KernelError::Launch(e)),
        };

        // The batch travels to the decoder as bursts on the fabric's
        // issue-descriptor path (weaving into DMA gaps under the burst
        // arbiters).
        let earliest = now + crt.bridge_latency;
        let grant = self
            .fabric
            .issue_batch(HOST_PORT, addr, earliest, bytes.len() as u64);
        self.launch_stats.batches += 1;
        self.launch_stats.batch_bytes += bytes.len() as u64;

        let mut cursor = grant.end;
        let mut entry = crt.batch_entry;
        for desc in &batch.descriptors {
            // Kernel-queue back-pressure, absorbed at the decoder: the
            // replay cursor waits for a slot instead of the host.
            while let Some(&front) = self.queue_done.front() {
                if front <= cursor {
                    self.queue_done.pop_front();
                } else {
                    break;
                }
            }
            if self.queue_done.len() >= self.cfg.kernel_queue_capacity {
                let free_at =
                    self.queue_done[self.queue_done.len() - self.cfg.kernel_queue_capacity];
                cursor = cursor.max(free_at);
            }

            // Install the descriptor's fresh bindings (renaming applies
            // exactly as it would for the equivalent xmr train).
            for b in &desc.bindings {
                self.map.bind(
                    b.reg,
                    b.addr,
                    b.rows as usize,
                    b.cols as usize,
                    (b.stride as usize).max(1),
                    desc.width,
                );
            }
            self.launch_stats.bindings += desc.bindings.len() as u64;

            let (args, sources, name) = match self.resolve_launch(
                desc.kernel,
                desc.width,
                desc.alpha,
                desc.beta,
                desc.md,
                desc.ms1,
                desc.ms2,
                desc.ms3,
            ) {
                Ok(v) => v,
                Err(e) => return self.reject(e),
            };

            // Amortised preamble: batch entry once, then the replay
            // tariff per descriptor.
            let preamble = entry + crt.desc_decode + crt.desc_bind * desc.bindings.len() as u64;
            entry = 0;
            let (decode_start, decode_end) =
                self.ecpu_chan.reserve_fragmented(cursor, preamble, 16);
            self.ecpu_stats.requests += 1;
            self.ecpu_stats.busy_cycles += preamble;
            self.ecpu_stats.wait_cycles += (decode_end - cursor).saturating_sub(preamble);
            self.ecpu_free_at = self.ecpu_free_at.max(decode_end);
            self.launch_stats.descriptors += 1;
            self.launch_stats.decode_cycles += preamble;

            // Hazard windows age against the decoder's replay cursor
            // (not the host's launch time): the queue back-pressure
            // above bounds the AT's live entries exactly as the host
            // handshake does on the legacy path.
            if let Err(e) = self.execute_launch(
                desc.kernel,
                name,
                &args,
                &sources,
                decode_start,
                decode_end,
                preamble,
                cursor,
                true,
            ) {
                return self.reject(e);
            }
            cursor = decode_end;
        }

        XifResponse::Accept {
            writeback: None,
            cycles: crt.bridge_latency,
        }
    }

    /// Encodes and offloads one `xmnmc` instruction from its fields and
    /// pre-packed operand-register values — the convenience entry
    /// examples, tests and benches use to drive the LLC without
    /// assembling a host program ([`xmnmc::pack_xmr`] /
    /// [`xmnmc::pack_kernel`] produce `vals`).
    pub fn offload_xmnmc(
        &mut self,
        func5: u8,
        width: Sew,
        vals: (u32, u32, u32),
        now: u64,
    ) -> XifResponse {
        use arcane_isa::reg::{A0, A1, A2};
        let raw = xmnmc::encode_raw(&xmnmc::XInstr {
            func5,
            width,
            rs1: A0,
            rs2: A1,
            rs3: A2,
        });
        self.offload(raw, vals.0, vals.1, vals.2, now)
    }
}

impl Coprocessor for ArcaneLlc {
    fn offload(&mut self, raw: u32, rs1: u32, rs2: u32, rs3: u32, now: u64) -> XifResponse {
        let x = match xmnmc::decode_raw(raw) {
            Ok(x) => x,
            Err(_) => return XifResponse::Reject,
        };
        // Under the descriptor launch pipeline, func5 = 30 is the xmb
        // launch-batch instruction; its register values are a plain
        // (addr, words, token) triple, not packed kernel operands. In
        // legacy mode the id stays on the ordinary kernel path (and is
        // rejected as unknown, exactly as before).
        if x.func5 == FUNC5_XMB && self.cfg.launch == LaunchMode::Descriptor {
            return self.handle_batch(rs1, rs2, rs3, now);
        }
        let op = match XmnmcOp::decode(&x, rs1, rs2, rs3) {
            Ok(op) => op,
            Err(_) => return XifResponse::Reject,
        };
        match op {
            XmnmcOp::MatReserve {
                width,
                md,
                addr,
                stride,
                cols,
                rows,
            } => self.handle_reserve(width, md, addr, stride, cols, rows, now),
            XmnmcOp::Kernel {
                id,
                width,
                alpha,
                beta,
                md,
                ms1,
                ms2,
                ms3,
            } => self.handle_kernel(id, width, alpha, beta, md, ms1, ms2, ms3, now),
        }
    }
}
