//! Static configuration of the ARCANE LLC subsystem.

use crate::sched::SchedulerKind;
use arcane_fabric::FabricConfig;
use arcane_isa::launch::LaunchMode;
use arcane_mem::DmaTiming;
use arcane_vpu::VpuConfig;

/// Cycle tariff of the C-RT software running on the eCPU (CV32E40X).
///
/// These stand in for executing the C firmware of the paper on the
/// embedded core: each value is the cost of one well-defined runtime
/// activity, derived from instruction-count estimates on a 4-stage
/// in-order RV32IMC core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrtTiming {
    /// Host-visible CV-X-IF offload handshake (issue → accept).
    pub bridge_latency: u64,
    /// Interrupt entry/exit on the eCPU.
    pub irq_entry: u64,
    /// Software decode of one offloaded instruction
    /// (kernel-library lookup, operand unpacking).
    pub decode: u64,
    /// `xmr` handling: matrix-map update, renaming, AT bookkeeping.
    pub xmr_bind: u64,
    /// Kernel scheduling: queue insertion, hazard check, VPU selection.
    pub schedule: u64,
    /// Acquiring the LLC controller lock.
    pub lock_acquire: u64,
    /// Releasing the LLC controller lock.
    pub lock_release: u64,
    /// eCPU cost of issuing one vector instruction to a VPU.
    pub vinstr_issue: u64,
    /// eCPU cost of writing one VPU scalar register.
    pub sreg_write: u64,
    /// eCPU cost of peeking one element out of a VPU line.
    pub elem_read: u64,
    /// Fixed per-tile software overhead in the allocator
    /// (layout computation, DMA programming beyond the DMA's own setup).
    pub tile_overhead: u64,
    /// Descriptor launch pipeline: one-time batch entry on the eCPU
    /// (IRQ entry plus frame-header parse) — paid once per
    /// [`arcane_isa::launch::DescriptorBatch`], not per kernel.
    pub batch_entry: u64,
    /// Descriptor launch pipeline: replaying one predecoded descriptor
    /// (table walk, scheduling) — the amortised successor of
    /// `decode + schedule`.
    pub desc_decode: u64,
    /// Descriptor launch pipeline: installing one predecoded operand
    /// binding — the amortised successor of `xmr_bind`.
    pub desc_bind: u64,
}

impl CrtTiming {
    /// The calibrated tariff used throughout the evaluation.
    ///
    /// Decode/bind/schedule are in the hundreds of cycles: the C-RT is
    /// C firmware on a 4-stage in-order core doing queue management,
    /// operand unpacking, hazard checks and renaming — this is what
    /// makes the preamble dominate for small inputs (Figure 3).
    pub const fn default_tariff() -> Self {
        CrtTiming {
            bridge_latency: 4,
            irq_entry: 40,
            decode: 600,
            xmr_bind: 900,
            schedule: 1300,
            lock_acquire: 12,
            lock_release: 8,
            vinstr_issue: 6,
            sreg_write: 2,
            elem_read: 3,
            tile_overhead: 50,
            batch_entry: 140,
            desc_decode: 90,
            desc_bind: 30,
        }
    }
}

impl Default for CrtTiming {
    fn default() -> Self {
        CrtTiming::default_tariff()
    }
}

/// Full configuration of the ARCANE LLC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArcaneConfig {
    /// Number of NM-Carus VPU instances building the data array
    /// (4 in every synthesized configuration of the paper).
    pub n_vpus: usize,
    /// Per-VPU configuration (lanes, 32 × 1 KiB vector registers).
    pub vpu: VpuConfig,
    /// Base address of the cached external-memory region.
    pub ext_base: u32,
    /// Size of the external memory in bytes.
    pub ext_size: usize,
    /// External memory latency: first word of a burst.
    pub ext_first_word: u64,
    /// External memory latency: subsequent words of a burst.
    pub ext_per_word: u64,
    /// DMA engine timing (`setup`, `per_row`). The payload bandwidth
    /// of the shared path is owned by [`ArcaneConfig::fabric`]:
    /// [`crate::ArcaneLlc`] overrides `dma.bytes_per_cycle` with
    /// `fabric.bytes_per_cycle` at construction, so the DMA-bandwidth
    /// ablation is a fabric configuration, not a scalar here.
    pub dma: DmaTiming,
    /// Shared-memory fabric between the controller complex and the
    /// VPU array: bank/width geometry and the arbiter policy
    /// (DESIGN.md §4.5).
    pub fabric: FabricConfig,
    /// C-RT software cycle tariff.
    pub crt: CrtTiming,
    /// Capacity of the statically allocated kernel queue.
    pub kernel_queue_capacity: usize,
    /// Capacity of the Address Table.
    pub at_capacity: usize,
    /// Kernel Scheduler placement policy (DESIGN.md §4.4).
    pub scheduler: SchedulerKind,
    /// Kernel-launch pipeline (DESIGN.md §4.6): the paper's
    /// per-instruction `xmr`/`xmkN` path (the default, bit- and
    /// cycle-identical to the pre-descriptor tree) or the batched
    /// descriptor pipeline that decodes a
    /// [`arcane_isa::launch::DescriptorBatch`] once and replays it per
    /// slice.
    pub launch: LaunchMode,
}

impl ArcaneConfig {
    /// The paper's configuration with the given number of VPU lanes:
    /// 4 VPUs × 32 KiB = 128 KiB LLC, 1 KiB lines, 16 MiB external
    /// memory at `0x2000_0000`.
    pub fn with_lanes(lanes: usize) -> Self {
        ArcaneConfig {
            n_vpus: 4,
            vpu: VpuConfig::with_lanes(lanes),
            ext_base: 0x2000_0000,
            ext_size: 16 << 20,
            ext_first_word: 10,
            ext_per_word: 1,
            dma: DmaTiming::default(),
            fabric: FabricConfig::default_config(),
            crt: CrtTiming::default_tariff(),
            kernel_queue_capacity: 8,
            at_capacity: 32,
            scheduler: SchedulerKind::LeastDirty,
            launch: LaunchMode::Legacy,
        }
    }

    /// Total number of cache lines (`n_vpus × vregs`).
    pub const fn n_lines(&self) -> usize {
        self.n_vpus * self.vpu.vregs
    }

    /// Cache line size in bytes (= VLEN).
    pub const fn line_bytes(&self) -> usize {
        self.vpu.vlen_bytes
    }

    /// Total LLC capacity in bytes.
    pub const fn capacity_bytes(&self) -> usize {
        self.n_lines() * self.line_bytes()
    }
}

impl Default for ArcaneConfig {
    fn default() -> Self {
        ArcaneConfig::with_lanes(4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configuration_shape() {
        let c = ArcaneConfig::with_lanes(4);
        assert_eq!(c.n_lines(), 128);
        assert_eq!(c.line_bytes(), 1024);
        assert_eq!(c.capacity_bytes(), 128 * 1024);
    }

    #[test]
    fn lane_sweep_only_changes_vpu() {
        for lanes in [2, 4, 8] {
            let c = ArcaneConfig::with_lanes(lanes);
            assert_eq!(c.vpu.lanes, lanes);
            assert_eq!(c.capacity_bytes(), 128 * 1024);
        }
    }
}
