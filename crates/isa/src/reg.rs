//! General-purpose register names for the RV32 integer register file.

use std::fmt;

/// A RISC-V general-purpose register (`x0`–`x31`).
///
/// The newtype guarantees the index is always in range, so the ISS can
/// index its register file without bounds checks failing at run time.
///
/// # Examples
///
/// ```
/// use arcane_isa::reg::{Gpr, A0};
/// assert_eq!(A0.index(), 10);
/// assert_eq!(Gpr::new(10), Some(A0));
/// assert_eq!(A0.to_string(), "a0");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Gpr(u8);

impl Gpr {
    /// Creates a register from its index; `None` if `index > 31`.
    pub const fn new(index: u8) -> Option<Gpr> {
        if index < 32 {
            Some(Gpr(index))
        } else {
            None
        }
    }

    /// Creates a register from the low five bits of `index`.
    ///
    /// Used by instruction decoders where the field width already
    /// guarantees the range.
    pub const fn from_bits(index: u32) -> Gpr {
        Gpr((index & 0x1f) as u8)
    }

    /// Register index in `0..=31`.
    pub const fn index(self) -> u8 {
        self.0
    }

    /// `true` for `x0`, the hard-wired zero register.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// ABI mnemonic (`zero`, `ra`, `sp`, …, `t6`).
    pub const fn abi_name(self) -> &'static str {
        const NAMES: [&str; 32] = [
            "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3",
            "a4", "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
            "t3", "t4", "t5", "t6",
        ];
        NAMES[self.0 as usize]
    }
}

impl fmt::Display for Gpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abi_name())
    }
}

macro_rules! declare_regs {
    ($($name:ident = $idx:expr;)*) => {
        $(
            #[doc = concat!("The `", stringify!($name), "` register (x", stringify!($idx), ").")]
            pub const $name: Gpr = Gpr($idx);
        )*
    };
}

declare_regs! {
    ZERO = 0; RA = 1; SP = 2; GP = 3; TP = 4;
    T0 = 5; T1 = 6; T2 = 7;
    S0 = 8; S1 = 9;
    A0 = 10; A1 = 11; A2 = 12; A3 = 13; A4 = 14; A5 = 15; A6 = 16; A7 = 17;
    S2 = 18; S3 = 19; S4 = 20; S5 = 21; S6 = 22; S7 = 23; S8 = 24; S9 = 25;
    S10 = 26; S11 = 27;
    T3 = 28; T4 = 29; T5 = 30; T6 = 31;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_checked_constructor() {
        assert_eq!(Gpr::new(31), Some(T6));
        assert_eq!(Gpr::new(32), None);
    }

    #[test]
    fn from_bits_masks() {
        assert_eq!(Gpr::from_bits(0x2a), Gpr::from_bits(0x0a));
        assert_eq!(Gpr::from_bits(10), A0);
    }

    #[test]
    fn abi_names_cover_all() {
        for i in 0..32u8 {
            let r = Gpr::new(i).unwrap();
            assert!(!r.abi_name().is_empty());
        }
        assert_eq!(SP.abi_name(), "sp");
        assert!(ZERO.is_zero());
        assert!(!RA.is_zero());
    }
}
