//! The `xmnmc` software-defined in-cache matrix ISA (paper §IV-A).
//!
//! The extension lives in the RISC-V *custom-2* 25-bit encoding space
//! (major opcode `0x5b`). A 5-bit `func5` field selects the operation:
//! `func5 = 31` is the **matrix reserve** instruction `xmr`, and
//! `func5 ∈ [0, 30]` selects one of up to 31 **matrix kernel**
//! instructions `xmkN`. Each instruction also carries a width suffix
//! (`.w`/`.h`/`.b` → int32/int16/int8), encoded here in the low two bits
//! of the otherwise-unused `rd` field.
//!
//! To maximise the utility of a single instruction, the *values* of the
//! three source registers are divided into 16-bit halves (Table I):
//!
//! ```text
//!              hi(rs1)   lo(rs1)   hi(rs2)  lo(rs2)  hi(rs3)  lo(rs3)
//! xmr.[whb]    hi(&A)    lo(&A)    stride   md       cols     rows
//! xmkN.[whb]   alpha     beta      ms3      md       ms1      ms2
//! ```
//!
//! The host CPU never interprets these fields: it offloads the raw
//! instruction plus the three register values over CV-X-IF, and the
//! cache-resident runtime decodes them **in software** — which is what
//! makes the ISA extensible without hardware changes.

use crate::reg::Gpr;
use crate::rv32::{self, Instr};
use crate::DecodeError;
use arcane_sim::Sew;
use std::fmt;

/// Number of architectural logical matrix registers (`m0`–`m15`).
pub const NUM_MAT_REGS: u8 = 16;

/// `func5` value of the `xmr` (matrix reserve) instruction.
pub const FUNC5_XMR: u8 = 31;

/// Builtin kernel ids implemented by the C-RT kernel library (Table I).
pub mod kernel_id {
    /// `xmk0` — General Matrix Multiplication (GeMM), `R = α·A·B + β·C`.
    pub const GEMM: u8 = 0;
    /// `xmk1` — LeakyReLU activation.
    pub const LEAKY_RELU: u8 = 1;
    /// `xmk2` — 2-D max-pooling.
    pub const MAXPOOL: u8 = 2;
    /// `xmk3` — single-channel 2-D convolution.
    pub const CONV2D: u8 = 3;
    /// `xmk4` — fused 3-channel 2-D convolutional layer
    /// (convolution + max-pooling + ReLU, the paper's flagship kernel).
    pub const CONV_LAYER_3CH: u8 = 4;
    /// `xmk5` — element-wise matrix addition (library extension).
    pub const MAT_ADD: u8 = 5;
    /// `xmk6` — scale-and-shift requantisation (library extension).
    pub const MAT_SCALE: u8 = 6;
    /// `xmk7` — matrix transpose (library extension).
    pub const TRANSPOSE: u8 = 7;
}

/// A logical matrix register (`m0`–`m15`) of the `xmnmc` extension.
///
/// # Examples
///
/// ```
/// use arcane_isa::xmnmc::MatReg;
/// let m2 = MatReg::new(2).unwrap();
/// assert_eq!(m2.to_string(), "m2");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MatReg(u8);

impl MatReg {
    /// Creates a matrix register; `None` when `index >= NUM_MAT_REGS`.
    pub const fn new(index: u8) -> Option<MatReg> {
        if index < NUM_MAT_REGS {
            Some(MatReg(index))
        } else {
            None
        }
    }

    /// Register index.
    pub const fn index(self) -> u8 {
        self.0
    }
}

impl fmt::Display for MatReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// The encoding-level view of an `xmnmc` instruction: which registers it
/// names and which operation it selects. Produced by [`decode_raw`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XInstr {
    /// Operation selector: `31` = `xmr`, `0..=30` = `xmkN`.
    pub func5: u8,
    /// Element width (`.w`/`.h`/`.b`).
    pub width: Sew,
    /// First source register (its *value* carries packed operands).
    pub rs1: Gpr,
    /// Second source register.
    pub rs2: Gpr,
    /// Third source register.
    pub rs3: Gpr,
}

/// Encodes an `xmnmc` instruction word (R4-type within custom-2).
///
/// Field placement: `func5` is split across `funct3` (low three bits,
/// bits 14:12) and `funct2` (high two bits, bits 26:25); `rs3` occupies
/// bits 31:27; the width lives in `rd[1:0]` (bits 8:7).
///
/// # Panics
///
/// Panics if `func5 > 31` (the field is five bits wide).
pub fn encode_raw(x: &XInstr) -> u32 {
    assert!(x.func5 < 32, "func5 is a 5-bit field");
    let funct3 = (x.func5 & 0x7) as u32;
    let funct2 = ((x.func5 >> 3) & 0x3) as u32;
    ((x.rs3.index() as u32) << 27)
        | (funct2 << 25)
        | ((x.rs2.index() as u32) << 20)
        | ((x.rs1.index() as u32) << 15)
        | (funct3 << 12)
        | ((x.width.to_bits() as u32) << 7)
        | rv32::opcode::CUSTOM2
}

/// Decodes a custom-2 word into its `xmnmc` fields.
///
/// # Errors
///
/// Returns [`DecodeError`] when the opcode is not custom-2 or the width
/// field holds the reserved value.
pub fn decode_raw(word: u32) -> Result<XInstr, DecodeError> {
    if word & 0x7f != rv32::opcode::CUSTOM2 {
        return Err(DecodeError::new(word, "not a custom-2 opcode"));
    }
    let funct3 = (word >> 12 & 0x7) as u8;
    let funct2 = (word >> 25 & 0x3) as u8;
    let width = Sew::from_bits((word >> 7 & 0x3) as u8)
        .ok_or(DecodeError::new(word, "reserved xmnmc width"))?;
    Ok(XInstr {
        func5: (funct2 << 3) | funct3,
        width,
        rs1: Gpr::from_bits(word >> 15 & 0x1f),
        rs2: Gpr::from_bits(word >> 20 & 0x1f),
        rs3: Gpr::from_bits(word >> 25 & 0x1f), // placeholder, fixed below
    })
    .map(|mut x| {
        x.rs3 = Gpr::from_bits(word >> 27 & 0x1f);
        x
    })
}

/// A fully decoded `xmnmc` operation: the instruction fields combined
/// with the three source-register *values* sampled by the bridge.
///
/// This is what the C-RT kernel decoder consumes (paper §IV-B1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum XmnmcOp {
    /// `xmr.[whb] md, &A, stride, cols, rows` — bind a memory region and
    /// shape to a logical matrix register. Allocation is *deferred* until
    /// a kernel uses the operand.
    MatReserve {
        /// Element width of the bound matrix.
        width: Sew,
        /// Destination logical matrix register.
        md: MatReg,
        /// Base address of the matrix in system memory.
        addr: u32,
        /// Row stride in elements (1 = densely packed rows).
        stride: u16,
        /// Number of columns.
        cols: u16,
        /// Number of rows.
        rows: u16,
    },
    /// `xmkN.[whb]` — execute complex matrix kernel `N`.
    Kernel {
        /// Kernel id (`func5`, 0–30).
        id: u8,
        /// Element width the kernel operates on.
        width: Sew,
        /// First scalar parameter (e.g. GeMM α, LeakyReLU slope,
        /// max-pool stride).
        alpha: i16,
        /// Second scalar parameter (e.g. GeMM β, max-pool window).
        beta: i16,
        /// Destination matrix register.
        md: MatReg,
        /// First source matrix register.
        ms1: MatReg,
        /// Second source matrix register (kernel-dependent).
        ms2: MatReg,
        /// Third source matrix register (kernel-dependent).
        ms3: MatReg,
    },
}

/// Error produced when the register values carried by an `xmnmc`
/// instruction name an out-of-range matrix register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OperandError {
    /// Description of the offending field.
    pub field: &'static str,
    /// The out-of-range value.
    pub value: u16,
}

impl fmt::Display for OperandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "xmnmc operand {} = {} exceeds the matrix register file",
            self.field, self.value
        )
    }
}

impl std::error::Error for OperandError {}

fn mat_reg(field: &'static str, value: u16) -> Result<MatReg, OperandError> {
    MatReg::new(value as u8).ok_or(OperandError { field, value })
}

impl XmnmcOp {
    /// Decodes the operation from the instruction fields plus the three
    /// source-register values (exactly the data the bridge samples).
    ///
    /// # Errors
    ///
    /// Returns [`OperandError`] when a matrix-register field is out of
    /// range — the C-RT reports this to the host as an *illegal
    /// instruction* (the kill path of §III-B).
    pub fn decode(x: &XInstr, rs1: u32, rs2: u32, rs3: u32) -> Result<XmnmcOp, OperandError> {
        let hi = |v: u32| (v >> 16) as u16;
        let lo = |v: u32| v as u16;
        if x.func5 == FUNC5_XMR {
            Ok(XmnmcOp::MatReserve {
                width: x.width,
                md: mat_reg("md", lo(rs2))?,
                addr: rs1,
                stride: hi(rs2),
                cols: hi(rs3),
                rows: lo(rs3),
            })
        } else {
            Ok(XmnmcOp::Kernel {
                id: x.func5,
                width: x.width,
                alpha: hi(rs1) as i16,
                beta: lo(rs1) as i16,
                md: mat_reg("md", lo(rs2))?,
                ms3: mat_reg("ms3", hi(rs2))?,
                ms1: mat_reg("ms1", hi(rs3))?,
                ms2: mat_reg("ms2", lo(rs3))?,
            })
        }
    }

    /// Element width the operation uses.
    pub fn width(&self) -> Sew {
        match *self {
            XmnmcOp::MatReserve { width, .. } | XmnmcOp::Kernel { width, .. } => width,
        }
    }
}

/// Packs the three register values a host program must materialise
/// before issuing `xmr md, &A (stride, cols, rows)`.
///
/// Returns `(rs1, rs2, rs3)` values.
pub fn pack_xmr(addr: u32, stride: u16, md: MatReg, cols: u16, rows: u16) -> (u32, u32, u32) {
    (
        addr,
        (stride as u32) << 16 | md.index() as u32,
        (cols as u32) << 16 | rows as u32,
    )
}

/// Packs the three register values for a kernel instruction
/// `xmkN md, ms1, ms2, ms3 (alpha, beta)`.
///
/// Returns `(rs1, rs2, rs3)` values.
pub fn pack_kernel(
    alpha: i16,
    beta: i16,
    md: MatReg,
    ms1: MatReg,
    ms2: MatReg,
    ms3: MatReg,
) -> (u32, u32, u32) {
    (
        (alpha as u16 as u32) << 16 | beta as u16 as u32,
        (ms3.index() as u32) << 16 | md.index() as u32,
        (ms1.index() as u32) << 16 | ms2.index() as u32,
    )
}

/// Builds the raw custom-2 instruction for `xmr.[width]` naming the
/// three operand-carrying CPU registers.
pub fn xmr_instr(width: Sew, rs1: Gpr, rs2: Gpr, rs3: Gpr) -> Instr {
    x_instr(FUNC5_XMR, width, rs1, rs2, rs3)
}

/// Builds the raw custom-2 instruction for `xmkN.[width]`.
///
/// # Panics
///
/// Panics if `id > 30` (`31` is reserved for `xmr`).
pub fn xmk_instr(id: u8, width: Sew, rs1: Gpr, rs2: Gpr, rs3: Gpr) -> Instr {
    assert!(id <= 30, "kernel ids are 0..=30");
    x_instr(id, width, rs1, rs2, rs3)
}

fn x_instr(func5: u8, width: Sew, rs1: Gpr, rs2: Gpr, rs3: Gpr) -> Instr {
    let raw = encode_raw(&XInstr {
        func5,
        width,
        rs1,
        rs2,
        rs3,
    });
    Instr::Custom2 {
        raw,
        rs1,
        rs2,
        rs3,
        rd: Gpr::from_bits(0),
    }
}

/// Human-readable mnemonic for a `func5`/width pair, e.g. `xmk4.b`.
pub fn mnemonic(func5: u8, width: Sew) -> String {
    if func5 == FUNC5_XMR {
        format!("xmr.{}", width.suffix())
    } else {
        format!("xmk{}.{}", func5, width.suffix())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::{A0, A1, A2};

    #[test]
    fn raw_roundtrip_all_func5_widths() {
        for func5 in 0..32u8 {
            for width in Sew::ALL {
                let x = XInstr {
                    func5,
                    width,
                    rs1: A0,
                    rs2: A1,
                    rs3: A2,
                };
                let w = encode_raw(&x);
                assert_eq!(decode_raw(w).unwrap(), x, "func5={func5} {width}");
            }
        }
    }

    #[test]
    fn decode_raw_rejects_non_custom2() {
        assert!(decode_raw(0x0000_0013).is_err()); // addi
    }

    #[test]
    fn xmr_operand_packing() {
        let md = MatReg::new(3).unwrap();
        let (r1, r2, r3) = pack_xmr(0x2000_1000, 1, md, 64, 32);
        let x = XInstr {
            func5: FUNC5_XMR,
            width: Sew::Half,
            rs1: A0,
            rs2: A1,
            rs3: A2,
        };
        match XmnmcOp::decode(&x, r1, r2, r3).unwrap() {
            XmnmcOp::MatReserve {
                width,
                md,
                addr,
                stride,
                cols,
                rows,
            } => {
                assert_eq!(width, Sew::Half);
                assert_eq!(md.index(), 3);
                assert_eq!(addr, 0x2000_1000);
                assert_eq!(stride, 1);
                assert_eq!(cols, 64);
                assert_eq!(rows, 32);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn kernel_operand_packing_negative_alpha() {
        let m = |i| MatReg::new(i).unwrap();
        let (r1, r2, r3) = pack_kernel(-3, 7, m(0), m(1), m(2), m(4));
        let x = XInstr {
            func5: kernel_id::GEMM,
            width: Sew::Word,
            rs1: A0,
            rs2: A1,
            rs3: A2,
        };
        match XmnmcOp::decode(&x, r1, r2, r3).unwrap() {
            XmnmcOp::Kernel {
                id,
                alpha,
                beta,
                md,
                ms1,
                ms2,
                ms3,
                ..
            } => {
                assert_eq!(id, kernel_id::GEMM);
                assert_eq!(alpha, -3);
                assert_eq!(beta, 7);
                assert_eq!(
                    (md.index(), ms1.index(), ms2.index(), ms3.index()),
                    (0, 1, 2, 4)
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn out_of_range_matrix_register_is_rejected() {
        let x = XInstr {
            func5: 0,
            width: Sew::Word,
            rs1: A0,
            rs2: A1,
            rs3: A2,
        };
        // md = 200 is far beyond NUM_MAT_REGS.
        let err = XmnmcOp::decode(&x, 0, 200, 0).unwrap_err();
        assert_eq!(err.field, "md");
    }

    #[test]
    fn mnemonics_match_table1() {
        assert_eq!(mnemonic(FUNC5_XMR, Sew::Word), "xmr.w");
        assert_eq!(mnemonic(kernel_id::CONV_LAYER_3CH, Sew::Byte), "xmk4.b");
    }

    #[test]
    #[should_panic(expected = "kernel ids are 0..=30")]
    fn xmk_rejects_reserved_id() {
        let _ = xmk_instr(31, Sew::Word, A0, A1, A2);
    }
}
