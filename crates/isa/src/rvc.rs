//! RVC — the RISC-V compressed (16-bit) instruction extension.
//!
//! The paper's cores implement RV32IM**C**: the C extension matters for
//! code density in the 128 KiB instruction memory, not for the data
//! path — every compressed instruction expands to a base RV32I
//! instruction. This module provides that expansion ([`decode`]) plus a
//! best-effort compressor ([`compress`]) used to measure code density.
//!
//! The subset covered is the full RV32C catalogue except
//! floating-point loads/stores (the cores have no FPU).

use crate::reg::{Gpr, RA, SP, ZERO};
use crate::rv32::{AluImmOp, AluOp, BranchOp, Instr, LoadOp, StoreOp};
use crate::DecodeError;

#[inline]
fn bits16(word: u16, hi: u32, lo: u32) -> u32 {
    ((word as u32) >> lo) & ((1u32 << (hi - lo + 1)) - 1)
}

#[inline]
fn sign_extend(value: u32, width: u32) -> i32 {
    let shift = 32 - width;
    ((value << shift) as i32) >> shift
}

/// The three-bit register fields address `x8`–`x15`.
fn creg(field: u32) -> Gpr {
    Gpr::from_bits(8 + (field & 0x7))
}

/// `true` when a 16-bit parcel is a compressed instruction
/// (low two bits ≠ `11`).
pub const fn is_compressed(parcel: u16) -> bool {
    parcel & 0b11 != 0b11
}

/// Expands a compressed instruction to its base RV32 equivalent.
///
/// # Errors
///
/// Returns [`DecodeError`] for reserved or unsupported (FP) encodings.
pub fn decode(parcel: u16) -> Result<Instr, DecodeError> {
    let word = parcel as u32;
    let op = bits16(parcel, 1, 0);
    let funct3 = bits16(parcel, 15, 13);
    match (op, funct3) {
        // ---- quadrant 0 ------------------------------------------------
        (0b00, 0b000) => {
            // c.addi4spn rd', nzuimm
            let imm = (bits16(parcel, 10, 7) << 6)
                | (bits16(parcel, 12, 11) << 4)
                | (bits16(parcel, 5, 5) << 3)
                | (bits16(parcel, 6, 6) << 2);
            if imm == 0 {
                return Err(DecodeError::new(word, "reserved c.addi4spn with zero imm"));
            }
            Ok(Instr::OpImm {
                op: AluImmOp::Addi,
                rd: creg(bits16(parcel, 4, 2)),
                rs1: SP,
                imm: imm as i32,
            })
        }
        (0b00, 0b010) => {
            // c.lw rd', offset(rs1')
            let offset = (bits16(parcel, 5, 5) << 6)
                | (bits16(parcel, 12, 10) << 3)
                | (bits16(parcel, 6, 6) << 2);
            Ok(Instr::Load {
                op: LoadOp::Lw,
                rd: creg(bits16(parcel, 4, 2)),
                rs1: creg(bits16(parcel, 9, 7)),
                offset: offset as i32,
            })
        }
        (0b00, 0b110) => {
            // c.sw rs2', offset(rs1')
            let offset = (bits16(parcel, 5, 5) << 6)
                | (bits16(parcel, 12, 10) << 3)
                | (bits16(parcel, 6, 6) << 2);
            Ok(Instr::Store {
                op: StoreOp::Sw,
                rs2: creg(bits16(parcel, 4, 2)),
                rs1: creg(bits16(parcel, 9, 7)),
                offset: offset as i32,
            })
        }
        // ---- quadrant 1 ------------------------------------------------
        (0b01, 0b000) => {
            // c.addi rd, nzimm (c.nop when rd = 0)
            let rd = Gpr::from_bits(bits16(parcel, 11, 7));
            let imm = sign_extend((bits16(parcel, 12, 12) << 5) | bits16(parcel, 6, 2), 6);
            Ok(Instr::OpImm {
                op: AluImmOp::Addi,
                rd,
                rs1: rd,
                imm,
            })
        }
        (0b01, 0b001) | (0b01, 0b101) => {
            // c.jal (link ra) / c.j
            let imm = (bits16(parcel, 12, 12) << 11)
                | (bits16(parcel, 8, 8) << 10)
                | (bits16(parcel, 10, 9) << 8)
                | (bits16(parcel, 6, 6) << 7)
                | (bits16(parcel, 7, 7) << 6)
                | (bits16(parcel, 2, 2) << 5)
                | (bits16(parcel, 11, 11) << 4)
                | (bits16(parcel, 5, 3) << 1);
            Ok(Instr::Jal {
                rd: if funct3 == 0b001 { RA } else { ZERO },
                offset: sign_extend(imm, 12),
            })
        }
        (0b01, 0b010) => {
            // c.li rd, imm
            let imm = sign_extend((bits16(parcel, 12, 12) << 5) | bits16(parcel, 6, 2), 6);
            Ok(Instr::OpImm {
                op: AluImmOp::Addi,
                rd: Gpr::from_bits(bits16(parcel, 11, 7)),
                rs1: ZERO,
                imm,
            })
        }
        (0b01, 0b011) => {
            let rd = Gpr::from_bits(bits16(parcel, 11, 7));
            if rd == SP {
                // c.addi16sp
                let imm = (bits16(parcel, 12, 12) << 9)
                    | (bits16(parcel, 4, 3) << 7)
                    | (bits16(parcel, 5, 5) << 6)
                    | (bits16(parcel, 2, 2) << 5)
                    | (bits16(parcel, 6, 6) << 4);
                let imm = sign_extend(imm, 10);
                if imm == 0 {
                    return Err(DecodeError::new(word, "reserved c.addi16sp"));
                }
                Ok(Instr::OpImm {
                    op: AluImmOp::Addi,
                    rd: SP,
                    rs1: SP,
                    imm,
                })
            } else {
                // c.lui rd, nzimm
                let imm = sign_extend(
                    (bits16(parcel, 12, 12) << 17) | (bits16(parcel, 6, 2) << 12),
                    18,
                );
                if imm == 0 {
                    return Err(DecodeError::new(word, "reserved c.lui"));
                }
                Ok(Instr::Lui {
                    rd,
                    imm: imm as u32,
                })
            }
        }
        (0b01, 0b100) => {
            let rd = creg(bits16(parcel, 9, 7));
            match bits16(parcel, 11, 10) {
                0b00 | 0b01 => {
                    // c.srli / c.srai
                    let shamt = (bits16(parcel, 12, 12) << 5) | bits16(parcel, 6, 2);
                    if shamt >= 32 {
                        return Err(DecodeError::new(word, "rv32 shift amount"));
                    }
                    Ok(Instr::OpImm {
                        op: if bits16(parcel, 11, 10) == 0 {
                            AluImmOp::Srli
                        } else {
                            AluImmOp::Srai
                        },
                        rd,
                        rs1: rd,
                        imm: shamt as i32,
                    })
                }
                0b10 => {
                    // c.andi
                    let imm = sign_extend((bits16(parcel, 12, 12) << 5) | bits16(parcel, 6, 2), 6);
                    Ok(Instr::OpImm {
                        op: AluImmOp::Andi,
                        rd,
                        rs1: rd,
                        imm,
                    })
                }
                _ => {
                    if bits16(parcel, 12, 12) != 0 {
                        return Err(DecodeError::new(word, "rv64-only or reserved"));
                    }
                    let rs2 = creg(bits16(parcel, 4, 2));
                    let alu = match bits16(parcel, 6, 5) {
                        0b00 => AluOp::Sub,
                        0b01 => AluOp::Xor,
                        0b10 => AluOp::Or,
                        _ => AluOp::And,
                    };
                    Ok(Instr::Op {
                        op: alu,
                        rd,
                        rs1: rd,
                        rs2,
                    })
                }
            }
        }
        (0b01, 0b110) | (0b01, 0b111) => {
            // c.beqz / c.bnez rs1', offset
            let imm = (bits16(parcel, 12, 12) << 8)
                | (bits16(parcel, 6, 5) << 6)
                | (bits16(parcel, 2, 2) << 5)
                | (bits16(parcel, 11, 10) << 3)
                | (bits16(parcel, 4, 3) << 1);
            Ok(Instr::Branch {
                op: if funct3 == 0b110 {
                    BranchOp::Eq
                } else {
                    BranchOp::Ne
                },
                rs1: creg(bits16(parcel, 9, 7)),
                rs2: ZERO,
                offset: sign_extend(imm, 9),
            })
        }
        // ---- quadrant 2 ------------------------------------------------
        (0b10, 0b000) => {
            // c.slli
            let rd = Gpr::from_bits(bits16(parcel, 11, 7));
            let shamt = (bits16(parcel, 12, 12) << 5) | bits16(parcel, 6, 2);
            if shamt >= 32 {
                return Err(DecodeError::new(word, "rv32 shift amount"));
            }
            Ok(Instr::OpImm {
                op: AluImmOp::Slli,
                rd,
                rs1: rd,
                imm: shamt as i32,
            })
        }
        (0b10, 0b010) => {
            // c.lwsp rd, offset(sp)
            let rd = Gpr::from_bits(bits16(parcel, 11, 7));
            if rd.is_zero() {
                return Err(DecodeError::new(word, "reserved c.lwsp rd=x0"));
            }
            let offset = (bits16(parcel, 3, 2) << 6)
                | (bits16(parcel, 12, 12) << 5)
                | (bits16(parcel, 6, 4) << 2);
            Ok(Instr::Load {
                op: LoadOp::Lw,
                rd,
                rs1: SP,
                offset: offset as i32,
            })
        }
        (0b10, 0b100) => {
            let rd = Gpr::from_bits(bits16(parcel, 11, 7));
            let rs2 = Gpr::from_bits(bits16(parcel, 6, 2));
            match (bits16(parcel, 12, 12), rd.is_zero(), rs2.is_zero()) {
                (0, false, true) => Ok(Instr::Jalr {
                    rd: ZERO,
                    rs1: rd,
                    offset: 0,
                }), // c.jr
                (0, false, false) => Ok(Instr::OpImm {
                    op: AluImmOp::Addi,
                    rd,
                    rs1: rs2,
                    imm: 0,
                }), // c.mv (expands to addi per convention here)
                (1, true, true) => Ok(Instr::Ebreak), // c.ebreak
                (1, false, true) => Ok(Instr::Jalr {
                    rd: RA,
                    rs1: rd,
                    offset: 0,
                }), // c.jalr
                (1, false, false) => Ok(Instr::Op {
                    op: AluOp::Add,
                    rd,
                    rs1: rd,
                    rs2,
                }), // c.add
                _ => Err(DecodeError::new(word, "reserved quadrant-2 encoding")),
            }
        }
        (0b10, 0b110) => {
            // c.swsp rs2, offset(sp)
            let offset = (bits16(parcel, 8, 7) << 6) | (bits16(parcel, 12, 9) << 2);
            Ok(Instr::Store {
                op: StoreOp::Sw,
                rs2: Gpr::from_bits(bits16(parcel, 6, 2)),
                rs1: SP,
                offset: offset as i32,
            })
        }
        _ => Err(DecodeError::new(word, "unsupported compressed encoding")),
    }
}

fn is_creg(r: Gpr) -> bool {
    (8..16).contains(&r.index())
}

fn cfield(r: Gpr) -> u16 {
    (r.index() as u16 - 8) & 0x7
}

/// Attempts to compress a base instruction into 16 bits. Returns `None`
/// when no compressed form exists (the code-density measurement of the
/// C extension).
pub fn compress(instr: &Instr) -> Option<u16> {
    match *instr {
        Instr::OpImm {
            op: AluImmOp::Addi,
            rd,
            rs1,
            imm,
        } => {
            if rd == rs1 && !rd.is_zero() && (-32..32).contains(&imm) {
                // c.addi (funct3 = 000, quadrant 01)
                let u = imm as u32;
                return Some(
                    (((u >> 5 & 1) << 12) | ((rd.index() as u32) << 7) | ((u & 0x1f) << 2) | 0b01)
                        as u16,
                );
            }
            if rs1.is_zero() && !rd.is_zero() && (-32..32).contains(&imm) {
                // c.li
                let u = imm as u32;
                return Some(
                    ((0b010 << 13)
                        | ((u >> 5 & 1) << 12)
                        | ((rd.index() as u32) << 7)
                        | ((u & 0x1f) << 2)
                        | 0b01) as u16,
                );
            }
            if imm == 0 && !rd.is_zero() && !rs1.is_zero() {
                // c.mv
                return Some(
                    ((0b100 << 13)
                        | ((rd.index() as u32) << 7)
                        | ((rs1.index() as u32) << 2)
                        | 0b10) as u16,
                );
            }
            None
        }
        Instr::Op {
            op: AluOp::Add,
            rd,
            rs1,
            rs2,
        } if rd == rs1 && !rd.is_zero() && !rs2.is_zero() => Some(
            ((0b100 << 13)
                | (1 << 12)
                | ((rd.index() as u32) << 7)
                | ((rs2.index() as u32) << 2)
                | 0b10) as u16,
        ),
        Instr::Op { op, rd, rs1, rs2 } if rd == rs1 && is_creg(rd) && is_creg(rs2) => {
            let f2 = match op {
                AluOp::Sub => 0b00,
                AluOp::Xor => 0b01,
                AluOp::Or => 0b10,
                AluOp::And => 0b11,
                _ => return None,
            };
            Some(
                ((0b1000 << 12)
                    | (0b11 << 10)
                    | ((cfield(rd) as u32) << 7)
                    | (f2 << 5)
                    | ((cfield(rs2) as u32) << 2)
                    | 0b01) as u16,
            )
        }
        Instr::Load {
            op: LoadOp::Lw,
            rd,
            rs1,
            offset,
        } if is_creg(rd) && is_creg(rs1) && (0..128).contains(&offset) && offset % 4 == 0 => {
            let u = offset as u32;
            Some(
                ((0b010 << 13)
                    | ((u >> 3 & 0x7) << 10)
                    | ((cfield(rs1) as u32) << 7)
                    | ((u >> 2 & 1) << 6)
                    | ((u >> 6 & 1) << 5)
                    | ((cfield(rd) as u32) << 2)) as u16,
            )
        }
        Instr::Store {
            op: StoreOp::Sw,
            rs2,
            rs1,
            offset,
        } if is_creg(rs2) && is_creg(rs1) && (0..128).contains(&offset) && offset % 4 == 0 => {
            let u = offset as u32;
            Some(
                ((0b110 << 13)
                    | ((u >> 3 & 0x7) << 10)
                    | ((cfield(rs1) as u32) << 7)
                    | ((u >> 2 & 1) << 6)
                    | ((u >> 6 & 1) << 5)
                    | ((cfield(rs2) as u32) << 2)) as u16,
            )
        }
        Instr::Jal { rd, offset }
            if (rd.is_zero() || rd == RA) && (-2048..2048).contains(&offset) && offset % 2 == 0 =>
        {
            let u = offset as u32;
            let f3 = if rd.is_zero() { 0b101 } else { 0b001 };
            Some(
                ((f3 << 13)
                    | ((u >> 11 & 1) << 12)
                    | ((u >> 4 & 1) << 11)
                    | ((u >> 8 & 3) << 9)
                    | ((u >> 10 & 1) << 8)
                    | ((u >> 6 & 1) << 7)
                    | ((u >> 7 & 1) << 6)
                    | ((u >> 1 & 7) << 3)
                    | ((u >> 5 & 1) << 2)
                    | 0b01) as u16,
            )
        }
        Instr::Branch {
            op,
            rs1,
            rs2,
            offset,
        } if rs2.is_zero()
            && is_creg(rs1)
            && matches!(op, BranchOp::Eq | BranchOp::Ne)
            && (-256..256).contains(&offset)
            && offset % 2 == 0 =>
        {
            let u = offset as u32;
            let f3 = if op == BranchOp::Eq { 0b110 } else { 0b111 };
            Some(
                ((f3 << 13)
                    | ((u >> 8 & 1) << 12)
                    | ((u >> 3 & 3) << 10)
                    | ((cfield(rs1) as u32) << 7)
                    | ((u >> 6 & 3) << 5)
                    | ((u >> 1 & 3) << 3)
                    | ((u >> 5 & 1) << 2)
                    | 0b01) as u16,
            )
        }
        Instr::Jalr { rd, rs1, offset: 0 } if !rs1.is_zero() => {
            if rd.is_zero() {
                Some(((0b100 << 13) | ((rs1.index() as u32) << 7) | 0b10) as u16)
            // c.jr
            } else if rd == RA {
                Some(((0b100 << 13) | (1 << 12) | ((rs1.index() as u32) << 7) | 0b10) as u16)
            // c.jalr
            } else {
                None
            }
        }
        Instr::Ebreak => Some(0x9002),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::*;

    #[test]
    fn known_encodings_from_the_spec() {
        // ret == c.jr ra == 0x8082
        assert_eq!(decode(0x8082).unwrap().to_string(), "jalr zero, 0(ra)");
        // c.ebreak == 0x9002
        assert_eq!(decode(0x9002).unwrap(), Instr::Ebreak);
        // c.nop == 0x0001 (addi zero, zero, 0)
        assert_eq!(decode(0x0001).unwrap().to_string(), "addi zero, zero, 0");
        // c.li a0, 0 == 0x4501
        assert_eq!(decode(0x4501).unwrap().to_string(), "addi a0, zero, 0");
        // c.mv a0, a1 == 0x852e
        assert_eq!(decode(0x852e).unwrap().to_string(), "addi a0, a1, 0");
        // c.add a0, a1 == 0x952e
        assert_eq!(decode(0x952e).unwrap().to_string(), "add a0, a0, a1");
    }

    #[test]
    fn compress_decode_roundtrip() {
        let cases = [
            Instr::OpImm {
                op: AluImmOp::Addi,
                rd: A0,
                rs1: A0,
                imm: -5,
            },
            Instr::OpImm {
                op: AluImmOp::Addi,
                rd: T3,
                rs1: ZERO,
                imm: 31,
            },
            Instr::Op {
                op: AluOp::Add,
                rd: A0,
                rs1: A0,
                rs2: A1,
            },
            Instr::Op {
                op: AluOp::Sub,
                rd: S0,
                rs1: S0,
                rs2: A3,
            },
            Instr::Op {
                op: AluOp::Xor,
                rd: A5,
                rs1: A5,
                rs2: S1,
            },
            Instr::Op {
                op: AluOp::And,
                rd: A2,
                rs1: A2,
                rs2: A4,
            },
            Instr::Load {
                op: LoadOp::Lw,
                rd: A0,
                rs1: S0,
                offset: 64,
            },
            Instr::Store {
                op: StoreOp::Sw,
                rs2: A1,
                rs1: S1,
                offset: 124,
            },
            Instr::Jal {
                rd: ZERO,
                offset: -100,
            },
            Instr::Jal {
                rd: RA,
                offset: 2046,
            },
            Instr::Branch {
                op: BranchOp::Eq,
                rs1: A0,
                rs2: ZERO,
                offset: -56,
            },
            Instr::Branch {
                op: BranchOp::Ne,
                rs1: S1,
                rs2: ZERO,
                offset: 254,
            },
            Instr::Jalr {
                rd: ZERO,
                rs1: RA,
                offset: 0,
            },
            Instr::Jalr {
                rd: RA,
                rs1: A5,
                offset: 0,
            },
            Instr::Ebreak,
        ];
        for i in cases {
            let c = compress(&i).unwrap_or_else(|| panic!("{i} should compress"));
            assert!(is_compressed(c), "{i}");
            let back = decode(c).unwrap_or_else(|e| panic!("{i}: {e}"));
            // `c.mv` legitimately expands to an addi; compare semantics
            // by re-encoding the 32-bit form.
            assert_eq!(
                crate::rv32::encode(&back),
                crate::rv32::encode(&i),
                "{i} -> {c:#06x} -> {back}"
            );
        }
    }

    #[test]
    fn incompressible_forms_return_none() {
        // rd != rs1 on register ops
        assert!(compress(&Instr::Op {
            op: AluOp::Sub,
            rd: A0,
            rs1: A1,
            rs2: A2
        })
        .is_none());
        // large immediate
        assert!(compress(&Instr::OpImm {
            op: AluImmOp::Addi,
            rd: A0,
            rs1: A0,
            imm: 100
        })
        .is_none());
        // word load outside the creg set
        assert!(compress(&Instr::Load {
            op: LoadOp::Lw,
            rd: T6,
            rs1: T5,
            offset: 0
        })
        .is_none());
        // misaligned offset
        assert!(compress(&Instr::Load {
            op: LoadOp::Lw,
            rd: A0,
            rs1: S0,
            offset: 2
        })
        .is_none());
    }

    #[test]
    fn stack_relative_forms() {
        // c.addi4spn a0, sp, 8: uimm[3] lives in bit 5, rd' = a0 = field 2.
        let addi4spn = ((1u32 << 5) | (2 << 2)) as u16;
        assert_eq!(decode(addi4spn).unwrap().to_string(), "addi a0, sp, 8");
        // c.lwsp a0, 12(sp): f3=010, rd=10, off[4:2]=3 in bits 6:4.
        let lwsp = ((0b010u32 << 13) | (10 << 7) | (3 << 4) | 0b10) as u16;
        assert_eq!(decode(lwsp).unwrap().to_string(), "lw a0, 12(sp)");
        // c.swsp a1, 16(sp): f3=110, off[5:2]=4 in bits 12:9, rs2=11.
        let swsp = ((0b110u32 << 13) | (4 << 9) | (11 << 2) | 0b10) as u16;
        assert_eq!(decode(swsp).unwrap().to_string(), "sw a1, 16(sp)");
    }

    #[test]
    fn quadrant1_immediates() {
        // c.addi16sp sp, -64: f3=011 rd=2; imm = -64 = 0b11_1100_0000
        // fields: [9]=1 bit12, [4]=0 bit6, [6]=1 bit5, [8:7]=11 bits4:3, [5]=0 bit2
        let w = ((0b011u32 << 13) | (1 << 12) | (2 << 7) | (1 << 5) | (0b11 << 3) | 0b01) as u16;
        assert_eq!(decode(w).unwrap().to_string(), "addi sp, sp, -64");
        // c.lui a0, 1
        let lui = ((0b011u32 << 13) | (10 << 7) | (1 << 2) | 0b01) as u16;
        assert_eq!(decode(lui).unwrap().to_string(), "lui a0, 0x1");
    }

    #[test]
    fn reserved_encodings_are_rejected() {
        assert!(decode(0x0000).is_err(), "all-zeros is defined illegal");
        // c.addi4spn with zero immediate
        // c.fld (quadrant 0, funct3 = 001): no FPU on these cores.
        assert!(decode(0b0010_0000_0000_0000).is_err());
        // c.lwsp with rd = x0
        let w = ((0b010u32 << 13) | (3 << 4) | 0b10) as u16;
        assert!(decode(w).is_err());
    }

    #[test]
    fn is_compressed_discriminates() {
        assert!(is_compressed(0x0001));
        assert!(is_compressed(0x8082));
        assert!(!is_compressed(0x0013)); // 32-bit addi low parcel
    }
}
