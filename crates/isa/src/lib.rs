//! Instruction-set definitions for the ARCANE reproduction.
//!
//! This crate provides every encoding used by the simulated system:
//!
//! * [`rv32`] — the RV32IM base ISA executed by the host CPU and, in the
//!   paper, by the embedded cache-controller CPU (CV32E40X class cores).
//! * [`rvc`] — the compressed (C) extension: 16-bit → 32-bit expansion
//!   and a compressor for code-density measurements.
//! * [`xcvpulp`] — the packed-SIMD / DSP extension subset (modeled after
//!   the CORE-V XCVPULP extensions of the CV32E40PX) used by the paper's
//!   strongest CPU baseline in Figure 4.
//! * [`xmnmc`] — the paper's software-defined in-cache matrix ISA
//!   (RISC-V custom-2 opcode `0x5b`): `xmr` matrix-reserve and `xmkN`
//!   matrix-kernel instructions.
//! * [`launch`] — the batched kernel-launch pipeline: compact
//!   [`launch::LaunchDescriptor`] records and [`launch::DescriptorBatch`]
//!   framing that amortise the eCPU's per-launch software preamble, plus
//!   the `xmb` launch-batch instruction.
//! * [`vector`] — the NM-Carus-style near-memory vector ISA that the
//!   cache-resident runtime uses to program the vector processing units.
//! * [`asm`] — a small two-pass assembler with labels and pseudo
//!   instructions, used to build every evaluation workload as real
//!   machine code.
//! * [`exec`] — the predecode stage of the block-stepping execution
//!   engine: cached [`exec::DecodedBlock`]s of straight-line code with
//!   per-instruction cost hints and write invalidation.
//!
//! # Examples
//!
//! ```
//! use arcane_isa::asm::Asm;
//! use arcane_isa::reg::{A0, A1};
//!
//! let mut a = Asm::new();
//! a.li(A0, 41);
//! a.addi(A0, A0, 1);
//! a.ebreak();
//! let words = a.assemble(0).expect("label resolution");
//! assert_eq!(words.len(), 3);
//! let decoded = arcane_isa::rv32::decode(words[1]).unwrap();
//! assert_eq!(decoded.to_string(), "addi a0, a0, 1");
//! # let _ = A1;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
pub mod exec;
pub mod launch;
pub mod reg;
pub mod rv32;
pub mod rvc;
pub mod vector;
pub mod xcvpulp;
pub mod xmnmc;

use std::error::Error;
use std::fmt;

/// Error produced when a 32-bit word does not decode to a supported
/// instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The word that failed to decode.
    pub word: u32,
    /// Static description of the failing field.
    pub reason: &'static str,
}

impl DecodeError {
    /// Creates a decode error for `word` with a static `reason`.
    pub const fn new(word: u32, reason: &'static str) -> Self {
        DecodeError { word, reason }
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot decode {:#010x}: {}", self.word, self.reason)
    }
}

impl Error for DecodeError {}
