//! Launch descriptors and batch framing for the amortised kernel-launch
//! pipeline.
//!
//! The legacy launch path of §IV-B issues one `xmr` per operand plus one
//! `xmkN` per kernel, and the eCPU pays the full software preamble
//! (IRQ entry, operand unpacking, renaming, scheduling) for every
//! instruction. For kernel *chains* — and especially for the multi-VPU
//! slice splitting of §V-C — that preamble serialises on the single
//! eCPU and dominates the run.
//!
//! A [`LaunchDescriptor`] folds one kernel launch (its fresh operand
//! bindings, kernel id, scalar immediates and a completion token) into a
//! compact predecoded record, and a [`DescriptorBatch`] frames a train
//! of descriptors that the eCPU fetches in **one** transfer and decodes
//! with **one** entry overhead — the per-descriptor replay cost is a
//! table walk, not a full software decode. The host launches a batch
//! with a single `xmb` instruction ([`FUNC5_XMB`], reserved from the
//! `xmkN` space) whose operand registers carry the batch's address,
//! length and token ([`pack_xmb`]).
//!
//! Size accounting is exact: [`LaunchDescriptor::words`] and
//! [`DescriptorBatch::words`] give the encoded footprint the fabric
//! charges when the batch travels to the decoder, and encode/decode are
//! bit-exact inverses (property-tested in `tests/nn_props.rs`).
//!
//! # Encoding
//!
//! All fields are little-endian `u32` words:
//!
//! ```text
//! batch    word 0      magic (8) | descriptor count (16) | reserved (8)
//! desc     word 0      kernel id (5) | width (2) | n_bindings (2) | token (16 @ bit 16)
//!          word 1      alpha (16) | beta (16)
//!          word 2      md (4) | ms1 (4) | ms2 (4) | ms3 (4)
//! binding  word 0      base address
//!          word 1      stride (16) | matrix register (16)
//!          word 2      cols (16) | rows (16)
//! ```

use crate::reg::Gpr;
use crate::rv32::Instr;
use crate::xmnmc::{self, MatReg, XInstr};
use arcane_sim::Sew;
use std::fmt;

/// `func5` value of the `xmb` (launch-batch) instruction, reserved from
/// the `xmkN` kernel-id space when the descriptor launch pipeline is
/// enabled.
pub const FUNC5_XMB: u8 = 30;

/// Magic byte opening every encoded [`DescriptorBatch`].
pub const BATCH_MAGIC: u8 = 0xA7;

/// Maximum operand bindings one descriptor can carry (md/ms1/ms2 —
/// `ms3` always aliases a bound register in the current compiler).
pub const MAX_BINDINGS: usize = 3;

/// How kernels are launched on the eCPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LaunchMode {
    /// The paper's per-instruction path: one `xmr` per operand, one
    /// `xmkN` per kernel, full software preamble each (the default).
    #[default]
    Legacy,
    /// The batched pipeline: the compiler emits [`DescriptorBatch`]es,
    /// the eCPU decodes each batch once and replays it per slice.
    Descriptor,
}

impl LaunchMode {
    /// Both modes, ablation-table order.
    pub const ALL: [LaunchMode; 2] = [LaunchMode::Legacy, LaunchMode::Descriptor];

    /// Mode mnemonic (reports, bench tables).
    pub const fn name(self) -> &'static str {
        match self {
            LaunchMode::Legacy => "legacy",
            LaunchMode::Descriptor => "descriptor",
        }
    }
}

impl fmt::Display for LaunchMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One fresh operand binding carried by a descriptor — the payload of a
/// legacy `xmr`, predecoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OperandBinding {
    /// Matrix register the region is bound to.
    pub reg: MatReg,
    /// Base address of the region in system memory.
    pub addr: u32,
    /// Row stride in elements (1 = densely packed).
    pub stride: u16,
    /// Columns.
    pub cols: u16,
    /// Rows.
    pub rows: u16,
}

/// One predecoded kernel launch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaunchDescriptor {
    /// Kernel id (`func5`, `0..=29` — [`FUNC5_XMB`] and `xmr` are
    /// reserved).
    pub kernel: u8,
    /// Element width the kernel operates on.
    pub width: Sew,
    /// First scalar immediate.
    pub alpha: i16,
    /// Second scalar immediate.
    pub beta: i16,
    /// Destination matrix register.
    pub md: MatReg,
    /// First source matrix register.
    pub ms1: MatReg,
    /// Second source matrix register.
    pub ms2: MatReg,
    /// Third source matrix register.
    pub ms3: MatReg,
    /// Fresh bindings this launch installs before resolving operands
    /// (registers not rebound here keep their live binding — the
    /// allocator's hot-tensor reuse).
    pub bindings: Vec<OperandBinding>,
    /// Completion token (kernel index within the program; reporting and
    /// debug only).
    pub token: u16,
}

impl LaunchDescriptor {
    /// Encoded size in 32-bit words.
    pub fn words(&self) -> usize {
        3 + 3 * self.bindings.len()
    }

    /// Encoded size in bytes.
    pub fn bytes(&self) -> usize {
        4 * self.words()
    }
}

/// A framed train of launch descriptors: fetched by the eCPU in one
/// fabric transfer, decoded once, replayed descriptor by descriptor.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DescriptorBatch {
    /// The descriptors, in launch order.
    pub descriptors: Vec<LaunchDescriptor>,
}

impl DescriptorBatch {
    /// Encoded size in 32-bit words (header + descriptors).
    pub fn words(&self) -> usize {
        1 + self
            .descriptors
            .iter()
            .map(LaunchDescriptor::words)
            .sum::<usize>()
    }

    /// Encoded size in bytes.
    pub fn bytes(&self) -> usize {
        4 * self.words()
    }

    /// Encodes the batch into its word stream.
    ///
    /// # Panics
    ///
    /// Panics if a descriptor is malformed (kernel id in the reserved
    /// range, more than [`MAX_BINDINGS`] bindings, or more than
    /// `u16::MAX` descriptors) — compiler bugs, not data errors.
    pub fn encode(&self) -> Vec<u32> {
        assert!(
            self.descriptors.len() <= u16::MAX as usize,
            "batch descriptor count exceeds the 16-bit frame field"
        );
        let mut out = Vec::with_capacity(self.words());
        out.push((BATCH_MAGIC as u32) << 24 | (self.descriptors.len() as u32) << 8);
        for d in &self.descriptors {
            assert!(d.kernel < FUNC5_XMB, "kernel id {} is reserved", d.kernel);
            assert!(
                d.bindings.len() <= MAX_BINDINGS,
                "descriptor carries more than {MAX_BINDINGS} bindings"
            );
            out.push(
                (d.kernel as u32)
                    | (d.width.to_bits() as u32) << 5
                    | (d.bindings.len() as u32) << 7
                    | (d.token as u32) << 16,
            );
            out.push((d.alpha as u16 as u32) << 16 | d.beta as u16 as u32);
            out.push(
                (d.md.index() as u32)
                    | (d.ms1.index() as u32) << 4
                    | (d.ms2.index() as u32) << 8
                    | (d.ms3.index() as u32) << 12,
            );
            for b in &d.bindings {
                out.push(b.addr);
                out.push((b.stride as u32) << 16 | b.reg.index() as u32);
                out.push((b.cols as u32) << 16 | b.rows as u32);
            }
        }
        out
    }

    /// Decodes a word stream produced by [`DescriptorBatch::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`LaunchDecodeError`] on a bad magic byte, a truncated
    /// stream, a reserved kernel id or width, or an out-of-range matrix
    /// register.
    pub fn decode(words: &[u32]) -> Result<DescriptorBatch, LaunchDecodeError> {
        let header = *words.first().ok_or(LaunchDecodeError::Truncated)?;
        if (header >> 24) as u8 != BATCH_MAGIC {
            return Err(LaunchDecodeError::BadMagic {
                found: (header >> 24) as u8,
            });
        }
        let count = (header >> 8 & 0xffff) as usize;
        let mut descriptors = Vec::with_capacity(count);
        let mut i = 1usize;
        let mut take = |n: usize| -> Result<usize, LaunchDecodeError> {
            let at = i;
            i += n;
            if i > words.len() {
                Err(LaunchDecodeError::Truncated)
            } else {
                Ok(at)
            }
        };
        let reg = |v: u32| -> Result<MatReg, LaunchDecodeError> {
            MatReg::new((v & 0xf) as u8).ok_or(LaunchDecodeError::BadRegister { value: v as u16 })
        };
        for _ in 0..count {
            let at = take(3)?;
            let (w0, w1, w2) = (words[at], words[at + 1], words[at + 2]);
            let kernel = (w0 & 0x1f) as u8;
            if kernel >= FUNC5_XMB {
                return Err(LaunchDecodeError::ReservedKernel { id: kernel });
            }
            let width = Sew::from_bits((w0 >> 5 & 0x3) as u8).ok_or(LaunchDecodeError::BadWidth)?;
            let n_bind = (w0 >> 7 & 0x3) as usize;
            let mut bindings = Vec::with_capacity(n_bind);
            for _ in 0..n_bind {
                let at = take(3)?;
                let (b0, b1, b2) = (words[at], words[at + 1], words[at + 2]);
                // Validate the full 16-bit field: truncating to u8
                // first would let multiples of 256 alias register 0.
                let value = (b1 & 0xffff) as u16;
                let bound_reg = u8::try_from(value)
                    .ok()
                    .and_then(MatReg::new)
                    .ok_or(LaunchDecodeError::BadRegister { value })?;
                bindings.push(OperandBinding {
                    reg: bound_reg,
                    addr: b0,
                    stride: (b1 >> 16) as u16,
                    cols: (b2 >> 16) as u16,
                    rows: (b2 & 0xffff) as u16,
                });
            }
            descriptors.push(LaunchDescriptor {
                kernel,
                width,
                alpha: (w1 >> 16) as u16 as i16,
                beta: (w1 & 0xffff) as u16 as i16,
                md: reg(w2)?,
                ms1: reg(w2 >> 4)?,
                ms2: reg(w2 >> 8)?,
                ms3: reg(w2 >> 12)?,
                bindings,
                token: (w0 >> 16) as u16,
            });
        }
        if i != words.len() {
            return Err(LaunchDecodeError::TrailingWords {
                expected: i,
                found: words.len(),
            });
        }
        Ok(DescriptorBatch { descriptors })
    }
}

/// Error produced while decoding a [`DescriptorBatch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaunchDecodeError {
    /// The first word does not open with [`BATCH_MAGIC`].
    BadMagic {
        /// Byte found where the magic was expected.
        found: u8,
    },
    /// The word stream ends before the framed descriptor count.
    Truncated,
    /// The stream is longer than the framed descriptor count.
    TrailingWords {
        /// Words the frame accounts for.
        expected: usize,
        /// Words present.
        found: usize,
    },
    /// A descriptor names a reserved kernel id (`xmb`/`xmr`).
    ReservedKernel {
        /// The reserved id.
        id: u8,
    },
    /// The width field holds the reserved value.
    BadWidth,
    /// A matrix-register field exceeds the register file.
    BadRegister {
        /// The out-of-range value.
        value: u16,
    },
}

impl fmt::Display for LaunchDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LaunchDecodeError::BadMagic { found } => {
                write!(f, "batch header opens with {found:#04x}, not the magic")
            }
            LaunchDecodeError::Truncated => f.write_str("descriptor batch is truncated"),
            LaunchDecodeError::TrailingWords { expected, found } => {
                write!(f, "batch frames {expected} words but carries {found}")
            }
            LaunchDecodeError::ReservedKernel { id } => {
                write!(f, "descriptor names reserved kernel id {id}")
            }
            LaunchDecodeError::BadWidth => f.write_str("reserved width field"),
            LaunchDecodeError::BadRegister { value } => {
                write!(f, "matrix register {value} exceeds the register file")
            }
        }
    }
}

impl std::error::Error for LaunchDecodeError {}

/// Packs the three register values a host program materialises before
/// `xmb`: the batch's word address, its length in words, and its token.
///
/// Returns `(rs1, rs2, rs3)` values.
pub const fn pack_xmb(addr: u32, words: u32, token: u32) -> (u32, u32, u32) {
    (addr, words, token)
}

/// Builds the raw custom-2 instruction for `xmb` naming the three
/// operand-carrying CPU registers (the width suffix is immaterial —
/// descriptors carry their own widths).
pub fn xmb_instr(rs1: Gpr, rs2: Gpr, rs3: Gpr) -> Instr {
    let raw = xmnmc::encode_raw(&XInstr {
        func5: FUNC5_XMB,
        width: Sew::Word,
        rs1,
        rs2,
        rs3,
    });
    Instr::Custom2 {
        raw,
        rs1,
        rs2,
        rs3,
        rd: Gpr::from_bits(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(i: u8) -> MatReg {
        MatReg::new(i).unwrap()
    }

    fn sample() -> DescriptorBatch {
        DescriptorBatch {
            descriptors: vec![
                LaunchDescriptor {
                    kernel: 0,
                    width: Sew::Byte,
                    alpha: -3,
                    beta: 7,
                    md: m(2),
                    ms1: m(0),
                    ms2: m(1),
                    ms3: m(0),
                    bindings: vec![
                        OperandBinding {
                            reg: m(0),
                            addr: 0x2000_0000,
                            stride: 1,
                            cols: 16,
                            rows: 8,
                        },
                        OperandBinding {
                            reg: m(2),
                            addr: 0x2000_0800,
                            stride: 1,
                            cols: 16,
                            rows: 8,
                        },
                    ],
                    token: 41,
                },
                LaunchDescriptor {
                    kernel: 6,
                    width: Sew::Byte,
                    alpha: 1,
                    beta: 2,
                    md: m(3),
                    ms1: m(2),
                    ms2: m(2),
                    ms3: m(2),
                    bindings: vec![],
                    token: 42,
                },
            ],
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let batch = sample();
        let words = batch.encode();
        assert_eq!(words.len(), batch.words());
        assert_eq!(batch.bytes(), 4 * words.len());
        assert_eq!(DescriptorBatch::decode(&words).unwrap(), batch);
    }

    #[test]
    fn size_accounting_is_exact() {
        let batch = sample();
        // header + (3 + 6) + (3 + 0)
        assert_eq!(batch.words(), 1 + 9 + 3);
        assert_eq!(batch.descriptors[0].words(), 9);
        assert_eq!(batch.descriptors[1].bytes(), 12);
    }

    #[test]
    fn decode_rejects_bad_magic_and_truncation() {
        let mut words = sample().encode();
        let ok = words.clone();
        words[0] ^= 0xff << 24;
        assert!(matches!(
            DescriptorBatch::decode(&words),
            Err(LaunchDecodeError::BadMagic { .. })
        ));
        assert_eq!(
            DescriptorBatch::decode(&ok[..ok.len() - 1]),
            Err(LaunchDecodeError::Truncated)
        );
        let mut long = ok.clone();
        long.push(0);
        assert!(matches!(
            DescriptorBatch::decode(&long),
            Err(LaunchDecodeError::TrailingWords { .. })
        ));
    }

    #[test]
    fn decode_rejects_reserved_kernel() {
        let mut batch = sample();
        batch.descriptors[1].kernel = 3;
        let mut words = batch.encode();
        // Patch the second descriptor's kernel-id field to xmb.
        let at = 1 + batch.descriptors[0].words();
        words[at] = (words[at] & !0x1f) | FUNC5_XMB as u32;
        assert_eq!(
            DescriptorBatch::decode(&words),
            Err(LaunchDecodeError::ReservedKernel { id: FUNC5_XMB })
        );
    }

    #[test]
    fn decode_rejects_out_of_range_binding_register() {
        let batch = sample();
        let mut words = batch.encode();
        // First binding of the first descriptor: word 1 carries the
        // register in its low half. 0x0100 truncates to 0 as a u8 —
        // decode must reject on the full 16-bit field.
        let at = 1 + 3 + 1;
        words[at] = (words[at] & !0xffff) | 0x0100;
        assert_eq!(
            DescriptorBatch::decode(&words),
            Err(LaunchDecodeError::BadRegister { value: 0x0100 })
        );
    }

    #[test]
    fn empty_batch_round_trips() {
        let batch = DescriptorBatch::default();
        assert_eq!(batch.words(), 1);
        assert_eq!(DescriptorBatch::decode(&batch.encode()).unwrap(), batch);
    }

    #[test]
    fn launch_mode_names() {
        assert_eq!(LaunchMode::default(), LaunchMode::Legacy);
        let names: Vec<&str> = LaunchMode::ALL.iter().map(|m| m.name()).collect();
        assert_eq!(names, ["legacy", "descriptor"]);
    }

    #[test]
    fn xmb_instr_decodes_as_func5_30() {
        use crate::reg::{A0, A1, A2};
        let i = xmb_instr(A0, A1, A2);
        if let Instr::Custom2 { raw, .. } = i {
            assert_eq!(xmnmc::decode_raw(raw).unwrap().func5, FUNC5_XMB);
        } else {
            panic!("xmb must be a custom-2 instruction");
        }
    }
}
