//! RV32IM instruction definitions with binary encode/decode.
//!
//! The instruction model covers the full RV32I base integer ISA plus the
//! M extension (the `RV32IM` subset executed by CV32E40X-class cores),
//! the XCVPULP packed-SIMD subset (see [`crate::xcvpulp`]) and a raw
//! *custom-2* escape used by the `xmnmc` matrix extension (decoded at the
//! coprocessor interface, not by the CPU — exactly as in the paper, where
//! the host CPU offloads unknown custom-2 instructions over CV-X-IF).

use crate::reg::Gpr;
use crate::{xcvpulp, DecodeError};
use std::fmt;

/// Conditional branch comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchOp {
    /// `beq` — branch if equal.
    Eq,
    /// `bne` — branch if not equal.
    Ne,
    /// `blt` — branch if less than (signed).
    Lt,
    /// `bge` — branch if greater or equal (signed).
    Ge,
    /// `bltu` — branch if less than (unsigned).
    Ltu,
    /// `bgeu` — branch if greater or equal (unsigned).
    Geu,
}

impl BranchOp {
    const fn funct3(self) -> u32 {
        match self {
            BranchOp::Eq => 0b000,
            BranchOp::Ne => 0b001,
            BranchOp::Lt => 0b100,
            BranchOp::Ge => 0b101,
            BranchOp::Ltu => 0b110,
            BranchOp::Geu => 0b111,
        }
    }

    const fn mnemonic(self) -> &'static str {
        match self {
            BranchOp::Eq => "beq",
            BranchOp::Ne => "bne",
            BranchOp::Lt => "blt",
            BranchOp::Ge => "bge",
            BranchOp::Ltu => "bltu",
            BranchOp::Geu => "bgeu",
        }
    }
}

/// Memory load width/signedness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoadOp {
    /// `lb` — signed byte.
    Lb,
    /// `lh` — signed half-word.
    Lh,
    /// `lw` — word.
    Lw,
    /// `lbu` — unsigned byte.
    Lbu,
    /// `lhu` — unsigned half-word.
    Lhu,
}

impl LoadOp {
    const fn funct3(self) -> u32 {
        match self {
            LoadOp::Lb => 0b000,
            LoadOp::Lh => 0b001,
            LoadOp::Lw => 0b010,
            LoadOp::Lbu => 0b100,
            LoadOp::Lhu => 0b101,
        }
    }

    const fn mnemonic(self) -> &'static str {
        match self {
            LoadOp::Lb => "lb",
            LoadOp::Lh => "lh",
            LoadOp::Lw => "lw",
            LoadOp::Lbu => "lbu",
            LoadOp::Lhu => "lhu",
        }
    }

    /// Access size in bytes.
    pub const fn size(self) -> u32 {
        match self {
            LoadOp::Lb | LoadOp::Lbu => 1,
            LoadOp::Lh | LoadOp::Lhu => 2,
            LoadOp::Lw => 4,
        }
    }

    /// `true` when the loaded value must be sign-extended.
    pub const fn is_signed(self) -> bool {
        matches!(self, LoadOp::Lb | LoadOp::Lh)
    }
}

/// Memory store width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StoreOp {
    /// `sb` — byte.
    Sb,
    /// `sh` — half-word.
    Sh,
    /// `sw` — word.
    Sw,
}

impl StoreOp {
    const fn funct3(self) -> u32 {
        match self {
            StoreOp::Sb => 0b000,
            StoreOp::Sh => 0b001,
            StoreOp::Sw => 0b010,
        }
    }

    const fn mnemonic(self) -> &'static str {
        match self {
            StoreOp::Sb => "sb",
            StoreOp::Sh => "sh",
            StoreOp::Sw => "sw",
        }
    }

    /// Access size in bytes.
    pub const fn size(self) -> u32 {
        match self {
            StoreOp::Sb => 1,
            StoreOp::Sh => 2,
            StoreOp::Sw => 4,
        }
    }
}

/// Register–immediate ALU operation (`OP-IMM` major opcode).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluImmOp {
    /// `addi`.
    Addi,
    /// `slti` — set if less than (signed).
    Slti,
    /// `sltiu` — set if less than (unsigned).
    Sltiu,
    /// `xori`.
    Xori,
    /// `ori`.
    Ori,
    /// `andi`.
    Andi,
    /// `slli` — shift left logical.
    Slli,
    /// `srli` — shift right logical.
    Srli,
    /// `srai` — shift right arithmetic.
    Srai,
}

impl AluImmOp {
    const fn mnemonic(self) -> &'static str {
        match self {
            AluImmOp::Addi => "addi",
            AluImmOp::Slti => "slti",
            AluImmOp::Sltiu => "sltiu",
            AluImmOp::Xori => "xori",
            AluImmOp::Ori => "ori",
            AluImmOp::Andi => "andi",
            AluImmOp::Slli => "slli",
            AluImmOp::Srli => "srli",
            AluImmOp::Srai => "srai",
        }
    }
}

/// Register–register ALU operation (`OP` major opcode), including the
/// RV32M multiply/divide extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// `add`.
    Add,
    /// `sub`.
    Sub,
    /// `sll`.
    Sll,
    /// `slt`.
    Slt,
    /// `sltu`.
    Sltu,
    /// `xor`.
    Xor,
    /// `srl`.
    Srl,
    /// `sra`.
    Sra,
    /// `or`.
    Or,
    /// `and`.
    And,
    /// `mul` (RV32M).
    Mul,
    /// `mulh` (RV32M).
    Mulh,
    /// `mulhsu` (RV32M).
    Mulhsu,
    /// `mulhu` (RV32M).
    Mulhu,
    /// `div` (RV32M).
    Div,
    /// `divu` (RV32M).
    Divu,
    /// `rem` (RV32M).
    Rem,
    /// `remu` (RV32M).
    Remu,
}

impl AluOp {
    const fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Sll => "sll",
            AluOp::Slt => "slt",
            AluOp::Sltu => "sltu",
            AluOp::Xor => "xor",
            AluOp::Srl => "srl",
            AluOp::Sra => "sra",
            AluOp::Or => "or",
            AluOp::And => "and",
            AluOp::Mul => "mul",
            AluOp::Mulh => "mulh",
            AluOp::Mulhsu => "mulhsu",
            AluOp::Mulhu => "mulhu",
            AluOp::Div => "div",
            AluOp::Divu => "divu",
            AluOp::Rem => "rem",
            AluOp::Remu => "remu",
        }
    }

    /// `true` for RV32M multiply/divide operations.
    pub const fn is_m_ext(self) -> bool {
        matches!(
            self,
            AluOp::Mul
                | AluOp::Mulh
                | AluOp::Mulhsu
                | AluOp::Mulhu
                | AluOp::Div
                | AluOp::Divu
                | AluOp::Rem
                | AluOp::Remu
        )
    }
}

/// A decoded RV32 instruction (RV32IM + XCVPULP subset + custom-2 escape).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// `lui rd, imm` — load upper immediate (`imm` already shifted).
    Lui {
        /// Destination register.
        rd: Gpr,
        /// Upper-immediate value with the low 12 bits zero.
        imm: u32,
    },
    /// `auipc rd, imm` — add upper immediate to PC.
    Auipc {
        /// Destination register.
        rd: Gpr,
        /// Upper-immediate value with the low 12 bits zero.
        imm: u32,
    },
    /// `jal rd, offset` — jump and link (offset relative to this PC).
    Jal {
        /// Link register.
        rd: Gpr,
        /// Signed byte offset from this instruction.
        offset: i32,
    },
    /// `jalr rd, offset(rs1)` — indirect jump and link.
    Jalr {
        /// Link register.
        rd: Gpr,
        /// Base register.
        rs1: Gpr,
        /// Signed byte offset.
        offset: i32,
    },
    /// Conditional branch.
    Branch {
        /// Comparison performed.
        op: BranchOp,
        /// First compared register.
        rs1: Gpr,
        /// Second compared register.
        rs2: Gpr,
        /// Signed byte offset from this instruction.
        offset: i32,
    },
    /// Memory load.
    Load {
        /// Width/signedness.
        op: LoadOp,
        /// Destination register.
        rd: Gpr,
        /// Base address register.
        rs1: Gpr,
        /// Signed byte offset.
        offset: i32,
    },
    /// Memory store.
    Store {
        /// Width.
        op: StoreOp,
        /// Source data register.
        rs2: Gpr,
        /// Base address register.
        rs1: Gpr,
        /// Signed byte offset.
        offset: i32,
    },
    /// Register–immediate ALU operation.
    OpImm {
        /// Operation.
        op: AluImmOp,
        /// Destination register.
        rd: Gpr,
        /// Source register.
        rs1: Gpr,
        /// Sign-extended immediate (shift amount for shifts).
        imm: i32,
    },
    /// Register–register ALU operation (incl. RV32M).
    Op {
        /// Operation.
        op: AluOp,
        /// Destination register.
        rd: Gpr,
        /// First source register.
        rs1: Gpr,
        /// Second source register.
        rs2: Gpr,
    },
    /// `fence` — treated as a no-op by the in-order model.
    Fence,
    /// `ecall` — environment call (terminates simulation).
    Ecall,
    /// `ebreak` — breakpoint (terminates simulation).
    Ebreak,
    /// XCVPULP extension instruction (CV32E40PX baseline only).
    Pulp(xcvpulp::PulpInstr),
    /// Raw RISC-V *custom-2* (opcode `0x5b`) instruction.
    ///
    /// The CPU does not interpret this; it is offered to the CV-X-IF
    /// coprocessor interface together with the values of `rs1`, `rs2`
    /// and `rs3` — the offload mechanism of the paper's §III-B.
    Custom2 {
        /// The full 32-bit encoding (carries `func5` and the width).
        raw: u32,
        /// First source register (R4-type `rs1` field).
        rs1: Gpr,
        /// Second source register (R4-type `rs2` field).
        rs2: Gpr,
        /// Third source register (R4-type `rs3` field).
        rs3: Gpr,
        /// Destination register (unused by `xmnmc`, kept for generality).
        rd: Gpr,
    },
}

/// Major opcodes used by the encoder/decoder.
pub(crate) mod opcode {
    pub const LUI: u32 = 0b011_0111;
    pub const AUIPC: u32 = 0b001_0111;
    pub const JAL: u32 = 0b110_1111;
    pub const JALR: u32 = 0b110_0111;
    pub const BRANCH: u32 = 0b110_0011;
    pub const LOAD: u32 = 0b000_0011;
    pub const STORE: u32 = 0b010_0011;
    pub const OP_IMM: u32 = 0b001_0011;
    pub const OP: u32 = 0b011_0011;
    pub const MISC_MEM: u32 = 0b000_1111;
    pub const SYSTEM: u32 = 0b111_0011;
    /// custom-0: XCVPULP post-increment memory + scalar DSP ops (local encoding).
    pub const CUSTOM0: u32 = 0b000_1011;
    /// custom-1: XCVPULP packed-SIMD + hardware loops (local encoding).
    pub const CUSTOM1: u32 = 0b010_1011;
    /// custom-2: the `xmnmc` matrix extension (as in the paper, `0x5b`).
    pub const CUSTOM2: u32 = 0b101_1011;
}

#[inline]
fn bits(word: u32, hi: u32, lo: u32) -> u32 {
    (word >> lo) & ((1u32 << (hi - lo + 1)) - 1)
}

#[inline]
fn sign_extend(value: u32, bits: u32) -> i32 {
    let shift = 32 - bits;
    ((value << shift) as i32) >> shift
}

fn imm_i(word: u32) -> i32 {
    sign_extend(bits(word, 31, 20), 12)
}

fn imm_s(word: u32) -> i32 {
    sign_extend((bits(word, 31, 25) << 5) | bits(word, 11, 7), 12)
}

fn imm_b(word: u32) -> i32 {
    let v = (bits(word, 31, 31) << 12)
        | (bits(word, 7, 7) << 11)
        | (bits(word, 30, 25) << 5)
        | (bits(word, 11, 8) << 1);
    sign_extend(v, 13)
}

fn imm_j(word: u32) -> i32 {
    let v = (bits(word, 31, 31) << 20)
        | (bits(word, 19, 12) << 12)
        | (bits(word, 20, 20) << 11)
        | (bits(word, 30, 21) << 1);
    sign_extend(v, 21)
}

/// Decodes a 32-bit instruction word.
///
/// # Errors
///
/// Returns [`DecodeError`] when the word does not correspond to a
/// supported RV32IM / XCVPULP / custom-2 instruction.
pub fn decode(word: u32) -> Result<Instr, DecodeError> {
    let op = bits(word, 6, 0);
    let rd = Gpr::from_bits(bits(word, 11, 7));
    let rs1 = Gpr::from_bits(bits(word, 19, 15));
    let rs2 = Gpr::from_bits(bits(word, 24, 20));
    let funct3 = bits(word, 14, 12);
    let funct7 = bits(word, 31, 25);

    match op {
        opcode::LUI => Ok(Instr::Lui {
            rd,
            imm: word & 0xffff_f000,
        }),
        opcode::AUIPC => Ok(Instr::Auipc {
            rd,
            imm: word & 0xffff_f000,
        }),
        opcode::JAL => Ok(Instr::Jal {
            rd,
            offset: imm_j(word),
        }),
        opcode::JALR => {
            if funct3 != 0 {
                return Err(DecodeError::new(word, "jalr funct3 must be 0"));
            }
            Ok(Instr::Jalr {
                rd,
                rs1,
                offset: imm_i(word),
            })
        }
        opcode::BRANCH => {
            let bop = match funct3 {
                0b000 => BranchOp::Eq,
                0b001 => BranchOp::Ne,
                0b100 => BranchOp::Lt,
                0b101 => BranchOp::Ge,
                0b110 => BranchOp::Ltu,
                0b111 => BranchOp::Geu,
                _ => return Err(DecodeError::new(word, "unknown branch funct3")),
            };
            Ok(Instr::Branch {
                op: bop,
                rs1,
                rs2,
                offset: imm_b(word),
            })
        }
        opcode::LOAD => {
            let lop = match funct3 {
                0b000 => LoadOp::Lb,
                0b001 => LoadOp::Lh,
                0b010 => LoadOp::Lw,
                0b100 => LoadOp::Lbu,
                0b101 => LoadOp::Lhu,
                _ => return Err(DecodeError::new(word, "unknown load funct3")),
            };
            Ok(Instr::Load {
                op: lop,
                rd,
                rs1,
                offset: imm_i(word),
            })
        }
        opcode::STORE => {
            let sop = match funct3 {
                0b000 => StoreOp::Sb,
                0b001 => StoreOp::Sh,
                0b010 => StoreOp::Sw,
                _ => return Err(DecodeError::new(word, "unknown store funct3")),
            };
            Ok(Instr::Store {
                op: sop,
                rs2,
                rs1,
                offset: imm_s(word),
            })
        }
        opcode::OP_IMM => {
            let iop = match funct3 {
                0b000 => AluImmOp::Addi,
                0b010 => AluImmOp::Slti,
                0b011 => AluImmOp::Sltiu,
                0b100 => AluImmOp::Xori,
                0b110 => AluImmOp::Ori,
                0b111 => AluImmOp::Andi,
                0b001 => {
                    if funct7 != 0 {
                        return Err(DecodeError::new(word, "slli funct7 must be 0"));
                    }
                    AluImmOp::Slli
                }
                0b101 => match funct7 {
                    0b000_0000 => AluImmOp::Srli,
                    0b010_0000 => AluImmOp::Srai,
                    _ => return Err(DecodeError::new(word, "unknown shift funct7")),
                },
                _ => unreachable!(),
            };
            let imm = match iop {
                AluImmOp::Slli | AluImmOp::Srli | AluImmOp::Srai => bits(word, 24, 20) as i32,
                _ => imm_i(word),
            };
            Ok(Instr::OpImm {
                op: iop,
                rd,
                rs1,
                imm,
            })
        }
        opcode::OP => {
            let aop = match (funct7, funct3) {
                (0b000_0000, 0b000) => AluOp::Add,
                (0b010_0000, 0b000) => AluOp::Sub,
                (0b000_0000, 0b001) => AluOp::Sll,
                (0b000_0000, 0b010) => AluOp::Slt,
                (0b000_0000, 0b011) => AluOp::Sltu,
                (0b000_0000, 0b100) => AluOp::Xor,
                (0b000_0000, 0b101) => AluOp::Srl,
                (0b010_0000, 0b101) => AluOp::Sra,
                (0b000_0000, 0b110) => AluOp::Or,
                (0b000_0000, 0b111) => AluOp::And,
                (0b000_0001, 0b000) => AluOp::Mul,
                (0b000_0001, 0b001) => AluOp::Mulh,
                (0b000_0001, 0b010) => AluOp::Mulhsu,
                (0b000_0001, 0b011) => AluOp::Mulhu,
                (0b000_0001, 0b100) => AluOp::Div,
                (0b000_0001, 0b101) => AluOp::Divu,
                (0b000_0001, 0b110) => AluOp::Rem,
                (0b000_0001, 0b111) => AluOp::Remu,
                _ => return Err(DecodeError::new(word, "unknown OP funct7/funct3")),
            };
            Ok(Instr::Op {
                op: aop,
                rd,
                rs1,
                rs2,
            })
        }
        opcode::MISC_MEM => Ok(Instr::Fence),
        opcode::SYSTEM => match bits(word, 31, 20) {
            0 => Ok(Instr::Ecall),
            1 => Ok(Instr::Ebreak),
            _ => Err(DecodeError::new(word, "unsupported SYSTEM instruction")),
        },
        opcode::CUSTOM0 | opcode::CUSTOM1 => xcvpulp::decode(word).map(Instr::Pulp),
        opcode::CUSTOM2 => Ok(Instr::Custom2 {
            raw: word,
            rs1,
            rs2,
            rs3: Gpr::from_bits(bits(word, 31, 27)),
            rd,
        }),
        _ => Err(DecodeError::new(word, "unknown major opcode")),
    }
}

fn enc_r(opcode: u32, funct7: u32, funct3: u32, rd: Gpr, rs1: Gpr, rs2: Gpr) -> u32 {
    (funct7 << 25)
        | ((rs2.index() as u32) << 20)
        | ((rs1.index() as u32) << 15)
        | (funct3 << 12)
        | ((rd.index() as u32) << 7)
        | opcode
}

fn enc_i(opcode: u32, funct3: u32, rd: Gpr, rs1: Gpr, imm: i32) -> u32 {
    ((imm as u32 & 0xfff) << 20)
        | ((rs1.index() as u32) << 15)
        | (funct3 << 12)
        | ((rd.index() as u32) << 7)
        | opcode
}

fn enc_s(opcode: u32, funct3: u32, rs1: Gpr, rs2: Gpr, imm: i32) -> u32 {
    let imm = imm as u32;
    ((imm >> 5 & 0x7f) << 25)
        | ((rs2.index() as u32) << 20)
        | ((rs1.index() as u32) << 15)
        | (funct3 << 12)
        | ((imm & 0x1f) << 7)
        | opcode
}

fn enc_b(opcode: u32, funct3: u32, rs1: Gpr, rs2: Gpr, offset: i32) -> u32 {
    let imm = offset as u32;
    ((imm >> 12 & 1) << 31)
        | ((imm >> 5 & 0x3f) << 25)
        | ((rs2.index() as u32) << 20)
        | ((rs1.index() as u32) << 15)
        | (funct3 << 12)
        | ((imm >> 1 & 0xf) << 8)
        | ((imm >> 11 & 1) << 7)
        | opcode
}

fn enc_j(opcode: u32, rd: Gpr, offset: i32) -> u32 {
    let imm = offset as u32;
    ((imm >> 20 & 1) << 31)
        | ((imm >> 1 & 0x3ff) << 21)
        | ((imm >> 11 & 1) << 20)
        | ((imm >> 12 & 0xff) << 12)
        | ((rd.index() as u32) << 7)
        | opcode
}

/// Encodes an instruction into its 32-bit binary form.
///
/// Encoding followed by [`decode`] round-trips for every supported
/// instruction (verified by property tests).
pub fn encode(instr: &Instr) -> u32 {
    match *instr {
        Instr::Lui { rd, imm } => (imm & 0xffff_f000) | ((rd.index() as u32) << 7) | opcode::LUI,
        Instr::Auipc { rd, imm } => {
            (imm & 0xffff_f000) | ((rd.index() as u32) << 7) | opcode::AUIPC
        }
        Instr::Jal { rd, offset } => enc_j(opcode::JAL, rd, offset),
        Instr::Jalr { rd, rs1, offset } => enc_i(opcode::JALR, 0, rd, rs1, offset),
        Instr::Branch {
            op,
            rs1,
            rs2,
            offset,
        } => enc_b(opcode::BRANCH, op.funct3(), rs1, rs2, offset),
        Instr::Load {
            op,
            rd,
            rs1,
            offset,
        } => enc_i(opcode::LOAD, op.funct3(), rd, rs1, offset),
        Instr::Store {
            op,
            rs2,
            rs1,
            offset,
        } => enc_s(opcode::STORE, op.funct3(), rs1, rs2, offset),
        Instr::OpImm { op, rd, rs1, imm } => {
            let (funct3, imm) = match op {
                AluImmOp::Addi => (0b000, imm),
                AluImmOp::Slti => (0b010, imm),
                AluImmOp::Sltiu => (0b011, imm),
                AluImmOp::Xori => (0b100, imm),
                AluImmOp::Ori => (0b110, imm),
                AluImmOp::Andi => (0b111, imm),
                AluImmOp::Slli => (0b001, imm & 0x1f),
                AluImmOp::Srli => (0b101, imm & 0x1f),
                AluImmOp::Srai => (0b101, (imm & 0x1f) | 0x400),
            };
            enc_i(opcode::OP_IMM, funct3, rd, rs1, imm)
        }
        Instr::Op { op, rd, rs1, rs2 } => {
            let (funct7, funct3) = match op {
                AluOp::Add => (0b000_0000, 0b000),
                AluOp::Sub => (0b010_0000, 0b000),
                AluOp::Sll => (0b000_0000, 0b001),
                AluOp::Slt => (0b000_0000, 0b010),
                AluOp::Sltu => (0b000_0000, 0b011),
                AluOp::Xor => (0b000_0000, 0b100),
                AluOp::Srl => (0b000_0000, 0b101),
                AluOp::Sra => (0b010_0000, 0b101),
                AluOp::Or => (0b000_0000, 0b110),
                AluOp::And => (0b000_0000, 0b111),
                AluOp::Mul => (0b000_0001, 0b000),
                AluOp::Mulh => (0b000_0001, 0b001),
                AluOp::Mulhsu => (0b000_0001, 0b010),
                AluOp::Mulhu => (0b000_0001, 0b011),
                AluOp::Div => (0b000_0001, 0b100),
                AluOp::Divu => (0b000_0001, 0b101),
                AluOp::Rem => (0b000_0001, 0b110),
                AluOp::Remu => (0b000_0001, 0b111),
            };
            enc_r(opcode::OP, funct7, funct3, rd, rs1, rs2)
        }
        Instr::Fence => opcode::MISC_MEM,
        Instr::Ecall => opcode::SYSTEM,
        Instr::Ebreak => (1 << 20) | opcode::SYSTEM,
        Instr::Pulp(p) => xcvpulp::encode(&p),
        Instr::Custom2 { raw, .. } => raw,
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instr::Lui { rd, imm } => write!(f, "lui {rd}, {:#x}", imm >> 12),
            Instr::Auipc { rd, imm } => write!(f, "auipc {rd}, {:#x}", imm >> 12),
            Instr::Jal { rd, offset } => write!(f, "jal {rd}, {offset}"),
            Instr::Jalr { rd, rs1, offset } => write!(f, "jalr {rd}, {offset}({rs1})"),
            Instr::Branch {
                op,
                rs1,
                rs2,
                offset,
            } => write!(f, "{} {rs1}, {rs2}, {offset}", op.mnemonic()),
            Instr::Load {
                op,
                rd,
                rs1,
                offset,
            } => write!(f, "{} {rd}, {offset}({rs1})", op.mnemonic()),
            Instr::Store {
                op,
                rs2,
                rs1,
                offset,
            } => write!(f, "{} {rs2}, {offset}({rs1})", op.mnemonic()),
            Instr::OpImm { op, rd, rs1, imm } => {
                write!(f, "{} {rd}, {rs1}, {imm}", op.mnemonic())
            }
            Instr::Op { op, rd, rs1, rs2 } => {
                write!(f, "{} {rd}, {rs1}, {rs2}", op.mnemonic())
            }
            Instr::Fence => f.write_str("fence"),
            Instr::Ecall => f.write_str("ecall"),
            Instr::Ebreak => f.write_str("ebreak"),
            Instr::Pulp(p) => p.fmt(f),
            Instr::Custom2 { raw, .. } => write!(f, ".insn custom2 {raw:#010x}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::*;

    fn roundtrip(i: Instr) {
        let w = encode(&i);
        let d = decode(w).unwrap_or_else(|e| panic!("{i}: {e}"));
        assert_eq!(d, i, "encoding {w:#010x}");
    }

    #[test]
    fn roundtrip_ui_types() {
        roundtrip(Instr::Lui {
            rd: A0,
            imm: 0xdead_b000,
        });
        roundtrip(Instr::Auipc {
            rd: T3,
            imm: 0x0000_1000,
        });
    }

    #[test]
    fn roundtrip_jumps() {
        roundtrip(Instr::Jal {
            rd: RA,
            offset: -2048,
        });
        roundtrip(Instr::Jal {
            rd: ZERO,
            offset: 0xffffe,
        });
        roundtrip(Instr::Jalr {
            rd: ZERO,
            rs1: RA,
            offset: 0,
        });
    }

    #[test]
    fn roundtrip_branches() {
        for op in [
            BranchOp::Eq,
            BranchOp::Ne,
            BranchOp::Lt,
            BranchOp::Ge,
            BranchOp::Ltu,
            BranchOp::Geu,
        ] {
            roundtrip(Instr::Branch {
                op,
                rs1: A0,
                rs2: A1,
                offset: -4096,
            });
            roundtrip(Instr::Branch {
                op,
                rs1: T0,
                rs2: T1,
                offset: 4094,
            });
        }
    }

    #[test]
    fn roundtrip_memory() {
        for op in [LoadOp::Lb, LoadOp::Lh, LoadOp::Lw, LoadOp::Lbu, LoadOp::Lhu] {
            roundtrip(Instr::Load {
                op,
                rd: S1,
                rs1: SP,
                offset: -1,
            });
        }
        for op in [StoreOp::Sb, StoreOp::Sh, StoreOp::Sw] {
            roundtrip(Instr::Store {
                op,
                rs2: A2,
                rs1: SP,
                offset: 2047,
            });
        }
    }

    #[test]
    fn roundtrip_alu() {
        for op in [
            AluImmOp::Addi,
            AluImmOp::Slti,
            AluImmOp::Sltiu,
            AluImmOp::Xori,
            AluImmOp::Ori,
            AluImmOp::Andi,
        ] {
            roundtrip(Instr::OpImm {
                op,
                rd: A3,
                rs1: A4,
                imm: -2048,
            });
        }
        for op in [AluImmOp::Slli, AluImmOp::Srli, AluImmOp::Srai] {
            roundtrip(Instr::OpImm {
                op,
                rd: A3,
                rs1: A4,
                imm: 31,
            });
        }
        for op in [
            AluOp::Add,
            AluOp::Sub,
            AluOp::Sll,
            AluOp::Slt,
            AluOp::Sltu,
            AluOp::Xor,
            AluOp::Srl,
            AluOp::Sra,
            AluOp::Or,
            AluOp::And,
            AluOp::Mul,
            AluOp::Mulh,
            AluOp::Mulhsu,
            AluOp::Mulhu,
            AluOp::Div,
            AluOp::Divu,
            AluOp::Rem,
            AluOp::Remu,
        ] {
            roundtrip(Instr::Op {
                op,
                rd: T4,
                rs1: T5,
                rs2: T6,
            });
        }
    }

    #[test]
    fn roundtrip_system() {
        roundtrip(Instr::Ecall);
        roundtrip(Instr::Ebreak);
    }

    #[test]
    fn custom2_reaches_coprocessor() {
        // Encode an arbitrary custom-2 word; the CPU must expose rs1/rs2/rs3.
        let raw: u32 = (7 << 27) | (3 << 20) | (2 << 15) | opcode::CUSTOM2;
        match decode(raw).unwrap() {
            Instr::Custom2 { rs1, rs2, rs3, .. } => {
                assert_eq!(rs1.index(), 2);
                assert_eq!(rs2.index(), 3);
                assert_eq!(rs3.index(), 7);
            }
            other => panic!("expected custom2, got {other:?}"),
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(decode(0xffff_ffff).is_err());
        assert!(decode(0x0000_0000).is_err());
    }

    #[test]
    fn display_is_informative() {
        let i = Instr::Load {
            op: LoadOp::Lw,
            rd: A0,
            rs1: SP,
            offset: 16,
        };
        assert_eq!(i.to_string(), "lw a0, 16(sp)");
    }
}
