//! NM-Carus-style near-memory vector ISA.
//!
//! The ARCANE cache runtime implements each complex matrix instruction as
//! a *micro-program* of vector-like instructions executed in hardware by
//! the NM-Carus vector processing units (paper §III, building on
//! Caon et al. 2024). The VPU vector registers **are** the cache lines:
//! each of the 32 vector registers is one 1 KiB cache line, and the lane
//! datapath (2/4/8 × 32-bit lanes with sub-word SIMD) streams over them.
//!
//! The instruction set modeled here is the subset those micro-programs
//! need: element-wise arithmetic (`.vv` and `.vx` forms), slides,
//! broadcasts and reductions, with a `setvl`-style length/width control.
//! Encodings are local to this simulator (NM-Carus uses its own custom
//! encoding space too) and round-trip under property tests.

use crate::DecodeError;
use arcane_sim::Sew;
use std::fmt;

/// A VPU vector register (`v0`–`v31`); physically one cache line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Vr(u8);

impl Vr {
    /// Creates a vector register; `None` when `index > 31`.
    pub const fn new(index: u8) -> Option<Vr> {
        if index < 32 {
            Some(Vr(index))
        } else {
            None
        }
    }

    /// Creates a vector register from the low five bits.
    pub const fn from_bits(index: u32) -> Vr {
        Vr((index & 0x1f) as u8)
    }

    /// Register index.
    pub const fn index(self) -> u8 {
        self.0
    }
}

impl fmt::Display for Vr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A VPU scalar register (`s0`–`s31`), written by the eCPU before kernel
/// dispatch (filter taps, activation slopes, GeMM α/β live here).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sr(u8);

impl Sr {
    /// Creates a scalar register; `None` when `index > 31`.
    pub const fn new(index: u8) -> Option<Sr> {
        if index < 32 {
            Some(Sr(index))
        } else {
            None
        }
    }

    /// Creates a scalar register from the low five bits.
    pub const fn from_bits(index: u32) -> Sr {
        Sr((index & 0x1f) as u8)
    }

    /// Register index.
    pub const fn index(self) -> u8 {
        self.0
    }
}

impl fmt::Display for Sr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Element-wise vector operation kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication (low half).
    Mul,
    /// Multiply-accumulate into the destination: `vd += vs1 * src2`.
    Macc,
    /// Signed maximum.
    Max,
    /// Signed minimum.
    Min,
    /// Logical left shift.
    Sll,
    /// Logical right shift.
    Srl,
    /// Arithmetic right shift.
    Sra,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
}

impl VOp {
    const ALL: [VOp; 12] = [
        VOp::Add,
        VOp::Sub,
        VOp::Mul,
        VOp::Macc,
        VOp::Max,
        VOp::Min,
        VOp::Sll,
        VOp::Srl,
        VOp::Sra,
        VOp::And,
        VOp::Or,
        VOp::Xor,
    ];

    const fn code(self) -> u32 {
        match self {
            VOp::Add => 0,
            VOp::Sub => 1,
            VOp::Mul => 2,
            VOp::Macc => 3,
            VOp::Max => 4,
            VOp::Min => 5,
            VOp::Sll => 6,
            VOp::Srl => 7,
            VOp::Sra => 8,
            VOp::And => 9,
            VOp::Or => 10,
            VOp::Xor => 11,
        }
    }

    const fn from_code(code: u32) -> Option<VOp> {
        match code {
            0 => Some(VOp::Add),
            1 => Some(VOp::Sub),
            2 => Some(VOp::Mul),
            3 => Some(VOp::Macc),
            4 => Some(VOp::Max),
            5 => Some(VOp::Min),
            6 => Some(VOp::Sll),
            7 => Some(VOp::Srl),
            8 => Some(VOp::Sra),
            9 => Some(VOp::And),
            10 => Some(VOp::Or),
            11 => Some(VOp::Xor),
            _ => None,
        }
    }

    const fn mnemonic(self) -> &'static str {
        match self {
            VOp::Add => "vadd",
            VOp::Sub => "vsub",
            VOp::Mul => "vmul",
            VOp::Macc => "vmacc",
            VOp::Max => "vmax",
            VOp::Min => "vmin",
            VOp::Sll => "vsll",
            VOp::Srl => "vsrl",
            VOp::Sra => "vsra",
            VOp::And => "vand",
            VOp::Or => "vor",
            VOp::Xor => "vxor",
        }
    }
}

/// A decoded NM-Carus-style vector instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VInstr {
    /// `vsetvl vl, sew` — configure active vector length (in elements)
    /// and element width for subsequent instructions.
    SetVl {
        /// Active vector length in elements (≤ `VLEN / sew.bytes()`).
        vl: u16,
        /// Element width.
        sew: Sew,
    },
    /// Vector–vector element-wise operation: `vd[i] (op)= vs1[i], vs2[i]`.
    OpVV {
        /// Operation.
        op: VOp,
        /// Destination (and accumulator for `Macc`).
        vd: Vr,
        /// First source.
        vs1: Vr,
        /// Second source.
        vs2: Vr,
    },
    /// Vector–scalar element-wise operation: `vd[i] (op)= vs1[i], s[rs]`.
    OpVX {
        /// Operation.
        op: VOp,
        /// Destination (and accumulator for `Macc`).
        vd: Vr,
        /// Vector source.
        vs1: Vr,
        /// Scalar register providing the second operand.
        rs: Sr,
    },
    /// `vslidedown vd, vs1, offset` — `vd[i] = vs1[i + offset]`
    /// (zero-filled tail).
    SlideDown {
        /// Destination.
        vd: Vr,
        /// Source.
        vs1: Vr,
        /// Slide distance in elements.
        offset: u16,
    },
    /// `vslideup vd, vs1, offset` — `vd[i + offset] = vs1[i]`
    /// (elements below `offset` unchanged).
    SlideUp {
        /// Destination.
        vd: Vr,
        /// Source.
        vs1: Vr,
        /// Slide distance in elements.
        offset: u16,
    },
    /// `vmv.v.x vd, s[rs]` — broadcast a scalar to every element.
    BroadcastX {
        /// Destination.
        vd: Vr,
        /// Scalar register to broadcast.
        rs: Sr,
    },
    /// `vmv.v.v vd, vs1` — whole-register move (first `vl` elements).
    Move {
        /// Destination.
        vd: Vr,
        /// Source.
        vs1: Vr,
    },
    /// `vredsum vd, vs1` — sum-reduce into element 0 of `vd`.
    RedSum {
        /// Destination (element 0 receives the sum).
        vd: Vr,
        /// Source.
        vs1: Vr,
    },
    /// `vredmax vd, vs1` — max-reduce into element 0 of `vd`.
    RedMax {
        /// Destination (element 0 receives the maximum).
        vd: Vr,
        /// Source.
        vs1: Vr,
    },
}

const CL_SETVL: u32 = 0;
const CL_OPVV: u32 = 1;
const CL_OPVX: u32 = 2;
const CL_SLIDEDOWN: u32 = 3;
const CL_SLIDEUP: u32 = 4;
const CL_BROADCAST: u32 = 5;
const CL_MOVE: u32 = 6;
const CL_REDSUM: u32 = 7;
const CL_REDMAX: u32 = 8;

/// Encodes a vector instruction into its 32-bit binary form.
///
/// Layout: `[31:27]` class, `[26:22]` vd, `[21:17]` vs1, `[16:12]`
/// vs2/rs, `[11:0]` immediate (`vl`, slide offset or `VOp` code).
/// `SetVl` packs `vl` into `[21:10]` and `sew` into `[9:8]`.
pub fn encode(v: &VInstr) -> u32 {
    let pack = |class: u32, vd: u32, a: u32, b: u32, imm: u32| {
        (class << 27) | (vd << 22) | (a << 17) | (b << 12) | (imm & 0xfff)
    };
    match *v {
        VInstr::SetVl { vl, sew } => {
            (CL_SETVL << 27) | ((vl as u32 & 0xfff) << 10) | ((sew.to_bits() as u32) << 8)
        }
        VInstr::OpVV { op, vd, vs1, vs2 } => pack(
            CL_OPVV,
            vd.index() as u32,
            vs1.index() as u32,
            vs2.index() as u32,
            op.code(),
        ),
        VInstr::OpVX { op, vd, vs1, rs } => pack(
            CL_OPVX,
            vd.index() as u32,
            vs1.index() as u32,
            rs.index() as u32,
            op.code(),
        ),
        VInstr::SlideDown { vd, vs1, offset } => pack(
            CL_SLIDEDOWN,
            vd.index() as u32,
            vs1.index() as u32,
            0,
            offset as u32,
        ),
        VInstr::SlideUp { vd, vs1, offset } => pack(
            CL_SLIDEUP,
            vd.index() as u32,
            vs1.index() as u32,
            0,
            offset as u32,
        ),
        VInstr::BroadcastX { vd, rs } => {
            pack(CL_BROADCAST, vd.index() as u32, 0, rs.index() as u32, 0)
        }
        VInstr::Move { vd, vs1 } => pack(CL_MOVE, vd.index() as u32, vs1.index() as u32, 0, 0),
        VInstr::RedSum { vd, vs1 } => pack(CL_REDSUM, vd.index() as u32, vs1.index() as u32, 0, 0),
        VInstr::RedMax { vd, vs1 } => pack(CL_REDMAX, vd.index() as u32, vs1.index() as u32, 0, 0),
    }
}

/// Decodes a 32-bit word as a vector instruction.
///
/// # Errors
///
/// Returns [`DecodeError`] for unallocated class or operation codes.
pub fn decode(word: u32) -> Result<VInstr, DecodeError> {
    let class = word >> 27;
    let vd = Vr::from_bits(word >> 22);
    let vs1 = Vr::from_bits(word >> 17);
    let field_b = word >> 12 & 0x1f;
    let imm = word & 0xfff;
    match class {
        CL_SETVL => {
            let sew = Sew::from_bits((word >> 8 & 0x3) as u8)
                .ok_or(DecodeError::new(word, "reserved vector sew"))?;
            Ok(VInstr::SetVl {
                vl: (word >> 10 & 0xfff) as u16,
                sew,
            })
        }
        CL_OPVV => Ok(VInstr::OpVV {
            op: VOp::from_code(imm).ok_or(DecodeError::new(word, "unknown vector op"))?,
            vd,
            vs1,
            vs2: Vr::from_bits(field_b),
        }),
        CL_OPVX => Ok(VInstr::OpVX {
            op: VOp::from_code(imm).ok_or(DecodeError::new(word, "unknown vector op"))?,
            vd,
            vs1,
            rs: Sr::from_bits(field_b),
        }),
        CL_SLIDEDOWN => Ok(VInstr::SlideDown {
            vd,
            vs1,
            offset: imm as u16,
        }),
        CL_SLIDEUP => Ok(VInstr::SlideUp {
            vd,
            vs1,
            offset: imm as u16,
        }),
        CL_BROADCAST => Ok(VInstr::BroadcastX {
            vd,
            rs: Sr::from_bits(field_b),
        }),
        CL_MOVE => Ok(VInstr::Move { vd, vs1 }),
        CL_REDSUM => Ok(VInstr::RedSum { vd, vs1 }),
        CL_REDMAX => Ok(VInstr::RedMax { vd, vs1 }),
        _ => Err(DecodeError::new(word, "unknown vector instruction class")),
    }
}

impl fmt::Display for VInstr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            VInstr::SetVl { vl, sew } => write!(f, "vsetvl {vl}, {sew}"),
            VInstr::OpVV { op, vd, vs1, vs2 } => {
                write!(f, "{}.vv {vd}, {vs1}, {vs2}", op.mnemonic())
            }
            VInstr::OpVX { op, vd, vs1, rs } => {
                write!(f, "{}.vx {vd}, {vs1}, {rs}", op.mnemonic())
            }
            VInstr::SlideDown { vd, vs1, offset } => {
                write!(f, "vslidedown {vd}, {vs1}, {offset}")
            }
            VInstr::SlideUp { vd, vs1, offset } => write!(f, "vslideup {vd}, {vs1}, {offset}"),
            VInstr::BroadcastX { vd, rs } => write!(f, "vmv.v.x {vd}, {rs}"),
            VInstr::Move { vd, vs1 } => write!(f, "vmv.v.v {vd}, {vs1}"),
            VInstr::RedSum { vd, vs1 } => write!(f, "vredsum {vd}, {vs1}"),
            VInstr::RedMax { vd, vs1 } => write!(f, "vredmax {vd}, {vs1}"),
        }
    }
}

/// Returns every `VOp`, for exhaustive tests and generators.
pub fn all_vops() -> &'static [VOp] {
    &VOp::ALL
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: VInstr) {
        let w = encode(&v);
        let d = decode(w).unwrap_or_else(|e| panic!("{v}: {e}"));
        assert_eq!(d, v, "encoding {w:#010x}");
    }

    #[test]
    fn roundtrip_setvl() {
        for sew in Sew::ALL {
            roundtrip(VInstr::SetVl { vl: 1024, sew });
            roundtrip(VInstr::SetVl { vl: 0, sew });
        }
    }

    #[test]
    fn roundtrip_all_ops() {
        let vd = Vr::new(1).unwrap();
        let vs1 = Vr::new(30).unwrap();
        let vs2 = Vr::new(17).unwrap();
        let rs = Sr::new(9).unwrap();
        for &op in all_vops() {
            roundtrip(VInstr::OpVV { op, vd, vs1, vs2 });
            roundtrip(VInstr::OpVX { op, vd, vs1, rs });
        }
    }

    #[test]
    fn roundtrip_moves_slides_reductions() {
        let vd = Vr::new(2).unwrap();
        let vs1 = Vr::new(3).unwrap();
        let rs = Sr::new(31).unwrap();
        roundtrip(VInstr::SlideDown {
            vd,
            vs1,
            offset: 1023,
        });
        roundtrip(VInstr::SlideUp { vd, vs1, offset: 7 });
        roundtrip(VInstr::BroadcastX { vd, rs });
        roundtrip(VInstr::Move { vd, vs1 });
        roundtrip(VInstr::RedSum { vd, vs1 });
        roundtrip(VInstr::RedMax { vd, vs1 });
    }

    #[test]
    fn rejects_unknown_class() {
        assert!(decode(31 << 27).is_err());
    }

    #[test]
    fn display_examples() {
        let v = VInstr::OpVX {
            op: VOp::Macc,
            vd: Vr::new(4).unwrap(),
            vs1: Vr::new(5).unwrap(),
            rs: Sr::new(6).unwrap(),
        };
        assert_eq!(v.to_string(), "vmacc.vx v4, v5, s6");
    }
}
