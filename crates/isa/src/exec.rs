//! Predecoded execution support: basic blocks and the block cache.
//!
//! The interpreter in `arcane-rv32` originally re-fetched and re-decoded
//! every instruction on every dynamic execution — at 256×256 the Figure 4
//! scalar baseline decodes the same <40-instruction inner loop over a
//! hundred million times. This module provides the predecode stage that
//! amortises that control overhead, the same way ARCANE itself amortises
//! kernel-dispatch overhead over long data-local vector operations
//! (paper §IV): straight-line runs of instructions are decoded once into
//! a [`DecodedBlock`] and cached by start PC in a [`BlockCache`].
//!
//! A block ends at the first *control-class* instruction (branch, jump,
//! `ecall`/`ebreak`, or a custom-2 offload whose acceptance is decided
//! by the coprocessor) or at [`MAX_BLOCK_LEN`]. Each instruction
//! carries a precomputed [`CostClass`] hint: predecode uses it to
//! place block boundaries ([`CostClass::ends_block`]), and the engine
//! uses it to gate the self-modifying-code re-check on store-class
//! instructions instead of paying it on every retired instruction.
//!
//! The cache stays coherent with instruction memory: every store the
//! core performs is offered to [`BlockCache::invalidate_write`], which
//! drops any block whose PC range overlaps the written bytes and bumps a
//! generation counter the engine checks mid-block (self-modifying-code
//! guard).

use crate::rv32::Instr;
use crate::xcvpulp::PulpInstr;
use std::collections::HashMap;
use std::rc::Rc;

/// Upper bound on the number of instructions in one [`DecodedBlock`].
///
/// Long straight-line runs are rare in the evaluation kernels (the hot
/// loops are < 40 instructions); capping the block keeps predecode
/// latency and invalidation granularity bounded.
pub const MAX_BLOCK_LEN: usize = 64;

/// Precomputed timing class of a decoded instruction.
///
/// Classes with a fixed cycle cost (ALU, multiplier, divider, SIMD,
/// loop setup) can be charged without inspecting the operands; the
/// remaining classes depend on runtime state (branch direction, bus
/// wait states, coprocessor response).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CostClass {
    /// Single-cycle ALU class (`OpImm`, non-M `Op`, `lui`, `auipc`, `fence`).
    Alu,
    /// 32×32 multiply (`mul`).
    Mul,
    /// High-half multiply (`mulh*`).
    Mulh,
    /// Iterative divide/remainder.
    Div,
    /// Unconditional jump (`jal`/`jalr`).
    Jump,
    /// Conditional branch (taken/not-taken cost decided at run time).
    Branch,
    /// Memory load (bus-dependent cost).
    Load,
    /// Memory store (bus-dependent cost).
    Store,
    /// XCVPULP packed-SIMD / DSP op (single-cycle datapath).
    Simd,
    /// XCVPULP hardware-loop setup.
    LoopSetup,
    /// `ecall`/`ebreak` (terminates simulation).
    System,
    /// Custom-2 offload (cost decided by the coprocessor).
    Offload,
}

impl CostClass {
    /// Classifies a decoded instruction.
    pub const fn of(instr: &Instr) -> CostClass {
        match instr {
            Instr::Lui { .. } | Instr::Auipc { .. } | Instr::OpImm { .. } | Instr::Fence => {
                CostClass::Alu
            }
            Instr::Op { op, .. } => match op {
                crate::rv32::AluOp::Mul => CostClass::Mul,
                crate::rv32::AluOp::Mulh
                | crate::rv32::AluOp::Mulhsu
                | crate::rv32::AluOp::Mulhu => CostClass::Mulh,
                crate::rv32::AluOp::Div
                | crate::rv32::AluOp::Divu
                | crate::rv32::AluOp::Rem
                | crate::rv32::AluOp::Remu => CostClass::Div,
                _ => CostClass::Alu,
            },
            Instr::Jal { .. } | Instr::Jalr { .. } => CostClass::Jump,
            Instr::Branch { .. } => CostClass::Branch,
            Instr::Load { .. } => CostClass::Load,
            Instr::Store { .. } => CostClass::Store,
            Instr::Ecall | Instr::Ebreak => CostClass::System,
            Instr::Custom2 { .. } => CostClass::Offload,
            Instr::Pulp(p) => match p {
                PulpInstr::LoadPost { .. } => CostClass::Load,
                PulpInstr::StorePost { .. } => CostClass::Store,
                PulpInstr::LoopSetupI { .. } | PulpInstr::LoopSetup { .. } => CostClass::LoopSetup,
                _ => CostClass::Simd,
            },
        }
    }

    /// `true` when an instruction of this class ends a basic block
    /// (control transfer, program termination, or coprocessor offload).
    pub const fn ends_block(self) -> bool {
        matches!(
            self,
            CostClass::Jump | CostClass::Branch | CostClass::System | CostClass::Offload
        )
    }
}

/// A straight-line run of predecoded instructions.
///
/// The block starts at [`DecodedBlock::start`] and covers consecutive
/// word-aligned PCs; the final instruction is either a control-class
/// instruction ([`CostClass::ends_block`]) or the block was truncated at
/// [`MAX_BLOCK_LEN`] / at a word that failed to decode (the engine
/// re-enters predecode at the following PC, so a stale or invalid word
/// only faults when control actually reaches it — exactly like the
/// fetch-per-instruction interpreter).
#[derive(Debug, Clone)]
pub struct DecodedBlock {
    start: u32,
    instrs: Vec<(Instr, CostClass)>,
}

impl DecodedBlock {
    /// Creates an empty block starting at `start`.
    pub fn new(start: u32) -> Self {
        DecodedBlock {
            start,
            instrs: Vec::new(),
        }
    }

    /// Appends `instr`, classifying it; returns `true` while the block
    /// remains open (i.e. the caller should keep pushing).
    pub fn push(&mut self, instr: Instr) -> bool {
        let class = CostClass::of(&instr);
        self.instrs.push((instr, class));
        !class.ends_block() && self.instrs.len() < MAX_BLOCK_LEN
    }

    /// First PC covered by the block.
    pub const fn start(&self) -> u32 {
        self.start
    }

    /// One past the last byte covered by the block.
    pub fn end(&self) -> u32 {
        self.start.wrapping_add((self.instrs.len() * 4) as u32)
    }

    /// Number of instructions in the block.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// `true` when the block holds no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// The predecoded instructions with their cost hints.
    pub fn instrs(&self) -> &[(Instr, CostClass)] {
        &self.instrs
    }

    /// `true` when `addr` falls inside the block's PC range.
    pub fn covers(&self, addr: u32) -> bool {
        addr >= self.start && addr < self.end()
    }
}

/// Number of direct-mapped front slots (must be a power of two).
const SLOTS: usize = 128;

/// A PC-keyed cache of [`DecodedBlock`]s with write invalidation.
///
/// Lookups hit a direct-mapped front array first (hot loop bodies
/// resolve in a couple of compares) and fall back to a hash map. Writes
/// are screened against the union PC range of all cached blocks, so the
/// common case — data stores far from code — costs two compares.
#[derive(Debug, Clone)]
pub struct BlockCache {
    map: HashMap<u32, Rc<DecodedBlock>>,
    slots: Vec<Option<Rc<DecodedBlock>>>,
    /// Lowest PC covered by any cached block.
    lo: u32,
    /// One past the highest PC covered by any cached block.
    hi: u32,
    generation: u64,
}

impl Default for BlockCache {
    fn default() -> Self {
        BlockCache::new()
    }
}

impl BlockCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        BlockCache {
            map: HashMap::new(),
            slots: vec![None; SLOTS],
            lo: u32::MAX,
            hi: 0,
            generation: 0,
        }
    }

    const fn slot_of(pc: u32) -> usize {
        ((pc >> 2) as usize) & (SLOTS - 1)
    }

    /// Looks up the block starting exactly at `pc`.
    pub fn get(&self, pc: u32) -> Option<Rc<DecodedBlock>> {
        if let Some(b) = &self.slots[Self::slot_of(pc)] {
            if b.start() == pc {
                return Some(Rc::clone(b));
            }
        }
        self.map.get(&pc).cloned()
    }

    /// Inserts a block and returns the shared handle.
    pub fn insert(&mut self, block: DecodedBlock) -> Rc<DecodedBlock> {
        self.lo = self.lo.min(block.start());
        self.hi = self.hi.max(block.end());
        let rc = Rc::new(block);
        self.slots[Self::slot_of(rc.start())] = Some(Rc::clone(&rc));
        self.map.insert(rc.start(), Rc::clone(&rc));
        rc
    }

    /// Number of cached blocks.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when the cache holds no blocks.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Monotonic counter bumped on every invalidation; the engine
    /// re-reads it after each instruction of a block in flight so a
    /// store into the block's own remainder aborts predecoded execution.
    pub const fn generation(&self) -> u64 {
        self.generation
    }

    /// Invalidates every block whose PC range overlaps the `bytes`-byte
    /// store at `addr`. Cheap when the store is outside the union range
    /// of all cached code (the overwhelmingly common case).
    pub fn invalidate_write(&mut self, addr: u32, bytes: u32) {
        let end = addr.wrapping_add(bytes);
        if addr >= self.hi || end <= self.lo || self.map.is_empty() {
            return;
        }
        let before = self.map.len();
        self.map.retain(|_, b| end <= b.start() || addr >= b.end());
        if self.map.len() != before {
            self.generation += 1;
            for slot in &mut self.slots {
                if let Some(b) = slot {
                    if !(end <= b.start() || addr >= b.end()) {
                        *slot = None;
                    }
                }
            }
            // Recompute the union range from the survivors.
            self.lo = u32::MAX;
            self.hi = 0;
            for b in self.map.values() {
                self.lo = self.lo.min(b.start());
                self.hi = self.hi.max(b.end());
            }
        }
    }

    /// Drops every cached block (used on core reset / program load).
    pub fn clear(&mut self) {
        self.map.clear();
        self.slots.iter_mut().for_each(|s| *s = None);
        self.lo = u32::MAX;
        self.hi = 0;
        self.generation += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::{A0, A1};
    use crate::rv32::{AluImmOp, AluOp, BranchOp};

    fn addi() -> Instr {
        Instr::OpImm {
            op: AluImmOp::Addi,
            rd: A0,
            rs1: A0,
            imm: 1,
        }
    }

    fn branch() -> Instr {
        Instr::Branch {
            op: BranchOp::Ne,
            rs1: A0,
            rs2: A1,
            offset: -8,
        }
    }

    #[test]
    fn block_ends_at_control_instruction() {
        let mut b = DecodedBlock::new(0x100);
        assert!(b.push(addi()));
        assert!(b.push(addi()));
        assert!(!b.push(branch()));
        assert_eq!(b.len(), 3);
        assert_eq!(b.end(), 0x10c);
        assert!(b.covers(0x108));
        assert!(!b.covers(0x10c));
    }

    #[test]
    fn block_caps_at_max_len() {
        let mut b = DecodedBlock::new(0);
        for i in 0..MAX_BLOCK_LEN {
            let open = b.push(addi());
            assert_eq!(open, i + 1 < MAX_BLOCK_LEN);
        }
        assert_eq!(b.len(), MAX_BLOCK_LEN);
    }

    #[test]
    fn cost_classes() {
        assert_eq!(CostClass::of(&addi()), CostClass::Alu);
        assert_eq!(CostClass::of(&branch()), CostClass::Branch);
        assert_eq!(
            CostClass::of(&Instr::Op {
                op: AluOp::Div,
                rd: A0,
                rs1: A0,
                rs2: A1
            }),
            CostClass::Div
        );
        assert_eq!(CostClass::of(&Instr::Ebreak), CostClass::System);
        assert!(CostClass::Branch.ends_block());
        assert!(!CostClass::Load.ends_block());
    }

    #[test]
    fn cache_roundtrip_and_fast_slot() {
        let mut c = BlockCache::new();
        let mut b = DecodedBlock::new(0x40);
        b.push(addi());
        b.push(branch());
        c.insert(b);
        assert_eq!(c.len(), 1);
        let hit = c.get(0x40).expect("cached");
        assert_eq!(hit.len(), 2);
        assert!(c.get(0x44).is_none(), "keyed by start PC only");
    }

    #[test]
    fn invalidation_is_range_precise() {
        let mut c = BlockCache::new();
        for start in [0x00u32, 0x40, 0x80] {
            let mut b = DecodedBlock::new(start);
            b.push(addi());
            b.push(branch());
            c.insert(b);
        }
        let g0 = c.generation();
        // A data store far above code: no-op, no generation bump.
        c.invalidate_write(0x4000, 4);
        assert_eq!(c.len(), 3);
        assert_eq!(c.generation(), g0);
        // Overwrite the second instruction of the middle block.
        c.invalidate_write(0x44, 4);
        assert_eq!(c.len(), 2);
        assert!(c.get(0x40).is_none());
        assert!(c.get(0x00).is_some() && c.get(0x80).is_some());
        assert!(c.generation() > g0);
        // An unaligned byte store straddling into the last block.
        c.invalidate_write(0x80, 1);
        assert!(c.get(0x80).is_none());
    }

    #[test]
    fn clear_empties_everything() {
        let mut c = BlockCache::new();
        let mut b = DecodedBlock::new(0);
        b.push(addi());
        c.insert(b);
        c.clear();
        assert!(c.is_empty());
        assert!(c.get(0).is_none());
    }
}
