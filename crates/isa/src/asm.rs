//! A small two-pass assembler for building evaluation workloads.
//!
//! Every workload in the reproduction (scalar convolutions, XCVPULP
//! packed-SIMD kernels, host offload programs) is emitted through this
//! builder as real machine code and executed by the instruction-set
//! simulator — no analytic shortcut.
//!
//! # Examples
//!
//! Count down from 5:
//!
//! ```
//! use arcane_isa::asm::Asm;
//! use arcane_isa::reg::{A0, ZERO};
//!
//! let mut a = Asm::new();
//! a.li(A0, 5);
//! let top = a.bind_label();
//! a.addi(A0, A0, -1);
//! a.bne(A0, ZERO, top);
//! a.ebreak();
//! let words = a.assemble(0x0).unwrap();
//! assert!(words.len() >= 4);
//! ```

use crate::reg::{Gpr, RA, ZERO};
use crate::rv32::{AluImmOp, AluOp, BranchOp, Instr, LoadOp, StoreOp};
use crate::xcvpulp::{PulpInstr, PvOp, SimdWidth};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// An opaque label handle produced by [`Asm::label`] / [`Asm::bind_label`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Error produced by [`Asm::assemble`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A label was referenced but never bound to a position.
    UnboundLabel(Label),
    /// A branch target is too far for the 13-bit branch offset.
    BranchOutOfRange {
        /// Index of the offending instruction.
        at: usize,
        /// The required offset in bytes.
        offset: i64,
    },
    /// A jump target is too far for the 21-bit JAL offset.
    JumpOutOfRange {
        /// Index of the offending instruction.
        at: usize,
        /// The required offset in bytes.
        offset: i64,
    },
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UnboundLabel(l) => write!(f, "label {l:?} was never bound"),
            AsmError::BranchOutOfRange { at, offset } => {
                write!(f, "branch at instruction {at} needs offset {offset} bytes")
            }
            AsmError::JumpOutOfRange { at, offset } => {
                write!(f, "jump at instruction {at} needs offset {offset} bytes")
            }
        }
    }
}

impl Error for AsmError {}

#[derive(Debug, Clone, Copy)]
enum Item {
    /// A fully formed instruction.
    Fixed(Instr),
    /// A branch whose offset is resolved at assembly time.
    Branch {
        op: BranchOp,
        rs1: Gpr,
        rs2: Gpr,
        target: Label,
    },
    /// A `jal` whose offset is resolved at assembly time.
    Jal { rd: Gpr, target: Label },
}

/// Two-pass assembler building a flat `Vec<u32>` of RV32 machine code.
///
/// All emit methods append one instruction (pseudo-instructions may
/// expand to two) and return `&mut self` for chaining.
#[derive(Debug, Default)]
pub struct Asm {
    items: Vec<Item>,
    bound: HashMap<usize, usize>,
    next_label: usize,
}

impl Asm {
    /// Creates an empty program.
    pub fn new() -> Self {
        Asm::default()
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when no instructions have been emitted.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Creates a fresh, unbound label.
    pub fn label(&mut self) -> Label {
        let l = Label(self.next_label);
        self.next_label += 1;
        l
    }

    /// Binds `label` to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound (each label marks one spot).
    pub fn bind(&mut self, label: Label) {
        let prev = self.bound.insert(label.0, self.items.len());
        assert!(prev.is_none(), "label bound twice");
    }

    /// Creates a label bound to the current position (common case).
    pub fn bind_label(&mut self) -> Label {
        let l = self.label();
        self.bind(l);
        l
    }

    /// Emits a raw, pre-built instruction.
    pub fn raw(&mut self, instr: Instr) -> &mut Self {
        self.items.push(Item::Fixed(instr));
        self
    }

    // ---- RV32I -----------------------------------------------------------

    /// `lui rd, imm20` (`imm` is the already-shifted upper value).
    pub fn lui(&mut self, rd: Gpr, imm: u32) -> &mut Self {
        self.raw(Instr::Lui { rd, imm })
    }

    /// `addi rd, rs1, imm`.
    pub fn addi(&mut self, rd: Gpr, rs1: Gpr, imm: i32) -> &mut Self {
        self.raw(Instr::OpImm {
            op: AluImmOp::Addi,
            rd,
            rs1,
            imm,
        })
    }

    /// `andi rd, rs1, imm`.
    pub fn andi(&mut self, rd: Gpr, rs1: Gpr, imm: i32) -> &mut Self {
        self.raw(Instr::OpImm {
            op: AluImmOp::Andi,
            rd,
            rs1,
            imm,
        })
    }

    /// `slli rd, rs1, shamt`.
    pub fn slli(&mut self, rd: Gpr, rs1: Gpr, shamt: i32) -> &mut Self {
        self.raw(Instr::OpImm {
            op: AluImmOp::Slli,
            rd,
            rs1,
            imm: shamt,
        })
    }

    /// `srai rd, rs1, shamt`.
    pub fn srai(&mut self, rd: Gpr, rs1: Gpr, shamt: i32) -> &mut Self {
        self.raw(Instr::OpImm {
            op: AluImmOp::Srai,
            rd,
            rs1,
            imm: shamt,
        })
    }

    /// `srli rd, rs1, shamt`.
    pub fn srli(&mut self, rd: Gpr, rs1: Gpr, shamt: i32) -> &mut Self {
        self.raw(Instr::OpImm {
            op: AluImmOp::Srli,
            rd,
            rs1,
            imm: shamt,
        })
    }

    /// Register–register ALU op.
    pub fn op(&mut self, op: AluOp, rd: Gpr, rs1: Gpr, rs2: Gpr) -> &mut Self {
        self.raw(Instr::Op { op, rd, rs1, rs2 })
    }

    /// `add rd, rs1, rs2`.
    pub fn add(&mut self, rd: Gpr, rs1: Gpr, rs2: Gpr) -> &mut Self {
        self.op(AluOp::Add, rd, rs1, rs2)
    }

    /// `sub rd, rs1, rs2`.
    pub fn sub(&mut self, rd: Gpr, rs1: Gpr, rs2: Gpr) -> &mut Self {
        self.op(AluOp::Sub, rd, rs1, rs2)
    }

    /// `mul rd, rs1, rs2`.
    pub fn mul(&mut self, rd: Gpr, rs1: Gpr, rs2: Gpr) -> &mut Self {
        self.op(AluOp::Mul, rd, rs1, rs2)
    }

    /// Memory load.
    pub fn load(&mut self, op: LoadOp, rd: Gpr, rs1: Gpr, offset: i32) -> &mut Self {
        self.raw(Instr::Load {
            op,
            rd,
            rs1,
            offset,
        })
    }

    /// `lw rd, offset(rs1)`.
    pub fn lw(&mut self, rd: Gpr, rs1: Gpr, offset: i32) -> &mut Self {
        self.load(LoadOp::Lw, rd, rs1, offset)
    }

    /// `lb rd, offset(rs1)`.
    pub fn lb(&mut self, rd: Gpr, rs1: Gpr, offset: i32) -> &mut Self {
        self.load(LoadOp::Lb, rd, rs1, offset)
    }

    /// `lh rd, offset(rs1)`.
    pub fn lh(&mut self, rd: Gpr, rs1: Gpr, offset: i32) -> &mut Self {
        self.load(LoadOp::Lh, rd, rs1, offset)
    }

    /// Memory store.
    pub fn store(&mut self, op: StoreOp, rs2: Gpr, rs1: Gpr, offset: i32) -> &mut Self {
        self.raw(Instr::Store {
            op,
            rs2,
            rs1,
            offset,
        })
    }

    /// `sw rs2, offset(rs1)`.
    pub fn sw(&mut self, rs2: Gpr, rs1: Gpr, offset: i32) -> &mut Self {
        self.store(StoreOp::Sw, rs2, rs1, offset)
    }

    /// `sb rs2, offset(rs1)`.
    pub fn sb(&mut self, rs2: Gpr, rs1: Gpr, offset: i32) -> &mut Self {
        self.store(StoreOp::Sb, rs2, rs1, offset)
    }

    /// `sh rs2, offset(rs1)`.
    pub fn sh(&mut self, rs2: Gpr, rs1: Gpr, offset: i32) -> &mut Self {
        self.store(StoreOp::Sh, rs2, rs1, offset)
    }

    /// Conditional branch to `target`.
    pub fn branch(&mut self, op: BranchOp, rs1: Gpr, rs2: Gpr, target: Label) -> &mut Self {
        self.items.push(Item::Branch {
            op,
            rs1,
            rs2,
            target,
        });
        self
    }

    /// `beq rs1, rs2, target`.
    pub fn beq(&mut self, rs1: Gpr, rs2: Gpr, target: Label) -> &mut Self {
        self.branch(BranchOp::Eq, rs1, rs2, target)
    }

    /// `bne rs1, rs2, target`.
    pub fn bne(&mut self, rs1: Gpr, rs2: Gpr, target: Label) -> &mut Self {
        self.branch(BranchOp::Ne, rs1, rs2, target)
    }

    /// `blt rs1, rs2, target` (signed).
    pub fn blt(&mut self, rs1: Gpr, rs2: Gpr, target: Label) -> &mut Self {
        self.branch(BranchOp::Lt, rs1, rs2, target)
    }

    /// `bge rs1, rs2, target` (signed).
    pub fn bge(&mut self, rs1: Gpr, rs2: Gpr, target: Label) -> &mut Self {
        self.branch(BranchOp::Ge, rs1, rs2, target)
    }

    /// `bltu rs1, rs2, target` (unsigned).
    pub fn bltu(&mut self, rs1: Gpr, rs2: Gpr, target: Label) -> &mut Self {
        self.branch(BranchOp::Ltu, rs1, rs2, target)
    }

    /// `jal rd, target`.
    pub fn jal(&mut self, rd: Gpr, target: Label) -> &mut Self {
        self.items.push(Item::Jal { rd, target });
        self
    }

    /// `j target` (pseudo: `jal zero, target`).
    pub fn j(&mut self, target: Label) -> &mut Self {
        self.jal(ZERO, target)
    }

    /// `call target` (pseudo: `jal ra, target`).
    pub fn call(&mut self, target: Label) -> &mut Self {
        self.jal(RA, target)
    }

    /// `ret` (pseudo: `jalr zero, 0(ra)`).
    pub fn ret(&mut self) -> &mut Self {
        self.raw(Instr::Jalr {
            rd: ZERO,
            rs1: RA,
            offset: 0,
        })
    }

    /// `nop` (pseudo: `addi zero, zero, 0`).
    pub fn nop(&mut self) -> &mut Self {
        self.addi(ZERO, ZERO, 0)
    }

    /// `mv rd, rs` (pseudo: `addi rd, rs, 0`).
    pub fn mv(&mut self, rd: Gpr, rs: Gpr) -> &mut Self {
        self.addi(rd, rs, 0)
    }

    /// `li rd, value` — load a 32-bit constant (expands to
    /// `lui` + `addi` when needed, a single `addi` for small values).
    pub fn li(&mut self, rd: Gpr, value: i32) -> &mut Self {
        if (-2048..2048).contains(&value) {
            return self.addi(rd, ZERO, value);
        }
        let v = value as u32;
        let lo = (v & 0xfff) as i32;
        let lo = if lo >= 2048 { lo - 4096 } else { lo };
        let hi = v.wrapping_sub(lo as u32);
        self.lui(rd, hi);
        if lo != 0 {
            self.addi(rd, rd, lo);
        }
        self
    }

    /// `ebreak` — simulation end marker.
    pub fn ebreak(&mut self) -> &mut Self {
        self.raw(Instr::Ebreak)
    }

    /// `ecall`.
    pub fn ecall(&mut self) -> &mut Self {
        self.raw(Instr::Ecall)
    }

    // ---- XCVPULP helpers (baseline kernels) ------------------------------

    /// `cv.lw rd, offset(rs1!)` — load word with post-increment.
    pub fn cv_lw_post(&mut self, rd: Gpr, rs1: Gpr, offset: i32) -> &mut Self {
        self.raw(Instr::Pulp(PulpInstr::LoadPost {
            op: LoadOp::Lw,
            rd,
            rs1,
            offset,
        }))
    }

    /// `cv.lb`-style post-increment load of any width.
    pub fn cv_load_post(&mut self, op: LoadOp, rd: Gpr, rs1: Gpr, offset: i32) -> &mut Self {
        self.raw(Instr::Pulp(PulpInstr::LoadPost {
            op,
            rd,
            rs1,
            offset,
        }))
    }

    /// Post-increment store of any width.
    pub fn cv_store_post(&mut self, op: StoreOp, rs2: Gpr, rs1: Gpr, offset: i32) -> &mut Self {
        self.raw(Instr::Pulp(PulpInstr::StorePost {
            op,
            rs2,
            rs1,
            offset,
        }))
    }

    /// Packed-SIMD operation.
    pub fn pv(&mut self, op: PvOp, w: SimdWidth, rd: Gpr, rs1: Gpr, rs2: Gpr) -> &mut Self {
        self.raw(Instr::Pulp(PulpInstr::Simd {
            op,
            w,
            rd,
            rs1,
            rs2,
        }))
    }

    /// `cv.mac rd, rs1, rs2` — scalar multiply-accumulate.
    pub fn cv_mac(&mut self, rd: Gpr, rs1: Gpr, rs2: Gpr) -> &mut Self {
        self.raw(Instr::Pulp(PulpInstr::Mac { rd, rs1, rs2 }))
    }

    /// `cv.max rd, rs1, rs2` — scalar maximum (ReLU building block).
    pub fn cv_max(&mut self, rd: Gpr, rs1: Gpr, rs2: Gpr) -> &mut Self {
        self.raw(Instr::Pulp(PulpInstr::MaxS { rd, rs1, rs2 }))
    }

    /// `cv.setupi` — immediate-count hardware loop over the next
    /// `body_len` instructions.
    pub fn cv_setupi(&mut self, loop_id: bool, count: u16, body_len: u8) -> &mut Self {
        self.raw(Instr::Pulp(PulpInstr::LoopSetupI {
            loop_id,
            count,
            body_len,
        }))
    }

    /// `cv.setup` — register-count hardware loop.
    pub fn cv_setup(&mut self, loop_id: bool, count: Gpr, body_len: u16) -> &mut Self {
        self.raw(Instr::Pulp(PulpInstr::LoopSetup {
            loop_id,
            count,
            body_len,
        }))
    }

    // ---- assembly --------------------------------------------------------

    /// Resolves labels and encodes the program as 32-bit words, assuming
    /// the first instruction sits at byte address `base`.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError`] on unbound labels or out-of-range control
    /// transfers.
    pub fn assemble(&self, base: u32) -> Result<Vec<u32>, AsmError> {
        let _ = base; // offsets are PC-relative; base kept for API clarity
        let mut words = Vec::with_capacity(self.items.len());
        for (i, item) in self.items.iter().enumerate() {
            let instr = match *item {
                Item::Fixed(instr) => instr,
                Item::Branch {
                    op,
                    rs1,
                    rs2,
                    target,
                } => {
                    let at = self
                        .bound
                        .get(&target.0)
                        .ok_or(AsmError::UnboundLabel(target))?;
                    let offset = (*at as i64 - i as i64) * 4;
                    if !(-4096..4096).contains(&offset) {
                        return Err(AsmError::BranchOutOfRange { at: i, offset });
                    }
                    Instr::Branch {
                        op,
                        rs1,
                        rs2,
                        offset: offset as i32,
                    }
                }
                Item::Jal { rd, target } => {
                    let at = self
                        .bound
                        .get(&target.0)
                        .ok_or(AsmError::UnboundLabel(target))?;
                    let offset = (*at as i64 - i as i64) * 4;
                    if !(-(1 << 20)..(1 << 20)).contains(&offset) {
                        return Err(AsmError::JumpOutOfRange { at: i, offset });
                    }
                    Instr::Jal {
                        rd,
                        offset: offset as i32,
                    }
                }
            };
            words.push(crate::rv32::encode(&instr));
        }
        Ok(words)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::*;
    use crate::rv32::decode;

    #[test]
    fn li_small_is_single_addi() {
        let mut a = Asm::new();
        a.li(A0, 100);
        let w = a.assemble(0).unwrap();
        assert_eq!(w.len(), 1);
        assert_eq!(decode(w[0]).unwrap().to_string(), "addi a0, zero, 100");
    }

    #[test]
    fn li_large_roundtrips_through_lui_addi() {
        // Execute the lui+addi pair mentally for a tricky carry case.
        for value in [0x2000_0000u32 as i32, 0x1234_5fff_u32 as i32, -1, i32::MIN] {
            let mut a = Asm::new();
            a.li(T0, value);
            let words = a.assemble(0).unwrap();
            // Interpret: lui sets, addi adds sign-extended low.
            let mut reg = 0u32;
            for w in words {
                match decode(w).unwrap() {
                    Instr::Lui { imm, .. } => reg = imm,
                    Instr::OpImm {
                        op: AluImmOp::Addi,
                        imm,
                        ..
                    } => reg = reg.wrapping_add(imm as u32),
                    other => panic!("unexpected {other}"),
                }
            }
            assert_eq!(reg, value as u32, "li {value:#x}");
        }
    }

    #[test]
    fn forward_and_backward_branches_resolve() {
        let mut a = Asm::new();
        let fwd = a.label();
        a.beq(A0, A1, fwd); // +2 instructions forward
        a.nop();
        a.bind(fwd);
        let back = a.bind_label();
        a.bne(A0, A1, back); // 0 offset back to itself
        let w = a.assemble(0).unwrap();
        match decode(w[0]).unwrap() {
            Instr::Branch { offset, .. } => assert_eq!(offset, 8),
            other => panic!("{other}"),
        }
        match decode(w[2]).unwrap() {
            Instr::Branch { offset, .. } => assert_eq!(offset, 0),
            other => panic!("{other}"),
        }
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut a = Asm::new();
        let l = a.label();
        a.j(l);
        assert!(matches!(a.assemble(0), Err(AsmError::UnboundLabel(_))));
    }

    #[test]
    fn branch_out_of_range_is_detected() {
        let mut a = Asm::new();
        let top = a.bind_label();
        for _ in 0..1500 {
            a.nop();
        }
        a.beq(A0, A1, top);
        assert!(matches!(
            a.assemble(0),
            Err(AsmError::BranchOutOfRange { .. })
        ));
    }

    #[test]
    fn pseudo_instructions_expand() {
        let mut a = Asm::new();
        a.mv(A0, A1).nop().ret().ebreak();
        let w = a.assemble(0).unwrap();
        assert_eq!(w.len(), 4);
        assert_eq!(decode(w[2]).unwrap().to_string(), "jalr zero, 0(ra)");
    }
}
