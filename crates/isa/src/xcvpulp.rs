//! XCVPULP packed-SIMD / DSP extension subset.
//!
//! The paper's strongest CPU baseline is a CV32E40PX core implementing the
//! CORE-V XCVPULP extensions (Gautschi et al., the RI5CY DSP extensions):
//! post-increment memory accesses, hardware loops, scalar MAC and
//! packed-SIMD (8-/16-bit sub-word) arithmetic including dot products.
//!
//! This module models the subset those convolution kernels need. The
//! *semantics* follow the XCVPULP specification; the *binary encodings*
//! are local to this simulator (placed in the RISC-V custom-0/custom-1
//! spaces) because the CORE-V toolchain is not part of the reproduction.
//! Encode/decode round-trips are property-tested.

use crate::reg::Gpr;
use crate::rv32::{opcode, LoadOp, StoreOp};
use crate::DecodeError;
use std::fmt;

/// Sub-word width of a packed-SIMD operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimdWidth {
    /// Four 8-bit lanes per 32-bit register (`.b` suffix).
    B,
    /// Two 16-bit lanes per 32-bit register (`.h` suffix).
    H,
}

impl SimdWidth {
    /// Number of packed elements in a 32-bit register.
    pub const fn lanes(self) -> u32 {
        match self {
            SimdWidth::B => 4,
            SimdWidth::H => 2,
        }
    }

    const fn suffix(self) -> &'static str {
        match self {
            SimdWidth::B => "b",
            SimdWidth::H => "h",
        }
    }
}

/// Packed-SIMD vector operation (element-wise or dot product).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PvOp {
    /// `pv.add` — element-wise addition.
    Add,
    /// `pv.sub` — element-wise subtraction.
    Sub,
    /// `pv.max` — element-wise signed maximum.
    Max,
    /// `pv.min` — element-wise signed minimum.
    Min,
    /// `pv.dotsp` — signed dot product, `rd = Σ rs1[i]·rs2[i]`.
    Dotsp,
    /// `pv.sdotsp` — signed dot product accumulate, `rd += Σ rs1[i]·rs2[i]`.
    Sdotsp,
    /// `pv.dotup` — unsigned dot product.
    Dotup,
}

impl PvOp {
    const fn mnemonic(self) -> &'static str {
        match self {
            PvOp::Add => "pv.add",
            PvOp::Sub => "pv.sub",
            PvOp::Max => "pv.max",
            PvOp::Min => "pv.min",
            PvOp::Dotsp => "pv.dotsp",
            PvOp::Sdotsp => "pv.sdotsp",
            PvOp::Dotup => "pv.dotup",
        }
    }

    const fn code(self) -> u32 {
        match self {
            PvOp::Add => 0,
            PvOp::Sub => 1,
            PvOp::Max => 2,
            PvOp::Min => 3,
            PvOp::Dotsp => 4,
            PvOp::Sdotsp => 5,
            PvOp::Dotup => 6,
        }
    }

    const fn from_code(code: u32) -> Option<PvOp> {
        match code {
            0 => Some(PvOp::Add),
            1 => Some(PvOp::Sub),
            2 => Some(PvOp::Max),
            3 => Some(PvOp::Min),
            4 => Some(PvOp::Dotsp),
            5 => Some(PvOp::Sdotsp),
            6 => Some(PvOp::Dotup),
            _ => None,
        }
    }
}

/// A decoded XCVPULP instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PulpInstr {
    /// `cv.lw rd, offset(rs1!)` — load, then `rs1 += offset`.
    LoadPost {
        /// Load width/signedness.
        op: LoadOp,
        /// Destination register.
        rd: Gpr,
        /// Base register, post-incremented by `offset`.
        rs1: Gpr,
        /// Signed post-increment.
        offset: i32,
    },
    /// `cv.sw rs2, offset(rs1!)` — store, then `rs1 += offset`.
    StorePost {
        /// Store width.
        op: StoreOp,
        /// Data register.
        rs2: Gpr,
        /// Base register, post-incremented by `offset`.
        rs1: Gpr,
        /// Signed post-increment.
        offset: i32,
    },
    /// Packed-SIMD operation on 8- or 16-bit sub-words.
    Simd {
        /// The SIMD operation.
        op: PvOp,
        /// Sub-word width.
        w: SimdWidth,
        /// Destination register (accumulator for `sdotsp`).
        rd: Gpr,
        /// First packed source.
        rs1: Gpr,
        /// Second packed source.
        rs2: Gpr,
    },
    /// `cv.mac rd, rs1, rs2` — scalar multiply-accumulate, `rd += rs1·rs2`.
    Mac {
        /// Accumulator register.
        rd: Gpr,
        /// Multiplicand.
        rs1: Gpr,
        /// Multiplier.
        rs2: Gpr,
    },
    /// `cv.max rd, rs1, rs2` — scalar signed maximum.
    MaxS {
        /// Destination register.
        rd: Gpr,
        /// First operand.
        rs1: Gpr,
        /// Second operand.
        rs2: Gpr,
    },
    /// `cv.min rd, rs1, rs2` — scalar signed minimum.
    MinS {
        /// Destination register.
        rd: Gpr,
        /// First operand.
        rs1: Gpr,
        /// Second operand.
        rs2: Gpr,
    },
    /// `cv.abs rd, rs1` — scalar absolute value.
    Abs {
        /// Destination register.
        rd: Gpr,
        /// Source operand.
        rs1: Gpr,
    },
    /// `cv.setupi L, count, body_len` — immediate-count hardware loop.
    ///
    /// The next `body_len` instructions execute `count` times with zero
    /// branch overhead.
    LoopSetupI {
        /// Hardware loop id (two nesting levels, as on RI5CY).
        loop_id: bool,
        /// Iteration count (12-bit immediate).
        count: u16,
        /// Body length in instructions (1–31).
        body_len: u8,
    },
    /// `cv.setup L, rs1, body_len` — register-count hardware loop.
    LoopSetup {
        /// Hardware loop id.
        loop_id: bool,
        /// Register holding the iteration count.
        count: Gpr,
        /// Body length in instructions (12-bit immediate).
        body_len: u16,
    },
}

const F3_SIMD: u32 = 0b000;
const F3_LOOPI: u32 = 0b001;
const F3_LOOP: u32 = 0b010;

/// Encodes an XCVPULP instruction into its 32-bit (local) binary form.
pub fn encode(instr: &PulpInstr) -> u32 {
    fn r_type(funct7: u32, funct3: u32, rd: Gpr, rs1: Gpr, rs2: Gpr, op: u32) -> u32 {
        (funct7 << 25)
            | ((rs2.index() as u32) << 20)
            | ((rs1.index() as u32) << 15)
            | (funct3 << 12)
            | ((rd.index() as u32) << 7)
            | op
    }

    match *instr {
        PulpInstr::LoadPost {
            op,
            rd,
            rs1,
            offset,
        } => {
            let funct3 = match op {
                LoadOp::Lb => 0b000,
                LoadOp::Lh => 0b001,
                LoadOp::Lw => 0b010,
                LoadOp::Lbu => 0b100,
                LoadOp::Lhu => 0b101,
            };
            ((offset as u32 & 0xfff) << 20)
                | ((rs1.index() as u32) << 15)
                | (funct3 << 12)
                | ((rd.index() as u32) << 7)
                | opcode::CUSTOM0
        }
        PulpInstr::StorePost {
            op,
            rs2,
            rs1,
            offset,
        } => {
            let funct3 = match op {
                StoreOp::Sb => 0b011,
                StoreOp::Sh => 0b110,
                StoreOp::Sw => 0b111,
            };
            let imm = offset as u32;
            ((imm >> 5 & 0x7f) << 25)
                | ((rs2.index() as u32) << 20)
                | ((rs1.index() as u32) << 15)
                | (funct3 << 12)
                | ((imm & 0x1f) << 7)
                | opcode::CUSTOM0
        }
        PulpInstr::Simd {
            op,
            w,
            rd,
            rs1,
            rs2,
        } => {
            let funct7 = (op.code() << 1)
                | match w {
                    SimdWidth::B => 0,
                    SimdWidth::H => 1,
                };
            r_type(funct7, F3_SIMD, rd, rs1, rs2, opcode::CUSTOM1)
        }
        PulpInstr::Mac { rd, rs1, rs2 } => r_type(0x40, F3_SIMD, rd, rs1, rs2, opcode::CUSTOM1),
        PulpInstr::MaxS { rd, rs1, rs2 } => r_type(0x41, F3_SIMD, rd, rs1, rs2, opcode::CUSTOM1),
        PulpInstr::MinS { rd, rs1, rs2 } => r_type(0x42, F3_SIMD, rd, rs1, rs2, opcode::CUSTOM1),
        PulpInstr::Abs { rd, rs1 } => {
            r_type(0x43, F3_SIMD, rd, rs1, Gpr::from_bits(0), opcode::CUSTOM1)
        }
        PulpInstr::LoopSetupI {
            loop_id,
            count,
            body_len,
        } => {
            ((count as u32 & 0xfff) << 20)
                | (((body_len & 0x1f) as u32) << 15)
                | (F3_LOOPI << 12)
                | ((loop_id as u32) << 7)
                | opcode::CUSTOM1
        }
        PulpInstr::LoopSetup {
            loop_id,
            count,
            body_len,
        } => {
            ((body_len as u32 & 0xfff) << 20)
                | ((count.index() as u32) << 15)
                | (F3_LOOP << 12)
                | ((loop_id as u32) << 7)
                | opcode::CUSTOM1
        }
    }
}

/// Decodes a custom-0/custom-1 word as an XCVPULP instruction.
///
/// # Errors
///
/// Returns [`DecodeError`] for unallocated funct fields.
pub fn decode(word: u32) -> Result<PulpInstr, DecodeError> {
    let op = word & 0x7f;
    let rd = Gpr::from_bits(word >> 7 & 0x1f);
    let funct3 = word >> 12 & 0x7;
    let rs1 = Gpr::from_bits(word >> 15 & 0x1f);
    let rs2 = Gpr::from_bits(word >> 20 & 0x1f);
    let funct7 = word >> 25 & 0x7f;

    match op {
        opcode::CUSTOM0 => {
            let imm_i = (word as i32) >> 20;
            let imm_s = (((word >> 25 & 0x7f) << 5 | (word >> 7 & 0x1f)) as i32) << 20 >> 20;
            match funct3 {
                0b000 => Ok(PulpInstr::LoadPost {
                    op: LoadOp::Lb,
                    rd,
                    rs1,
                    offset: imm_i,
                }),
                0b001 => Ok(PulpInstr::LoadPost {
                    op: LoadOp::Lh,
                    rd,
                    rs1,
                    offset: imm_i,
                }),
                0b010 => Ok(PulpInstr::LoadPost {
                    op: LoadOp::Lw,
                    rd,
                    rs1,
                    offset: imm_i,
                }),
                0b100 => Ok(PulpInstr::LoadPost {
                    op: LoadOp::Lbu,
                    rd,
                    rs1,
                    offset: imm_i,
                }),
                0b101 => Ok(PulpInstr::LoadPost {
                    op: LoadOp::Lhu,
                    rd,
                    rs1,
                    offset: imm_i,
                }),
                0b011 => Ok(PulpInstr::StorePost {
                    op: StoreOp::Sb,
                    rs2,
                    rs1,
                    offset: imm_s,
                }),
                0b110 => Ok(PulpInstr::StorePost {
                    op: StoreOp::Sh,
                    rs2,
                    rs1,
                    offset: imm_s,
                }),
                0b111 => Ok(PulpInstr::StorePost {
                    op: StoreOp::Sw,
                    rs2,
                    rs1,
                    offset: imm_s,
                }),
                _ => Err(DecodeError::new(word, "unknown custom-0 funct3")),
            }
        }
        opcode::CUSTOM1 => match funct3 {
            F3_SIMD => match funct7 {
                0x40 => Ok(PulpInstr::Mac { rd, rs1, rs2 }),
                0x41 => Ok(PulpInstr::MaxS { rd, rs1, rs2 }),
                0x42 => Ok(PulpInstr::MinS { rd, rs1, rs2 }),
                0x43 => Ok(PulpInstr::Abs { rd, rs1 }),
                f if f < 0x40 => {
                    let w = if f & 1 == 0 {
                        SimdWidth::B
                    } else {
                        SimdWidth::H
                    };
                    let pv =
                        PvOp::from_code(f >> 1).ok_or(DecodeError::new(word, "unknown pv op"))?;
                    Ok(PulpInstr::Simd {
                        op: pv,
                        w,
                        rd,
                        rs1,
                        rs2,
                    })
                }
                _ => Err(DecodeError::new(word, "unknown custom-1 funct7")),
            },
            F3_LOOPI => Ok(PulpInstr::LoopSetupI {
                loop_id: rd.index() & 1 == 1,
                count: (word >> 20 & 0xfff) as u16,
                body_len: rs1.index(),
            }),
            F3_LOOP => Ok(PulpInstr::LoopSetup {
                loop_id: rd.index() & 1 == 1,
                count: rs1,
                body_len: (word >> 20 & 0xfff) as u16,
            }),
            _ => Err(DecodeError::new(word, "unknown custom-1 funct3")),
        },
        _ => Err(DecodeError::new(word, "not a custom-0/custom-1 opcode")),
    }
}

impl fmt::Display for PulpInstr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            PulpInstr::LoadPost {
                op,
                rd,
                rs1,
                offset,
            } => write!(f, "cv.{}post {rd}, {offset}({rs1}!)", load_name(op)),
            PulpInstr::StorePost {
                op,
                rs2,
                rs1,
                offset,
            } => write!(f, "cv.{}post {rs2}, {offset}({rs1}!)", store_name(op)),
            PulpInstr::Simd {
                op,
                w,
                rd,
                rs1,
                rs2,
            } => {
                write!(f, "{}.{} {rd}, {rs1}, {rs2}", op.mnemonic(), w.suffix())
            }
            PulpInstr::Mac { rd, rs1, rs2 } => write!(f, "cv.mac {rd}, {rs1}, {rs2}"),
            PulpInstr::MaxS { rd, rs1, rs2 } => write!(f, "cv.max {rd}, {rs1}, {rs2}"),
            PulpInstr::MinS { rd, rs1, rs2 } => write!(f, "cv.min {rd}, {rs1}, {rs2}"),
            PulpInstr::Abs { rd, rs1 } => write!(f, "cv.abs {rd}, {rs1}"),
            PulpInstr::LoopSetupI {
                loop_id,
                count,
                body_len,
            } => write!(f, "cv.setupi l{}, {count}, {body_len}", loop_id as u8),
            PulpInstr::LoopSetup {
                loop_id,
                count,
                body_len,
            } => write!(f, "cv.setup l{}, {count}, {body_len}", loop_id as u8),
        }
    }
}

fn load_name(op: LoadOp) -> &'static str {
    match op {
        LoadOp::Lb => "lb",
        LoadOp::Lh => "lh",
        LoadOp::Lw => "lw",
        LoadOp::Lbu => "lbu",
        LoadOp::Lhu => "lhu",
    }
}

fn store_name(op: StoreOp) -> &'static str {
    match op {
        StoreOp::Sb => "sb",
        StoreOp::Sh => "sh",
        StoreOp::Sw => "sw",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::*;

    fn roundtrip(i: PulpInstr) {
        let w = encode(&i);
        let d = decode(w).unwrap_or_else(|e| panic!("{i}: {e}"));
        assert_eq!(d, i, "encoding {w:#010x}");
    }

    #[test]
    fn roundtrip_post_increment() {
        for op in [LoadOp::Lb, LoadOp::Lh, LoadOp::Lw, LoadOp::Lbu, LoadOp::Lhu] {
            roundtrip(PulpInstr::LoadPost {
                op,
                rd: A0,
                rs1: A1,
                offset: -4,
            });
        }
        for op in [StoreOp::Sb, StoreOp::Sh, StoreOp::Sw] {
            roundtrip(PulpInstr::StorePost {
                op,
                rs2: A2,
                rs1: A3,
                offset: 2047,
            });
        }
    }

    #[test]
    fn roundtrip_simd() {
        for op in [
            PvOp::Add,
            PvOp::Sub,
            PvOp::Max,
            PvOp::Min,
            PvOp::Dotsp,
            PvOp::Sdotsp,
            PvOp::Dotup,
        ] {
            for w in [SimdWidth::B, SimdWidth::H] {
                roundtrip(PulpInstr::Simd {
                    op,
                    w,
                    rd: T0,
                    rs1: T1,
                    rs2: T2,
                });
            }
        }
    }

    #[test]
    fn roundtrip_scalar_dsp() {
        roundtrip(PulpInstr::Mac {
            rd: S0,
            rs1: S1,
            rs2: S2,
        });
        roundtrip(PulpInstr::MaxS {
            rd: S0,
            rs1: S1,
            rs2: S2,
        });
        roundtrip(PulpInstr::MinS {
            rd: S0,
            rs1: S1,
            rs2: S2,
        });
        roundtrip(PulpInstr::Abs { rd: S0, rs1: S1 });
    }

    #[test]
    fn roundtrip_hw_loops() {
        roundtrip(PulpInstr::LoopSetupI {
            loop_id: false,
            count: 4095,
            body_len: 31,
        });
        roundtrip(PulpInstr::LoopSetupI {
            loop_id: true,
            count: 1,
            body_len: 1,
        });
        roundtrip(PulpInstr::LoopSetup {
            loop_id: true,
            count: A5,
            body_len: 100,
        });
    }

    #[test]
    fn simd_width_lanes() {
        assert_eq!(SimdWidth::B.lanes(), 4);
        assert_eq!(SimdWidth::H.lanes(), 2);
    }
}
