//! Property tests for the ISA crate: encoders and decoders must agree
//! for every instruction the generators can produce, and the assembler
//! must resolve random label graphs.

use arcane_isa::asm::Asm;
use arcane_isa::reg::Gpr;
use arcane_isa::rv32::{self, AluOp, Instr, LoadOp, StoreOp};
use arcane_isa::rvc;
use arcane_isa::xcvpulp::{self, PulpInstr, PvOp, SimdWidth};
use proptest::prelude::*;

fn gpr() -> impl Strategy<Value = Gpr> {
    (0u8..32).prop_map(|i| Gpr::new(i).unwrap())
}

fn load_op() -> impl Strategy<Value = LoadOp> {
    prop_oneof![
        Just(LoadOp::Lb),
        Just(LoadOp::Lh),
        Just(LoadOp::Lw),
        Just(LoadOp::Lbu),
        Just(LoadOp::Lhu)
    ]
}

fn store_op() -> impl Strategy<Value = StoreOp> {
    prop_oneof![Just(StoreOp::Sb), Just(StoreOp::Sh), Just(StoreOp::Sw)]
}

fn pulp_instr() -> impl Strategy<Value = PulpInstr> {
    let imm12 = -2048i32..2048;
    prop_oneof![
        (load_op(), gpr(), gpr(), imm12.clone()).prop_map(|(op, rd, rs1, offset)| {
            PulpInstr::LoadPost {
                op,
                rd,
                rs1,
                offset,
            }
        }),
        (store_op(), gpr(), gpr(), imm12).prop_map(|(op, rs2, rs1, offset)| PulpInstr::StorePost {
            op,
            rs2,
            rs1,
            offset
        }),
        (
            prop_oneof![
                Just(PvOp::Add),
                Just(PvOp::Sub),
                Just(PvOp::Max),
                Just(PvOp::Min),
                Just(PvOp::Dotsp),
                Just(PvOp::Sdotsp),
                Just(PvOp::Dotup)
            ],
            prop_oneof![Just(SimdWidth::B), Just(SimdWidth::H)],
            gpr(),
            gpr(),
            gpr()
        )
            .prop_map(|(op, w, rd, rs1, rs2)| PulpInstr::Simd {
                op,
                w,
                rd,
                rs1,
                rs2
            }),
        (gpr(), gpr(), gpr()).prop_map(|(rd, rs1, rs2)| PulpInstr::Mac { rd, rs1, rs2 }),
        (gpr(), gpr(), gpr()).prop_map(|(rd, rs1, rs2)| PulpInstr::MaxS { rd, rs1, rs2 }),
        (gpr(), gpr(), gpr()).prop_map(|(rd, rs1, rs2)| PulpInstr::MinS { rd, rs1, rs2 }),
        (gpr(), gpr()).prop_map(|(rd, rs1)| PulpInstr::Abs { rd, rs1 }),
        (any::<bool>(), 0u16..4096, 1u8..32).prop_map(|(loop_id, count, body_len)| {
            PulpInstr::LoopSetupI {
                loop_id,
                count,
                body_len,
            }
        }),
        (any::<bool>(), gpr(), 0u16..4096).prop_map(|(loop_id, count, body_len)| {
            PulpInstr::LoopSetup {
                loop_id,
                count,
                body_len,
            }
        }),
    ]
}

proptest! {
    #[test]
    fn xcvpulp_roundtrip(instr in pulp_instr()) {
        let w = xcvpulp::encode(&instr);
        prop_assert_eq!(xcvpulp::decode(w).unwrap(), instr);
    }

    /// Whatever `rvc::compress` emits must expand back to the same
    /// semantics (compared through the canonical 32-bit encoding).
    #[test]
    fn rvc_compress_is_sound(
        op in prop_oneof![Just(AluOp::Add), Just(AluOp::Sub), Just(AluOp::Xor),
                          Just(AluOp::Or), Just(AluOp::And)],
        rd in gpr(),
        rs1 in gpr(),
        rs2 in gpr(),
        imm in -64i32..64,
        off in 0i32..128,
    ) {
        let candidates = [
            Instr::Op { op, rd, rs1, rs2 },
            Instr::OpImm { op: arcane_isa::rv32::AluImmOp::Addi, rd, rs1, imm },
            Instr::Load { op: LoadOp::Lw, rd, rs1, offset: off },
            Instr::Store { op: StoreOp::Sw, rs2, rs1, offset: off },
        ];
        for i in candidates {
            if let Some(c) = rvc::compress(&i) {
                prop_assert!(rvc::is_compressed(c));
                let back = rvc::decode(c).unwrap();
                prop_assert_eq!(
                    rv32::encode(&back), rv32::encode(&i),
                    "{} -> {:#06x} -> {}", i, c, back
                );
            }
        }
    }

    /// Random straight-line programs with random backward/forward jumps
    /// assemble, and every encoded branch lands on an emitted label.
    #[test]
    fn assembler_resolves_random_label_graphs(
        blocks in prop::collection::vec((0usize..8, any::<bool>()), 1..20),
    ) {
        let mut a = Asm::new();
        let labels: Vec<_> = (0..blocks.len()).map(|_| a.label()).collect();
        for (i, (pad, jump_back)) in blocks.iter().enumerate() {
            a.bind(labels[i]);
            for _ in 0..*pad {
                a.nop();
            }
            let target = if *jump_back { labels[i / 2] } else { labels[i] };
            a.j(target);
        }
        let words = a.assemble(0).unwrap();
        // every jump offset must be word-aligned and in range
        for w in &words {
            if let Ok(Instr::Jal { offset, .. }) = rv32::decode(*w) {
                prop_assert_eq!(offset % 4, 0);
                prop_assert!(offset.unsigned_abs() < (words.len() as u32 + 1) * 4);
            }
        }
    }
}
