//! 65 nm area and peak-throughput models for the ARCANE evaluation.
//!
//! The paper's Table II and Figure 2 come from Synopsys Design Compiler
//! runs on a 65 nm LP library — re-running synthesis is outside the
//! scope of a Rust reproduction, so this crate provides a
//! **component-level area model** calibrated on the published breakdown
//! and parameterised by the architecture knobs (VPU lanes, VPU count,
//! memory sizes). The model regenerates:
//!
//! * Table II — total area (µm², kGE) and overhead of the 2/4/8-lane
//!   ARCANE configurations versus the baseline X-HEEP;
//! * Figure 2 — the component percentage split of both systems;
//! * §V-C — peak GOPS, area efficiency and the comparison against
//!   BLADE and Intel CNC.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod model;
mod throughput;

pub use model::{AreaBreakdown, AreaModel, Component, GE_UM2};
pub use throughput::{peak_gops, ThroughputPoint, BLADE, INTEL_CNC};
