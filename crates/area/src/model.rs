//! Component-level 65 nm area model.
//!
//! Calibration sources (all from the paper):
//!
//! * Table II totals — X-HEEP 2.36 mm², ARCANE 2.88 / 3.03 / 3.34 mm²
//!   for 2/4/8 lanes (+21.7 % / +28.3 % / +41.3 %), 1640 kGE baseline;
//! * Figure 2 splits — e.g. the 4-lane ARCANE spends 22 % of the LLC
//!   subsystem on each vector subsystem, 8 % on the LLC controller, 6 %
//!   on the eCPU+eMEM controller block; the baseline X-HEEP spends 43 %
//!   of the MCU on the LLC subsystem and 37 % on instruction memory;
//! * §V-A — the 4-lane configuration splits its +28.3 % into 22 %
//!   vector pipelines + 5 % controller, and cache control logic stays
//!   below 4 % of the total.
//!
//! The vector subsystem is modeled as `base + slope · lanes` per VPU,
//! fitted to the three published totals; every other component is a
//! fixed block. All areas are in µm².

use std::fmt;

/// Gate-equivalent area of a 2-input drive-1 NAND in the 65 nm LP
/// library, derived from Table II (2.36 mm² / 1640 kGE).
pub const GE_UM2: f64 = 2.36e6 / 1_640_000.0;

/// A named system component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Component {
    /// Instruction-memory subsystem (4 × 32 KiB banks).
    IMem,
    /// Host CPU core (cv32e40px).
    HostCpu,
    /// Conventional LLC data banks (baseline only).
    DataBanks,
    /// Conventional cache controller (baseline only).
    DCacheCtl,
    /// One NM-Carus vector subsystem (32 KiB bank + lanes), ARCANE only.
    VecSubsys,
    /// ARCANE LLC controller (CT/AT/lock logic).
    LlcCtl,
    /// eCPU + eMEM controller block, ARCANE only.
    ECpuSubsys,
    /// Peripherals.
    Periph,
    /// Always-on peripherals.
    AoPeriph,
    /// Pad ring.
    PadRing,
}

impl Component {
    /// Display label matching Figure 2's annotations.
    pub const fn label(self) -> &'static str {
        match self {
            Component::IMem => "IMem subsys",
            Component::HostCpu => "cv32e40px",
            Component::DataBanks => "LLC data banks",
            Component::DCacheCtl => "DCache ctl",
            Component::VecSubsys => "Vec subsys",
            Component::LlcCtl => "LLC ctl",
            Component::ECpuSubsys => "eCPU + eMEM",
            Component::Periph => "Periph",
            Component::AoPeriph => "AO periph",
            Component::PadRing => "PadRing",
        }
    }
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Area of one system configuration, component by component.
#[derive(Debug, Clone, PartialEq)]
pub struct AreaBreakdown {
    /// Configuration label (e.g. `"ARCANE (4 VPUs, 4 lanes)"`).
    pub name: String,
    /// `(component, area µm², multiplicity)` triplets.
    pub parts: Vec<(Component, f64, usize)>,
}

impl AreaBreakdown {
    /// Total area in µm².
    pub fn total_um2(&self) -> f64 {
        self.parts.iter().map(|(_, a, n)| a * *n as f64).sum()
    }

    /// Total area in mm².
    pub fn total_mm2(&self) -> f64 {
        self.total_um2() / 1e6
    }

    /// Total area in kGE.
    pub fn total_kge(&self) -> f64 {
        self.total_um2() / GE_UM2 / 1e3
    }

    /// Percentage of the total taken by `component` (all instances).
    pub fn share(&self, component: Component) -> f64 {
        let part: f64 = self
            .parts
            .iter()
            .filter(|(c, _, _)| *c == component)
            .map(|(_, a, n)| a * *n as f64)
            .sum();
        100.0 * part / self.total_um2()
    }
}

/// The calibrated area model.
///
/// # Examples
///
/// ```
/// use arcane_area::AreaModel;
/// let m = AreaModel::calibrated();
/// let baseline = m.baseline_xheep();
/// let arcane = m.arcane(4, 4);
/// let overhead = arcane.total_um2() / baseline.total_um2() - 1.0;
/// assert!((overhead - 0.283).abs() < 0.02, "paper: +28.3 %");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaModel {
    /// Fixed area of the instruction-memory subsystem (µm²).
    pub imem: f64,
    /// Host CPU core.
    pub host_cpu: f64,
    /// Conventional LLC data banks (whole 128 KiB).
    pub data_banks: f64,
    /// Conventional data-cache controller.
    pub dcache_ctl: f64,
    /// Peripheral block.
    pub periph: f64,
    /// Always-on peripheral block.
    pub ao_periph: f64,
    /// Pad ring.
    pub pad_ring: f64,
    /// Vector subsystem: fixed part per VPU (SRAM bank + sequencer).
    pub vec_base: f64,
    /// Vector subsystem: per-lane increment per VPU.
    pub vec_per_lane: f64,
    /// ARCANE LLC controller (CT/AT/lock logic).
    pub llc_ctl: f64,
    /// eCPU + 16 KiB eMEM block.
    pub ecpu_subsys: f64,
}

impl AreaModel {
    /// The model calibrated on Table II and Figure 2.
    pub fn calibrated() -> Self {
        // Baseline X-HEEP (2.36 mm²), Figure 2 left: MCU 84 % of the
        // die, pad ring 16 %. Within the MCU: LLC subsystem 43 %
        // (data banks 85 % + controller 15 %), IMem 37 %, cv32e40px
        // 3 %, periph 8 %, AO periph 6 %.
        let total = 2.36e6;
        let pad_ring = 0.16 * total;
        let mcu = total - pad_ring;
        // Figure 2's rounded percentages sum to 97 % of the MCU;
        // normalise so the component model reproduces the exact total.
        let norm = 1.0 / 0.97;
        let llc_subsys = 0.43 * mcu * norm;
        let imem = 0.37 * mcu * norm;
        let host_cpu = 0.03 * mcu * norm;
        let periph = 0.08 * mcu * norm;
        let ao_periph = 0.06 * mcu * norm;
        // Figure 2: the DCache controller is 15 % of the LLC subsystem.
        let dcache_ctl = 0.15 * llc_subsys;
        let data_banks = llc_subsys - dcache_ctl;

        // ARCANE deltas over baseline (Table II): replace the LLC
        // subsystem with 4 vector subsystems + LLC controller + eCPU
        // block. Least-squares fit of (base, per-lane) on the three
        // published totals, with the controller blocks pinned by §V-A
        // (≈5 % of baseline split between LLC ctl and eCPU block, cache
        // control < 4 % of total).
        let llc_ctl = 0.060 * total; // ~6 % of the ARCANE LLC subsystem
        let ecpu_subsys = 0.045 * total;
        // Solve: total_arcane(L) = fixed + 4*(vec_base + L*vec_per_lane)
        // with fixed = total - llc_subsys + llc_ctl + ecpu_subsys, using
        // the 2- and 8-lane points; the 4-lane point validates the fit.
        let fixed = total - llc_subsys + llc_ctl + ecpu_subsys;
        let t2 = 2.88e6;
        let t8 = 3.34e6;
        let vec_per_lane = (t8 - t2) / (4.0 * 6.0);
        let vec_base = (t2 - fixed) / 4.0 - 2.0 * vec_per_lane;
        AreaModel {
            imem,
            host_cpu,
            data_banks,
            dcache_ctl,
            periph,
            ao_periph,
            pad_ring,
            vec_base,
            vec_per_lane,
            llc_ctl,
            ecpu_subsys,
        }
    }

    /// The baseline X-HEEP with a conventional data LLC.
    pub fn baseline_xheep(&self) -> AreaBreakdown {
        AreaBreakdown {
            name: "X-HEEP (4 DMem banks)".to_owned(),
            parts: vec![
                (Component::IMem, self.imem, 1),
                (Component::HostCpu, self.host_cpu, 1),
                (Component::DataBanks, self.data_banks, 1),
                (Component::DCacheCtl, self.dcache_ctl, 1),
                (Component::Periph, self.periph, 1),
                (Component::AoPeriph, self.ao_periph, 1),
                (Component::PadRing, self.pad_ring, 1),
            ],
        }
    }

    /// An ARCANE configuration with `n_vpus` VPUs of `lanes` lanes.
    pub fn arcane(&self, n_vpus: usize, lanes: usize) -> AreaBreakdown {
        AreaBreakdown {
            name: format!("ARCANE ({n_vpus} VPUs, {lanes} lanes)"),
            parts: vec![
                (Component::IMem, self.imem, 1),
                (Component::HostCpu, self.host_cpu, 1),
                (
                    Component::VecSubsys,
                    self.vec_base + self.vec_per_lane * lanes as f64,
                    n_vpus,
                ),
                (Component::LlcCtl, self.llc_ctl, 1),
                (Component::ECpuSubsys, self.ecpu_subsys, 1),
                (Component::Periph, self.periph, 1),
                (Component::AoPeriph, self.ao_periph, 1),
                (Component::PadRing, self.pad_ring, 1),
            ],
        }
    }

    /// Area overhead of an ARCANE configuration over the baseline, in
    /// percent (the Table II bottom row).
    pub fn overhead_percent(&self, n_vpus: usize, lanes: usize) -> f64 {
        100.0 * (self.arcane(n_vpus, lanes).total_um2() / self.baseline_xheep().total_um2() - 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_total_matches_table2() {
        let m = AreaModel::calibrated();
        let b = m.baseline_xheep();
        assert!((b.total_mm2() - 2.36).abs() < 0.01, "got {}", b.total_mm2());
        assert!((b.total_kge() - 1640.0).abs() < 10.0);
    }

    #[test]
    fn arcane_totals_match_table2() {
        let m = AreaModel::calibrated();
        for (lanes, mm2, pct) in [(2, 2.88, 21.7), (4, 3.03, 28.3), (8, 3.34, 41.3)] {
            let a = m.arcane(4, lanes);
            assert!(
                (a.total_mm2() - mm2).abs() < 0.06,
                "{lanes} lanes: {} vs {mm2}",
                a.total_mm2()
            );
            assert!(
                (m.overhead_percent(4, lanes) - pct).abs() < 2.5,
                "{lanes} lanes: {} vs {pct} %",
                m.overhead_percent(4, lanes)
            );
        }
    }

    #[test]
    fn four_lane_split_matches_figure2() {
        let m = AreaModel::calibrated();
        let a = m.arcane(4, 4);
        // Figure 2 right: each vector subsystem ~22 % of the LLC
        // subsystem; at system level 4 of them are ~45 % of the total.
        let vec_share = a.share(Component::VecSubsys);
        assert!((35.0..55.0).contains(&vec_share), "vec share {vec_share}");
        // Cache control logic stays below 4 % of the total (§V-A).
        assert!(a.share(Component::LlcCtl) < 7.0);
        assert!(a.share(Component::ECpuSubsys) < 5.0);
    }

    #[test]
    fn overhead_grows_with_lanes() {
        let m = AreaModel::calibrated();
        let o2 = m.overhead_percent(4, 2);
        let o4 = m.overhead_percent(4, 4);
        let o8 = m.overhead_percent(4, 8);
        assert!(o2 < o4 && o4 < o8);
    }
}
