//! Peak-throughput model for the §V-C state-of-the-art comparison.
//!
//! One MAC counts as two operations (one multiplication, one addition),
//! as the paper notes. Peak throughput of an ARCANE configuration at
//! frequency `f`: `n_vpus × lanes × 2 × f` (each 32-bit lane retires one
//! MAC per cycle; sub-word SIMD raises *element* throughput for int8/16
//! but GOPS are quoted for 32-bit ops, matching the paper's 17.0 GOPS
//! at 265 MHz for 4 VPUs × 8 lanes).

/// A published comparison point from the paper's §V-C.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputPoint {
    /// System name.
    pub name: &'static str,
    /// Area in µm² (scaled to 65 nm where the paper does so).
    pub area_um2: f64,
    /// Peak throughput in GOPS.
    pub gops: f64,
    /// Programmability notes from the paper.
    pub flexibility: &'static str,
}

impl ThroughputPoint {
    /// Area efficiency in GOPS/mm².
    pub fn gops_per_mm2(&self) -> f64 {
        self.gops / (self.area_um2 / 1e6)
    }
}

/// BLADE (Simon et al., TC 2020), scaled to 65 nm per the paper.
pub const BLADE: ThroughputPoint = ThroughputPoint {
    name: "BLADE",
    area_um2: 580e3,
    gops: 5.3,
    flexibility: "basic arithmetic ops only",
};

/// Intel CNC (Chen et al., JSSC 2023) in Intel 4 (area not scalable).
pub const INTEL_CNC: ThroughputPoint = ThroughputPoint {
    name: "Intel CNC",
    area_um2: 1920e3,
    gops: 25.0,
    flexibility: "MAC operation only",
};

/// Peak GOPS of an ARCANE configuration: `n_vpus × lanes` MACs/cycle,
/// 2 ops per MAC, at `freq_mhz`.
pub fn peak_gops(n_vpus: usize, lanes: usize, freq_mhz: f64) -> f64 {
    (n_vpus * lanes) as f64 * 2.0 * freq_mhz / 1e3
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arcane_peak_matches_paper() {
        // §V-C: 4 VPUs x 8 lanes at 265 MHz -> 17.0 GOPS.
        let g = peak_gops(4, 8, 265.0);
        assert!((g - 17.0).abs() < 0.05, "got {g}");
    }

    #[test]
    fn blade_comparison_matches_paper() {
        // Paper: ARCANE ~3.2x BLADE's 5.3 GOPS; BLADE ~9.1 GOPS/mm².
        assert!((peak_gops(4, 8, 265.0) / BLADE.gops - 3.2).abs() < 0.1);
        assert!((BLADE.gops_per_mm2() - 9.1).abs() < 0.1);
    }

    #[test]
    fn intel_cnc_speedup() {
        // Paper: Intel CNC peaks 1.47x above ARCANE.
        let ratio = INTEL_CNC.gops / peak_gops(4, 8, 265.0);
        assert!((ratio - 1.47).abs() < 0.01, "got {ratio}");
    }
}
