//! Workload generators and golden reference kernels.
//!
//! The ARCANE evaluation uses synthetic matrix workloads (ImageNet-like
//! 3-channel convolutional layers, GeMM, pooling, activations). This
//! crate provides:
//!
//! * [`Matrix`] — a width-agnostic integer matrix with little-endian
//!   (de)serialisation at any [`Sew`];
//! * seeded random generators (reproducible across runs);
//! * golden reference implementations of every Table I kernel with the
//!   same wrapping two's-complement semantics as the VPU datapath —
//!   the oracle every simulator result is checked against.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod golden;
mod matrix;

pub use golden::{
    conv2d, conv_layer_3ch, conv_layer_3ch_cpu, conv_layer_3ch_slice, depthwise_conv,
    depthwise_separable_layer, gemm, leaky_relu, mat_add, mat_scale, maxpool, residual_bottleneck,
    transformer_encoder_block, transpose,
};
pub use matrix::Matrix;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use arcane_sim::Sew;

/// Deterministic RNG for workload generation.
pub fn rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// Generates a `rows × cols` matrix of small random values
/// (within ±range, clamped to the element width).
pub fn random_matrix(rng: &mut SmallRng, rows: usize, cols: usize, sew: Sew, range: i64) -> Matrix {
    let lim = match sew {
        Sew::Byte => range.min(i8::MAX as i64),
        Sew::Half => range.min(i16::MAX as i64),
        Sew::Word => range.min(i32::MAX as i64),
    };
    let mut m = Matrix::zero(rows, cols);
    for r in 0..rows {
        for c in 0..cols {
            m.set(r, c, rng.random_range(-lim..=lim));
        }
    }
    m
}

/// Wraps `v` into the signed range of `sew` (the VPU datapath
/// semantics).
pub fn wrap(v: i64, sew: Sew) -> i64 {
    match sew {
        Sew::Byte => v as i8 as i64,
        Sew::Half => v as i16 as i64,
        Sew::Word => v as i32 as i64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = random_matrix(&mut rng(7), 4, 4, Sew::Byte, 100);
        let b = random_matrix(&mut rng(7), 4, 4, Sew::Byte, 100);
        assert_eq!(a, b);
    }

    #[test]
    fn values_respect_width() {
        let m = random_matrix(&mut rng(1), 16, 16, Sew::Byte, 1_000_000);
        for r in 0..16 {
            for c in 0..16 {
                let v = m.get(r, c);
                assert!((i8::MIN as i64..=i8::MAX as i64).contains(&v));
            }
        }
    }

    #[test]
    fn wrap_matches_casts() {
        assert_eq!(wrap(130, Sew::Byte), -126);
        assert_eq!(wrap(65536, Sew::Half), 0);
        assert_eq!(wrap(i64::from(i32::MAX) + 1, Sew::Word), i32::MIN as i64);
    }
}
