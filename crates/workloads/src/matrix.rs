//! A width-agnostic integer matrix.

use arcane_sim::Sew;
use std::fmt;

/// A dense row-major integer matrix holding `i64` values that are
/// interpreted at a chosen element width when serialised.
///
/// # Examples
///
/// ```
/// use arcane_workloads::Matrix;
/// use arcane_sim::Sew;
///
/// let mut m = Matrix::zero(2, 3);
/// m.set(1, 2, -5);
/// let bytes = m.to_bytes(Sew::Half);
/// let back = Matrix::from_bytes(2, 3, Sew::Half, &bytes);
/// assert_eq!(back.get(1, 2), -5);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<i64>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(12) {
                write!(f, "{:6} ", self.get(r, c))?;
            }
            writeln!(f, "{}", if self.cols > 12 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

impl Matrix {
    /// A `rows × cols` matrix of zeros.
    pub fn zero(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0; rows * cols],
        }
    }

    /// Builds a matrix from a row-major value slice.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != rows * cols`.
    pub fn from_values(rows: usize, cols: usize, values: &[i64]) -> Self {
        assert_eq!(values.len(), rows * cols, "value count mismatch");
        Matrix {
            rows,
            cols,
            data: values.to_vec(),
        }
    }

    /// Number of rows.
    pub const fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub const fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn get(&self, r: usize, c: usize) -> i64 {
        assert!(r < self.rows && c < self.cols, "index out of range");
        self.data[r * self.cols + c]
    }

    /// Sets element `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn set(&mut self, r: usize, c: usize, v: i64) {
        assert!(r < self.rows && c < self.cols, "index out of range");
        self.data[r * self.cols + c] = v;
    }

    /// Serialises row-major at width `sew` (values are wrapped).
    pub fn to_bytes(&self, sew: Sew) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.data.len() * sew.bytes());
        for &v in &self.data {
            match sew {
                Sew::Byte => out.push(v as i8 as u8),
                Sew::Half => out.extend_from_slice(&(v as i16).to_le_bytes()),
                Sew::Word => out.extend_from_slice(&(v as i32).to_le_bytes()),
            }
        }
        out
    }

    /// Deserialises a row-major byte image at width `sew`.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is shorter than `rows * cols * sew.bytes()`.
    pub fn from_bytes(rows: usize, cols: usize, sew: Sew, bytes: &[u8]) -> Self {
        let mut m = Matrix::zero(rows, cols);
        for i in 0..rows * cols {
            let o = i * sew.bytes();
            let v = match sew {
                Sew::Byte => bytes[o] as i8 as i64,
                Sew::Half => i16::from_le_bytes([bytes[o], bytes[o + 1]]) as i64,
                Sew::Word => {
                    i32::from_le_bytes([bytes[o], bytes[o + 1], bytes[o + 2], bytes[o + 3]]) as i64
                }
            };
            m.data[i] = v;
        }
        m
    }

    /// A copy of this matrix with its row-major data refactored as
    /// `rows × cols` — the golden-model counterpart of a layer graph's
    /// `View` (which on the device is zero-copy; here the copy keeps
    /// `Matrix` a plain value type).
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols` differs from the element count.
    pub fn reshape(&self, rows: usize, cols: usize) -> Matrix {
        assert_eq!(rows * cols, self.data.len(), "reshape element count");
        Matrix {
            rows,
            cols,
            data: self.data.clone(),
        }
    }

    /// A view of rows `[r0, r0 + n)` as a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the matrix.
    pub fn row_slice(&self, r0: usize, n: usize) -> Matrix {
        assert!(r0 + n <= self.rows, "row slice out of range");
        Matrix {
            rows: n,
            cols: self.cols,
            data: self.data[r0 * self.cols..(r0 + n) * self.cols].to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let m = Matrix::from_values(2, 2, &[1, -2, 127, -128]);
        for sew in Sew::ALL {
            let b = m.to_bytes(sew);
            assert_eq!(b.len(), 4 * sew.bytes());
            let back = Matrix::from_bytes(2, 2, sew, &b);
            assert_eq!(back, m);
        }
    }

    #[test]
    fn serialisation_wraps_at_width() {
        let m = Matrix::from_values(1, 1, &[300]);
        let back = Matrix::from_bytes(1, 1, Sew::Byte, &m.to_bytes(Sew::Byte));
        assert_eq!(back.get(0, 0), 300i64 as i8 as i64);
    }

    #[test]
    fn row_slice() {
        let m = Matrix::from_values(3, 2, &[1, 2, 3, 4, 5, 6]);
        let s = m.row_slice(1, 2);
        assert_eq!(s.get(0, 0), 3);
        assert_eq!(s.get(1, 1), 6);
    }

    #[test]
    #[should_panic(expected = "index out of range")]
    fn get_bounds_checked() {
        Matrix::zero(2, 2).get(2, 0);
    }
}
