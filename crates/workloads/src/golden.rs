//! Golden reference kernels: bit-exact oracles for every Table I
//! kernel, with the same wrapping two's-complement semantics as the VPU
//! datapath and the CPU baselines.

use crate::matrix::Matrix;
use crate::wrap;
use arcane_sim::Sew;

/// GeMM: `R = α·(A × B) + β·C`, wrapping at `sew` after every step.
///
/// # Panics
///
/// Panics on inconsistent shapes.
pub fn gemm(a: &Matrix, b: &Matrix, c: Option<&Matrix>, alpha: i64, beta: i64, sew: Sew) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "gemm inner dimension");
    let mut r = Matrix::zero(a.rows(), b.cols());
    for i in 0..a.rows() {
        for j in 0..b.cols() {
            let mut acc = 0i64;
            for k in 0..a.cols() {
                acc = wrap(
                    acc.wrapping_add(wrap(a.get(i, k).wrapping_mul(b.get(k, j)), sew)),
                    sew,
                );
            }
            let mut v = wrap(acc.wrapping_mul(alpha), sew);
            if beta != 0 {
                let c = c.expect("beta != 0 requires C");
                v = wrap(
                    v.wrapping_add(wrap(c.get(i, j).wrapping_mul(beta), sew)),
                    sew,
                );
            }
            r.set(i, j, v);
        }
    }
    r
}

/// LeakyReLU with shift-based negative slope: `x ≥ 0 ? x : x >> shift`.
pub fn leaky_relu(x: &Matrix, shift: u32, sew: Sew) -> Matrix {
    let mut r = Matrix::zero(x.rows(), x.cols());
    for i in 0..x.rows() {
        for j in 0..x.cols() {
            let v = x.get(i, j);
            r.set(i, j, wrap(if v >= 0 { v } else { v >> shift }, sew));
        }
    }
    r
}

/// 2-D max-pooling with window `win` and stride `stride`.
///
/// # Panics
///
/// Panics if the window exceeds the input.
pub fn maxpool(x: &Matrix, win: usize, stride: usize) -> Matrix {
    assert!(win <= x.rows() && win <= x.cols(), "window exceeds input");
    let oh = (x.rows() - win) / stride + 1;
    let ow = (x.cols() - win) / stride + 1;
    let mut r = Matrix::zero(oh, ow);
    for y in 0..oh {
        for xo in 0..ow {
            let mut m = i64::MIN;
            for ky in 0..win {
                for kx in 0..win {
                    m = m.max(x.get(y * stride + ky, xo * stride + kx));
                }
            }
            r.set(y, xo, m);
        }
    }
    r
}

/// Single-channel valid 2-D convolution, wrapping at `sew`.
///
/// # Panics
///
/// Panics if the filter exceeds the input.
pub fn conv2d(a: &Matrix, f: &Matrix, sew: Sew) -> Matrix {
    assert_eq!(f.rows(), f.cols(), "square filter");
    let k = f.rows();
    assert!(k <= a.rows() && k <= a.cols(), "filter exceeds input");
    let oh = a.rows() - k + 1;
    let ow = a.cols() - k + 1;
    let mut r = Matrix::zero(oh, ow);
    for y in 0..oh {
        for x in 0..ow {
            let mut acc = 0i64;
            for ky in 0..k {
                for kx in 0..k {
                    acc = wrap(
                        acc.wrapping_add(wrap(
                            a.get(y + ky, x + kx).wrapping_mul(f.get(ky, kx)),
                            sew,
                        )),
                        sew,
                    );
                }
            }
            r.set(y, x, acc);
        }
    }
    r
}

/// The fused 3-channel convolutional layer (`xmk4` semantics):
/// per-channel valid convolution summed across channels, ReLU, then
/// 2×2/2 max-pooling.
///
/// `a` stacks the three input planes row-wise (`3H × W`); `f` stacks the
/// three `K × K` filter planes row-wise (`3K × K`).
///
/// # Panics
///
/// Panics on inconsistent plane geometry.
pub fn conv_layer_3ch(a: &Matrix, f: &Matrix, sew: Sew) -> Matrix {
    let conv = conv_sum_3ch(a, f, sew);
    let rows = conv.rows() & !1;
    conv_finish(&conv.row_slice(0, rows), sew)
}

/// Row-slice variant of [`conv_layer_3ch`]: computes conv rows
/// `[y0, y0 + n_rows)` only (the multi-instance work split).
///
/// # Panics
///
/// Panics on inconsistent geometry or an odd/misaligned slice.
pub fn conv_layer_3ch_slice(a: &Matrix, f: &Matrix, sew: Sew, y0: usize, n_rows: usize) -> Matrix {
    assert!(
        y0.is_multiple_of(2) && n_rows.is_multiple_of(2),
        "slice must be even-aligned"
    );
    let conv = conv_sum_3ch(a, f, sew);
    conv_finish(&conv.row_slice(y0, n_rows), sew)
}

/// CPU-semantics variant of the fused layer: accumulation in 32-bit
/// registers (no per-step wrapping), ReLU on the 32-bit value, then the
/// result *wraps on store* at `sew` before pooling — exactly what the
/// RV32 scalar and XCVPULP baselines compute. For `Sew::Word` this
/// coincides with [`conv_layer_3ch`].
///
/// # Panics
///
/// Panics on inconsistent plane geometry.
pub fn conv_layer_3ch_cpu(a: &Matrix, f: &Matrix, sew: Sew) -> Matrix {
    assert_eq!(a.rows() % 3, 0, "input must stack 3 planes");
    assert_eq!(f.rows(), 3 * f.cols(), "filter must stack 3 square planes");
    let h = a.rows() / 3;
    let k = f.cols();
    let oh = h - k + 1;
    let ow = a.cols() - k + 1;
    let mut conv = Matrix::zero(oh, ow);
    for y in 0..oh {
        for x in 0..ow {
            let mut acc = 0i32;
            for c in 0..3 {
                for ky in 0..k {
                    for kx in 0..k {
                        let av = a.get(c * h + y + ky, x + kx) as i32;
                        let fv = f.get(c * k + ky, kx) as i32;
                        acc = acc.wrapping_add(av.wrapping_mul(fv));
                    }
                }
            }
            let relu = acc.max(0) as i64;
            conv.set(y, x, wrap(relu, sew));
        }
    }
    maxpool(&conv.row_slice(0, oh & !1), 2, 2)
}

/// Element-wise matrix addition, wrapping at `sew` (`xmk5` semantics).
///
/// # Panics
///
/// Panics on mismatched shapes.
pub fn mat_add(a: &Matrix, b: &Matrix, sew: Sew) -> Matrix {
    assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()), "shape mismatch");
    let mut r = Matrix::zero(a.rows(), a.cols());
    for i in 0..a.rows() {
        for j in 0..a.cols() {
            r.set(i, j, wrap(a.get(i, j).wrapping_add(b.get(i, j)), sew));
        }
    }
    r
}

/// Scale-and-shift requantisation: `R = (A · alpha) >> shift`, the
/// multiply wrapping at `sew` before the arithmetic shift
/// (`xmk6` semantics).
pub fn mat_scale(a: &Matrix, alpha: i64, shift: u32, sew: Sew) -> Matrix {
    let mut r = Matrix::zero(a.rows(), a.cols());
    for i in 0..a.rows() {
        for j in 0..a.cols() {
            let scaled = wrap(a.get(i, j).wrapping_mul(alpha), sew);
            r.set(i, j, wrap(scaled >> shift, sew));
        }
    }
    r
}

/// Matrix transpose (`xmk7` semantics).
pub fn transpose(a: &Matrix) -> Matrix {
    let mut r = Matrix::zero(a.cols(), a.rows());
    for i in 0..a.rows() {
        for j in 0..a.cols() {
            r.set(j, i, a.get(i, j));
        }
    }
    r
}

/// Depthwise valid 2-D convolution over `channels` stacked planes: each
/// input plane is convolved with **its own** filter plane, with no
/// cross-channel sum (the first half of a depthwise-separable layer).
///
/// `a` stacks the planes row-wise (`C·H × W`); `f` stacks the `K × K`
/// filter planes row-wise (`C·K × K`). The output stacks the per-channel
/// conv planes row-wise (`C·H' × W'`).
///
/// # Panics
///
/// Panics on inconsistent plane geometry.
pub fn depthwise_conv(a: &Matrix, f: &Matrix, channels: usize, sew: Sew) -> Matrix {
    assert!(channels > 0, "at least one channel");
    assert_eq!(a.rows() % channels, 0, "input must stack C planes");
    assert_eq!(f.rows(), channels * f.cols(), "filter must stack C planes");
    let h = a.rows() / channels;
    let k = f.cols();
    let (oh, ow) = (h - k + 1, a.cols() - k + 1);
    let mut out = Matrix::zero(channels * oh, ow);
    for c in 0..channels {
        let plane = conv2d(&a.row_slice(c * h, h), &f.row_slice(c * k, k), sew);
        for y in 0..oh {
            for x in 0..ow {
                out.set(c * oh + y, x, plane.get(y, x));
            }
        }
    }
    out
}

/// Golden model of the depthwise-separable conv layer graph: depthwise
/// conv, 1×1 pointwise mix (`pw`: `C_out × C` weights applied by GeMM
/// over the flattened conv planes), scale-shift requantisation, then
/// LeakyReLU. Output is `C_out × (H'·W')`.
///
/// # Panics
///
/// Panics on inconsistent geometry.
pub fn depthwise_separable_layer(
    a: &Matrix,
    f: &Matrix,
    pw: &Matrix,
    channels: usize,
    shift: u32,
    relu_shift: u32,
    sew: Sew,
) -> Matrix {
    let dw = depthwise_conv(a, f, channels, sew);
    let plane_elems = (dw.rows() / channels) * dw.cols();
    let planes = dw.reshape(channels, plane_elems);
    let mixed = gemm(pw, &planes, None, 1, 0, sew);
    let q = mat_scale(&mixed, 1, shift, sew);
    leaky_relu(&q, relu_shift, sew)
}

/// Golden model of the residual bottleneck graph with requantise
/// fusion: `Y = X + requant(GeMM(relu(requant(GeMM(X·W1)))·W2))` —
/// two GeMMs, each followed by a scale-shift requantisation, a
/// shift-LeakyReLU between them, and the residual add at the end.
///
/// # Panics
///
/// Panics on inconsistent shapes.
pub fn residual_bottleneck(
    x: &Matrix,
    w1: &Matrix,
    w2: &Matrix,
    shift: u32,
    relu_shift: u32,
    sew: Sew,
) -> Matrix {
    let h = gemm(x, w1, None, 1, 0, sew);
    let hq = mat_scale(&h, 1, shift, sew);
    let ha = leaky_relu(&hq, relu_shift, sew);
    let y = gemm(&ha, w2, None, 1, 0, sew);
    let yq = mat_scale(&y, 1, shift, sew);
    mat_add(x, &yq, sew)
}

/// Golden model of the int8 transformer encoder block graph
/// (ReLU-attention formulation — the quantised-integer surrogate for
/// softmax, so the whole block stays inside the Table I kernel set):
///
/// ```text
/// Q = X·Wq   K = X·Wk   V = X·Wv
/// A = relu(requant(Q·Kᵀ))          attention scores
/// X₁ = X + requant(A·V)            attention + residual
/// H = relu(requant(X₁·W1))         MLP up-projection
/// Y = X₁ + requant(H·W2)           MLP down-projection + residual
/// ```
///
/// `x` is `T × D`; `wq`/`wk`/`wv` are `D × D`; `w1` is `D × F` and
/// `w2` is `F × D`. Everything wraps at `sew` exactly like the VPU
/// datapath.
///
/// # Panics
///
/// Panics on inconsistent shapes.
#[allow(clippy::too_many_arguments)]
pub fn transformer_encoder_block(
    x: &Matrix,
    wq: &Matrix,
    wk: &Matrix,
    wv: &Matrix,
    w1: &Matrix,
    w2: &Matrix,
    shift: u32,
    relu_shift: u32,
    sew: Sew,
) -> Matrix {
    let q = gemm(x, wq, None, 1, 0, sew);
    let k = gemm(x, wk, None, 1, 0, sew);
    let v = gemm(x, wv, None, 1, 0, sew);
    let kt = transpose(&k);
    let s = gemm(&q, &kt, None, 1, 0, sew);
    let sq = mat_scale(&s, 1, shift, sew);
    let a = leaky_relu(&sq, relu_shift, sew);
    let p = gemm(&a, &v, None, 1, 0, sew);
    let pq = mat_scale(&p, 1, shift, sew);
    let x1 = mat_add(x, &pq, sew);
    let h = gemm(&x1, w1, None, 1, 0, sew);
    let hq = mat_scale(&h, 1, shift, sew);
    let ha = leaky_relu(&hq, relu_shift, sew);
    let y = gemm(&ha, w2, None, 1, 0, sew);
    let yq = mat_scale(&y, 1, shift, sew);
    mat_add(&x1, &yq, sew)
}

fn conv_sum_3ch(a: &Matrix, f: &Matrix, sew: Sew) -> Matrix {
    assert_eq!(a.rows() % 3, 0, "input must stack 3 planes");
    assert_eq!(f.rows(), 3 * f.cols(), "filter must stack 3 square planes");
    let h = a.rows() / 3;
    let k = f.cols();
    let oh = h - k + 1;
    let ow = a.cols() - k + 1;
    let mut conv = Matrix::zero(oh, ow);
    for c in 0..3 {
        let plane = a.row_slice(c * h, h);
        let filt = f.row_slice(c * k, k);
        let pc = conv2d(&plane, &filt, sew);
        for y in 0..oh {
            for x in 0..ow {
                conv.set(y, x, wrap(conv.get(y, x).wrapping_add(pc.get(y, x)), sew));
            }
        }
    }
    conv
}

fn conv_finish(conv: &Matrix, sew: Sew) -> Matrix {
    let relu = leaky_relu(conv, 31, sew); // shift 31 == hard ReLU for our ranges
    let mut relu0 = Matrix::zero(relu.rows(), relu.cols());
    for y in 0..relu.rows() {
        for x in 0..relu.cols() {
            relu0.set(y, x, relu.get(y, x).max(0));
        }
    }
    maxpool(&relu0, 2, 2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_identity() {
        let a = Matrix::from_values(2, 2, &[1, 2, 3, 4]);
        let id = Matrix::from_values(2, 2, &[1, 0, 0, 1]);
        let r = gemm(&a, &id, None, 1, 0, Sew::Word);
        assert_eq!(r, a);
    }

    #[test]
    fn gemm_alpha_beta() {
        let a = Matrix::from_values(1, 2, &[1, 2]);
        let b = Matrix::from_values(2, 1, &[3, 4]);
        let c = Matrix::from_values(1, 1, &[10]);
        // 2*(1*3+2*4) + 3*10 = 22 + 30 = 52
        let r = gemm(&a, &b, Some(&c), 2, 3, Sew::Word);
        assert_eq!(r.get(0, 0), 52);
    }

    #[test]
    fn gemm_wraps_at_byte() {
        let a = Matrix::from_values(1, 1, &[100]);
        let b = Matrix::from_values(1, 1, &[2]);
        let r = gemm(&a, &b, None, 1, 0, Sew::Byte);
        assert_eq!(r.get(0, 0), 200i64 as i8 as i64);
    }

    #[test]
    fn leaky_relu_shift() {
        let x = Matrix::from_values(1, 3, &[8, -8, 0]);
        let r = leaky_relu(&x, 2, Sew::Word);
        assert_eq!(r.get(0, 0), 8);
        assert_eq!(r.get(0, 1), -2);
        assert_eq!(r.get(0, 2), 0);
    }

    #[test]
    fn maxpool_2x2() {
        let x = Matrix::from_values(2, 4, &[1, 5, 2, 0, 3, 4, 8, -1]);
        let r = maxpool(&x, 2, 2);
        assert_eq!(r.get(0, 0), 5);
        assert_eq!(r.get(0, 1), 8);
    }

    #[test]
    fn conv2d_known_answer() {
        let a = Matrix::from_values(3, 3, &[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let f = Matrix::from_values(2, 2, &[1, 0, 0, 1]);
        let r = conv2d(&a, &f, Sew::Word);
        assert_eq!(r.get(0, 0), 1 + 5);
        assert_eq!(r.get(1, 1), 5 + 9);
    }

    #[test]
    fn conv_layer_all_ones() {
        // 3 planes of 4x4 ones, 3 filters of 3x3 ones -> conv = 27
        // everywhere; pooled output is a single 27.
        let a = Matrix::from_values(12, 4, &[1; 48]);
        let f = Matrix::from_values(9, 3, &[1; 27]);
        let r = conv_layer_3ch(&a, &f, Sew::Word);
        assert_eq!((r.rows(), r.cols()), (1, 1));
        assert_eq!(r.get(0, 0), 27);
    }

    #[test]
    fn depthwise_is_per_channel_conv() {
        let mut rng = crate::rng(11);
        let a = crate::random_matrix(&mut rng, 3 * 6, 6, Sew::Byte, 4);
        let f = crate::random_matrix(&mut rng, 3 * 3, 3, Sew::Byte, 4);
        let got = depthwise_conv(&a, &f, 3, Sew::Byte);
        assert_eq!((got.rows(), got.cols()), (3 * 4, 4));
        for c in 0..3 {
            let want = conv2d(&a.row_slice(c * 6, 6), &f.row_slice(c * 3, 3), Sew::Byte);
            assert_eq!(got.row_slice(c * 4, 4), want, "channel {c}");
        }
    }

    #[test]
    fn transformer_block_shape_and_identity_weights() {
        // With zero weights every GeMM output is zero, requant/relu keep
        // it zero, and both residual adds pass X through unchanged.
        let x = Matrix::from_values(2, 3, &[1, -2, 3, 4, -5, 6]);
        let z3 = Matrix::zero(3, 3);
        let z34 = Matrix::zero(3, 4);
        let z43 = Matrix::zero(4, 3);
        let y = transformer_encoder_block(&x, &z3, &z3, &z3, &z34, &z43, 2, 3, Sew::Byte);
        assert_eq!(y, x);
    }

    #[test]
    fn residual_bottleneck_zero_weights_is_identity() {
        let x = Matrix::from_values(2, 2, &[7, -8, 9, -10]);
        let z = Matrix::zero(2, 2);
        assert_eq!(residual_bottleneck(&x, &z, &z, 1, 2, Sew::Byte), x);
    }

    #[test]
    fn slice_matches_full() {
        let mut rng = crate::rng(3);
        let a = crate::random_matrix(&mut rng, 3 * 10, 12, Sew::Byte, 4);
        let f = crate::random_matrix(&mut rng, 9, 3, Sew::Byte, 4);
        let full = conv_layer_3ch(&a, &f, Sew::Byte);
        let top = conv_layer_3ch_slice(&a, &f, Sew::Byte, 0, 4);
        let bot = conv_layer_3ch_slice(&a, &f, Sew::Byte, 4, 4);
        for y in 0..2 {
            for x in 0..full.cols() {
                assert_eq!(top.get(y, x), full.get(y, x));
                assert_eq!(bot.get(y, x), full.get(y + 2, x));
            }
        }
    }
}
