//! Byte-addressed storage models: on-chip SRAM and external memory.

use crate::bus::BusError;

/// Byte-addressed storage with a fixed base address.
///
/// Implementations are *functional* models; timing is attached by the
/// component that owns them (bus, cache controller, DMA).
pub trait Memory {
    /// First address of the device.
    fn base(&self) -> u32;

    /// Size in bytes.
    fn len(&self) -> usize;

    /// `true` when the device has zero capacity.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` when `[addr, addr + len)` lies inside the device.
    #[inline]
    fn contains(&self, addr: u32, len: u32) -> bool {
        let end = self.base() as u64 + self.len() as u64;
        (addr as u64) >= self.base() as u64 && (addr as u64 + len as u64) <= end
    }

    /// Copies `buf.len()` bytes starting at `addr` into `buf`.
    ///
    /// # Errors
    ///
    /// Returns [`BusError::Truncated`] when the range leaves the device.
    fn read_bytes(&self, addr: u32, buf: &mut [u8]) -> Result<(), BusError>;

    /// Writes `buf` starting at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`BusError::Truncated`] when the range leaves the device.
    fn write_bytes(&mut self, addr: u32, buf: &[u8]) -> Result<(), BusError>;

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Propagates [`read_bytes`](Memory::read_bytes) errors.
    fn read_u32(&self, addr: u32) -> Result<u32, BusError> {
        let mut b = [0u8; 4];
        self.read_bytes(addr, &mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    /// Writes a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Propagates [`write_bytes`](Memory::write_bytes) errors.
    fn write_u32(&mut self, addr: u32, value: u32) -> Result<(), BusError> {
        self.write_bytes(addr, &value.to_le_bytes())
    }
}

#[inline]
fn offset_of(base: u32, size: usize, addr: u32, len: usize) -> Result<usize, BusError> {
    let off = (addr as u64).checked_sub(base as u64);
    match off {
        Some(off) if (off + len as u64) <= size as u64 => Ok(off as usize),
        _ => Err(BusError::Truncated {
            addr,
            len: len as u32,
        }),
    }
}

/// Single-cycle on-chip SRAM (instruction memory banks, eMEM).
///
/// # Examples
///
/// ```
/// use arcane_mem::{Memory, Sram};
/// let mut m = Sram::new(0, 16);
/// m.write_bytes(4, &[1, 2, 3]).unwrap();
/// let mut out = [0u8; 3];
/// m.read_bytes(4, &mut out).unwrap();
/// assert_eq!(out, [1, 2, 3]);
/// ```
#[derive(Debug, Clone)]
pub struct Sram {
    base: u32,
    data: Vec<u8>,
}

impl Sram {
    /// Creates a zero-initialised SRAM of `size` bytes at `base`.
    pub fn new(base: u32, size: usize) -> Self {
        Sram {
            base,
            data: vec![0; size],
        }
    }

    /// Loads `words` as little-endian 32-bit values starting at `addr`
    /// (program upload helper).
    ///
    /// # Panics
    ///
    /// Panics if the words do not fit.
    pub fn load_words(&mut self, addr: u32, words: &[u32]) {
        for (i, w) in words.iter().enumerate() {
            self.write_u32(addr + (i as u32) * 4, *w)
                .expect("program exceeds SRAM");
        }
    }
}

impl Memory for Sram {
    fn base(&self) -> u32 {
        self.base
    }

    fn len(&self) -> usize {
        self.data.len()
    }

    #[inline]
    fn read_bytes(&self, addr: u32, buf: &mut [u8]) -> Result<(), BusError> {
        let off = offset_of(self.base, self.data.len(), addr, buf.len())?;
        buf.copy_from_slice(&self.data[off..off + buf.len()]);
        Ok(())
    }

    #[inline]
    fn write_bytes(&mut self, addr: u32, buf: &[u8]) -> Result<(), BusError> {
        let off = offset_of(self.base, self.data.len(), addr, buf.len())?;
        self.data[off..off + buf.len()].copy_from_slice(buf);
        Ok(())
    }
}

/// Burst-modeled external memory (flash / pseudo-static RAM).
///
/// Timing model: a random access costs [`ExtMem::first_word_cycles`],
/// each subsequent sequential word in the same burst costs
/// [`ExtMem::per_word_cycles`]. The cache controller and DMA use
/// [`ExtMem::burst_cycles`] to price line refills and tile transfers.
#[derive(Debug, Clone)]
pub struct ExtMem {
    base: u32,
    data: Vec<u8>,
    first_word_cycles: u64,
    per_word_cycles: u64,
}

impl ExtMem {
    /// Creates an external memory of `size` bytes at `base` with the
    /// given burst timing.
    pub fn new(base: u32, size: usize, first_word_cycles: u64, per_word_cycles: u64) -> Self {
        ExtMem {
            base,
            data: vec![0; size],
            first_word_cycles,
            per_word_cycles,
        }
    }

    /// Latency of the first word of a burst.
    pub const fn first_word_cycles(&self) -> u64 {
        self.first_word_cycles
    }

    /// Per-word cost of the remainder of a burst.
    pub const fn per_word_cycles(&self) -> u64 {
        self.per_word_cycles
    }

    /// Cycles to move `bytes` sequential bytes in one burst.
    pub fn burst_cycles(&self, bytes: u64) -> u64 {
        if bytes == 0 {
            return 0;
        }
        let words = bytes.div_ceil(4);
        self.first_word_cycles + self.per_word_cycles * words.saturating_sub(1)
    }
}

impl Memory for ExtMem {
    fn base(&self) -> u32 {
        self.base
    }

    fn len(&self) -> usize {
        self.data.len()
    }

    #[inline]
    fn read_bytes(&self, addr: u32, buf: &mut [u8]) -> Result<(), BusError> {
        let off = offset_of(self.base, self.data.len(), addr, buf.len())?;
        buf.copy_from_slice(&self.data[off..off + buf.len()]);
        Ok(())
    }

    fn write_bytes(&mut self, addr: u32, buf: &[u8]) -> Result<(), BusError> {
        let off = offset_of(self.base, self.data.len(), addr, buf.len())?;
        self.data[off..off + buf.len()].copy_from_slice(buf);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sram_roundtrip_and_bounds() {
        let mut m = Sram::new(0x100, 32);
        assert!(m.contains(0x100, 32));
        assert!(!m.contains(0x100, 33));
        assert!(!m.contains(0xff, 1));
        m.write_u32(0x11c, 42).unwrap();
        assert_eq!(m.read_u32(0x11c).unwrap(), 42);
        assert!(m.write_u32(0x11d, 0).is_err(), "crosses the end");
    }

    #[test]
    fn sram_load_words() {
        let mut m = Sram::new(0, 16);
        m.load_words(0, &[1, 2, 3, 4]);
        assert_eq!(m.read_u32(12).unwrap(), 4);
    }

    #[test]
    fn extmem_burst_timing() {
        let m = ExtMem::new(0, 1024, 10, 2);
        assert_eq!(m.burst_cycles(0), 0);
        assert_eq!(m.burst_cycles(4), 10);
        assert_eq!(m.burst_cycles(8), 12);
        assert_eq!(m.burst_cycles(1024), 10 + 2 * 255);
        // partial word rounds up
        assert_eq!(m.burst_cycles(5), 12);
    }

    #[test]
    fn extmem_storage() {
        let mut m = ExtMem::new(0x2000_0000, 64, 10, 1);
        m.write_bytes(0x2000_0010, &[9, 8, 7]).unwrap();
        let mut b = [0u8; 3];
        m.read_bytes(0x2000_0010, &mut b).unwrap();
        assert_eq!(b, [9, 8, 7]);
        assert!(m.read_bytes(0x1fff_ffff, &mut b).is_err());
    }
}
