//! CPU-facing bus abstraction carrying both data and timing.

use std::error::Error;
use std::fmt;

/// Width of a single bus access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessSize {
    /// 8-bit access.
    Byte,
    /// 16-bit access.
    Half,
    /// 32-bit access.
    Word,
}

impl AccessSize {
    /// Size in bytes.
    pub const fn bytes(self) -> u32 {
        match self {
            AccessSize::Byte => 1,
            AccessSize::Half => 2,
            AccessSize::Word => 4,
        }
    }
}

/// Result of a bus access: the data transferred and the cycles consumed.
///
/// `cycles` includes any stall imposed by the target (cache miss
/// service, lock contention, busy-computing lines).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Data read (zero for writes).
    pub data: u32,
    /// Total cycles the access occupied the requester.
    pub cycles: u64,
}

impl Access {
    /// Convenience constructor.
    pub const fn new(data: u32, cycles: u64) -> Self {
        Access { data, cycles }
    }
}

/// Error raised by a bus target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusError {
    /// No device claims the address.
    OutOfRange {
        /// The faulting address.
        addr: u32,
    },
    /// The access crosses the end of the backing storage.
    Truncated {
        /// The faulting address.
        addr: u32,
        /// Bytes requested.
        len: u32,
    },
}

impl fmt::Display for BusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BusError::OutOfRange { addr } => write!(f, "bus error: no device at {addr:#010x}"),
            BusError::Truncated { addr, len } => {
                write!(
                    f,
                    "bus error: {len}-byte access at {addr:#010x} exceeds device"
                )
            }
        }
    }
}

impl Error for BusError {}

/// A CPU port into the memory system.
///
/// The instruction-set simulator is generic over `Bus`, so the same core
/// drives the baseline system (standard cache) and the ARCANE system
/// (smart cache with hazard stalls) — only the bus implementation
/// differs, exactly like swapping the LLC in the paper.
pub trait Bus {
    /// Reads `size` bytes at `addr` at absolute time `now`.
    ///
    /// # Errors
    ///
    /// Returns [`BusError`] when no device claims the address.
    fn read(&mut self, addr: u32, size: AccessSize, now: u64) -> Result<Access, BusError>;

    /// Writes the low `size` bytes of `value` at `addr` at time `now`.
    ///
    /// # Errors
    ///
    /// Returns [`BusError`] when no device claims the address.
    fn write(
        &mut self,
        addr: u32,
        value: u32,
        size: AccessSize,
        now: u64,
    ) -> Result<Access, BusError>;

    /// Fetches the 32-bit instruction word at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`BusError`] when the address is not executable memory.
    fn fetch(&mut self, addr: u32, now: u64) -> Result<Access, BusError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_size_bytes() {
        assert_eq!(AccessSize::Byte.bytes(), 1);
        assert_eq!(AccessSize::Half.bytes(), 2);
        assert_eq!(AccessSize::Word.bytes(), 4);
    }

    #[test]
    fn bus_error_messages() {
        let e = BusError::OutOfRange { addr: 0x1234 };
        assert!(e.to_string().contains("0x00001234"));
    }
}
