//! The X-HEEP-style 2-D DMA engine (paper §III-A4).
//!
//! During kernel allocation the eCPU programs 2-D transactions that move
//! operands from main memory into the selected VPU in the required
//! matrix layout; during writeback it consolidates scattered
//! matrix-shaped data back into a contiguous array. Both directions are
//! strided row-by-row copies, priced by a setup cost, a per-row cost and
//! the bus width.

use crate::bus::BusError;
use crate::storage::Memory;

/// One 2-D DMA transaction: `rows` rows of `cols` elements of
/// `elem_bytes` each, with independent source and destination strides
/// (expressed in bytes between consecutive row starts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmaJob {
    /// Source base address.
    pub src: u32,
    /// Destination base address.
    pub dst: u32,
    /// Element size in bytes (1, 2 or 4).
    pub elem_bytes: u32,
    /// Elements per row.
    pub cols: u32,
    /// Number of rows.
    pub rows: u32,
    /// Bytes between consecutive source row starts.
    pub src_stride: u32,
    /// Bytes between consecutive destination row starts.
    pub dst_stride: u32,
}

impl DmaJob {
    /// A dense 1-D copy of `bytes` bytes.
    pub fn linear(src: u32, dst: u32, bytes: u32) -> Self {
        DmaJob {
            src,
            dst,
            elem_bytes: 1,
            cols: bytes,
            rows: 1,
            src_stride: bytes,
            dst_stride: bytes,
        }
    }

    /// Payload bytes moved by the job.
    pub const fn bytes(&self) -> u64 {
        self.rows as u64 * self.cols as u64 * self.elem_bytes as u64
    }

    /// Bytes in one row.
    pub const fn row_bytes(&self) -> u32 {
        self.cols * self.elem_bytes
    }
}

/// Timing parameters of the DMA engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmaTiming {
    /// Cycles to program and start a transaction (register writes,
    /// channel arbitration).
    pub setup: u64,
    /// Extra cycles per row (address regeneration).
    pub per_row: u64,
    /// Payload bandwidth in bytes per cycle (bus width).
    pub bytes_per_cycle: u64,
}

impl DmaTiming {
    /// Cycles consumed by `job` under this timing model.
    pub fn cycles(&self, job: &DmaJob) -> u64 {
        let payload = job.bytes().div_ceil(self.bytes_per_cycle.max(1));
        self.setup + self.per_row * job.rows as u64 + payload
    }
}

impl Default for DmaTiming {
    /// 32-bit bus, 8-cycle setup, 1 cycle per row — the X-HEEP DMA
    /// figures used throughout the evaluation.
    fn default() -> Self {
        DmaTiming {
            setup: 8,
            per_row: 1,
            bytes_per_cycle: 4,
        }
    }
}

/// The 2-D DMA engine.
///
/// The engine is stateless between jobs; [`Dma2d::execute`] performs the
/// copy functionally and returns the cycles consumed.
///
/// # Examples
///
/// ```
/// use arcane_mem::{Dma2d, DmaJob, DmaTiming, Memory, Sram};
///
/// let mut src = Sram::new(0, 64);
/// let mut dst = Sram::new(0x100, 64);
/// src.write_bytes(0, &[1, 2, 3, 4, 5, 6]).unwrap();
/// // Move a 2x3 byte matrix with source stride 3, destination stride 16.
/// let job = DmaJob { src: 0, dst: 0x100, elem_bytes: 1, cols: 3, rows: 2,
///                    src_stride: 3, dst_stride: 16 };
/// let dma = Dma2d::new(DmaTiming::default());
/// let cycles = dma.execute(&job, &mut src, &mut dst).unwrap();
/// assert!(cycles > 0);
/// let mut row1 = [0u8; 3];
/// dst.read_bytes(0x110, &mut row1).unwrap();
/// assert_eq!(row1, [4, 5, 6]);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Dma2d {
    timing: DmaTiming,
}

impl Dma2d {
    /// Creates a DMA engine with the given timing.
    pub fn new(timing: DmaTiming) -> Self {
        Dma2d { timing }
    }

    /// The engine's timing parameters.
    pub const fn timing(&self) -> DmaTiming {
        self.timing
    }

    /// Executes `job`, copying from `src_mem` to `dst_mem`.
    ///
    /// Returns the cycles the transaction occupied the DMA channel.
    ///
    /// # Errors
    ///
    /// Returns [`BusError`] if any row falls outside either device;
    /// rows already copied remain copied (the hardware behaves the same
    /// way on a bus error).
    pub fn execute<S: Memory + ?Sized, D: Memory + ?Sized>(
        &self,
        job: &DmaJob,
        src_mem: &S,
        dst_mem: &mut D,
    ) -> Result<u64, BusError> {
        let row_bytes = job.row_bytes() as usize;
        let mut row = vec![0u8; row_bytes];
        for r in 0..job.rows {
            let s = job.src.wrapping_add(r.wrapping_mul(job.src_stride));
            let d = job.dst.wrapping_add(r.wrapping_mul(job.dst_stride));
            src_mem.read_bytes(s, &mut row)?;
            dst_mem.write_bytes(d, &row)?;
        }
        Ok(self.timing.cycles(job))
    }

    /// Executes a transfer within a single device (e.g. writeback
    /// consolidation inside the LLC data array).
    ///
    /// # Errors
    ///
    /// Returns [`BusError`] if any row falls outside the device.
    pub fn execute_within<M: Memory + ?Sized>(
        &self,
        job: &DmaJob,
        mem: &mut M,
    ) -> Result<u64, BusError> {
        let row_bytes = job.row_bytes() as usize;
        let mut row = vec![0u8; row_bytes];
        for r in 0..job.rows {
            let s = job.src.wrapping_add(r.wrapping_mul(job.src_stride));
            let d = job.dst.wrapping_add(r.wrapping_mul(job.dst_stride));
            mem.read_bytes(s, &mut row)?;
            mem.write_bytes(d, &row)?;
        }
        Ok(self.timing.cycles(job))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::Sram;

    #[test]
    fn linear_copy_moves_everything() {
        let mut src = Sram::new(0, 32);
        let mut dst = Sram::new(0x40, 32);
        src.write_bytes(0, &[1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
        let dma = Dma2d::default();
        dma.execute(&DmaJob::linear(0, 0x40, 8), &src, &mut dst)
            .unwrap();
        let mut out = [0u8; 8];
        dst.read_bytes(0x40, &mut out).unwrap();
        assert_eq!(out, [1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn strided_gather_matches_manual_copy() {
        // 3 rows x 2 elements of 2 bytes, source stride 8, dest packed.
        let mut src = Sram::new(0, 64);
        for i in 0..64u8 {
            src.write_bytes(i as u32, &[i]).unwrap();
        }
        let mut dst = Sram::new(0x100, 16);
        let job = DmaJob {
            src: 4,
            dst: 0x100,
            elem_bytes: 2,
            cols: 2,
            rows: 3,
            src_stride: 8,
            dst_stride: 4,
        };
        Dma2d::default().execute(&job, &src, &mut dst).unwrap();
        let mut out = [0u8; 12];
        dst.read_bytes(0x100, &mut out).unwrap();
        assert_eq!(out, [4, 5, 6, 7, 12, 13, 14, 15, 20, 21, 22, 23]);
    }

    #[test]
    fn timing_scales_with_rows_and_bytes() {
        let t = DmaTiming {
            setup: 10,
            per_row: 3,
            bytes_per_cycle: 4,
        };
        let job = DmaJob {
            src: 0,
            dst: 0,
            elem_bytes: 4,
            cols: 8,
            rows: 5,
            src_stride: 32,
            dst_stride: 32,
        };
        // payload = 5*8*4 = 160 bytes -> 40 cycles; rows 5*3 = 15; setup 10.
        assert_eq!(t.cycles(&job), 10 + 15 + 40);
    }

    #[test]
    fn out_of_range_row_errors() {
        let src = Sram::new(0, 8);
        let mut dst = Sram::new(0x40, 8);
        let job = DmaJob::linear(0, 0x40, 16);
        assert!(Dma2d::default().execute(&job, &src, &mut dst).is_err());
    }

    #[test]
    fn overlapping_within_device() {
        let mut m = Sram::new(0, 32);
        m.write_bytes(0, &[1, 2, 3, 4]).unwrap();
        let job = DmaJob::linear(0, 8, 4);
        Dma2d::default().execute_within(&job, &mut m).unwrap();
        assert_eq!(m.read_u32(8).unwrap(), m.read_u32(0).unwrap());
    }
}
