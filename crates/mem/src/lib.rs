//! Memory substrate for the ARCANE reproduction.
//!
//! The paper's system (Figure 1) contains an instruction memory, an
//! external flash/PSRAM behind the LLC, a system bus and the X-HEEP 2-D
//! DMA used by the Matrix Allocator. This crate models all of them:
//!
//! * [`Bus`] — the CPU-facing port abstraction; every access returns the
//!   data **and** the cycles it consumed, which is how the timing model
//!   propagates through the simulation.
//! * [`Memory`] — byte-addressed storage trait with [`Sram`] (single
//!   cycle) and [`ExtMem`] (burst-modeled flash/PSRAM) implementations.
//! * [`Dma2d`] — the 2-D strided DMA engine (paper §III-A4) that the
//!   cache controller and the Matrix Allocator program to move operand
//!   tiles between external memory and the VPU cache lines.
//!
//! # Examples
//!
//! ```
//! use arcane_mem::{Memory, Sram};
//!
//! let mut ram = Sram::new(0x1000, 64);
//! ram.write_u32(0x1010, 0xdeadbeef).unwrap();
//! assert_eq!(ram.read_u32(0x1010).unwrap(), 0xdeadbeef);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bus;
mod dma;
mod storage;

pub use bus::{Access, AccessSize, Bus, BusError};
pub use dma::{Dma2d, DmaJob, DmaTiming};
pub use storage::{ExtMem, Memory, Sram};
