//! Differential harness: random short programs through the reference
//! interpreter and the predecoded block engine must be observationally
//! identical — registers, memory, cycle count, retired-instruction
//! count, final PC and stop reason (or the exact same [`CpuError`]).
//!
//! Programs are generated as *valid-by-construction instruction soup*
//! plus a slice of genuinely random words: arithmetic over random
//! registers, loads/stores near pre-seeded base pointers (in range so
//! runs get deep, but stores may land on code — exercising the
//! self-modifying-code invalidation), forward and backward branches
//! (fuel bounds the infinite loops), hardware loops and packed-SIMD
//! ops. Failures must reproduce: the proptest shim is deterministic per
//! test name.

use arcane_isa::exec::MAX_BLOCK_LEN;
use arcane_isa::reg::Gpr;
use arcane_isa::rv32::{encode, AluImmOp, AluOp, BranchOp, Instr, LoadOp, StoreOp};
use arcane_isa::xcvpulp::PulpInstr;
use arcane_rv32::{Cpu, CpuError, NoCoprocessor, RunResult, SramBus, StopReason};
use arcane_sim::EngineMode;
use proptest::prelude::*;

/// RAM size: program at 0, data pointers seeded within this range.
const RAM: usize = 64 * 1024;

/// Fuel per case (small, so random backward branches terminate fast).
const FUEL: u64 = 20_000;

fn gpr(i: u8) -> Gpr {
    Gpr::new(i % 32).expect("masked")
}

/// One generated instruction, from a compact random tuple.
#[derive(Debug, Clone, Copy)]
struct Spec {
    kind: u8,
    rd: u8,
    rs1: u8,
    rs2: u8,
    imm: i32,
    aux: u8,
}

fn word_of(s: Spec, index: usize, len: usize) -> u32 {
    let rd = gpr(s.rd);
    let rs1 = gpr(s.rs1);
    let rs2 = gpr(s.rs2);
    let instr = match s.kind % 12 {
        0 => Instr::OpImm {
            op: [
                AluImmOp::Addi,
                AluImmOp::Slti,
                AluImmOp::Xori,
                AluImmOp::Ori,
                AluImmOp::Andi,
            ][(s.aux % 5) as usize],
            rd,
            rs1,
            imm: s.imm.clamp(-2048, 2047),
        },
        1 => Instr::OpImm {
            op: [AluImmOp::Slli, AluImmOp::Srli, AluImmOp::Srai][(s.aux % 3) as usize],
            rd,
            rs1,
            imm: s.imm.rem_euclid(32),
        },
        2 => Instr::Op {
            op: [
                AluOp::Add,
                AluOp::Sub,
                AluOp::Sll,
                AluOp::Xor,
                AluOp::Mul,
                AluOp::Mulh,
                AluOp::Div,
                AluOp::Rem,
                AluOp::Sltu,
                AluOp::And,
            ][(s.aux % 10) as usize],
            rd,
            rs1,
            rs2,
        },
        3 => Instr::Load {
            op: [LoadOp::Lb, LoadOp::Lh, LoadOp::Lw, LoadOp::Lbu, LoadOp::Lhu]
                [(s.aux % 5) as usize],
            rd,
            rs1,
            offset: s.imm.clamp(-256, 256),
        },
        4 => Instr::Store {
            op: [StoreOp::Sb, StoreOp::Sh, StoreOp::Sw][(s.aux % 3) as usize],
            rs2,
            rs1,
            offset: s.imm.clamp(-256, 256),
        },
        5 => {
            // Branch to a nearby instruction (aligned), forward or back.
            let lo = -(index as i32);
            let hi = (len - index) as i32;
            let delta = (s.imm % 8).clamp(lo, hi - 1).max(lo);
            Instr::Branch {
                op: [
                    BranchOp::Eq,
                    BranchOp::Ne,
                    BranchOp::Lt,
                    BranchOp::Ge,
                    BranchOp::Ltu,
                    BranchOp::Geu,
                ][(s.aux % 6) as usize],
                rs1,
                rs2,
                offset: delta * 4,
            }
        }
        6 => Instr::Lui {
            rd,
            imm: (s.imm as u32) & 0xffff_f000,
        },
        7 => Instr::Pulp(PulpInstr::LoopSetupI {
            loop_id: s.aux % 2 == 1,
            count: u16::from(s.rs2 % 6) + 1,
            body_len: s.rd % 4 + 1,
        }),
        8 => Instr::Pulp(PulpInstr::LoadPost {
            op: [LoadOp::Lb, LoadOp::Lw][(s.aux % 2) as usize],
            rd,
            rs1,
            offset: i32::from(s.rs2 % 8),
        }),
        9 => Instr::Pulp(PulpInstr::Mac { rd, rs1, rs2 }),
        10 => Instr::Auipc {
            rd,
            imm: (s.imm as u32) & 0x0000_f000,
        },
        // Raw word: usually undecodable — both engines must raise the
        // identical decode error at the identical pc.
        _ => return s.imm as u32 ^ 0x8000_0513,
    };
    encode(&instr)
}

/// Builds the program image: register-seeding prologue (base pointers
/// into RAM so loads/stores mostly land in bounds) + generated body +
/// `ebreak`.
fn build_image(specs: &[Spec]) -> Vec<u32> {
    let mut words = Vec::new();
    // Seed x1..x15 with in-range data addresses: lui + addi pairs.
    for (i, r) in (1u8..16).enumerate() {
        let addr = 0x4000 + (i as i32) * 0x800 + 0x10;
        words.push(encode(&Instr::Lui {
            rd: gpr(r),
            imm: (addr as u32) & 0xffff_f000,
        }));
        words.push(encode(&Instr::OpImm {
            op: AluImmOp::Addi,
            rd: gpr(r),
            rs1: gpr(r),
            imm: addr & 0xfff,
        }));
    }
    let body_at = words.len();
    for (i, s) in specs.iter().enumerate() {
        words.push(word_of(*s, body_at + i, body_at + specs.len() + 1));
    }
    words.push(encode(&Instr::Ebreak));
    words
}

type Outcome = (
    Result<RunResult, CpuError>,
    [u32; 32],
    u32,
    u64,
    u64,
    Vec<u8>,
);

fn run_engine(words: &[u32], engine: EngineMode) -> Outcome {
    let mut bus = SramBus::new(RAM);
    bus.load_program(0, words);
    let mut cpu = Cpu::new(0);
    let result = cpu.run_with_engine(&mut bus, &mut NoCoprocessor, FUEL, engine);
    let regs: [u32; 32] = std::array::from_fn(|i| cpu.reg(gpr(i as u8)));
    let mut mem = vec![0u8; RAM];
    use arcane_mem::Memory;
    bus.ram().read_bytes(0, &mut mem).expect("whole RAM");
    (result, regs, cpu.pc(), cpu.cycles(), cpu.instret(), mem)
}

fn spec_strategy() -> impl Strategy<Value = Spec> {
    (
        any::<u8>(),
        any::<u8>(),
        any::<u8>(),
        any::<u8>(),
        -4096i32..4096,
        any::<u8>(),
    )
        .prop_map(|(kind, rd, rs1, rs2, imm, aux)| Spec {
            kind,
            rd,
            rs1,
            rs2,
            imm,
            aux,
        })
}

proptest! {
    #[test]
    fn engines_agree_on_random_programs(
        specs in prop::collection::vec(spec_strategy(), 1..96),
    ) {
        let words = build_image(&specs);
        let blk = run_engine(&words, EngineMode::Block);
        let interp = run_engine(&words, EngineMode::Interp);
        prop_assert_eq!(&blk.0, &interp.0, "run result diverged");
        prop_assert_eq!(blk.1, interp.1, "registers diverged");
        prop_assert_eq!(blk.2, interp.2, "pc diverged");
        prop_assert_eq!(blk.3, interp.3, "cycles diverged");
        prop_assert_eq!(blk.4, interp.4, "instret diverged");
        prop_assert_eq!(&blk.5, &interp.5, "memory diverged");
    }

    #[test]
    fn engines_agree_on_raw_word_soup(
        words in prop::collection::vec(any::<u32>(), 1..48),
    ) {
        // Pure garbage: mostly decode errors; the error (pc + reason)
        // and all architectural state must match exactly.
        let blk = run_engine(&words, EngineMode::Block);
        let interp = run_engine(&words, EngineMode::Interp);
        prop_assert_eq!(&blk.0, &interp.0);
        prop_assert_eq!(blk.1, interp.1);
        prop_assert_eq!((blk.2, blk.3, blk.4), (interp.2, interp.3, interp.4));
    }
}

#[test]
fn long_straight_line_crosses_block_cap() {
    // More consecutive ALU instructions than MAX_BLOCK_LEN: the block
    // engine must chain truncated blocks without losing an instruction.
    let n = MAX_BLOCK_LEN * 3 + 7;
    let specs: Vec<Spec> = (0..n)
        .map(|_| Spec {
            kind: 0,
            rd: 5,
            rs1: 5,
            imm: 1,
            rs2: 0,
            aux: 0,
        })
        .collect();
    let words = build_image(&specs);
    let blk = run_engine(&words, EngineMode::Block);
    let interp = run_engine(&words, EngineMode::Interp);
    assert_eq!(blk.0, interp.0);
    assert_eq!(blk.1, interp.1);
    let r = blk.0.expect("program completes");
    assert_eq!(r.stop, StopReason::Break);
}

#[test]
fn out_of_fuel_stops_at_identical_state() {
    // An infinite self-branch: both engines must burn exactly FUEL
    // instructions and stop with OutOfFuel at the same pc.
    let words = vec![encode(&Instr::Branch {
        op: BranchOp::Eq,
        rs1: gpr(0),
        rs2: gpr(0),
        offset: 0,
    })];
    let blk = run_engine(&words, EngineMode::Block);
    let interp = run_engine(&words, EngineMode::Interp);
    assert_eq!(blk.0, interp.0);
    assert_eq!(blk.0.unwrap().stop, StopReason::OutOfFuel);
    assert_eq!(blk.4, FUEL);
    assert_eq!(blk.4, interp.4);
}
