//! Self-modifying-code coherence: stores into the instruction stream
//! must invalidate overlapping predecoded blocks, so the block engine
//! observes patched instructions exactly like the fetch-per-instruction
//! interpreter.

use arcane_isa::asm::Asm;
use arcane_isa::reg::*;
use arcane_isa::rv32::{encode, AluImmOp, Instr};
use arcane_rv32::{Cpu, NoCoprocessor, SramBus, StopReason};
use arcane_sim::EngineMode;

fn run(engine: EngineMode, build: impl FnOnce(&mut Asm)) -> (Cpu, StopReason) {
    let mut a = Asm::new();
    build(&mut a);
    let words = a.assemble(0).unwrap();
    let mut bus = SramBus::new(64 * 1024);
    bus.load_program(0, &words);
    let mut cpu = Cpu::new(0);
    let r = cpu
        .run_with_engine(&mut bus, &mut NoCoprocessor, 1_000_000, engine)
        .unwrap();
    (cpu, r.stop)
}

/// The program patches an instruction *ahead of itself in the same
/// straight-line block*, then falls through into it. Without
/// invalidation the block engine would execute the stale predecoded
/// `addi a0, a0, 1`; with it, both engines execute the patched
/// `addi a0, a0, 64`.
fn patch_program(a: &mut Asm) {
    let patched = encode(&Instr::OpImm {
        op: AluImmOp::Addi,
        rd: A0,
        rs1: A0,
        imm: 64,
    });
    a.li(A0, 0);
    a.li(T0, patched as i32);
    // The store target is the addi two instructions below the li
    // emitted next (`li` of a small constant is a single word).
    let target = (a.len() + 2) * 4;
    a.li(T1, target as i32);
    a.sw(T0, T1, 0);
    a.addi(A0, A0, 1); // patched to +64 before execution reaches it
    a.ebreak();
}

#[test]
fn store_patches_upcoming_instruction_in_same_block() {
    let (cpu_b, stop_b) = run(EngineMode::Block, patch_program);
    let (cpu_i, stop_i) = run(EngineMode::Interp, patch_program);
    assert_eq!(stop_b, StopReason::Break);
    assert_eq!(stop_i, StopReason::Break);
    assert_eq!(cpu_i.reg(A0), 64, "interpreter sees the patched opcode");
    assert_eq!(cpu_b.reg(A0), 64, "block engine must see it too");
    assert_eq!(cpu_b.cycles(), cpu_i.cycles());
    assert_eq!(cpu_b.instret(), cpu_i.instret());
}

/// A loop whose body is patched mid-run: the first pass executes the
/// original instruction (already predecoded and cached), the store then
/// rewrites it, and every later iteration must run the new opcode.
fn patch_loop_program(a: &mut Asm) {
    let nop_like = encode(&Instr::OpImm {
        op: AluImmOp::Addi,
        rd: A1,
        rs1: A1,
        imm: 100,
    });
    a.li(A0, 0); // iteration counter
    a.li(A1, 0); // accumulator
    a.li(A2, 3); // iterations
    a.li(T0, nop_like as i32);
    let top = a.bind_label();
    let patch_at = a.len() * 4; // address of the addi emitted next
    a.addi(A1, A1, 1); // the patch target
    a.li(T1, patch_at as i32);
    a.sw(T0, T1, 0); // after iteration 1 the body says a1 += 100
    a.addi(A0, A0, 1);
    a.blt(A0, A2, top);
    a.ebreak();
}

#[test]
fn store_patches_cached_loop_body() {
    let (cpu_b, _) = run(EngineMode::Block, patch_loop_program);
    let (cpu_i, _) = run(EngineMode::Interp, patch_loop_program);
    // Iteration 1 adds 1, iterations 2 and 3 add 100 each.
    assert_eq!(cpu_i.reg(A1), 201, "interpreter semantics");
    assert_eq!(cpu_b.reg(A1), 201, "block cache must be invalidated");
    assert_eq!(cpu_b.cycles(), cpu_i.cycles());
    assert_eq!(cpu_b.instret(), cpu_i.instret());
}

/// A hardware loop whose body *ends with the patching store*: the
/// store wraps control straight back into the (just-invalidated)
/// block, so the coherence re-check must fire before the in-block
/// continuation, not only on sequential fall-through.
fn patch_hw_loop_program(a: &mut Asm) {
    let patched = encode(&Instr::OpImm {
        op: AluImmOp::Addi,
        rd: A1,
        rs1: A1,
        imm: 100,
    });
    a.li(A1, 0); // accumulator
    a.li(T0, patched as i32);
    // Loop body: addi (the patch target) + sw (patches it), 3 times.
    let body_at = a.len() + 2; // cv.setupi + li T1 precede the body
    a.li(T1, (body_at * 4) as i32);
    a.cv_setupi(false, 3, 2);
    a.addi(A1, A1, 1); // body[0]: patched to +100 after iteration 1
    a.sw(T0, T1, 0); // body[1]: ends the body -> hardware-loop wrap
    a.ebreak();
}

#[test]
fn store_ending_hw_loop_body_invalidates_before_wrap() {
    let (cpu_b, stop_b) = run(EngineMode::Block, patch_hw_loop_program);
    let (cpu_i, stop_i) = run(EngineMode::Interp, patch_hw_loop_program);
    assert_eq!(stop_b, StopReason::Break);
    assert_eq!(stop_i, StopReason::Break);
    // Iteration 1 adds 1, iterations 2 and 3 add 100 each.
    assert_eq!(cpu_i.reg(A1), 201, "interpreter semantics");
    assert_eq!(
        cpu_b.reg(A1),
        201,
        "block engine must re-check coherence before the loop wrap"
    );
    assert_eq!(cpu_b.cycles(), cpu_i.cycles());
    assert_eq!(cpu_b.instret(), cpu_i.instret());
}

/// A hardware loop whose body is its *own cached block* (the previous
/// wrap re-predecoded it) and whose store patches the body with a
/// *different* word every iteration. The engine's self-loop fast path
/// must not reuse the held block after the store invalidated it.
fn patch_hw_loop_nonidempotent(a: &mut Asm) {
    let addi_1 = encode(&Instr::OpImm {
        op: AluImmOp::Addi,
        rd: A1,
        rs1: A1,
        imm: 1,
    });
    a.li(A1, 0); // accumulator
                 // t0 holds the body[0] word; its addi immediate grows by 1 per
                 // iteration (the I-type immediate lives in bits 31:20).
    a.li(T0, addi_1 as i32);
    a.li(S5, 1 << 20);
    let body_at = a.len() + 2; // li T1 + cv.setupi precede the body
    a.li(T1, (body_at * 4) as i32);
    a.cv_setupi(false, 4, 3);
    a.addi(A1, A1, 1); // body[0]: imm incremented by each iteration
    a.add(T0, T0, S5); // body[1]: prepare the next patch word
                       // body[2]: the patching store ends the body, so the hardware-loop
                       // wrap lands exactly on the (now stale) body block's start PC —
                       // the case the self-loop fast path must not shortcut.
    a.sw(T0, T1, 0);
    a.ebreak();
}

#[test]
fn nonidempotent_patch_defeats_self_loop_reuse() {
    let (cpu_b, stop_b) = run(EngineMode::Block, patch_hw_loop_nonidempotent);
    let (cpu_i, stop_i) = run(EngineMode::Interp, patch_hw_loop_nonidempotent);
    assert_eq!(stop_b, StopReason::Break);
    assert_eq!(stop_i, StopReason::Break);
    // Iterations add 1, 2, 3, 4.
    assert_eq!(cpu_i.reg(A1), 10, "interpreter semantics");
    assert_eq!(
        cpu_b.reg(A1),
        10,
        "block engine must not reuse an invalidated block via the \
         self-loop fast path"
    );
    assert_eq!(cpu_b.cycles(), cpu_i.cycles());
    assert_eq!(cpu_b.instret(), cpu_i.instret());
}

#[test]
fn block_cache_is_populated_and_cleared_on_reset() {
    let mut a = Asm::new();
    a.li(A0, 7);
    a.ebreak();
    let words = a.assemble(0).unwrap();
    let mut bus = SramBus::new(4096);
    bus.load_program(0, &words);
    let mut cpu = Cpu::new(0);
    cpu.run_with_engine(&mut bus, &mut NoCoprocessor, 100, EngineMode::Block)
        .unwrap();
    assert!(!cpu.block_cache().is_empty(), "block engine caches blocks");
    cpu.reset(0);
    assert!(cpu.block_cache().is_empty(), "reset drops cached blocks");
}
