//! RV32IM + XCVPULP instruction-set simulator.
//!
//! Models the two CPU cores the paper evaluates:
//!
//! * **CV32E40X** (host CPU and eCPU) — RV32IM(C), 4-stage in-order.
//! * **CV32E40PX** — the same pipeline extended with the XCVPULP
//!   packed-SIMD/DSP instructions and hardware loops (the strongest CPU
//!   baseline in Figure 4).
//!
//! The simulator executes real machine code produced by
//! [`arcane_isa::asm::Asm`] against any [`arcane_mem::Bus`]
//! implementation, accumulating cycles from a CV32E40X-derived
//! [`Timing`] model plus whatever wait states the bus reports (cache
//! hits/misses, hazard stalls — this is how the ARCANE LLC interacts
//! with the host core).
//!
//! Custom-2 instructions are not executed by the core: they are offered
//! to a [`Coprocessor`] via the CV-X-IF-style [`Cpu::step`] hook,
//! mirroring the paper's offloading mechanism (§III-B).
//!
//! Two execution engines share one instruction-semantics path:
//! [`Cpu::run`] dispatches to the predecoded block-stepping engine
//! ([`Cpu::run_blocks`], the default) or the reference interpreter
//! ([`Cpu::run_interp`], forced by `ARCANE_INTERP=1`). Results are bit-
//! and cycle-identical; the block engine simply skips the per-dynamic-
//! instruction fetch and decode by caching
//! [`arcane_isa::exec::DecodedBlock`]s keyed by PC.
//!
//! # Examples
//!
//! ```
//! use arcane_isa::asm::Asm;
//! use arcane_isa::reg::A0;
//! use arcane_rv32::{Cpu, NoCoprocessor, SramBus};
//!
//! let mut a = Asm::new();
//! a.li(A0, 21);
//! a.add(A0, A0, A0);
//! a.ebreak();
//! let mut bus = SramBus::new(64 * 1024);
//! bus.load_program(0, &a.assemble(0).unwrap());
//! let mut cpu = Cpu::new(0);
//! let run = cpu.run(&mut bus, &mut NoCoprocessor, 1_000).unwrap();
//! assert_eq!(cpu.reg(A0), 42);
//! assert!(run.cycles > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cpu;
mod simd;
mod timing;
mod xif;

pub use cpu::{Cpu, CpuError, RunResult, SramBus, StopReason};
pub use timing::Timing;
pub use xif::{Coprocessor, NoCoprocessor, XifResponse};
