//! CV32E40X-derived per-instruction cycle costs.

/// Per-instruction cycle tariff of a 4-stage in-order CV32E40X-class
/// core.
///
/// Values follow the published CV32E40X/RI5CY pipeline behaviour:
/// single-cycle ALU and multiplier, iterative divider, taken-branch and
/// jump penalties from pipeline flushes, and memory operations that cost
/// one issue cycle plus whatever wait states the bus reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Timing {
    /// Cost of simple ALU/CSR instructions.
    pub alu: u64,
    /// Cost of 32×32 multiplications (single-cycle unit).
    pub mul: u64,
    /// Cost of `mulh*` (two passes through the multiplier).
    pub mulh: u64,
    /// Cost of divisions and remainders (iterative unit).
    pub div: u64,
    /// Cost of a *taken* branch (flush of IF/ID).
    pub branch_taken: u64,
    /// Cost of a not-taken branch.
    pub branch_not_taken: u64,
    /// Cost of `jal`/`jalr`.
    pub jump: u64,
    /// Extra cycles for a misaligned data access (second bus transaction).
    pub misaligned_extra: u64,
    /// Cost of an XCVPULP packed-SIMD or DSP op (single-cycle datapath).
    pub simd: u64,
    /// Cost of a hardware-loop setup instruction.
    pub loop_setup: u64,
}

impl Timing {
    /// The CV32E40X/CV32E40PX tariff used throughout the evaluation.
    pub const fn cv32e40x() -> Self {
        Timing {
            alu: 1,
            mul: 1,
            mulh: 2,
            div: 35,
            branch_taken: 3,
            branch_not_taken: 1,
            jump: 2,
            misaligned_extra: 1,
            simd: 1,
            loop_setup: 1,
        }
    }
}

impl Default for Timing {
    fn default() -> Self {
        Timing::cv32e40x()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_cv32e40x() {
        assert_eq!(Timing::default(), Timing::cv32e40x());
        assert_eq!(Timing::cv32e40x().div, 35);
        assert_eq!(Timing::cv32e40x().alu, 1);
    }
}
