//! The RV32IM(+XCVPULP) core model.

use crate::simd::pv_exec;
use crate::timing::Timing;
use crate::xif::{Coprocessor, XifResponse};
use arcane_isa::exec::{BlockCache, CostClass, DecodedBlock};
use arcane_isa::reg::Gpr;
use arcane_isa::rv32::{decode, AluImmOp, AluOp, BranchOp, Instr, LoadOp, StoreOp};
use arcane_isa::xcvpulp::PulpInstr;
use arcane_isa::DecodeError;
use arcane_mem::{Access, AccessSize, Bus, BusError, Memory, Sram};
use arcane_sim::EngineMode;
use std::error::Error;
use std::fmt;
use std::rc::Rc;

/// Why [`Cpu::run`] stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// An `ebreak` was executed (normal end-of-program marker).
    Break,
    /// An `ecall` was executed.
    Ecall,
    /// The instruction budget was exhausted.
    OutOfFuel,
}

/// Summary of a [`Cpu::run`] invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunResult {
    /// Instructions retired.
    pub instret: u64,
    /// Cycles consumed (per the [`Timing`] model plus bus wait states).
    pub cycles: u64,
    /// Why execution stopped.
    pub stop: StopReason,
}

/// Error that aborts simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuError {
    /// A bus access faulted.
    Bus {
        /// Program counter of the faulting instruction.
        pc: u32,
        /// The underlying bus error.
        source: BusError,
    },
    /// An instruction word failed to decode.
    Decode {
        /// Program counter of the faulting instruction.
        pc: u32,
        /// The underlying decode error.
        source: DecodeError,
    },
    /// A custom-2 instruction was rejected by the coprocessor
    /// (the CV-X-IF "kill" outcome).
    RejectedOffload {
        /// Program counter of the offloaded instruction.
        pc: u32,
        /// The raw instruction word.
        raw: u32,
    },
}

impl fmt::Display for CpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CpuError::Bus { pc, source } => write!(f, "bus fault at pc {pc:#010x}: {source}"),
            CpuError::Decode { pc, source } => {
                write!(f, "illegal instruction at pc {pc:#010x}: {source}")
            }
            CpuError::RejectedOffload { pc, raw } => write!(
                f,
                "coprocessor rejected instruction {raw:#010x} at pc {pc:#010x}"
            ),
        }
    }
}

impl Error for CpuError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CpuError::Bus { source, .. } => Some(source),
            CpuError::Decode { source, .. } => Some(source),
            CpuError::RejectedOffload { .. } => None,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct HwLoop {
    start: u32,
    last: u32,
    remaining: u32,
    active: bool,
}

/// A CV32E40X-class RV32IM(+XCVPULP) core.
///
/// The core is generic over the attached [`Bus`] and [`Coprocessor`] so
/// the identical model drives the baseline system, the XCVPULP baseline
/// and the ARCANE host.
#[derive(Debug, Clone)]
pub struct Cpu {
    regs: [u32; 32],
    pc: u32,
    cycles: u64,
    instret: u64,
    timing: Timing,
    loops: [HwLoop; 2],
    /// `true` while any hardware loop is active (fast-path guard).
    loops_active: bool,
    blocks: BlockCache,
}

impl Cpu {
    /// Creates a core with the default CV32E40X timing, starting at
    /// `reset_pc`.
    pub fn new(reset_pc: u32) -> Self {
        Cpu::with_timing(reset_pc, Timing::default())
    }

    /// Creates a core with an explicit timing model.
    pub fn with_timing(reset_pc: u32, timing: Timing) -> Self {
        Cpu {
            regs: [0; 32],
            pc: reset_pc,
            cycles: 0,
            instret: 0,
            timing,
            loops: [HwLoop::default(); 2],
            loops_active: false,
            blocks: BlockCache::new(),
        }
    }

    /// Current program counter.
    pub const fn pc(&self) -> u32 {
        self.pc
    }

    /// Cycles consumed so far.
    pub const fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Instructions retired so far.
    pub const fn instret(&self) -> u64 {
        self.instret
    }

    /// Reads a register (`x0` always reads zero).
    ///
    /// `Gpr` guarantees the index is below 32; the redundant mask lets
    /// the compiler drop the bounds check from the hottest load in the
    /// simulator.
    #[inline(always)]
    pub fn reg(&self, r: Gpr) -> u32 {
        self.regs[(r.index() & 31) as usize]
    }

    /// Writes a register (writes to `x0` are discarded).
    #[inline(always)]
    pub fn set_reg(&mut self, r: Gpr, value: u32) {
        if !r.is_zero() {
            self.regs[(r.index() & 31) as usize] = value;
        }
    }

    /// Resets PC, registers, counters, hardware loops and the decoded
    /// block cache (instruction memory may be about to change).
    pub fn reset(&mut self, pc: u32) {
        self.regs = [0; 32];
        self.pc = pc;
        self.cycles = 0;
        self.instret = 0;
        self.loops = [HwLoop::default(); 2];
        self.loops_active = false;
        self.blocks.clear();
    }

    /// The decoded-block cache of the block-stepping engine (empty
    /// until the first [`Cpu::run`] in block mode).
    pub const fn block_cache(&self) -> &BlockCache {
        &self.blocks
    }

    fn mem_read<B: Bus>(
        &mut self,
        bus: &mut B,
        addr: u32,
        size: AccessSize,
    ) -> Result<Access, CpuError> {
        let pc = self.pc;
        let mut acc = bus
            .read(addr, size, self.cycles)
            .map_err(|source| CpuError::Bus { pc, source })?;
        if !addr.is_multiple_of(size.bytes()) {
            acc.cycles += self.timing.misaligned_extra;
        }
        Ok(acc)
    }

    fn mem_write<B: Bus>(
        &mut self,
        bus: &mut B,
        addr: u32,
        value: u32,
        size: AccessSize,
    ) -> Result<u64, CpuError> {
        let pc = self.pc;
        let acc = bus
            .write(addr, value, size, self.cycles)
            .map_err(|source| CpuError::Bus { pc, source })?;
        // Self-modifying-code guard: drop any predecoded block the
        // store overlaps (two compares when the store is outside code).
        self.blocks.invalidate_write(addr, size.bytes());
        let extra = if !addr.is_multiple_of(size.bytes()) {
            self.timing.misaligned_extra
        } else {
            0
        };
        Ok(acc.cycles + extra)
    }

    /// Executes one instruction.
    ///
    /// Returns `Some(reason)` when the instruction terminates the
    /// program (`ebreak`/`ecall`), `None` otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`CpuError`] on bus faults, undecodable instructions or
    /// rejected offloads.
    pub fn step<B: Bus, X: Coprocessor>(
        &mut self,
        bus: &mut B,
        xif: &mut X,
    ) -> Result<Option<StopReason>, CpuError> {
        let pc = self.pc;
        // Fetch; prefetch buffer hides single-cycle IMEM latency, so the
        // fetch time is not added to the instruction cost.
        let word = bus
            .fetch(pc, self.cycles)
            .map_err(|source| CpuError::Bus { pc, source })?
            .data;
        let instr = decode(word).map_err(|source| CpuError::Decode { pc, source })?;
        self.exec_instr(bus, xif, instr)
    }

    /// Executes one already-decoded instruction at the current PC.
    ///
    /// This is the single execution path shared by [`Cpu::step`] and
    /// [`Cpu::run_block`], which is what guarantees the two engines
    /// produce bit- and cycle-identical results.
    #[inline(always)]
    fn exec_instr<B: Bus, X: Coprocessor>(
        &mut self,
        bus: &mut B,
        xif: &mut X,
        instr: Instr,
    ) -> Result<Option<StopReason>, CpuError> {
        let pc = self.pc;
        let mut next_pc = pc.wrapping_add(4);
        let mut cost = self.timing.alu;
        let mut stop = None;

        match instr {
            Instr::Lui { rd, imm } => self.set_reg(rd, imm),
            Instr::Auipc { rd, imm } => self.set_reg(rd, pc.wrapping_add(imm)),
            Instr::Jal { rd, offset } => {
                self.set_reg(rd, pc.wrapping_add(4));
                next_pc = pc.wrapping_add(offset as u32);
                cost = self.timing.jump;
            }
            Instr::Jalr { rd, rs1, offset } => {
                let target = self.reg(rs1).wrapping_add(offset as u32) & !1;
                self.set_reg(rd, pc.wrapping_add(4));
                next_pc = target;
                cost = self.timing.jump;
            }
            Instr::Branch {
                op,
                rs1,
                rs2,
                offset,
            } => {
                let a = self.reg(rs1);
                let b = self.reg(rs2);
                let taken = match op {
                    BranchOp::Eq => a == b,
                    BranchOp::Ne => a != b,
                    BranchOp::Lt => (a as i32) < (b as i32),
                    BranchOp::Ge => (a as i32) >= (b as i32),
                    BranchOp::Ltu => a < b,
                    BranchOp::Geu => a >= b,
                };
                if taken {
                    next_pc = pc.wrapping_add(offset as u32);
                    cost = self.timing.branch_taken;
                } else {
                    cost = self.timing.branch_not_taken;
                }
            }
            Instr::Load {
                op,
                rd,
                rs1,
                offset,
            } => {
                let addr = self.reg(rs1).wrapping_add(offset as u32);
                let acc = self.mem_read(bus, addr, load_size(op))?;
                self.set_reg(rd, extend_load(op, acc.data));
                cost = acc.cycles;
            }
            Instr::Store {
                op,
                rs2,
                rs1,
                offset,
            } => {
                let addr = self.reg(rs1).wrapping_add(offset as u32);
                cost = self.mem_write(bus, addr, self.reg(rs2), store_size(op))?;
            }
            Instr::OpImm { op, rd, rs1, imm } => {
                let a = self.reg(rs1);
                let v = match op {
                    AluImmOp::Addi => a.wrapping_add(imm as u32),
                    AluImmOp::Slti => ((a as i32) < imm) as u32,
                    AluImmOp::Sltiu => (a < imm as u32) as u32,
                    AluImmOp::Xori => a ^ imm as u32,
                    AluImmOp::Ori => a | imm as u32,
                    AluImmOp::Andi => a & imm as u32,
                    AluImmOp::Slli => a.wrapping_shl(imm as u32),
                    AluImmOp::Srli => a.wrapping_shr(imm as u32),
                    AluImmOp::Srai => ((a as i32).wrapping_shr(imm as u32)) as u32,
                };
                self.set_reg(rd, v);
            }
            Instr::Op { op, rd, rs1, rs2 } => {
                let a = self.reg(rs1);
                let b = self.reg(rs2);
                let (v, c) = alu_rr(op, a, b, &self.timing);
                self.set_reg(rd, v);
                cost = c;
            }
            Instr::Fence => {}
            Instr::Ecall => stop = Some(StopReason::Ecall),
            Instr::Ebreak => stop = Some(StopReason::Break),
            Instr::Pulp(p) => cost = self.exec_pulp(bus, p)?,
            Instr::Custom2 {
                raw,
                rs1,
                rs2,
                rs3,
                rd,
            } => {
                let response = xif.offload(
                    raw,
                    self.reg(rs1),
                    self.reg(rs2),
                    self.reg(rs3),
                    self.cycles,
                );
                match response {
                    XifResponse::Accept { writeback, cycles } => {
                        if let Some(v) = writeback {
                            self.set_reg(rd, v);
                        }
                        cost = cycles.max(1);
                    }
                    XifResponse::Reject => {
                        return Err(CpuError::RejectedOffload { pc, raw });
                    }
                }
            }
        }

        self.cycles += cost;
        self.instret += 1;

        // Hardware loops: if the retired instruction is the last of an
        // active loop body, wrap to the loop start with zero overhead.
        // Loop 0 is the innermost per the XPULP convention. Guarded by
        // one flag so plain RV32IM code pays a single predictable
        // branch here.
        if self.loops_active && next_pc == pc.wrapping_add(4) {
            for l in 0..2 {
                let lp = &mut self.loops[l];
                if lp.active && pc == lp.last {
                    if lp.remaining > 1 {
                        lp.remaining -= 1;
                        next_pc = lp.start;
                    } else {
                        lp.active = false;
                        self.loops_active = self.loops[0].active || self.loops[1].active;
                    }
                    break;
                }
            }
        }

        self.pc = next_pc;
        Ok(stop)
    }

    fn exec_pulp<B: Bus>(&mut self, bus: &mut B, p: PulpInstr) -> Result<u64, CpuError> {
        match p {
            PulpInstr::LoadPost {
                op,
                rd,
                rs1,
                offset,
            } => {
                let addr = self.reg(rs1);
                let acc = self.mem_read(bus, addr, load_size(op))?;
                self.set_reg(rd, extend_load(op, acc.data));
                // post-increment must survive rd == rs1 (rd wins on real HW
                // only for rd != rs1; we forbid that case in kernels)
                self.set_reg(rs1, addr.wrapping_add(offset as u32));
                Ok(acc.cycles)
            }
            PulpInstr::StorePost {
                op,
                rs2,
                rs1,
                offset,
            } => {
                let addr = self.reg(rs1);
                let cost = self.mem_write(bus, addr, self.reg(rs2), store_size(op))?;
                self.set_reg(rs1, addr.wrapping_add(offset as u32));
                Ok(cost)
            }
            PulpInstr::Simd {
                op,
                w,
                rd,
                rs1,
                rs2,
            } => {
                let v = pv_exec(op, w, self.reg(rd), self.reg(rs1), self.reg(rs2));
                self.set_reg(rd, v);
                Ok(self.timing.simd)
            }
            PulpInstr::Mac { rd, rs1, rs2 } => {
                let v = self
                    .reg(rd)
                    .wrapping_add(self.reg(rs1).wrapping_mul(self.reg(rs2)));
                self.set_reg(rd, v);
                Ok(self.timing.simd)
            }
            PulpInstr::MaxS { rd, rs1, rs2 } => {
                let v = (self.reg(rs1) as i32).max(self.reg(rs2) as i32) as u32;
                self.set_reg(rd, v);
                Ok(self.timing.simd)
            }
            PulpInstr::MinS { rd, rs1, rs2 } => {
                let v = (self.reg(rs1) as i32).min(self.reg(rs2) as i32) as u32;
                self.set_reg(rd, v);
                Ok(self.timing.simd)
            }
            PulpInstr::Abs { rd, rs1 } => {
                let v = (self.reg(rs1) as i32).wrapping_abs() as u32;
                self.set_reg(rd, v);
                Ok(self.timing.simd)
            }
            PulpInstr::LoopSetupI {
                loop_id,
                count,
                body_len,
            } => {
                self.setup_loop(loop_id, count as u32, body_len as u32);
                Ok(self.timing.loop_setup)
            }
            PulpInstr::LoopSetup {
                loop_id,
                count,
                body_len,
            } => {
                let n = self.reg(count);
                self.setup_loop(loop_id, n, body_len as u32);
                Ok(self.timing.loop_setup)
            }
        }
    }

    fn setup_loop(&mut self, loop_id: bool, count: u32, body_len: u32) {
        let idx = loop_id as usize;
        let start = self.pc.wrapping_add(4);
        let lp = &mut self.loops[idx];
        if count == 0 || body_len == 0 {
            lp.active = false;
            self.loops_active = self.loops[0].active || self.loops[1].active;
            return;
        }
        lp.start = start;
        lp.last = start.wrapping_add((body_len - 1) * 4);
        lp.remaining = count;
        lp.active = true;
        self.loops_active = true;
    }

    /// Runs until `ebreak`/`ecall` or until `max_instrs` instructions
    /// have retired, on the engine selected by the environment
    /// ([`EngineMode::current`]: block stepping unless `ARCANE_INTERP=1`).
    ///
    /// # Errors
    ///
    /// Propagates the first [`CpuError`] raised by execution.
    pub fn run<B: Bus, X: Coprocessor>(
        &mut self,
        bus: &mut B,
        xif: &mut X,
        max_instrs: u64,
    ) -> Result<RunResult, CpuError> {
        self.run_with_engine(bus, xif, max_instrs, EngineMode::current())
    }

    /// [`Cpu::run`] with an explicit engine choice (used by the
    /// differential tests, which need both engines in one process).
    ///
    /// # Errors
    ///
    /// Propagates the first [`CpuError`] raised by execution.
    pub fn run_with_engine<B: Bus, X: Coprocessor>(
        &mut self,
        bus: &mut B,
        xif: &mut X,
        max_instrs: u64,
        engine: EngineMode,
    ) -> Result<RunResult, CpuError> {
        match engine {
            EngineMode::Interp => self.run_interp(bus, xif, max_instrs),
            EngineMode::Block => self.run_blocks(bus, xif, max_instrs),
        }
    }

    /// The reference fetch-decode-execute interpreter (the slow path).
    ///
    /// # Errors
    ///
    /// Propagates the first [`CpuError`] raised by [`Cpu::step`].
    pub fn run_interp<B: Bus, X: Coprocessor>(
        &mut self,
        bus: &mut B,
        xif: &mut X,
        max_instrs: u64,
    ) -> Result<RunResult, CpuError> {
        let start_instret = self.instret;
        let start_cycles = self.cycles;
        while self.instret - start_instret < max_instrs {
            if let Some(stop) = self.step(bus, xif)? {
                return Ok(RunResult {
                    instret: self.instret - start_instret,
                    cycles: self.cycles - start_cycles,
                    stop,
                });
            }
        }
        Ok(RunResult {
            instret: self.instret - start_instret,
            cycles: self.cycles - start_cycles,
            stop: StopReason::OutOfFuel,
        })
    }

    /// The predecoded block-stepping engine: fetch/decode happen once
    /// per basic block (cached by PC), execution loops over the decoded
    /// instructions. Hardware-loop bodies and branch-closed inner loops
    /// re-enter their memoised block without touching the bus.
    ///
    /// # Errors
    ///
    /// Propagates the first [`CpuError`] raised by execution; fetch and
    /// decode faults surface at exactly the PC where the interpreter
    /// would raise them (predecode truncates a block at the first bad
    /// word instead of failing eagerly).
    pub fn run_blocks<B: Bus, X: Coprocessor>(
        &mut self,
        bus: &mut B,
        xif: &mut X,
        max_instrs: u64,
    ) -> Result<RunResult, CpuError> {
        let start_instret = self.instret;
        let start_cycles = self.cycles;
        let mut cur: Option<Rc<DecodedBlock>> = None;
        while self.instret - start_instret < max_instrs {
            let remaining = max_instrs - (self.instret - start_instret);
            // Self-loop fast path: a block whose terminator jumps back
            // to its own start (hot inner loops, hardware-loop bodies)
            // is re-entered without a cache lookup.
            let block = match cur.take() {
                Some(b) if b.start() == self.pc && !b.is_empty() => b,
                _ => self.fetch_block(bus)?,
            };
            let gen = self.blocks.generation();
            if let Some(stop) = self.run_block(bus, xif, &block, remaining)? {
                return Ok(RunResult {
                    instret: self.instret - start_instret,
                    cycles: self.cycles - start_cycles,
                    stop,
                });
            }
            // The self-loop fast path must never hand back a block a
            // store just invalidated (the held Rc outlives the cache
            // entry): any invalidation during the run drops the
            // shortcut and the next iteration re-resolves through the
            // cache, which re-predecodes from patched memory.
            cur = if self.blocks.generation() == gen {
                Some(block)
            } else {
                None
            };
        }
        Ok(RunResult {
            instret: self.instret - start_instret,
            cycles: self.cycles - start_cycles,
            stop: StopReason::OutOfFuel,
        })
    }

    /// Returns the decoded block starting at the current PC, predecoding
    /// and caching it on a miss.
    fn fetch_block<B: Bus>(&mut self, bus: &mut B) -> Result<Rc<DecodedBlock>, CpuError> {
        let pc = self.pc;
        if let Some(b) = self.blocks.get(pc) {
            return Ok(b);
        }
        let mut block = DecodedBlock::new(pc);
        let mut addr = pc;
        loop {
            // A fetch or decode fault on the *first* word is a real
            // fault (the interpreter would raise it here too); later
            // words merely truncate the block, because control may
            // never reach them.
            let word = match bus.fetch(addr, self.cycles) {
                Ok(acc) => acc.data,
                Err(source) => {
                    if addr == pc {
                        return Err(CpuError::Bus { pc, source });
                    }
                    break;
                }
            };
            let instr = match decode(word) {
                Ok(i) => i,
                Err(source) => {
                    if addr == pc {
                        return Err(CpuError::Decode { pc, source });
                    }
                    break;
                }
            };
            let open = block.push(instr);
            addr = addr.wrapping_add(4);
            if !open {
                break;
            }
        }
        Ok(self.blocks.insert(block))
    }

    /// Executes predecoded instructions from `block` starting at the
    /// current PC until the block ends, control leaves the straight
    /// line (taken branch, jump, hardware-loop wrap), a store
    /// invalidates cached code, the program stops, or `max_instrs`
    /// instructions have retired.
    ///
    /// Returns the stop reason when the program terminated.
    ///
    /// # Errors
    ///
    /// Propagates the first [`CpuError`] raised by an instruction.
    ///
    pub fn run_block<B: Bus, X: Coprocessor>(
        &mut self,
        bus: &mut B,
        xif: &mut X,
        block: &DecodedBlock,
        max_instrs: u64,
    ) -> Result<Option<StopReason>, CpuError> {
        debug_assert!(
            block.covers(self.pc),
            "pc {:#010x} outside block at {:#010x}",
            self.pc,
            block.start()
        );
        let mut idx = (self.pc.wrapping_sub(block.start()) / 4) as usize;
        let gen = self.blocks.generation();
        let instrs = block.instrs();
        let mut executed = 0u64;
        while idx < instrs.len() && executed < max_instrs {
            let pc = self.pc;
            let (instr, cost_hint) = instrs[idx];
            let stop = self.exec_instr(bus, xif, instr)?;
            executed += 1;
            if stop.is_some() {
                return Ok(stop);
            }
            // Only stores can invalidate predecoded code, so the
            // coherence re-check is gated on the precomputed cost hint.
            // It must run before the control-transfer continuation
            // below: a store can itself end a hardware-loop body, and
            // wrapping back into a block it just invalidated would
            // replay stale instructions.
            if matches!(cost_hint, CostClass::Store) && self.blocks.generation() != gen {
                // A store invalidated cached code — possibly the rest
                // of this very block. Fall back to a fresh predecode at
                // the current PC, exactly like the interpreter
                // refetching.
                return Ok(None);
            }
            if self.pc != pc.wrapping_add(4) {
                // Control transfer (taken branch or hardware-loop
                // wrap). A target inside this very block — typically a
                // hardware-loop body wrapping to its start — continues
                // predecoded without leaving; anything else returns so
                // the caller re-resolves the block at the new PC.
                if block.covers(self.pc) {
                    idx = (self.pc.wrapping_sub(block.start()) / 4) as usize;
                    continue;
                }
                return Ok(None);
            }
            idx += 1;
        }
        Ok(None)
    }
}

fn load_size(op: LoadOp) -> AccessSize {
    match op.size() {
        1 => AccessSize::Byte,
        2 => AccessSize::Half,
        _ => AccessSize::Word,
    }
}

fn store_size(op: StoreOp) -> AccessSize {
    match op.size() {
        1 => AccessSize::Byte,
        2 => AccessSize::Half,
        _ => AccessSize::Word,
    }
}

fn extend_load(op: LoadOp, raw: u32) -> u32 {
    match op {
        LoadOp::Lb => raw as u8 as i8 as i32 as u32,
        LoadOp::Lh => raw as u16 as i16 as i32 as u32,
        LoadOp::Lbu => raw as u8 as u32,
        LoadOp::Lhu => raw as u16 as u32,
        LoadOp::Lw => raw,
    }
}

fn alu_rr(op: AluOp, a: u32, b: u32, t: &Timing) -> (u32, u64) {
    let v = match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Sll => a.wrapping_shl(b & 0x1f),
        AluOp::Slt => ((a as i32) < (b as i32)) as u32,
        AluOp::Sltu => (a < b) as u32,
        AluOp::Xor => a ^ b,
        AluOp::Srl => a.wrapping_shr(b & 0x1f),
        AluOp::Sra => ((a as i32).wrapping_shr(b & 0x1f)) as u32,
        AluOp::Or => a | b,
        AluOp::And => a & b,
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Mulh => (((a as i32 as i64) * (b as i32 as i64)) >> 32) as u32,
        AluOp::Mulhsu => (((a as i32 as i64) * (b as u64 as i64)) >> 32) as u32,
        AluOp::Mulhu => (((a as u64) * (b as u64)) >> 32) as u32,
        AluOp::Div => {
            if b == 0 {
                u32::MAX
            } else if a == 0x8000_0000 && b == u32::MAX {
                a
            } else {
                ((a as i32) / (b as i32)) as u32
            }
        }
        AluOp::Divu => a.checked_div(b).unwrap_or(u32::MAX),
        AluOp::Rem => {
            if b == 0 {
                a
            } else if a == 0x8000_0000 && b == u32::MAX {
                0
            } else {
                ((a as i32) % (b as i32)) as u32
            }
        }
        AluOp::Remu => {
            if b == 0 {
                a
            } else {
                a % b
            }
        }
    };
    let cost = match op {
        AluOp::Mul => t.mul,
        AluOp::Mulh | AluOp::Mulhsu | AluOp::Mulhu => t.mulh,
        AluOp::Div | AluOp::Divu | AluOp::Rem | AluOp::Remu => t.div,
        _ => t.alu,
    };
    (v, cost)
}

/// A flat single-SRAM bus for unit tests and small standalone programs.
///
/// Instruction fetches and data accesses hit the same zero-based SRAM
/// with single-cycle latency.
#[derive(Debug, Clone)]
pub struct SramBus {
    ram: Sram,
}

impl SramBus {
    /// Creates a bus backed by `size` bytes of SRAM at address zero.
    pub fn new(size: usize) -> Self {
        SramBus {
            ram: Sram::new(0, size),
        }
    }

    /// Loads a program image (32-bit little-endian words) at `addr`.
    pub fn load_program(&mut self, addr: u32, words: &[u32]) {
        self.ram.load_words(addr, words);
    }

    /// Access to the underlying memory (for seeding data sections).
    pub fn ram_mut(&mut self) -> &mut Sram {
        &mut self.ram
    }

    /// Read-only access to the underlying memory.
    pub fn ram(&self) -> &Sram {
        &self.ram
    }
}

impl Bus for SramBus {
    #[inline]
    fn read(&mut self, addr: u32, size: AccessSize, _now: u64) -> Result<Access, BusError> {
        let mut buf = [0u8; 4];
        self.ram
            .read_bytes(addr, &mut buf[..size.bytes() as usize])?;
        Ok(Access::new(u32::from_le_bytes(buf), 1))
    }

    #[inline]
    fn write(
        &mut self,
        addr: u32,
        value: u32,
        size: AccessSize,
        _now: u64,
    ) -> Result<Access, BusError> {
        self.ram
            .write_bytes(addr, &value.to_le_bytes()[..size.bytes() as usize])?;
        Ok(Access::new(0, 1))
    }

    #[inline]
    fn fetch(&mut self, addr: u32, _now: u64) -> Result<Access, BusError> {
        Ok(Access::new(self.ram.read_u32(addr)?, 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xif::NoCoprocessor;
    use arcane_isa::asm::Asm;
    use arcane_isa::reg::*;
    use arcane_isa::xcvpulp::{PvOp, SimdWidth};

    fn run_asm(build: impl FnOnce(&mut Asm)) -> (Cpu, SramBus, RunResult) {
        let mut a = Asm::new();
        build(&mut a);
        let words = a.assemble(0).unwrap();
        let mut bus = SramBus::new(256 * 1024);
        bus.load_program(0, &words);
        let mut cpu = Cpu::new(0);
        let r = cpu.run(&mut bus, &mut NoCoprocessor, 10_000_000).unwrap();
        (cpu, bus, r)
    }

    #[test]
    fn arithmetic_basics() {
        let (cpu, _, r) = run_asm(|a| {
            a.li(A0, 100);
            a.li(A1, -7);
            a.add(A2, A0, A1); // 93
            a.mul(A3, A0, A1); // -700
            a.op(AluOp::Div, A4, A0, A1); // -14
            a.op(AluOp::Rem, A5, A0, A1); // 2
            a.ebreak();
        });
        assert_eq!(r.stop, StopReason::Break);
        assert_eq!(cpu.reg(A2), 93);
        assert_eq!(cpu.reg(A3) as i32, -700);
        assert_eq!(cpu.reg(A4) as i32, -14);
        assert_eq!(cpu.reg(A5) as i32, 2);
    }

    #[test]
    fn division_edge_cases() {
        let (cpu, _, _) = run_asm(|a| {
            a.li(A0, 5);
            a.li(A1, 0);
            a.op(AluOp::Div, A2, A0, A1); // -1 per spec
            a.op(AluOp::Rem, A3, A0, A1); // 5 per spec
            a.li(A4, i32::MIN);
            a.li(A5, -1);
            a.op(AluOp::Div, A6, A4, A5); // overflow -> i32::MIN
            a.ebreak();
        });
        assert_eq!(cpu.reg(A2), u32::MAX);
        assert_eq!(cpu.reg(A3), 5);
        assert_eq!(cpu.reg(A6), 0x8000_0000);
    }

    #[test]
    fn loads_and_stores_with_sign_extension() {
        let (cpu, _, _) = run_asm(|a| {
            a.li(T0, 0x1000);
            a.li(T1, -2); // 0xfffffffe
            a.sb(T1, T0, 0);
            a.lb(A0, T0, 0); // -2 sign extended
            a.load(LoadOp::Lbu, A1, T0, 0); // 0xfe
            a.sh(T1, T0, 4);
            a.lh(A2, T0, 4);
            a.load(LoadOp::Lhu, A3, T0, 4);
            a.ebreak();
        });
        assert_eq!(cpu.reg(A0) as i32, -2);
        assert_eq!(cpu.reg(A1), 0xfe);
        assert_eq!(cpu.reg(A2) as i32, -2);
        assert_eq!(cpu.reg(A3), 0xfffe);
    }

    #[test]
    fn loop_sums_first_n_integers() {
        let (cpu, _, _) = run_asm(|a| {
            a.li(A0, 0); // sum
            a.li(A1, 1); // i
            a.li(A2, 101); // bound
            let top = a.bind_label();
            a.add(A0, A0, A1);
            a.addi(A1, A1, 1);
            a.blt(A1, A2, top);
            a.ebreak();
        });
        assert_eq!(cpu.reg(A0), 5050);
    }

    #[test]
    fn taken_branches_cost_more() {
        // same instruction count; one with taken branch, one without
        let (_, _, taken) = run_asm(|a| {
            let skip = a.label();
            a.li(A0, 0);
            a.beq(A0, ZERO, skip); // taken
            a.nop();
            a.bind(skip);
            a.ebreak();
        });
        let (_, _, not_taken) = run_asm(|a| {
            let skip = a.label();
            a.li(A0, 1);
            a.beq(A0, ZERO, skip); // not taken
            a.nop();
            a.bind(skip);
            a.ebreak();
        });
        // taken: li(1) + branch(3) + ebreak vs not: li + branch(1) + nop + ebreak
        assert_eq!(taken.cycles, 1 + 3 + 1);
        assert_eq!(not_taken.cycles, 1 + 1 + 1 + 1);
    }

    #[test]
    fn function_call_and_return() {
        let (cpu, _, _) = run_asm(|a| {
            let f = a.label();
            let done = a.label();
            a.li(A0, 5);
            a.call(f);
            a.j(done);
            a.bind(f);
            a.slli(A0, A0, 1); // double
            a.ret();
            a.bind(done);
            a.ebreak();
        });
        assert_eq!(cpu.reg(A0), 10);
    }

    #[test]
    fn hardware_loop_executes_exact_count() {
        let (cpu, _, r) = run_asm(|a| {
            a.li(A0, 0);
            a.cv_setupi(false, 10, 1);
            a.addi(A0, A0, 1); // body: 1 instruction, 10 times
            a.ebreak();
        });
        assert_eq!(cpu.reg(A0), 10);
        // li + setup + 10 bodies + ebreak = 13 retired instructions
        assert_eq!(r.instret, 13);
        // and zero branch overhead: 13 single-cycle ops
        assert_eq!(r.cycles, 13);
    }

    #[test]
    fn nested_hardware_loops() {
        let (cpu, _, _) = run_asm(|a| {
            a.li(A0, 0);
            a.li(T0, 4);
            a.cv_setup(true, T0, 3); // outer: 3-instr body, 4 times
            a.cv_setupi(false, 5, 1); // inner: 1-instr body, 5 times
            a.addi(A0, A0, 1);
            a.nop(); // pad so outer body = setup_inner + body + nop
            a.ebreak();
        });
        assert_eq!(cpu.reg(A0), 20);
    }

    #[test]
    fn post_increment_load_walks_array() {
        let (cpu, _, _) = run_asm(|a| {
            // store 3 words, then walk them with cv.lw post-inc
            a.li(T0, 0x2000);
            a.li(T1, 7);
            a.sw(T1, T0, 0);
            a.li(T1, 11);
            a.sw(T1, T0, 4);
            a.li(T1, 13);
            a.sw(T1, T0, 8);
            a.li(A0, 0);
            a.cv_setupi(false, 3, 2);
            a.cv_lw_post(A1, T0, 4);
            a.add(A0, A0, A1);
            a.ebreak();
        });
        assert_eq!(cpu.reg(A0), 31);
        assert_eq!(cpu.reg(T0), 0x2000 + 12);
    }

    #[test]
    fn simd_dot_product_through_iss() {
        let (cpu, _, _) = run_asm(|a| {
            a.li(A1, i32::from_le_bytes([1, 2, 3, 4]));
            a.li(A2, i32::from_le_bytes([5, 6, 7, 8]));
            a.li(A0, 100);
            a.pv(PvOp::Sdotsp, SimdWidth::B, A0, A1, A2);
            a.ebreak();
        });
        assert_eq!(cpu.reg(A0), 170);
    }

    #[test]
    fn misaligned_access_costs_extra() {
        let (_, _, aligned) = run_asm(|a| {
            a.li(T0, 0x1000);
            a.lw(A0, T0, 0);
            a.ebreak();
        });
        let (_, _, misaligned) = run_asm(|a| {
            a.li(T0, 0x1000);
            a.lw(A0, T0, 1);
            a.ebreak();
        });
        assert_eq!(misaligned.cycles, aligned.cycles + 1);
    }

    #[test]
    fn x0_stays_zero() {
        let (cpu, _, _) = run_asm(|a| {
            a.addi(ZERO, ZERO, 5);
            a.ebreak();
        });
        assert_eq!(cpu.reg(ZERO), 0);
    }

    #[test]
    fn rejected_offload_reports_error() {
        let mut a = Asm::new();
        a.raw(arcane_isa::xmnmc::xmr_instr(
            arcane_sim::Sew::Word,
            A0,
            A1,
            A2,
        ));
        let words = a.assemble(0).unwrap();
        let mut bus = SramBus::new(4096);
        bus.load_program(0, &words);
        let mut cpu = Cpu::new(0);
        let err = cpu.run(&mut bus, &mut NoCoprocessor, 10).unwrap_err();
        assert!(matches!(err, CpuError::RejectedOffload { pc: 0, .. }));
    }

    #[test]
    fn out_of_fuel_is_reported() {
        let (_, _, r) = run_asm(|a| {
            let top = a.bind_label();
            a.j(top);
        });
        assert_eq!(r.stop, StopReason::OutOfFuel);
    }
}
