//! CV-X-IF-style coprocessor offloading interface.
//!
//! When the core decodes a custom-2 instruction it does not raise an
//! illegal-instruction exception; instead it *offers* the instruction to
//! the attached coprocessor together with the three source-register
//! values, exactly like the OpenHW CORE-V-X-IF used by the paper. The
//! ARCANE bridge accepts `xmnmc` instructions and the host continues in
//! an out-of-order fashion (paper §III-B).

/// Outcome of offering an instruction to the coprocessor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum XifResponse {
    /// The coprocessor accepted and commits the instruction.
    Accept {
        /// Value to write to `rd`, if the instruction produces one.
        writeback: Option<u32>,
        /// Cycles the *host* is stalled by the offload handshake
        /// (decode result wait, kernel-queue back-pressure).
        cycles: u64,
    },
    /// The coprocessor rejected the instruction (host raises an
    /// illegal-instruction fault — the "kill" path).
    Reject,
}

/// A CV-X-IF coprocessor attached to the core.
pub trait Coprocessor {
    /// Offers the raw instruction word plus the values of `rs1`, `rs2`
    /// and `rs3` at absolute cycle `now`.
    fn offload(&mut self, raw: u32, rs1: u32, rs2: u32, rs3: u32, now: u64) -> XifResponse;
}

/// A coprocessor slot with nothing attached: every offload is rejected.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoCoprocessor;

impl Coprocessor for NoCoprocessor {
    fn offload(&mut self, _raw: u32, _rs1: u32, _rs2: u32, _rs3: u32, _now: u64) -> XifResponse {
        XifResponse::Reject
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_coprocessor_rejects() {
        assert_eq!(NoCoprocessor.offload(0x5b, 1, 2, 3, 0), XifResponse::Reject);
    }
}
