//! Packed-SIMD arithmetic helpers for the XCVPULP datapath.

use arcane_isa::xcvpulp::{PvOp, SimdWidth};

/// Executes a packed-SIMD operation on 32-bit register values.
///
/// `rd_old` is the previous destination value (consumed by the
/// accumulating dot products).
pub fn pv_exec(op: PvOp, w: SimdWidth, rd_old: u32, rs1: u32, rs2: u32) -> u32 {
    match w {
        SimdWidth::B => pv_exec_b(op, rd_old, rs1, rs2),
        SimdWidth::H => pv_exec_h(op, rd_old, rs1, rs2),
    }
}

fn lanes_b(v: u32) -> [i8; 4] {
    v.to_le_bytes().map(|b| b as i8)
}

fn lanes_h(v: u32) -> [i16; 2] {
    [(v & 0xffff) as u16 as i16, (v >> 16) as u16 as i16]
}

fn pv_exec_b(op: PvOp, rd_old: u32, rs1: u32, rs2: u32) -> u32 {
    let a = lanes_b(rs1);
    let b = lanes_b(rs2);
    match op {
        PvOp::Add => pack_b(core::array::from_fn(|i| a[i].wrapping_add(b[i]))),
        PvOp::Sub => pack_b(core::array::from_fn(|i| a[i].wrapping_sub(b[i]))),
        PvOp::Max => pack_b(core::array::from_fn(|i| a[i].max(b[i]))),
        PvOp::Min => pack_b(core::array::from_fn(|i| a[i].min(b[i]))),
        PvOp::Dotsp => dot_b(a, b, 0),
        PvOp::Sdotsp => dot_b(a, b, rd_old),
        PvOp::Dotup => {
            let mut acc: u32 = 0;
            for i in 0..4 {
                acc = acc.wrapping_add((a[i] as u8 as u32).wrapping_mul(b[i] as u8 as u32));
            }
            acc
        }
    }
}

fn dot_b(a: [i8; 4], b: [i8; 4], acc0: u32) -> u32 {
    let mut acc = acc0 as i32;
    for i in 0..4 {
        acc = acc.wrapping_add((a[i] as i32).wrapping_mul(b[i] as i32));
    }
    acc as u32
}

fn pack_b(v: [i8; 4]) -> u32 {
    u32::from_le_bytes(v.map(|x| x as u8))
}

fn pv_exec_h(op: PvOp, rd_old: u32, rs1: u32, rs2: u32) -> u32 {
    let a = lanes_h(rs1);
    let b = lanes_h(rs2);
    match op {
        PvOp::Add => pack_h([a[0].wrapping_add(b[0]), a[1].wrapping_add(b[1])]),
        PvOp::Sub => pack_h([a[0].wrapping_sub(b[0]), a[1].wrapping_sub(b[1])]),
        PvOp::Max => pack_h([a[0].max(b[0]), a[1].max(b[1])]),
        PvOp::Min => pack_h([a[0].min(b[0]), a[1].min(b[1])]),
        PvOp::Dotsp => dot_h(a, b, 0),
        PvOp::Sdotsp => dot_h(a, b, rd_old),
        PvOp::Dotup => {
            let mut acc: u32 = 0;
            for i in 0..2 {
                acc = acc.wrapping_add((a[i] as u16 as u32).wrapping_mul(b[i] as u16 as u32));
            }
            acc
        }
    }
}

fn dot_h(a: [i16; 2], b: [i16; 2], acc0: u32) -> u32 {
    let mut acc = acc0 as i32;
    for i in 0..2 {
        acc = acc.wrapping_add((a[i] as i32).wrapping_mul(b[i] as i32));
    }
    acc as u32
}

fn pack_h(v: [i16; 2]) -> u32 {
    (v[0] as u16 as u32) | ((v[1] as u16 as u32) << 16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_add_wraps() {
        let r = pv_exec(PvOp::Add, SimdWidth::B, 0, 0x7f7f_7f7f, 0x0101_0101);
        assert_eq!(r, 0x8080_8080);
    }

    #[test]
    fn byte_dot_product() {
        // (1,2,3,4) . (5,6,7,8) = 5+12+21+32 = 70
        let a = u32::from_le_bytes([1, 2, 3, 4]);
        let b = u32::from_le_bytes([5, 6, 7, 8]);
        assert_eq!(pv_exec(PvOp::Dotsp, SimdWidth::B, 999, a, b), 70);
        assert_eq!(pv_exec(PvOp::Sdotsp, SimdWidth::B, 30, a, b), 100);
    }

    #[test]
    fn byte_dot_signed() {
        let a = u32::from_le_bytes([(-1i8) as u8, 2, (-3i8) as u8, 4]);
        let b = u32::from_le_bytes([5, (-6i8) as u8, 7, 8]);
        // -5 -12 -21 +32 = -6
        assert_eq!(pv_exec(PvOp::Dotsp, SimdWidth::B, 0, a, b) as i32, -6);
    }

    #[test]
    fn half_ops() {
        let a = pack_h([100, -200]);
        let b = pack_h([-50, 300]);
        assert_eq!(
            pv_exec(PvOp::Max, SimdWidth::H, 0, a, b),
            pack_h([100, 300])
        );
        // 100*-50 + -200*300 = -5000 - 60000 = -65000
        assert_eq!(pv_exec(PvOp::Dotsp, SimdWidth::H, 0, a, b) as i32, -65_000);
    }

    #[test]
    fn dotup_is_unsigned() {
        let a = u32::from_le_bytes([255, 0, 0, 0]);
        let b = u32::from_le_bytes([255, 0, 0, 0]);
        assert_eq!(pv_exec(PvOp::Dotup, SimdWidth::B, 0, a, b), 255 * 255);
    }
}
