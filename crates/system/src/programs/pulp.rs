//! The XCVPULP packed-SIMD conv-layer baseline (CV32E40PX).
//!
//! The inner product over the filter row runs on `pv.sdotsp` (4 int8 or
//! 2 int16 MACs per cycle) with post-increment word loads and a
//! hardware loop over the filter rows; the int32 variant uses scalar
//! `cv.mac`. The filter is pre-padded row-wise to the dot-product chunk
//! so partial chunks multiply against zeros (standard PULP practice).

use super::scalar::{emit_pool_pass, shift_of, store_op};
use crate::layout::{ConvLayerParams, Layout};
use arcane_isa::asm::Asm;
use arcane_isa::reg::*;
use arcane_isa::xcvpulp::{PvOp, SimdWidth};
use arcane_sim::Sew;

/// Emits the fused layer using the XCVPULP extensions.
pub fn conv_layer(p: &ConvLayerParams, l: &Layout) -> Asm {
    let mut a = Asm::new();
    let esz = p.sew.bytes() as i32;
    let sh = shift_of(p.sew);
    let st = store_op(p.sew);
    let kp = p.padded_k();
    // elements per 32-bit load and chunks per filter row
    let per_load = 4 / p.sew.bytes();
    let chunks = kp / per_load;
    // body: (load, load, mac) per chunk + row-advance addi
    let body_len = (3 * chunks + 1) as u8;
    // input cursor advance to the next row after the chunks walked Kp
    let row_adv = ((p.w as i32) - kp as i32) * esz;

    a.li(S0, l.a as i32);
    a.li(S1, l.f_padded as i32);
    a.li(S2, l.temp as i32);
    a.li(S5, p.w as i32);
    a.li(S7, p.conv_h() as i32);
    a.li(S8, p.conv_w() as i32);
    // per-channel plane bases
    let plane = (p.h * p.w) as i32 * esz;
    a.li(S9, l.a as i32);
    a.li(S10, l.a as i32 + plane);
    a.li(S11, l.a as i32 + 2 * plane);

    a.li(A0, 0); // y
    let y_loop = a.bind_label();
    a.li(A1, 0); // x
    let x_loop = a.bind_label();
    a.li(T0, 0); // acc
    a.mv(T2, S1); // filter cursor walks all 3K padded rows
    for plane_base in [S9, S10, S11] {
        // t1 = plane + (y*W + x) * esz
        a.mul(T1, A0, S5);
        a.add(T1, T1, A1);
        a.slli(T1, T1, sh);
        a.add(T1, T1, plane_base);
        // hardware loop over the K filter rows
        a.cv_setupi(false, p.k as u16, body_len);
        for _ in 0..chunks {
            a.cv_lw_post(T4, T1, 4);
            a.cv_lw_post(T5, T2, 4);
            match p.sew {
                Sew::Byte => {
                    a.pv(PvOp::Sdotsp, SimdWidth::B, T0, T4, T5);
                }
                Sew::Half => {
                    a.pv(PvOp::Sdotsp, SimdWidth::H, T0, T4, T5);
                }
                Sew::Word => {
                    a.cv_mac(T0, T4, T5);
                }
            }
        }
        a.addi(T1, T1, row_adv);
    }
    // ReLU via the scalar DSP max.
    a.cv_max(T0, T0, ZERO);
    a.cv_store_post(st, T0, S2, esz);
    a.addi(A1, A1, 1);
    a.blt(A1, S8, x_loop);
    a.addi(A0, A0, 1);
    a.blt(A0, S7, y_loop);

    emit_pool_pass(&mut a, p, l, true);
    a.ebreak();
    a
}

/// Pads the dense filter image (`3K` rows of `K` elements) into the
/// chunked layout the kernel expects: `3K` rows of [`ConvLayerParams::padded_k`]
/// elements, missing positions zero.
pub fn pad_filter_bytes(p: &ConvLayerParams, dense: &[u8]) -> Vec<u8> {
    let esz = p.sew.bytes();
    let kp = p.padded_k();
    let mut out = vec![0u8; 3 * p.k * kp * esz];
    for row in 0..3 * p.k {
        let src = row * p.k * esz;
        let dst = row * kp * esz;
        out[dst..dst + p.k * esz].copy_from_slice(&dense[src..src + p.k * esz]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_padding_zero_fills() {
        let p = ConvLayerParams::new(8, 8, 3, Sew::Byte);
        let dense: Vec<u8> = (1..=27).collect();
        let padded = pad_filter_bytes(&p, &dense);
        assert_eq!(padded.len(), 9 * 4);
        assert_eq!(&padded[0..4], &[1, 2, 3, 0]);
        assert_eq!(&padded[4..8], &[4, 5, 6, 0]);
    }

    #[test]
    fn word_filter_needs_no_padding() {
        let p = ConvLayerParams::new(8, 8, 3, Sew::Word);
        let dense: Vec<u8> = (0..27 * 4).map(|x| x as u8).collect();
        let padded = pad_filter_bytes(&p, &dense);
        assert_eq!(padded, dense);
    }
}
