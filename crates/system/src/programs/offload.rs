//! The ARCANE host program: Listing 1 of the paper as machine code.
//!
//! The host materialises the packed operand values in `a0`–`a2`, issues
//! the `xmr` reservations and the `xmk4` kernel(s) as custom-2
//! instructions over CV-X-IF, then performs a synchronising load of the
//! first result element — which the Address Table stalls until the
//! kernel writeback completes.

use crate::layout::{ConvLayerParams, Layout};
use arcane_isa::asm::Asm;
use arcane_isa::reg::{A0, A1, A2, T0, T1};
use arcane_isa::xmnmc::{self, kernel_id, MatReg};

use super::scalar::load_op;

fn emit_packed(a: &mut Asm, vals: (u32, u32, u32)) {
    a.li(A0, vals.0 as i32);
    a.li(A1, vals.1 as i32);
    a.li(A2, vals.2 as i32);
}

/// Builds the offload program. `instances > 1` splits the layer
/// row-wise into that many `xmk4` invocations with distinct destination
/// slices — the multi-instance mode of §V-C that spreads work across
/// the VPUs.
///
/// # Panics
///
/// Panics if `instances` cannot receive an even, non-zero row share.
pub fn conv_layer(p: &ConvLayerParams, l: &Layout, instances: usize) -> Asm {
    let mut a = Asm::new();
    let m = |i: u8| MatReg::new(i).expect("matrix register");
    let esz = p.sew.bytes() as u32;

    // xmr m0, A (3H x W); xmr m1, F (3K x K)
    emit_packed(
        &mut a,
        xmnmc::pack_xmr(l.a, 1, m(0), p.w as u16, (3 * p.h) as u16),
    );
    a.raw(xmnmc::xmr_instr(p.sew, A0, A1, A2));
    emit_packed(
        &mut a,
        xmnmc::pack_xmr(l.f, 1, m(1), p.k as u16, (3 * p.k) as u16),
    );
    a.raw(xmnmc::xmr_instr(p.sew, A0, A1, A2));

    let slices = split_rows(p.conv_h_even(), instances);
    let mut y0 = 0usize;
    let mut sync_addrs = Vec::new();
    for (i, rows) in slices.iter().enumerate() {
        let dest = l.r + (y0 as u32 / 2) * p.pooled_w() as u32 * esz;
        let md = m(2 + i as u8);
        emit_packed(
            &mut a,
            xmnmc::pack_xmr(dest, 1, md, p.pooled_w() as u16, (rows / 2) as u16),
        );
        a.raw(xmnmc::xmr_instr(p.sew, A0, A1, A2));
        // xmk4 md, m0, m1 with the row-slice extension in alpha/beta.
        let (alpha, beta) = if instances == 1 {
            (0, 0)
        } else {
            (y0 as i16, *rows as i16)
        };
        emit_packed(
            &mut a,
            xmnmc::pack_kernel(alpha, beta, md, m(0), m(1), m(0)),
        );
        a.raw(xmnmc::xmk_instr(
            kernel_id::CONV_LAYER_3CH,
            p.sew,
            A0,
            A1,
            A2,
        ));
        sync_addrs.push(dest);
        y0 += rows;
    }

    // Synchronise: read the first element of each destination slice.
    for addr in sync_addrs {
        a.li(T0, addr as i32);
        a.load(load_op(p.sew), T1, T0, 0);
    }
    a.ebreak();
    a
}

/// Splits `total` conv rows into `n` even-sized, even-aligned chunks.
///
/// # Panics
///
/// Panics when a chunk would be empty or odd.
pub fn split_rows(total: usize, n: usize) -> Vec<usize> {
    assert!(n >= 1, "at least one instance");
    let pairs = total / 2;
    assert!(pairs >= n, "not enough row pairs for {n} instances");
    let base = pairs / n;
    let extra = pairs % n;
    (0..n)
        .map(|i| 2 * (base + usize::from(i < extra)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_is_even_and_total() {
        let s = split_rows(250, 4);
        assert_eq!(s.iter().sum::<usize>(), 250);
        assert!(s.iter().all(|r| r % 2 == 0 && *r > 0));
    }

    #[test]
    #[should_panic(expected = "not enough row pairs")]
    fn split_rejects_too_many_instances() {
        split_rows(4, 3);
    }
}
