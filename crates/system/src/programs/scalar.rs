//! The scalar RV32IM conv-layer baseline (CV32E40X).

use crate::layout::{ConvLayerParams, Layout};
use arcane_isa::asm::Asm;
use arcane_isa::reg::*;
use arcane_isa::rv32::{LoadOp, StoreOp};
use arcane_sim::Sew;

pub(crate) fn load_op(sew: Sew) -> LoadOp {
    match sew {
        Sew::Byte => LoadOp::Lb,
        Sew::Half => LoadOp::Lh,
        Sew::Word => LoadOp::Lw,
    }
}

pub(crate) fn store_op(sew: Sew) -> StoreOp {
    match sew {
        Sew::Byte => StoreOp::Sb,
        Sew::Half => StoreOp::Sh,
        Sew::Word => StoreOp::Sw,
    }
}

pub(crate) fn shift_of(sew: Sew) -> i32 {
    match sew {
        Sew::Byte => 0,
        Sew::Half => 1,
        Sew::Word => 2,
    }
}

/// Emits the full fused layer: valid 3-channel convolution with ReLU
/// into the scratch buffer, then a 2×2/2 max-pooling pass into `R`.
///
/// Accumulation happens in 32-bit registers; results wrap to the
/// element width on store (standard C semantics on RV32).
pub fn conv_layer(p: &ConvLayerParams, l: &Layout) -> Asm {
    let mut a = Asm::new();
    let esz = p.sew.bytes() as i32;
    let sh = shift_of(p.sew);
    let ld = load_op(p.sew);
    let st = store_op(p.sew);

    // ---- pass 1: convolution + ReLU -> temp ---------------------------
    a.li(S0, l.a as i32); // A base
    a.li(S1, l.f as i32); // F base (dense)
    a.li(S2, l.temp as i32); // temp cursor
    a.li(S4, p.h as i32);
    a.li(S5, p.w as i32);
    a.li(S6, p.k as i32);
    a.li(S7, p.conv_h() as i32);
    a.li(S8, p.conv_w() as i32);

    a.li(A0, 0); // y
    let y_loop = a.bind_label();
    a.li(A1, 0); // x
    let x_loop = a.bind_label();
    a.li(T0, 0); // acc
    a.li(A2, 0); // c
    let c_loop = a.bind_label();
    a.li(A3, 0); // ky
    let ky_loop = a.bind_label();
    // aptr = A + (((c*H + y + ky) * W) + x) << sh
    a.mul(T1, A2, S4);
    a.add(T1, T1, A0);
    a.add(T1, T1, A3);
    a.mul(T1, T1, S5);
    a.add(T1, T1, A1);
    a.slli(T1, T1, sh);
    a.add(T1, T1, S0);
    // fptr = F + ((c*K + ky) * K) << sh
    a.mul(T2, A2, S6);
    a.add(T2, T2, A3);
    a.mul(T2, T2, S6);
    a.slli(T2, T2, sh);
    a.add(T2, T2, S1);
    a.mv(T3, S6); // kx counter
    let kx_loop = a.bind_label();
    a.load(ld, T4, T1, 0);
    a.load(ld, T5, T2, 0);
    a.mul(T6, T4, T5);
    a.add(T0, T0, T6);
    a.addi(T1, T1, esz);
    a.addi(T2, T2, esz);
    a.addi(T3, T3, -1);
    a.bne(T3, ZERO, kx_loop);
    a.addi(A3, A3, 1);
    a.blt(A3, S6, ky_loop);
    a.addi(A2, A2, 1);
    a.li(T4, 3);
    a.blt(A2, T4, c_loop);
    // ReLU on the 32-bit accumulator.
    let store_l = a.label();
    a.bge(T0, ZERO, store_l);
    a.li(T0, 0);
    a.bind(store_l);
    a.store(st, T0, S2, 0);
    a.addi(S2, S2, esz);
    a.addi(A1, A1, 1);
    a.blt(A1, S8, x_loop);
    a.addi(A0, A0, 1);
    a.blt(A0, S7, y_loop);

    emit_pool_pass(&mut a, p, l, false);
    a.ebreak();
    a
}

/// Emits the 2×2/2 pooling pass shared by the CPU baselines. With
/// `use_cv_max` the pass uses the XCVPULP scalar `cv.max` (CV32E40PX);
/// otherwise plain branches (CV32E40X).
pub(crate) fn emit_pool_pass(a: &mut Asm, p: &ConvLayerParams, l: &Layout, use_cv_max: bool) {
    let esz = p.sew.bytes() as i32;
    let ld = load_op(p.sew);
    let st = store_op(p.sew);
    let (ph, pw) = (p.pooled_h(), p.pooled_w());
    if ph == 0 || pw == 0 {
        return;
    }

    a.li(S2, l.temp as i32); // temp base
    a.li(S3, l.r as i32); // R cursor
    a.li(S9, (p.conv_w() as i32) * esz); // temp row pitch in bytes
    a.li(S10, ph as i32);
    a.li(S11, pw as i32);

    a.li(A0, 0); // py
    let py_loop = a.bind_label();
    // t2 = temp + (2*py)*pitch
    a.slli(T2, A0, 1);
    a.mul(T2, T2, S9);
    a.add(T2, T2, S2);
    a.li(A1, 0); // px
    let px_loop = a.bind_label();
    a.load(ld, T4, T2, 0);
    a.load(ld, T5, T2, esz);
    a.add(T6, T2, S9);
    a.load(ld, A2, T6, 0);
    a.load(ld, T6, T6, esz);
    if use_cv_max {
        a.cv_max(T4, T4, T5);
        a.cv_max(T4, T4, A2);
        a.cv_max(T4, T4, T6);
    } else {
        let l1 = a.label();
        a.bge(T4, T5, l1);
        a.mv(T4, T5);
        a.bind(l1);
        let l2 = a.label();
        a.bge(T4, A2, l2);
        a.mv(T4, A2);
        a.bind(l2);
        let l3 = a.label();
        a.bge(T4, T6, l3);
        a.mv(T4, T6);
        a.bind(l3);
    }
    a.store(st, T4, S3, 0);
    a.addi(S3, S3, esz);
    a.addi(T2, T2, 2 * esz);
    a.addi(A1, A1, 1);
    a.blt(A1, S11, px_loop);
    a.addi(A0, A0, 1);
    a.blt(A0, S10, py_loop);
}
