//! Machine-code program builders for every evaluation workload.
//!
//! All three implementations of the 3-channel convolutional layer are
//! emitted as real RV32 machine code and *executed* on the
//! instruction-set simulator — the cycle counts in Figures 3/4 come
//! from instruction-by-instruction simulation, not from formulas:
//!
//! * [`scalar::conv_layer`] — plain RV32IM (the CV32E40X baseline);
//! * [`pulp::conv_layer`] — XCVPULP packed-SIMD with hardware loops and
//!   post-increment accesses (the CV32E40PX baseline);
//! * [`offload::conv_layer`] — the ARCANE host program: `xmr`
//!   reservations + one (or several, in multi-instance mode) `xmk4`
//!   offloads + a synchronising result read, exactly Listing 1.

pub mod offload;
pub mod pulp;
pub mod scalar;
