//! Workload parameters and external-memory data layout.

use arcane_sim::Sew;

/// Base address of the cached external memory (matches
/// [`arcane_core::ArcaneConfig::with_lanes`]).
pub const EXT_BASE: u32 = 0x2000_0000;

/// Instruction-memory size (4 × 32 KiB banks, as synthesized).
pub const IMEM_SIZE: usize = 128 * 1024;

/// Parameters of the 3-channel convolutional layer benchmark
/// (the workload of Figures 3 and 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvLayerParams {
    /// Input height per channel plane.
    pub h: usize,
    /// Input width per channel plane.
    pub w: usize,
    /// Filter size (K×K per channel).
    pub k: usize,
    /// Element width.
    pub sew: Sew,
}

impl ConvLayerParams {
    /// Convenience constructor.
    pub const fn new(h: usize, w: usize, k: usize, sew: Sew) -> Self {
        ConvLayerParams { h, w, k, sew }
    }

    /// Convolution output height (valid convolution).
    pub const fn conv_h(&self) -> usize {
        self.h - self.k + 1
    }

    /// Convolution output width.
    pub const fn conv_w(&self) -> usize {
        self.w - self.k + 1
    }

    /// Even number of convolution rows the fused layer consumes.
    pub const fn conv_h_even(&self) -> usize {
        self.conv_h() & !1
    }

    /// Pooled output height.
    pub const fn pooled_h(&self) -> usize {
        self.conv_h_even() / 2
    }

    /// Pooled output width.
    pub const fn pooled_w(&self) -> usize {
        self.conv_w() / 2
    }

    /// Multiply–accumulate count of the convolution.
    pub const fn macs(&self) -> u64 {
        (self.conv_h() * self.conv_w() * 3 * self.k * self.k) as u64
    }

    /// XCVPULP padded filter row length in elements (dot-product
    /// chunking granularity: 4 for int8, 2 for int16, 1 for int32).
    pub const fn padded_k(&self) -> usize {
        match self.sew {
            Sew::Byte => self.k.div_ceil(4) * 4,
            Sew::Half => self.k.div_ceil(2) * 2,
            Sew::Word => self.k,
        }
    }
}

/// External-memory placement of every workload buffer, 1 KiB-aligned
/// with safety padding between regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layout {
    /// Input planes `A` (3 × H × W, stacked row-wise).
    pub a: u32,
    /// Filter planes `F` (3 × K × K, stacked row-wise, dense).
    pub f: u32,
    /// Padded filter copy for the XCVPULP kernel (rows padded to the
    /// dot-product chunk).
    pub f_padded: u32,
    /// Scratch buffer for the CPU baselines' convolution output
    /// (pre-pooling).
    pub temp: u32,
    /// Final pooled output `R`.
    pub r: u32,
    /// One past the last used byte.
    pub end: u32,
}

fn align_1k(x: u32) -> u32 {
    (x + 1023) & !1023
}

impl Layout {
    /// Computes the layout for a conv-layer workload.
    pub fn for_conv(p: &ConvLayerParams) -> Layout {
        let esz = p.sew.bytes() as u32;
        let a = EXT_BASE;
        let a_size = (3 * p.h * p.w) as u32 * esz + 64;
        let f = align_1k(a + a_size);
        let f_size = (3 * p.k * p.k) as u32 * esz + 64;
        let f_padded = align_1k(f + f_size);
        let fp_size = (3 * p.k * p.padded_k()) as u32 * esz + 64;
        let temp = align_1k(f_padded + fp_size);
        let temp_size = (p.conv_h() * p.conv_w()) as u32 * esz + 64;
        let r = align_1k(temp + temp_size);
        let r_size = (p.pooled_h().max(1) * p.pooled_w().max(1)) as u32 * esz + 64;
        Layout {
            a,
            f,
            f_padded,
            temp,
            r,
            end: align_1k(r + r_size),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_dims() {
        let p = ConvLayerParams::new(8, 8, 3, Sew::Word);
        assert_eq!(p.conv_h(), 6);
        assert_eq!(p.conv_w(), 6);
        assert_eq!(p.pooled_h(), 3);
        assert_eq!(p.pooled_w(), 3);
        assert_eq!(p.macs(), 6 * 6 * 27);
    }

    #[test]
    fn odd_conv_rows_floor() {
        let p = ConvLayerParams::new(8, 8, 4, Sew::Word);
        assert_eq!(p.conv_h(), 5);
        assert_eq!(p.conv_h_even(), 4);
        assert_eq!(p.pooled_h(), 2);
    }

    #[test]
    fn padded_k_by_width() {
        assert_eq!(ConvLayerParams::new(8, 8, 3, Sew::Byte).padded_k(), 4);
        assert_eq!(ConvLayerParams::new(8, 8, 7, Sew::Byte).padded_k(), 8);
        assert_eq!(ConvLayerParams::new(8, 8, 3, Sew::Half).padded_k(), 4);
        assert_eq!(ConvLayerParams::new(8, 8, 7, Sew::Word).padded_k(), 7);
    }

    #[test]
    fn layout_regions_do_not_overlap() {
        let p = ConvLayerParams::new(256, 256, 7, Sew::Word);
        let l = Layout::for_conv(&p);
        assert!(l.a < l.f && l.f < l.f_padded && l.f_padded < l.temp);
        assert!(l.temp < l.r && l.r < l.end);
        // big workload still fits the 16 MiB external memory
        assert!(((l.end - EXT_BASE) as usize) < 16 << 20);
    }
}
