//! System-on-chip assemblies: host core + instruction memory + LLC.

use crate::layout::{EXT_BASE, IMEM_SIZE};
use arcane_core::{ArcaneConfig, ArcaneLlc, StandardLlc};
use arcane_isa::asm::Asm;
use arcane_mem::{Access, AccessSize, Bus, BusError, Memory, Sram};
use arcane_rv32::{Coprocessor, Cpu, CpuError, NoCoprocessor, RunResult, XifResponse};
use arcane_sim::EngineMode;
use std::cell::RefCell;

/// The paper's system: CV32E40X host + ARCANE smart LLC (Figure 1).
///
/// The LLC is both a [`Bus`] target (data accesses to the cached
/// external region) and the CV-X-IF [`Coprocessor`] (offloaded `xmnmc`
/// instructions); a `RefCell` lets the two CPU-facing ports share it,
/// just like the two slave ports of the real subsystem.
#[derive(Debug)]
pub struct ArcaneSoc {
    /// The host core.
    pub cpu: Cpu,
    shared: Shared,
}

#[derive(Debug)]
struct Shared {
    imem: RefCell<Sram>,
    llc: RefCell<ArcaneLlc>,
}

struct BusPort<'a>(&'a Shared);
struct XifPort<'a>(&'a Shared);

impl Bus for BusPort<'_> {
    #[inline]
    fn read(&mut self, addr: u32, size: AccessSize, now: u64) -> Result<Access, BusError> {
        if (addr as usize) < IMEM_SIZE {
            let mut b = [0u8; 4];
            let n = size.bytes() as usize;
            self.0.imem.borrow().read_bytes(addr, &mut b[..n])?;
            return Ok(Access::new(u32::from_le_bytes(b), 1));
        }
        self.0
            .llc
            .borrow_mut()
            .host_access(addr, false, 0, size, now)
    }

    #[inline]
    fn write(
        &mut self,
        addr: u32,
        value: u32,
        size: AccessSize,
        now: u64,
    ) -> Result<Access, BusError> {
        if (addr as usize) < IMEM_SIZE {
            let n = size.bytes() as usize;
            self.0
                .imem
                .borrow_mut()
                .write_bytes(addr, &value.to_le_bytes()[..n])?;
            return Ok(Access::new(0, 1));
        }
        self.0
            .llc
            .borrow_mut()
            .host_access(addr, true, value, size, now)
    }

    #[inline]
    fn fetch(&mut self, addr: u32, _now: u64) -> Result<Access, BusError> {
        Ok(Access::new(self.0.imem.borrow().read_u32(addr)?, 1))
    }
}

impl Coprocessor for XifPort<'_> {
    fn offload(&mut self, raw: u32, rs1: u32, rs2: u32, rs3: u32, now: u64) -> XifResponse {
        self.0.llc.borrow_mut().offload(raw, rs1, rs2, rs3, now)
    }
}

impl ArcaneSoc {
    /// Builds the system from an ARCANE configuration.
    pub fn new(cfg: ArcaneConfig) -> Self {
        assert_eq!(cfg.ext_base, EXT_BASE, "layout expects the default map");
        ArcaneSoc {
            cpu: Cpu::new(0),
            shared: Shared {
                imem: RefCell::new(Sram::new(0, IMEM_SIZE)),
                llc: RefCell::new(ArcaneLlc::new(cfg)),
            },
        }
    }

    /// Loads an assembled program at address 0 and resets the host.
    ///
    /// # Panics
    ///
    /// Panics if assembly fails (label errors) or the image does not
    /// fit the instruction memory.
    pub fn load_program(&mut self, asm: &Asm) {
        let words = asm.assemble(0).expect("program assembles");
        self.shared.imem.borrow_mut().load_words(0, &words);
        self.cpu.reset(0);
    }

    /// Mutable access to the LLC (workload seeding, kernel registry).
    pub fn llc_mut(&mut self) -> std::cell::RefMut<'_, ArcaneLlc> {
        self.shared.llc.borrow_mut()
    }

    /// Shared access to the LLC (result checking, statistics).
    pub fn llc(&self) -> std::cell::Ref<'_, ArcaneLlc> {
        self.shared.llc.borrow()
    }

    /// Runs the host program to completion on the engine selected by
    /// the environment (predecoded block stepping unless
    /// `ARCANE_INTERP=1`).
    ///
    /// # Errors
    ///
    /// Propagates [`CpuError`] (bus faults, rejected offloads, …).
    pub fn run(&mut self, max_instrs: u64) -> Result<RunResult, CpuError> {
        self.run_with_engine(max_instrs, EngineMode::current())
    }

    /// [`ArcaneSoc::run`] with an explicit engine choice (differential
    /// testing of the two host-core engines in one process).
    ///
    /// # Errors
    ///
    /// Propagates [`CpuError`] (bus faults, rejected offloads, …).
    pub fn run_with_engine(
        &mut self,
        max_instrs: u64,
        engine: EngineMode,
    ) -> Result<RunResult, CpuError> {
        let mut bus = BusPort(&self.shared);
        let mut xif = XifPort(&self.shared);
        self.cpu
            .run_with_engine(&mut bus, &mut xif, max_instrs, engine)
    }
}

/// A baseline X-HEEP: host core + conventional data LLC, no coprocessor.
///
/// Runs both the RV32IM scalar baseline and the XCVPULP baseline (the
/// ISS executes the packed-SIMD extension when the program uses it —
/// that is the only difference between CV32E40X and CV32E40PX here).
#[derive(Debug)]
pub struct BaselineSoc {
    /// The host core.
    pub cpu: Cpu,
    imem: Sram,
    llc: StandardLlc,
}

struct BaselineBus<'a> {
    imem: &'a mut Sram,
    llc: &'a mut StandardLlc,
}

impl Bus for BaselineBus<'_> {
    #[inline]
    fn read(&mut self, addr: u32, size: AccessSize, now: u64) -> Result<Access, BusError> {
        if (addr as usize) < IMEM_SIZE {
            let mut b = [0u8; 4];
            let n = size.bytes() as usize;
            self.imem.read_bytes(addr, &mut b[..n])?;
            return Ok(Access::new(u32::from_le_bytes(b), 1));
        }
        self.llc.host_access(addr, false, 0, size, now)
    }

    #[inline]
    fn write(
        &mut self,
        addr: u32,
        value: u32,
        size: AccessSize,
        now: u64,
    ) -> Result<Access, BusError> {
        if (addr as usize) < IMEM_SIZE {
            let n = size.bytes() as usize;
            self.imem.write_bytes(addr, &value.to_le_bytes()[..n])?;
            return Ok(Access::new(0, 1));
        }
        self.llc.host_access(addr, true, value, size, now)
    }

    #[inline]
    fn fetch(&mut self, addr: u32, _now: u64) -> Result<Access, BusError> {
        Ok(Access::new(self.imem.read_u32(addr)?, 1))
    }
}

impl BaselineSoc {
    /// Builds the baseline system with the same cache geometry and
    /// external memory as the given ARCANE configuration.
    pub fn new(cfg: &ArcaneConfig) -> Self {
        BaselineSoc {
            cpu: Cpu::new(0),
            imem: Sram::new(0, IMEM_SIZE),
            llc: StandardLlc::new(cfg),
        }
    }

    /// Loads an assembled program at address 0 and resets the host.
    ///
    /// # Panics
    ///
    /// Panics if assembly fails or the image does not fit.
    pub fn load_program(&mut self, asm: &Asm) {
        let words = asm.assemble(0).expect("program assembles");
        self.imem.load_words(0, &words);
        self.cpu.reset(0);
    }

    /// Mutable access to the cache (workload seeding via `ext_mut`).
    pub fn llc_mut(&mut self) -> &mut StandardLlc {
        &mut self.llc
    }

    /// Shared access to the cache.
    pub fn llc(&self) -> &StandardLlc {
        &self.llc
    }

    /// Runs the program to completion on the engine selected by the
    /// environment (predecoded block stepping unless `ARCANE_INTERP=1`).
    ///
    /// # Errors
    ///
    /// Propagates [`CpuError`].
    pub fn run(&mut self, max_instrs: u64) -> Result<RunResult, CpuError> {
        self.run_with_engine(max_instrs, EngineMode::current())
    }

    /// [`BaselineSoc::run`] with an explicit engine choice
    /// (differential testing of the two host-core engines in one
    /// process).
    ///
    /// # Errors
    ///
    /// Propagates [`CpuError`].
    pub fn run_with_engine(
        &mut self,
        max_instrs: u64,
        engine: EngineMode,
    ) -> Result<RunResult, CpuError> {
        let mut bus = BaselineBus {
            imem: &mut self.imem,
            llc: &mut self.llc,
        };
        self.cpu
            .run_with_engine(&mut bus, &mut NoCoprocessor, max_instrs, engine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arcane_isa::reg::{A0, T0};

    #[test]
    fn baseline_executes_through_cache() {
        let cfg = ArcaneConfig::with_lanes(4);
        let mut soc = BaselineSoc::new(&cfg);
        soc.llc_mut().ext_mut().write_u32(EXT_BASE + 8, 77).unwrap();
        let mut a = Asm::new();
        a.li(T0, EXT_BASE as i32);
        a.lw(A0, T0, 8);
        a.ebreak();
        soc.load_program(&a);
        soc.run(100).unwrap();
        assert_eq!(soc.cpu.reg(A0), 77);
        assert_eq!(soc.llc().stats().misses.get(), 1);
    }

    #[test]
    fn arcane_soc_routes_data_and_offloads() {
        let mut soc = ArcaneSoc::new(ArcaneConfig::with_lanes(2));
        soc.llc_mut().ext_mut().write_u32(EXT_BASE, 5).unwrap();
        let mut a = Asm::new();
        a.li(T0, EXT_BASE as i32);
        a.lw(A0, T0, 0);
        a.sw(A0, T0, 4);
        a.ebreak();
        soc.load_program(&a);
        soc.run(100).unwrap();
        assert_eq!(soc.cpu.reg(A0), 5);
    }
}
