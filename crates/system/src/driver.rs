//! Experiment driver: seeds workloads, runs each system end-to-end and
//! verifies every result against the golden models before reporting.
//!
//! Every run executes on the predecoded block-stepping engine by
//! default ([`arcane_sim::EngineMode`]); set `ARCANE_INTERP=1` to force
//! the reference interpreter for differential runs. Cycle counts and
//! results are identical either way — only wall-clock changes.

use crate::layout::{ConvLayerParams, Layout};
use crate::programs::{offload, pulp, scalar};
use crate::report::RunReport;
use crate::soc::{ArcaneSoc, BaselineSoc};
use arcane_core::ArcaneConfig;
use arcane_mem::Memory;
use arcane_sim::PhaseBreakdown;
use arcane_workloads::{conv_layer_3ch, conv_layer_3ch_cpu, random_matrix, rng, Matrix};

/// Simulation fuel: enough for the largest scalar workload.
const FUEL: u64 = 4_000_000_000;

/// Value range of the generated operands (small values keep the int8
/// baselines numerically interesting without everything saturating).
const RANGE: i64 = 4;

fn seed_of(p: &ConvLayerParams) -> u64 {
    (p.h as u64) << 40 | (p.w as u64) << 20 | (p.k as u64) << 4 | p.sew.bytes() as u64
}

/// Generates the input planes and filter for a workload (deterministic
/// in the parameters).
pub fn conv_workload(p: &ConvLayerParams) -> (Matrix, Matrix) {
    let mut r = rng(seed_of(p));
    let a = random_matrix(&mut r, 3 * p.h, p.w, p.sew, RANGE);
    let f = random_matrix(&mut r, 3 * p.k, p.k, p.sew, RANGE);
    (a, f)
}

/// Single-entry memo of the workload and golden results for the most
/// recent parameter set. A sweep point runs the same `p` through five
/// systems back to back; regenerating operands and re-deriving both
/// golden models each time was a measurable slice of sweep wall clock.
/// Purely a wall-clock cache: the values are deterministic in `p`.
struct WorkloadMemo {
    p: ConvLayerParams,
    a: Matrix,
    f: Matrix,
    golden_cpu: Option<Matrix>,
    golden_vpu: Option<Matrix>,
}

thread_local! {
    static MEMO: std::cell::RefCell<Option<WorkloadMemo>> = const { std::cell::RefCell::new(None) };
}

/// Runs `with` on the memoised workload for `p`, refreshing the memo on
/// a parameter change.
fn with_workload<T>(p: &ConvLayerParams, with: impl FnOnce(&mut WorkloadMemo) -> T) -> T {
    MEMO.with(|m| {
        let mut m = m.borrow_mut();
        match &mut *m {
            Some(memo) if memo.p == *p => {}
            _ => {
                let (a, f) = conv_workload(p);
                *m = Some(WorkloadMemo {
                    p: *p,
                    a,
                    f,
                    golden_cpu: None,
                    golden_vpu: None,
                });
            }
        }
        with(m.as_mut().expect("memo populated above"))
    })
}

fn read_result(bytes: &[u8], p: &ConvLayerParams) -> Matrix {
    Matrix::from_bytes(p.pooled_h(), p.pooled_w(), p.sew, bytes)
}

/// Runs the scalar RV32IM baseline (CV32E40X) and verifies the result.
///
/// # Panics
///
/// Panics if the simulated result differs from the golden model or the
/// program faults.
pub fn run_scalar_conv(p: &ConvLayerParams) -> RunReport {
    run_cpu_baseline(p, false)
}

/// Runs the XCVPULP baseline (CV32E40PX) and verifies the result.
///
/// # Panics
///
/// Panics if the simulated result differs from the golden model or the
/// program faults.
pub fn run_xcvpulp_conv(p: &ConvLayerParams) -> RunReport {
    run_cpu_baseline(p, true)
}

fn run_cpu_baseline(p: &ConvLayerParams, use_pulp: bool) -> RunReport {
    let l = Layout::for_conv(p);
    let cfg = ArcaneConfig::with_lanes(4); // cache geometry only
    let mut soc = BaselineSoc::new(&cfg);
    let (a_bytes, f_bytes) = with_workload(p, |m| (m.a.to_bytes(p.sew), m.f.to_bytes(p.sew)));
    soc.llc_mut().ext_mut().write_bytes(l.a, &a_bytes).unwrap();
    soc.llc_mut().ext_mut().write_bytes(l.f, &f_bytes).unwrap();
    let program = if use_pulp {
        let padded = pulp::pad_filter_bytes(p, &f_bytes);
        soc.llc_mut()
            .ext_mut()
            .write_bytes(l.f_padded, &padded)
            .unwrap();
        pulp::conv_layer(p, &l)
    } else {
        scalar::conv_layer(p, &l)
    };
    soc.load_program(&program);
    let run = soc.run(FUEL).expect("baseline program runs to completion");
    assert_eq!(
        run.stop,
        arcane_rv32::StopReason::Break,
        "baseline must finish (fuel?)"
    );

    // Verify against the CPU-semantics golden model.
    soc.llc_mut().flush_all();
    let mut out = vec![0u8; p.pooled_h() * p.pooled_w() * p.sew.bytes()];
    soc.llc().ext().read_bytes(l.r, &mut out).unwrap();
    let got = read_result(&out, p);
    with_workload(p, |m| {
        let want = m
            .golden_cpu
            .get_or_insert_with(|| conv_layer_3ch_cpu(&m.a, &m.f, p.sew));
        assert_eq!(
            &got,
            want,
            "{} baseline result mismatch for {p:?}",
            if use_pulp { "XCVPULP" } else { "scalar" }
        );
    });

    RunReport {
        label: if use_pulp {
            "CV32E40PX (XCVPULP)".into()
        } else {
            "CV32E40X (RV32IM)".into()
        },
        cycles: run.cycles,
        instret: run.instret,
        phases: None,
        hits: soc.llc().stats().hits.get(),
        misses: soc.llc().stats().misses.get(),
        stall_cycles: 0,
        macs: p.macs(),
        channels: Vec::new(),
    }
}

/// Runs the ARCANE system with `lanes`-lane VPUs and verifies the
/// result. `instances` > 1 splits the layer across that many `xmk4`
/// invocations (multi-instance mode, §V-C).
///
/// # Panics
///
/// Panics if the simulated result differs from the golden model or the
/// host program faults (e.g. a rejected offload).
pub fn run_arcane_conv(lanes: usize, p: &ConvLayerParams, instances: usize) -> RunReport {
    run_arcane_conv_with(ArcaneConfig::with_lanes(lanes), p, instances)
}

/// [`run_arcane_conv`] with an explicit configuration — the entry point
/// the ablation studies use (queue depth, DMA bandwidth, VPU count).
///
/// # Panics
///
/// Panics if the simulated result differs from the golden model or the
/// host program faults.
pub fn run_arcane_conv_with(cfg: ArcaneConfig, p: &ConvLayerParams, instances: usize) -> RunReport {
    let lanes = cfg.vpu.lanes;
    let l = Layout::for_conv(p);
    let mut soc = ArcaneSoc::new(cfg);
    let (a_bytes, f_bytes) = with_workload(p, |m| (m.a.to_bytes(p.sew), m.f.to_bytes(p.sew)));
    soc.llc_mut().ext_mut().write_bytes(l.a, &a_bytes).unwrap();
    soc.llc_mut().ext_mut().write_bytes(l.f, &f_bytes).unwrap();
    soc.load_program(&offload::conv_layer(p, &l, instances));
    let run = match soc.run(FUEL) {
        Ok(run) => run,
        Err(e) => panic!(
            "ARCANE host faulted: {e} (kernel error: {:?})",
            soc.llc().last_error()
        ),
    };
    assert_eq!(run.stop, arcane_rv32::StopReason::Break);

    let mut out = vec![0u8; p.pooled_h() * p.pooled_w() * p.sew.bytes()];
    soc.llc().ext().read_bytes(l.r, &mut out).unwrap();
    let got = read_result(&out, p);
    with_workload(p, |m| {
        let want = m
            .golden_vpu
            .get_or_insert_with(|| conv_layer_3ch(&m.a, &m.f, p.sew));
        assert_eq!(
            &got, want,
            "ARCANE result mismatch for {p:?} ({lanes} lanes)"
        );
    });

    let llc = soc.llc();
    let phases = llc
        .records()
        .iter()
        .fold(PhaseBreakdown::default(), |acc, r| acc + r.phases);
    let total = run.cycles.max(llc.completion_time());
    let (hits, misses, stall_cycles) = (
        llc.stats().hits.get(),
        llc.stats().misses.get(),
        llc.stats().stall_cycles.get(),
    );
    let channels = llc.channel_utilisation();
    drop(llc);
    RunReport {
        label: if instances == 1 {
            format!("ARCANE {lanes}-lane")
        } else {
            format!("ARCANE {lanes}-lane x{instances}")
        },
        cycles: total,
        instret: run.instret,
        phases: Some(phases),
        hits,
        misses,
        stall_cycles,
        macs: p.macs(),
        channels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arcane_sim::Sew;

    #[test]
    fn scalar_baseline_small() {
        let p = ConvLayerParams::new(10, 10, 3, Sew::Word);
        let r = run_scalar_conv(&p);
        assert!(r.cycles > 0);
        assert_eq!(r.macs, 8 * 8 * 27);
    }

    #[test]
    fn pulp_baseline_small_all_widths() {
        for sew in Sew::ALL {
            let p = ConvLayerParams::new(10, 10, 3, sew);
            let r = run_xcvpulp_conv(&p);
            assert!(r.cycles > 0, "{sew}");
        }
    }

    #[test]
    fn pulp_faster_than_scalar_for_int8() {
        let p = ConvLayerParams::new(16, 16, 3, Sew::Byte);
        let s = run_scalar_conv(&p);
        let v = run_xcvpulp_conv(&p);
        assert!(
            v.cycles < s.cycles,
            "pulp {} vs scalar {}",
            v.cycles,
            s.cycles
        );
    }

    #[test]
    fn arcane_small_all_widths() {
        for sew in Sew::ALL {
            let p = ConvLayerParams::new(12, 12, 3, sew);
            let r = run_arcane_conv(4, &p, 1);
            assert!(r.phases.unwrap().total() > 0, "{sew}");
        }
    }

    #[test]
    fn arcane_multi_instance_matches_golden() {
        let p = ConvLayerParams::new(20, 20, 3, Sew::Byte);
        let r = run_arcane_conv(8, &p, 4);
        assert!(r.cycles > 0);
    }
}
