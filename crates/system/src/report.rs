//! Run reports: the measurements every figure is built from.

use arcane_sim::ChannelUtil;
use arcane_sim::PhaseBreakdown;
use arcane_sim::Sew;

/// Outcome of one end-to-end workload run (result already verified
/// against the golden model by the driver).
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Configuration label (e.g. `"ARCANE 8-lane"`, `"CV32E40X"`).
    pub label: String,
    /// Total application cycles (program start → result available).
    pub cycles: u64,
    /// Host instructions retired.
    pub instret: u64,
    /// Kernel phase breakdown, summed across kernels (ARCANE only).
    pub phases: Option<PhaseBreakdown>,
    /// Host cache hits.
    pub hits: u64,
    /// Host cache misses.
    pub misses: u64,
    /// Host cycles lost to locks/hazards/busy lines (ARCANE only).
    pub stall_cycles: u64,
    /// Multiply-accumulate operations performed by the workload.
    pub macs: u64,
    /// Per-channel utilisation: the eCPU plus one row per fabric port
    /// (ARCANE only; empty for the baselines).
    pub channels: Vec<ChannelUtil>,
}

impl RunReport {
    /// Throughput in MACs per cycle.
    pub fn macs_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.macs as f64 / self.cycles as f64
        }
    }

    /// Speedup of this run relative to `baseline`.
    pub fn speedup_over(&self, baseline: &RunReport) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            baseline.cycles as f64 / self.cycles as f64
        }
    }

    /// GOPS at `freq_mhz`, counting one MAC as two operations.
    pub fn gops(&self, freq_mhz: f64) -> f64 {
        self.macs_per_cycle() * 2.0 * freq_mhz / 1e3
    }
}

/// One row of the preamble/compute/decode split table: the
/// machine-generated form of the EXPERIMENTS.md "NN layer graphs" and
/// launch-pipeline tables. Build rows from
/// `arcane_nn::GraphRunReport::split_row` (or by hand for conv runs)
/// and render with [`format_phase_split_table`].
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSplitRow {
    /// Row label (workload / mode / VPU count).
    pub label: String,
    /// Kernels launched.
    pub kernels: usize,
    /// Total run cycles.
    pub cycles: u64,
    /// Phase breakdown summed over the kernels.
    pub phases: PhaseBreakdown,
    /// eCPU cycles spent decoding descriptor batches (zero on the
    /// legacy launch path, where all of it is per-kernel preamble).
    pub decode_cycles: u64,
}

/// Formats preamble/compute/decode split rows as an aligned table.
///
/// Columns: label, kernels, total cycles, preamble share, compute
/// share, allocation+writeback share, and the batch-decode cycles of
/// the descriptor launch pipeline.
pub fn format_phase_split_table(rows: &[PhaseSplitRow]) -> String {
    use arcane_sim::Phase;
    let mut out = String::new();
    out.push_str(&format!(
        "{:<34} {:>8} {:>13} {:>10} {:>10} {:>10} {:>11}\n",
        "workload", "kernels", "cycles", "preamble", "compute", "alloc+wb", "decode cyc"
    ));
    for r in rows {
        let ph = r.phases;
        out.push_str(&format!(
            "{:<34} {:>8} {:>13} {:>9.1}% {:>9.1}% {:>9.1}% {:>11}\n",
            r.label,
            r.kernels,
            r.cycles,
            100.0 * ph.share(Phase::Preamble),
            100.0 * ph.share(Phase::Compute),
            100.0 * (ph.share(Phase::Allocation) + ph.share(Phase::Writeback)),
            r.decode_cycles,
        ));
    }
    out
}

/// Formats per-channel utilisation as an aligned table (one line per
/// channel: busy cycles, wait cycles, requests, occupancy), ready to
/// print under a run report.
pub fn format_channel_table(channels: &[ChannelUtil]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>8} {:>12} {:>12} {:>9} {:>10}\n",
        "channel", "busy cyc", "wait cyc", "requests", "occupancy"
    ));
    for u in channels {
        out.push_str(&format!(
            "{:>8} {:>12} {:>12} {:>9} {:>9.1}%\n",
            u.label,
            u.busy_cycles,
            u.wait_cycles,
            u.requests,
            100.0 * u.occupancy()
        ));
    }
    out
}

/// One point of the Figure 4 sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvSweepPoint {
    /// Input size (square images).
    pub size: usize,
    /// Filter size.
    pub k: usize,
    /// Element width.
    pub sew: Sew,
    /// Per-configuration reports in presentation order.
    pub reports: Vec<RunReport>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rep(cycles: u64, macs: u64) -> RunReport {
        RunReport {
            label: "x".into(),
            cycles,
            instret: 0,
            phases: None,
            hits: 0,
            misses: 0,
            stall_cycles: 0,
            macs,
            channels: Vec::new(),
        }
    }

    #[test]
    fn phase_split_table_formats_shares_and_decode() {
        let mut phases = PhaseBreakdown::default();
        phases.charge(arcane_sim::Phase::Preamble, 25);
        phases.charge(arcane_sim::Phase::Compute, 50);
        phases.charge(arcane_sim::Phase::Writeback, 25);
        let rows = vec![PhaseSplitRow {
            label: "xfm / descriptor x4".into(),
            kernels: 61,
            cycles: 123_456,
            phases,
            decode_cycles: 9_000,
        }];
        let t = format_phase_split_table(&rows);
        assert!(t.contains("xfm / descriptor x4"));
        assert!(t.contains("25.0%") && t.contains("50.0%"));
        assert!(t.contains("9000"));
        assert_eq!(t.lines().count(), 2);
    }

    #[test]
    fn channel_table_formats_every_row() {
        let rows = vec![
            ChannelUtil {
                label: "ecpu".into(),
                busy_cycles: 500,
                wait_cycles: 20,
                requests: 7,
                horizon: 1000,
            },
            ChannelUtil {
                label: "vpu0".into(),
                busy_cycles: 250,
                wait_cycles: 0,
                requests: 3,
                horizon: 1000,
            },
        ];
        let t = format_channel_table(&rows);
        assert!(t.contains("ecpu") && t.contains("vpu0"));
        assert!(t.contains("50.0%") && t.contains("25.0%"));
        assert_eq!(t.lines().count(), 3, "header + one line per channel");
    }

    #[test]
    fn speedup_and_throughput() {
        let base = rep(1000, 500);
        let fast = rep(100, 500);
        assert!((fast.speedup_over(&base) - 10.0).abs() < 1e-12);
        assert!((fast.macs_per_cycle() - 5.0).abs() < 1e-12);
        // 5 MAC/cycle at 250 MHz = 2.5 GOPS
        assert!((fast.gops(250.0) - 2.5).abs() < 1e-12);
    }
}
