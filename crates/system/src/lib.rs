//! X-HEEP system assembly for the ARCANE evaluation.
//!
//! Three systems, mirroring the paper's §V-C comparison:
//!
//! * [`ArcaneSoc`] — CV32E40X host + **ARCANE smart LLC** (the paper's
//!   system, Figure 1);
//! * [`BaselineSoc`] in scalar mode — CV32E40X host + conventional LLC
//!   (the speedup denominator);
//! * [`BaselineSoc`] running XCVPULP code — CV32E40PX host
//!   (packed-SIMD + DSP + hardware loops) + conventional LLC.
//!
//! The [`driver`] module seeds workloads, assembles the corresponding
//! machine-code programs ([`programs`]), runs them end-to-end on the
//! instruction-set simulator and verifies every result against the
//! golden models before reporting cycle counts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;
mod layout;
pub mod programs;
pub mod report;
mod soc;

pub use layout::{ConvLayerParams, Layout, EXT_BASE, IMEM_SIZE};
pub use report::{
    format_channel_table, format_phase_split_table, ConvSweepPoint, PhaseSplitRow, RunReport,
};
pub use soc::{ArcaneSoc, BaselineSoc};
