//! Calibration tests: the paper-shape bands from DESIGN.md §5.
//!
//! The fast tests assert orderings and crossovers at moderate sizes so
//! they stay debug-build friendly; the full 256×256 anchors run with
//! `cargo test --release -- --ignored`.

use arcane::area::{peak_gops, AreaModel, BLADE, INTEL_CNC};
use arcane::sim::{Phase, Sew};
use arcane::system::driver::{run_arcane_conv, run_scalar_conv, run_xcvpulp_conv};
use arcane::system::ConvLayerParams;

#[test]
fn ordering_arcane_beats_pulp_beats_scalar_at_64() {
    let p = ConvLayerParams::new(64, 64, 3, Sew::Byte);
    let s = run_scalar_conv(&p);
    let v = run_xcvpulp_conv(&p);
    let a8 = run_arcane_conv(8, &p, 1);
    assert!(v.cycles < s.cycles, "XCVPULP beats scalar");
    assert!(a8.cycles < v.cycles, "ARCANE beats XCVPULP at 64x64");
    let sp = a8.speedup_over(&s);
    assert!((10.0..60.0).contains(&sp), "ARCANE-8 64x64 int8: {sp:.1}x");
}

#[test]
fn crossover_pulp_beats_arcane_at_tiny_inputs() {
    // Paper: "CV32E40PX outperforms ARCANE at smaller input sizes".
    let p = ConvLayerParams::new(16, 16, 3, Sew::Byte);
    let s = run_scalar_conv(&p);
    let v = run_xcvpulp_conv(&p);
    let a8 = run_arcane_conv(8, &p, 1);
    assert!(
        v.speedup_over(&s) > a8.speedup_over(&s),
        "XCVPULP {:.1}x vs ARCANE {:.1}x at 16x16",
        v.speedup_over(&s),
        a8.speedup_over(&s)
    );
}

#[test]
fn int8_beats_int32_on_arcane() {
    // Sub-word SIMD: the paper's whole premise for 8-bit data.
    let p8 = ConvLayerParams::new(64, 64, 3, Sew::Byte);
    let p32 = ConvLayerParams::new(64, 64, 3, Sew::Word);
    let a8 = run_arcane_conv(8, &p8, 1);
    let a32 = run_arcane_conv(8, &p32, 1);
    assert!(
        (a8.macs_per_cycle() / a32.macs_per_cycle()) > 1.5,
        "int8 {:.2} vs int32 {:.2} MAC/cycle",
        a8.macs_per_cycle(),
        a32.macs_per_cycle()
    );
}

#[test]
fn lane_scaling_is_monotonic() {
    let p = ConvLayerParams::new(64, 64, 3, Sew::Byte);
    let a2 = run_arcane_conv(2, &p, 1);
    let a4 = run_arcane_conv(4, &p, 1);
    let a8 = run_arcane_conv(8, &p, 1);
    assert!(a2.cycles > a4.cycles && a4.cycles > a8.cycles);
}

#[test]
fn preamble_dominates_small_inputs_and_vanishes_at_large() {
    let small = run_arcane_conv(8, &ConvLayerParams::new(8, 8, 3, Sew::Word), 1);
    let large = run_arcane_conv(8, &ConvLayerParams::new(64, 64, 3, Sew::Word), 1);
    let ps = small.phases.unwrap().share(Phase::Preamble);
    let pl = large.phases.unwrap().share(Phase::Preamble);
    assert!(ps > 0.4, "preamble at 8x8: {:.0}%", 100.0 * ps);
    assert!(pl < 0.12, "preamble at 64x64: {:.0}%", 100.0 * pl);
}

#[test]
fn table2_overheads_within_band() {
    let m = AreaModel::calibrated();
    for (lanes, pct) in [(2usize, 21.7), (4, 28.3), (8, 41.3)] {
        let got = m.overhead_percent(4, lanes);
        assert!(
            (got - pct).abs() < 2.5,
            "{lanes} lanes: {got:.1}% vs paper {pct}%"
        );
    }
}

#[test]
fn sec5c_throughput_anchors() {
    let g = peak_gops(4, 8, 265.0);
    assert!((g - 17.0).abs() < 0.05, "peak GOPS {g}");
    assert!((g / BLADE.gops - 3.2).abs() < 0.1);
    assert!((INTEL_CNC.gops / g - 1.47).abs() < 0.01);
}

/// The §V-C multi-instance band under the fabric arbiters (DESIGN.md
/// §4.5): whole-phase reproduces the committed 4-VPU plateau
/// bit-for-bit, round-robin-burst removes the shared-path
/// serialisation artefact and restores the paper's multi-instance
/// gain (4 VPUs beat 2).
#[test]
fn burst_arbitration_unlocks_multi_instance_scaling() {
    use arcane::core::ArcaneConfig;
    use arcane::fabric::ArbiterKind;
    use arcane::system::driver::run_arcane_conv_with;

    let p = ConvLayerParams::new(64, 64, 7, Sew::Byte);
    let run = |arbiter: ArbiterKind, n_vpus: usize| {
        let mut cfg = ArcaneConfig::with_lanes(8);
        cfg.n_vpus = n_vpus;
        cfg.fabric.arbiter = arbiter;
        run_arcane_conv_with(cfg, &p, n_vpus).cycles
    };
    // The plateau: under whole-phase, 4 VPUs buy nothing over 2.
    let (wp2, wp4) = (
        run(ArbiterKind::WholePhase, 2),
        run(ArbiterKind::WholePhase, 4),
    );
    assert!(
        wp4 as f64 >= 0.95 * wp2 as f64,
        "whole-phase must keep the plateau: {wp4} vs {wp2}"
    );
    // The fix: burst interleaving makes 4 VPUs beat 2, and both beat 1.
    let rr1 = run(ArbiterKind::RoundRobinBurst, 1);
    let rr2 = run(ArbiterKind::RoundRobinBurst, 2);
    let rr4 = run(ArbiterKind::RoundRobinBurst, 4);
    assert!(rr2 < rr1, "2 VPUs beat 1 under round-robin-burst");
    assert!(
        rr4 < rr2,
        "4 VPUs must beat 2 under round-robin-burst: {rr4} vs {rr2}"
    );
    assert!(rr4 < wp4, "burst arbitration beats whole-phase outright");
}

/// The descriptor-batch launch pipeline (DESIGN.md §4.6): in legacy
/// mode multi-VPU graph splitting *inflates* total cycles because every
/// slice kernel pays the full ~2k-cycle C-RT preamble on the single
/// eCPU, while under descriptor batching the preamble is decoded once
/// per batch and replayed per slice — 2-way and 4-way transformer
/// splits become a net win over 1-way (the §V-C multi-instance band at
/// graph scale).
#[test]
fn descriptor_batches_make_graph_splitting_a_win() {
    use arcane::core::ArcaneConfig;
    use arcane::nn::{suite, CompileOptions};

    let b = suite::transformer_block(16, 24, 32, Sew::Byte, 44);
    let run = |opts: &CompileOptions, n_vpus: usize| {
        let mut cfg = ArcaneConfig::with_lanes(8);
        cfg.n_vpus = n_vpus;
        b.run_verified_with(cfg, opts).cycles
    };
    // Legacy keeps the inflation artefact: splitting costs cycles.
    let (l1, l4) = (
        run(&CompileOptions::with_instances(1), 1),
        run(&CompileOptions::with_instances(4), 4),
    );
    assert!(
        l4 > l1,
        "legacy splitting must stay preamble-bound: {l4} vs {l1}"
    );
    // Descriptor batching makes splitting a net win, monotonically.
    let d1 = run(&CompileOptions::descriptor(1), 1);
    let d2 = run(&CompileOptions::descriptor(2), 2);
    let d4 = run(&CompileOptions::descriptor(4), 4);
    assert!(d2 <= d1, "2-way split must not lose: {d2} vs {d1}");
    assert!(d4 <= d1, "4-way split must not lose: {d4} vs {d1}");
    assert!(d4 < d2, "4-way should beat 2-way outright: {d4} vs {d2}");
    // And the pipeline is an outright improvement at equal width.
    assert!(d1 < l1, "descriptor launch must beat legacy: {d1} vs {l1}");
}

/// The full 256×256 anchors of DESIGN.md §5. ~1 minute in release mode:
/// `cargo test --release --test calibration -- --ignored`.
#[test]
#[ignore = "large workload: run with --release -- --ignored"]
fn full_figure4_anchors() {
    // 7x7 int8: the paper's 84x headline.
    let p7 = ConvLayerParams::new(256, 256, 7, Sew::Byte);
    let s7 = run_scalar_conv(&p7);
    let v7 = run_xcvpulp_conv(&p7);
    let a7 = run_arcane_conv(8, &p7, 1);
    let m7 = run_arcane_conv(8, &p7, 4);
    let sp7 = a7.speedup_over(&s7);
    assert!((55.0..115.0).contains(&sp7), "7x7 int8 single: {sp7:.1}x");
    let spm = m7.speedup_over(&s7);
    assert!((90.0..220.0).contains(&spm), "7x7 int8 multi: {spm:.1}x");
    assert!(spm > sp7, "multi-instance must gain");
    let pv = v7.speedup_over(&s7);
    assert!((4.0..10.0).contains(&pv), "XCVPULP 7x7: {pv:.1}x");

    // 3x3 int8.
    let p3 = ConvLayerParams::new(256, 256, 3, Sew::Byte);
    let s3 = run_scalar_conv(&p3);
    let a3 = run_arcane_conv(8, &p3, 1);
    let sp3 = a3.speedup_over(&s3);
    assert!((25.0..90.0).contains(&sp3), "3x3 int8: {sp3:.1}x");
    assert!(sp7 > sp3, "larger filters amortise overheads better");
}
