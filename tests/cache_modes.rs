//! Cache-mode integration tests: in *normal* operation (no kernels in
//! flight) the ARCANE smart LLC must behave exactly like the
//! conventional baseline cache — same data, same hit/miss pattern, same
//! cycles. "Drop-in replacement for the conventional on-chip LLC" is a
//! headline claim of the paper.

use arcane::core::{ArcaneConfig, ArcaneLlc, StandardLlc};
use arcane::mem::AccessSize;
use arcane::workloads::rng;
use rand::Rng;

const BASE: u32 = 0x2000_0000;

#[test]
fn normal_mode_matches_baseline_cache_exactly() {
    let cfg = ArcaneConfig::with_lanes(4);
    let mut smart = ArcaneLlc::new(cfg);
    let mut base = StandardLlc::new(&cfg);
    let mut r = rng(42);
    let mut t = 0u64;
    for i in 0..5_000u32 {
        // Mixed sizes, two hot regions + a streaming tail.
        let region = match i % 3 {
            0 => r.random_range(0..8 * 1024),
            1 => 0x40_0000 + r.random_range(0..8 * 1024),
            _ => 0x80_0000 + i * 64,
        };
        let size = match region % 4 {
            0 => AccessSize::Word,
            2 => AccessSize::Half,
            _ => AccessSize::Byte,
        };
        let addr = BASE + region - region % size.bytes();
        let write = r.random_bool(0.4);
        let value = r.random::<u32>();
        let a = smart.host_access(addr, write, value, size, t).unwrap();
        let b = base.host_access(addr, write, value, size, t).unwrap();
        assert_eq!(a.data, b.data, "data diverged at access {i} ({addr:#x})");
        assert_eq!(a.cycles, b.cycles, "cycles diverged at access {i}");
        t += a.cycles;
    }
    assert_eq!(smart.stats().hits.get(), base.stats().hits.get());
    assert_eq!(smart.stats().misses.get(), base.stats().misses.get());
    assert_eq!(
        smart.stats().writebacks.get(),
        base.stats().writebacks.get()
    );
    assert_eq!(smart.stats().stalls.get(), 0, "no stalls without kernels");
}

#[test]
fn write_back_policy_defers_memory_updates() {
    let cfg = ArcaneConfig::with_lanes(4);
    let mut llc = ArcaneLlc::new(cfg);
    llc.host_access(BASE, true, 1234, AccessSize::Word, 0)
        .unwrap();
    // Dirty data lives in the cache only...
    assert_ne!(
        {
            use arcane::mem::Memory;
            llc.ext().read_u32(BASE).unwrap()
        },
        1234,
        "write-back: memory not updated on store"
    );
    // ...until eviction pressure forces it out.
    let mut t = 10;
    for i in 1..256u32 {
        let a = llc
            .host_access(BASE + i * 1024, true, i, AccessSize::Word, t)
            .unwrap();
        t += a.cycles;
    }
    use arcane::mem::Memory;
    assert_eq!(llc.ext().read_u32(BASE).unwrap(), 1234);
}

#[test]
fn hit_is_single_cycle_miss_pays_bursts() {
    let cfg = ArcaneConfig::with_lanes(4);
    let mut llc = ArcaneLlc::new(cfg);
    let miss = llc
        .host_access(BASE, false, 0, AccessSize::Word, 0)
        .unwrap();
    let hit = llc
        .host_access(BASE + 512, false, 0, AccessSize::Word, 50)
        .unwrap();
    assert_eq!(hit.cycles, 1, "hits are resolved in a single cycle");
    // Miss pays the 1 KiB line fill from the burst-modeled PSRAM.
    let line_fill = 10 + 255; // first_word + per_word * 255
    assert!(miss.cycles >= line_fill, "miss {} cycles", miss.cycles);
}

#[test]
fn line_crossing_misaligned_access_is_correct() {
    let cfg = ArcaneConfig::with_lanes(4);
    let mut llc = ArcaneLlc::new(cfg);
    // Write a word that straddles the 1 KiB line boundary.
    let addr = BASE + 1022;
    llc.host_access(addr, true, 0xa1b2_c3d4, AccessSize::Word, 0)
        .unwrap();
    let r = llc
        .host_access(addr, false, 0, AccessSize::Word, 100)
        .unwrap();
    assert_eq!(r.data, 0xa1b2_c3d4);
    // And the two halves landed on both sides of the boundary.
    let lo = llc
        .host_access(BASE + 1022, false, 0, AccessSize::Half, 200)
        .unwrap();
    let hi = llc
        .host_access(BASE + 1024, false, 0, AccessSize::Half, 300)
        .unwrap();
    assert_eq!(lo.data, 0xc3d4);
    assert_eq!(hi.data, 0xa1b2);
}

#[test]
fn out_of_range_accesses_fault() {
    let cfg = ArcaneConfig::with_lanes(4);
    let mut llc = ArcaneLlc::new(cfg);
    assert!(llc
        .host_access(0x1000, false, 0, AccessSize::Word, 0)
        .is_err());
    let end = cfg.ext_base + cfg.ext_size as u32;
    assert!(llc
        .host_access(end - 2, false, 0, AccessSize::Word, 0)
        .is_err());
    assert!(llc
        .host_access(end - 4, false, 0, AccessSize::Word, 0)
        .is_ok());
}
