//! Smoke tests that exercise the main path of each of the six
//! `examples/` programs at small problem sizes, so the examples cannot
//! silently rot: every API call they demonstrate is replayed here
//! (same call sequence, smaller shapes) and checked for the same
//! invariants the examples print.

use arcane::core::kernels::{Kernel, KernelError, ResolvedArgs};
use arcane::core::runtime::ctx::KernelCtx;
use arcane::core::{ArcaneConfig, ArcaneLlc, MatView};
use arcane::isa::asm::Asm;
use arcane::isa::reg::{A0, A1, A2, T0, T1};
use arcane::isa::vector::{Sr, VInstr, VOp, Vr};
use arcane::isa::xmnmc::{self, kernel_id, MatReg, XInstr, FUNC5_XMR};
use arcane::mem::{AccessSize, Memory};
use arcane::rv32::{Coprocessor, XifResponse};
use arcane::sim::Sew;
use arcane::system::driver::{run_arcane_conv, run_scalar_conv, run_xcvpulp_conv};
use arcane::system::{ArcaneSoc, ConvLayerParams, EXT_BASE};
use arcane::workloads::{self, Matrix};

fn offload(llc: &mut ArcaneLlc, func5: u8, sew: Sew, vals: (u32, u32, u32), t: u64) {
    let x = XInstr {
        func5,
        width: sew,
        rs1: A0,
        rs2: A1,
        rs3: A2,
    };
    match llc.offload(xmnmc::encode_raw(&x), vals.0, vals.1, vals.2, t) {
        XifResponse::Accept { .. } => {}
        XifResponse::Reject => panic!("offload rejected: {:?}", llc.last_error()),
    }
}

/// `examples/quickstart.rs`: scalar vs XCVPULP vs ARCANE on one conv
/// layer, with per-phase accounting on the ARCANE run.
#[test]
fn quickstart_main_path() {
    let p = ConvLayerParams::new(16, 16, 3, Sew::Byte);
    assert!(p.macs() > 0);

    let scalar = run_scalar_conv(&p);
    let pulp = run_xcvpulp_conv(&p);
    let arcane = run_arcane_conv(8, &p, 1);

    for r in [&scalar, &pulp, &arcane] {
        assert!(r.cycles > 0, "{}", r.label);
        assert!(r.macs_per_cycle() > 0.0, "{}", r.label);
    }
    assert!(arcane.speedup_over(&scalar) > 1.0);
    assert!(pulp.speedup_over(&scalar) > 1.0);

    let phases = arcane.phases.expect("ARCANE runs report phases");
    assert!(phases.total() > 0);
}

/// `examples/cache_explorer.rs`: normal-mode miss/hit behaviour, then
/// a kernel launch whose lock windows stall a conflicting host access.
#[test]
fn cache_explorer_main_path() {
    let mut llc = ArcaneLlc::new(ArcaneConfig::with_lanes(4));
    let base = 0x2000_0000u32;

    // Normal mode: first touch misses (line fill), second access to
    // the same line hits.
    let miss = llc
        .host_access(base, false, 0, AccessSize::Word, 0)
        .unwrap();
    let hit = llc
        .host_access(base + 4, false, 0, AccessSize::Word, 10)
        .unwrap();
    assert!(miss.cycles > hit.cycles, "fill must cost more than a hit");

    // Kernel mode: reserve A and R, launch a ReLU, then read the
    // result region — the access must be stalled past the kernel end.
    let (a, r) = (base + 0x1_0000, base + 0x2_0000);
    for i in 0..64u32 {
        llc.ext_mut().write_u32(a + i * 4, i).unwrap();
    }
    let m = |i| MatReg::new(i).unwrap();
    let (r1, r2, r3) = xmnmc::pack_xmr(a, 1, m(0), 8, 8);
    offload(&mut llc, FUNC5_XMR, Sew::Word, (r1, r2, r3), 100);
    let (r1, r2, r3) = xmnmc::pack_xmr(r, 1, m(1), 8, 8);
    offload(&mut llc, FUNC5_XMR, Sew::Word, (r1, r2, r3), 110);
    let (r1, r2, r3) = xmnmc::pack_kernel(3, 0, m(1), m(0), m(0), m(0));
    offload(
        &mut llc,
        kernel_id::LEAKY_RELU,
        Sew::Word,
        (r1, r2, r3),
        120,
    );

    let rec = llc.records()[0];
    let conflicting = llc.host_access(r, false, 0, AccessSize::Word, 121).unwrap();
    assert!(
        121 + conflicting.cycles >= rec.end,
        "RAW on the kernel destination must stall until the kernel ends \
         (stalled to {}, kernel ends {})",
        121 + conflicting.cycles,
        rec.end
    );
    assert_eq!(llc.ext().read_u32(r).unwrap(), 0); // relu(0)
}

/// The SAXPY-style user kernel from `examples/custom_kernel.rs`.
#[derive(Debug)]
struct Axpy;

impl Kernel for Axpy {
    fn name(&self) -> &'static str {
        "axpy"
    }

    fn validate(&self, args: &ResolvedArgs) -> Result<Vec<MatView>, KernelError> {
        let x = args.ms1.ok_or(KernelError::ShapeMismatch {
            what: "axpy needs ms1 (X)",
        })?;
        let y = args.ms2.ok_or(KernelError::ShapeMismatch {
            what: "axpy needs ms2 (Y)",
        })?;
        if (x.rows, x.cols) != (args.md.rows, args.md.cols)
            || (y.rows, y.cols) != (args.md.rows, args.md.cols)
        {
            return Err(KernelError::ShapeMismatch {
                what: "axpy operands must share one shape",
            });
        }
        Ok(vec![x, y])
    }

    fn run(&self, args: &ResolvedArgs, ctx: &mut KernelCtx<'_>) -> Result<(), KernelError> {
        let x = args.ms1.expect("validated");
        let y = args.ms2.expect("validated");
        let sew = args.width;
        let vx = Vr::new(0).unwrap();
        let vy = Vr::new(1).unwrap();
        let alpha = Sr::new(2).unwrap();
        ctx.set_vl(x.cols, sew)?;
        ctx.set_scalar(alpha, args.alpha as i32 as u32);
        for r in 0..x.rows {
            ctx.load_rows(&x, r, 1, 0)?;
            ctx.load_rows(&y, r, 1, 1)?;
            ctx.exec(&[
                VInstr::OpVX {
                    op: VOp::Mul,
                    vd: vx,
                    vs1: vx,
                    rs: alpha,
                },
                VInstr::OpVV {
                    op: VOp::Add,
                    vd: vx,
                    vs1: vx,
                    vs2: vy,
                },
            ])?;
            ctx.store_row(0, args.md.cols, sew, args.md.row_addr(r));
        }
        Ok(())
    }
}

/// `examples/custom_kernel.rs`: register a user kernel as `xmk8` and
/// drive it from an assembled host program on the full SoC.
#[test]
fn custom_kernel_main_path() {
    const AXPY_ID: u8 = 8;
    let (rows, cols) = (4usize, 16usize);
    let (x_addr, y_addr, r_addr) = (EXT_BASE, EXT_BASE + 0x1000, EXT_BASE + 0x2000);

    let mut soc = ArcaneSoc::new(ArcaneConfig::with_lanes(4));
    soc.llc_mut().register_kernel(AXPY_ID, Box::new(Axpy));

    for i in 0..(rows * cols) as u32 {
        soc.llc_mut()
            .ext_mut()
            .write_u32(x_addr + i * 4, i)
            .unwrap();
        soc.llc_mut()
            .ext_mut()
            .write_u32(y_addr + i * 4, 1000)
            .unwrap();
    }

    let m = |i| MatReg::new(i).unwrap();
    let mut a = Asm::new();
    for (reg, addr) in [(0u8, x_addr), (1, y_addr), (2, r_addr)] {
        let (r1, r2, r3) = xmnmc::pack_xmr(addr, 1, m(reg), cols as u16, rows as u16);
        a.li(A0, r1 as i32);
        a.li(A1, r2 as i32);
        a.li(A2, r3 as i32);
        a.raw(xmnmc::xmr_instr(Sew::Word, A0, A1, A2));
    }
    let (r1, r2, r3) = xmnmc::pack_kernel(3, 0, m(2), m(0), m(1), m(0));
    a.li(A0, r1 as i32);
    a.li(A1, r2 as i32);
    a.li(A2, r3 as i32);
    a.raw(xmnmc::xmk_instr(AXPY_ID, Sew::Word, A0, A1, A2));
    a.li(T0, r_addr as i32);
    a.lw(T1, T0, 0); // synchronise on the result
    a.ebreak();

    soc.load_program(&a);
    let run = soc.run(1_000_000).expect("program runs");
    assert!(run.instret > 0 && run.cycles > 0);

    for i in 0..(rows * cols) as u32 {
        let got = soc.llc().ext().read_u32(r_addr + i * 4).unwrap();
        assert_eq!(got, 3 * i + 1000, "element {i}");
    }
    assert_eq!(soc.llc().records()[0].name, "axpy");
}

/// `examples/mlp_layer.rs`: four chained kernels (transpose → GeMM →
/// requantisation → LeakyReLU) verified against the golden pipeline.
#[test]
fn mlp_layer_main_path() {
    const BASE: u32 = 0x2000_0000;
    let sew = Sew::Half;
    let (batch, d_in, d_out) = (4usize, 8usize, 6usize);
    let mut rng = workloads::rng(2024);
    let x = workloads::random_matrix(&mut rng, batch, d_in, sew, 6);
    let w = workloads::random_matrix(&mut rng, d_out, d_in, sew, 6);

    let mut llc = ArcaneLlc::new(ArcaneConfig::with_lanes(8));
    let (px, pw, pwt, ph) = (BASE, BASE + 0x10000, BASE + 0x20000, BASE + 0x30000);
    llc.ext_mut().write_bytes(px, &x.to_bytes(sew)).unwrap();
    llc.ext_mut().write_bytes(pw, &w.to_bytes(sew)).unwrap();

    let m = |i: u8| MatReg::new(i).unwrap();
    let mut t = 0u64;
    let mut go = |llc: &mut ArcaneLlc, f, v| {
        t += 10;
        offload(llc, f, sew, v, t);
    };

    go(
        &mut llc,
        FUNC5_XMR,
        xmnmc::pack_xmr(px, 1, m(0), d_in as u16, batch as u16),
    );
    go(
        &mut llc,
        FUNC5_XMR,
        xmnmc::pack_xmr(pw, 1, m(1), d_in as u16, d_out as u16),
    );
    go(
        &mut llc,
        FUNC5_XMR,
        xmnmc::pack_xmr(pwt, 1, m(2), d_out as u16, d_in as u16),
    );
    go(
        &mut llc,
        FUNC5_XMR,
        xmnmc::pack_xmr(ph, 1, m(3), d_out as u16, batch as u16),
    );
    go(
        &mut llc,
        kernel_id::TRANSPOSE,
        xmnmc::pack_kernel(0, 0, m(2), m(1), m(0), m(0)),
    );
    go(
        &mut llc,
        kernel_id::GEMM,
        xmnmc::pack_kernel(1, 0, m(3), m(0), m(2), m(0)),
    );
    go(
        &mut llc,
        kernel_id::MAT_SCALE,
        xmnmc::pack_kernel(1, 4, m(3), m(3), m(0), m(0)),
    );
    go(
        &mut llc,
        kernel_id::LEAKY_RELU,
        xmnmc::pack_kernel(3, 0, m(3), m(3), m(0), m(0)),
    );

    let wt = workloads::transpose(&w);
    let gemm = workloads::gemm(&x, &wt, None, 1, 0, sew);
    let scaled = workloads::mat_scale(&gemm, 1, 4, sew);
    let want = workloads::leaky_relu(&scaled, 3, sew);

    let mut out = vec![0u8; batch * d_out * sew.bytes()];
    llc.ext().read_bytes(ph, &mut out).unwrap();
    let got = Matrix::from_bytes(batch, d_out, sew, &out);
    assert_eq!(got, want, "MLP chain result");
    assert_eq!(llc.records().len(), 4);
}

/// `examples/graph_inference.rs`: the three `arcane-nn` layer graphs
/// compiled to kernel chains, swept over the scheduler-policy ×
/// VPU-count grid with bit-exact verification on every cell.
#[test]
fn graph_inference_main_path() {
    use arcane::core::SchedulerKind;
    use arcane::nn::suite;

    let dws = suite::depthwise_separable(10, 10, 3, Sew::Byte, 11);
    let res = suite::residual_bottleneck(8, 12, Sew::Byte, 12);
    let xfm = suite::transformer_block(8, 12, 16, Sew::Byte, 13);
    for block in [&dws, &res, &xfm] {
        for n_vpus in [1usize, 4] {
            for scheduler in SchedulerKind::ALL {
                let mut cfg = ArcaneConfig::with_lanes(8);
                cfg.n_vpus = n_vpus;
                cfg.scheduler = scheduler;
                let r = block.run_verified(cfg, n_vpus);
                assert!(r.cycles > 0, "{}: {scheduler} x{n_vpus}", block.name);
                assert_eq!(
                    r.kernels_per_vpu(n_vpus).iter().sum::<usize>(),
                    r.kernels,
                    "{}: every kernel placed",
                    block.name
                );
            }
        }
    }
    // The chain-detail section of the example: records carry placement.
    let r = xfm.run_verified(ArcaneConfig::with_lanes(8), 1);
    assert!(r.records.iter().all(|rec| rec.end > rec.decode_start));
    assert!(r.renames > 0);

    // The `--descriptor` flag path: the same grid compiles onto the
    // batched launch pipeline, stays bit-exact, and reports its batch
    // accounting plus the machine-generated phase-split row.
    use arcane::nn::CompileOptions;
    use arcane::system::format_phase_split_table;
    for block in [&dws, &res, &xfm] {
        let mut cfg = ArcaneConfig::with_lanes(8);
        cfg.n_vpus = 4;
        let d = block.run_verified_with(cfg, &CompileOptions::descriptor(4));
        assert!(d.launch_stats.batches > 0, "{}", block.name);
        assert_eq!(d.launch_stats.descriptors as usize, d.kernels);
        let legacy = block.run_verified_with(cfg, &CompileOptions::with_instances(4));
        assert!(
            d.cycles < legacy.cycles,
            "{}: descriptor launch must beat legacy at 4 VPUs",
            block.name
        );
        let table = format_phase_split_table(&[d.split_row(block.name)]);
        assert!(table.contains(block.name));
    }
}

/// `examples/multi_vpu_scaling.rs`: the fabric-arbiter × VPU-count
/// sweep — whole-phase reproduces the multi-instance plateau, the
/// burst arbiter breaks it, and every run reports per-channel
/// utilisation.
#[test]
fn multi_vpu_scaling_main_path() {
    use arcane::fabric::ArbiterKind;
    use arcane::system::driver::run_arcane_conv_with;

    let p = ConvLayerParams::new(32, 32, 7, Sew::Byte);
    let run = |arbiter: ArbiterKind, n_vpus: usize| {
        let mut cfg = ArcaneConfig::with_lanes(8);
        cfg.n_vpus = n_vpus;
        cfg.fabric.arbiter = arbiter;
        run_arcane_conv_with(cfg, &p, n_vpus)
    };
    let wp2 = run(ArbiterKind::WholePhase, 2);
    let rr2 = run(ArbiterKind::RoundRobinBurst, 2);
    let rr4 = run(ArbiterKind::RoundRobinBurst, 4);
    assert!(
        rr2.cycles < wp2.cycles,
        "burst interleaving must beat whole-phase booking: {} vs {}",
        rr2.cycles,
        wp2.cycles
    );
    // Per-channel rows: eCPU + host + one per VPU, with the VPU ports
    // carrying dispatch traffic under the burst arbiter.
    assert_eq!(rr4.channels.len(), 2 + 4);
    assert_eq!(rr4.channels[0].label, "ecpu");
    let vpu_busy: u64 = rr4
        .channels
        .iter()
        .filter(|c| c.label.starts_with("vpu"))
        .map(|c| c.busy_cycles)
        .sum();
    assert!(vpu_busy > 0, "VPU ports must carry burst traffic");
    assert!(
        rr4.channels.iter().all(|c| c.occupancy() <= 1.0),
        "occupancy is a fraction of the run"
    );
}

/// `examples/cnn_layer.rs`: the 7×7-filter CNN front-end sweep, with
/// the multi-instance mode that spreads one layer across four VPUs.
#[test]
fn cnn_layer_main_path() {
    for sew in [Sew::Byte, Sew::Word] {
        let p = ConvLayerParams::new(16, 16, 7, sew);
        let scalar = run_scalar_conv(&p);
        let pulp = run_xcvpulp_conv(&p);
        let single = run_arcane_conv(8, &p, 1);
        let multi = run_arcane_conv(8, &p, 4);
        for r in [&scalar, &pulp, &single, &multi] {
            assert!(r.cycles > 0, "{sew}: {}", r.label);
        }
        assert!(
            single.speedup_over(&scalar) > 1.0,
            "{sew}: ARCANE must beat scalar on a 7x7 layer"
        );
    }
}
