//! Hazard-management integration tests: the WAR/RAW/WAW protection,
//! lock windows, renaming and the failure-injection paths of §III-A2
//! and §IV-B1.

use arcane::core::kernels::KernelError;
use arcane::core::{ArcaneConfig, ArcaneLlc};
use arcane::isa::reg::{A0, A1, A2};
use arcane::isa::xmnmc::{self, kernel_id, MatReg, XInstr, FUNC5_XMR};
use arcane::mem::{AccessSize, Memory};
use arcane::rv32::{Coprocessor, XifResponse};
use arcane::sim::Sew;

const BASE: u32 = 0x2000_0000;
const A_ADDR: u32 = BASE + 0x10_0000;
const F_ADDR: u32 = BASE + 0x11_0000;
const R_ADDR: u32 = BASE + 0x12_0000;

fn x(func5: u8, sew: Sew) -> u32 {
    xmnmc::encode_raw(&XInstr {
        func5,
        width: sew,
        rs1: A0,
        rs2: A1,
        rs3: A2,
    })
}

fn m(i: u8) -> MatReg {
    MatReg::new(i).unwrap()
}

/// Seeds an all-ones 3x(16x16) input and 3x(3x3) filter and launches
/// one conv-layer kernel at time `t0`. Pooled output value is 27.
fn launch_conv(llc: &mut ArcaneLlc, t0: u64) -> u64 {
    for i in 0..(3 * 16 * 16) {
        llc.ext_mut().write_u32(A_ADDR + i * 4, 1).unwrap();
    }
    for i in 0..27 {
        llc.ext_mut().write_u32(F_ADDR + i * 4, 1).unwrap();
    }
    let sew = Sew::Word;
    let (r1, r2, r3) = xmnmc::pack_xmr(A_ADDR, 1, m(0), 16, 48);
    assert!(matches!(
        llc.offload(x(FUNC5_XMR, sew), r1, r2, r3, t0),
        XifResponse::Accept { .. }
    ));
    let (r1, r2, r3) = xmnmc::pack_xmr(F_ADDR, 1, m(1), 3, 9);
    llc.offload(x(FUNC5_XMR, sew), r1, r2, r3, t0 + 2);
    let (r1, r2, r3) = xmnmc::pack_xmr(R_ADDR, 1, m(2), 7, 7);
    llc.offload(x(FUNC5_XMR, sew), r1, r2, r3, t0 + 4);
    let (r1, r2, r3) = xmnmc::pack_kernel(0, 0, m(2), m(0), m(1), m(0));
    llc.offload(x(kernel_id::CONV_LAYER_3CH, sew), r1, r2, r3, t0 + 6);
    llc.records()[0].end
}

#[test]
fn war_store_to_source_stalls_loads_pass() {
    let mut llc = ArcaneLlc::new(ArcaneConfig::with_lanes(4));
    launch_conv(&mut llc, 0);
    let t = 10;
    let store = llc
        .host_access(A_ADDR, true, 99, AccessSize::Word, t)
        .unwrap();
    let load = llc
        .host_access(A_ADDR + 4, false, 0, AccessSize::Word, t)
        .unwrap();
    assert!(
        store.cycles > 1000,
        "WAR store must stall: {}",
        store.cycles
    );
    assert!(load.cycles < 1000, "source loads pass: {}", load.cycles);
    // The stalled store lands after allocation: the kernel still sees
    // the original all-ones data, so the result stays 27.
    let r = llc
        .host_access(R_ADDR, false, 0, AccessSize::Word, t + store.cycles)
        .unwrap();
    assert_eq!(r.data, 27);
}

#[test]
fn raw_and_waw_on_destination_stall_until_writeback() {
    let mut llc = ArcaneLlc::new(ArcaneConfig::with_lanes(4));
    let end = launch_conv(&mut llc, 0);
    let t = 10;
    let read = llc
        .host_access(R_ADDR, false, 0, AccessSize::Word, t)
        .unwrap();
    assert!(t + read.cycles > end, "RAW read stalls past writeback");
    assert_eq!(read.data, 27, "and observes the kernel result");
    // WAW: a store right after another kernel launch would also stall;
    // here the protection has lapsed, so it is fast.
    let store = llc
        .host_access(R_ADDR, true, 5, AccessSize::Word, end + 10)
        .unwrap();
    assert!(store.cycles <= 2, "after writeback the region is free");
}

#[test]
fn access_outside_operands_is_not_blocked() {
    let mut llc = ArcaneLlc::new(ArcaneConfig::with_lanes(4));
    launch_conv(&mut llc, 0);
    // An address unrelated to any operand must not suffer hazard stalls
    // (it may still see a lock window, which is bounded by one DMA).
    let far = BASE + 0x40_0000;
    let a = llc
        .host_access(far, false, 0, AccessSize::Word, 10)
        .unwrap();
    let end = llc.records()[0].end;
    assert!(
        10 + a.cycles < end,
        "unrelated access must not wait for the kernel"
    );
}

#[test]
fn renaming_resolves_rebinding_hazard() {
    let mut llc = ArcaneLlc::new(ArcaneConfig::with_lanes(4));
    launch_conv(&mut llc, 0);
    assert_eq!(llc.renames(), 0);
    // Re-bind m0 to a different region while the kernel is in flight;
    // the kernel captured the old physical binding, so this is safe and
    // counted as a rename.
    let (r1, r2, r3) = xmnmc::pack_xmr(BASE + 0x20_0000, 1, m(0), 8, 8);
    assert!(matches!(
        llc.offload(x(FUNC5_XMR, Sew::Word), r1, r2, r3, 20),
        XifResponse::Accept { .. }
    ));
    assert_eq!(llc.renames(), 1);
    let r = llc
        .host_access(R_ADDR, false, 0, AccessSize::Word, 30)
        .unwrap();
    assert_eq!(r.data, 27, "in-flight kernel unaffected by the rebind");
}

#[test]
fn unknown_kernel_is_killed() {
    let mut llc = ArcaneLlc::new(ArcaneConfig::with_lanes(4));
    let (r1, r2, r3) = xmnmc::pack_kernel(0, 0, m(0), m(0), m(0), m(0));
    // func5 = 9 has no registered kernel.
    let resp = llc.offload(x(9, Sew::Word), r1, r2, r3, 0);
    assert_eq!(resp, XifResponse::Reject);
    assert!(matches!(
        llc.last_error(),
        Some(KernelError::UnknownKernel { id: 9 })
    ));
}

#[test]
fn unbound_matrix_is_killed() {
    let mut llc = ArcaneLlc::new(ArcaneConfig::with_lanes(4));
    let (r1, r2, r3) = xmnmc::pack_kernel(0, 0, m(5), m(6), m(7), m(8));
    let resp = llc.offload(x(kernel_id::GEMM, Sew::Word), r1, r2, r3, 0);
    assert_eq!(resp, XifResponse::Reject);
    assert!(matches!(
        llc.last_error(),
        Some(KernelError::UnboundMatrix { .. })
    ));
}

#[test]
fn shape_mismatch_is_killed() {
    let mut llc = ArcaneLlc::new(ArcaneConfig::with_lanes(4));
    let sew = Sew::Word;
    let (r1, r2, r3) = xmnmc::pack_xmr(A_ADDR, 1, m(0), 8, 8);
    llc.offload(x(FUNC5_XMR, sew), r1, r2, r3, 0);
    let (r1, r2, r3) = xmnmc::pack_xmr(F_ADDR, 1, m(1), 4, 4);
    llc.offload(x(FUNC5_XMR, sew), r1, r2, r3, 2);
    let (r1, r2, r3) = xmnmc::pack_xmr(R_ADDR, 1, m(2), 9, 9);
    llc.offload(x(FUNC5_XMR, sew), r1, r2, r3, 4);
    // gemm with A 8x8 and B 4x4: inner dimensions disagree.
    let (r1, r2, r3) = xmnmc::pack_kernel(1, 0, m(2), m(0), m(1), m(0));
    let resp = llc.offload(x(kernel_id::GEMM, sew), r1, r2, r3, 6);
    assert_eq!(resp, XifResponse::Reject);
    assert!(matches!(
        llc.last_error(),
        Some(KernelError::ShapeMismatch { .. })
    ));
}

#[test]
fn kernel_queue_backpressure_stalls_the_host() {
    let mut cfg = ArcaneConfig::with_lanes(2);
    cfg.kernel_queue_capacity = 2;
    let mut llc = ArcaneLlc::new(cfg);
    for i in 0..(3 * 16 * 16) {
        llc.ext_mut().write_u32(A_ADDR + i * 4, 1).unwrap();
    }
    for i in 0..27 {
        llc.ext_mut().write_u32(F_ADDR + i * 4, 1).unwrap();
    }
    let sew = Sew::Word;
    let (r1, r2, r3) = xmnmc::pack_xmr(A_ADDR, 1, m(0), 16, 48);
    llc.offload(x(FUNC5_XMR, sew), r1, r2, r3, 0);
    let (r1, r2, r3) = xmnmc::pack_xmr(F_ADDR, 1, m(1), 3, 9);
    llc.offload(x(FUNC5_XMR, sew), r1, r2, r3, 1);
    let (r1, r2, r3) = xmnmc::pack_xmr(R_ADDR, 1, m(2), 7, 7);
    llc.offload(x(FUNC5_XMR, sew), r1, r2, r3, 2);
    let (k1, k2, k3) = xmnmc::pack_kernel(0, 0, m(2), m(0), m(1), m(0));
    let mut handshakes = Vec::new();
    for i in 0..4u64 {
        match llc.offload(x(kernel_id::CONV_LAYER_3CH, sew), k1, k2, k3, 10 + i) {
            XifResponse::Accept { cycles, .. } => handshakes.push(cycles),
            XifResponse::Reject => panic!("offload {i} rejected: {:?}", llc.last_error()),
        }
    }
    assert!(
        handshakes[0] < 100 && handshakes[1] < 100,
        "queue absorbs the first kernels: {handshakes:?}"
    );
    assert!(
        handshakes[3] > 1000,
        "a full queue back-pressures the host: {handshakes:?}"
    );
}

#[test]
fn cache_capacity_shrinks_while_computing() {
    let mut llc = ArcaneLlc::new(ArcaneConfig::with_lanes(4));
    launch_conv(&mut llc, 0);
    let end = llc.records()[0].end;
    // While the kernel owns one VPU, its 32 lines are busy-computing;
    // streaming 256 fresh lines must still work (96 lines remain).
    let mut t = 10u64;
    for i in 0..256u32 {
        let a = llc
            .host_access(BASE + 0x60_0000 + i * 1024, false, 0, AccessSize::Word, t)
            .unwrap();
        t += a.cycles;
    }
    assert!(llc.stats().misses.get() >= 256);
    // And after the kernel retires, the lines are reusable.
    let a = llc
        .host_access(BASE + 0x70_0000, false, 0, AccessSize::Word, end + 10)
        .unwrap();
    assert!(a.cycles > 0);
}
