//! Acceptance anchors for the predecoded execution engine: cycle counts
//! and kernel outputs must be bit-identical between the block engine
//! (default) and the reference interpreter (`ARCANE_INTERP=1`), on the
//! same systems the Figure 4 sweep runs.
//!
//! The fast tests cover moderate sizes on every data width and system;
//! the full 256×256 calibration anchors run with
//! `cargo test --release -- --ignored`.

use arcane::core::ArcaneConfig;
use arcane::mem::Memory;
use arcane::sim::{EngineMode, Sew};
use arcane::system::driver::conv_workload;
use arcane::system::programs::{offload, pulp, scalar};
use arcane::system::{ArcaneSoc, BaselineSoc, ConvLayerParams, Layout};

const FUEL: u64 = 4_000_000_000;

/// Runs the scalar or XCVPULP baseline under the given engine and
/// returns (cycles, instret, result bytes).
fn baseline(p: &ConvLayerParams, use_pulp: bool, engine: EngineMode) -> (u64, u64, Vec<u8>) {
    let l = Layout::for_conv(p);
    let cfg = ArcaneConfig::with_lanes(4);
    let mut soc = BaselineSoc::new(&cfg);
    let (a, f) = conv_workload(p);
    let f_bytes = f.to_bytes(p.sew);
    soc.llc_mut()
        .ext_mut()
        .write_bytes(l.a, &a.to_bytes(p.sew))
        .unwrap();
    soc.llc_mut().ext_mut().write_bytes(l.f, &f_bytes).unwrap();
    let program = if use_pulp {
        let padded = pulp::pad_filter_bytes(p, &f_bytes);
        soc.llc_mut()
            .ext_mut()
            .write_bytes(l.f_padded, &padded)
            .unwrap();
        pulp::conv_layer(p, &l)
    } else {
        scalar::conv_layer(p, &l)
    };
    soc.load_program(&program);
    let run = soc.run_with_engine(FUEL, engine).unwrap();
    soc.llc_mut().flush_all();
    let mut out = vec![0u8; p.pooled_h() * p.pooled_w() * p.sew.bytes()];
    soc.llc().ext().read_bytes(l.r, &mut out).unwrap();
    (run.cycles, run.instret, out)
}

/// Runs the ARCANE system under the given engine.
fn arcane_run(p: &ConvLayerParams, lanes: usize, engine: EngineMode) -> (u64, u64, Vec<u8>) {
    let l = Layout::for_conv(p);
    let mut soc = ArcaneSoc::new(ArcaneConfig::with_lanes(lanes));
    let (a, f) = conv_workload(p);
    soc.llc_mut()
        .ext_mut()
        .write_bytes(l.a, &a.to_bytes(p.sew))
        .unwrap();
    soc.llc_mut()
        .ext_mut()
        .write_bytes(l.f, &f.to_bytes(p.sew))
        .unwrap();
    soc.load_program(&offload::conv_layer(p, &l, 1));
    let run = soc.run_with_engine(FUEL, engine).unwrap();
    let total = run.cycles.max(soc.llc().completion_time());
    let mut out = vec![0u8; p.pooled_h() * p.pooled_w() * p.sew.bytes()];
    soc.llc().ext().read_bytes(l.r, &mut out).unwrap();
    (total, run.instret, out)
}

fn assert_parity(p: &ConvLayerParams) {
    for use_pulp in [false, true] {
        let b = baseline(p, use_pulp, EngineMode::Block);
        let i = baseline(p, use_pulp, EngineMode::Interp);
        assert_eq!(
            b,
            i,
            "engine divergence: {} baseline at {p:?}",
            if use_pulp { "XCVPULP" } else { "scalar" }
        );
    }
    let b = arcane_run(p, 8, EngineMode::Block);
    let i = arcane_run(p, 8, EngineMode::Interp);
    assert_eq!(b, i, "engine divergence: ARCANE-8 at {p:?}");
}

#[test]
fn engines_identical_at_moderate_sizes_all_widths() {
    for sew in Sew::ALL {
        assert_parity(&ConvLayerParams::new(32, 32, 3, sew));
    }
    assert_parity(&ConvLayerParams::new(64, 64, 5, Sew::Byte));
}

/// Descriptor-batch launch pipeline under both host-core engines: the
/// transformer graph compiled to `xmb` batches must produce bit- and
/// cycle-identical results on the predecoded block engine and the
/// reference interpreter — the same guarantee the legacy launch path
/// carries, extended to the new decode path.
#[test]
fn descriptor_mode_graph_engines_identical() {
    use arcane::nn::{run_graph_with_engine, suite, CompileOptions};

    let b = suite::transformer_block(8, 12, 16, Sew::Byte, 99);
    for instances in [1usize, 2] {
        let opts = CompileOptions::descriptor(instances);
        let mut cfg = ArcaneConfig::with_lanes(8);
        cfg.n_vpus = instances;
        let block = run_graph_with_engine(cfg, &b.graph, &b.inputs, &opts, EngineMode::Block);
        let interp = run_graph_with_engine(cfg, &b.graph, &b.inputs, &opts, EngineMode::Interp);
        assert_eq!(block.cycles, interp.cycles, "cycle divergence x{instances}");
        assert_eq!(
            block.instret, interp.instret,
            "instret divergence x{instances}"
        );
        assert_eq!(
            block.outputs, interp.outputs,
            "output divergence x{instances}"
        );
        assert_eq!(block.outputs[0], b.golden[0], "golden divergence");
        assert_eq!(
            block.launch_stats, interp.launch_stats,
            "decode accounting divergence x{instances}"
        );
        assert!(block.launch_stats.batches > 0, "batches must be decoded");
    }
}

/// The 256×256 Figure 4 calibration anchors (release-only; run with
/// `cargo test --release -- --ignored`).
#[test]
#[ignore = "full-size anchor; minutes in debug builds"]
fn engines_identical_at_fig4_anchor_256() {
    for sew in [Sew::Byte, Sew::Word] {
        for k in [3usize, 7] {
            assert_parity(&ConvLayerParams::new(256, 256, k, sew));
        }
    }
}
