//! Property-based tests on the calendar/arbiter invariants of the
//! shared-memory fabric:
//!
//! * [`ResourceChannel`] windows stay disjoint, sorted and maximally
//!   coalesced under arbitrary mixes of whole, fragmented and packed
//!   reservations, and the booked busy set is conserved exactly;
//! * the `whole-phase` fabric grants are bit-identical to direct
//!   [`ResourceChannel::reserve`] grants on the same request stream
//!   (the cycle-exactness guarantee every committed baseline relies
//!   on);
//! * the burst arbiters are work-conserving (exactly `duration` busy
//!   cycles per transaction) and `priority-host` never splits a host
//!   transaction.

use arcane::fabric::{ArbiterKind, Fabric, FabricConfig, ResourceChannel, HOST_PORT};
use proptest::prelude::*;

/// One randomised reservation: which primitive, and its parameters.
#[derive(Debug, Clone, Copy)]
enum Req {
    Whole {
        earliest: u64,
        dur: u64,
    },
    Fragmented {
        earliest: u64,
        total: u64,
        chunk: u64,
    },
    Packed {
        earliest: u64,
        total: u64,
        burst: u64,
    },
}

fn req() -> impl Strategy<Value = Req> {
    prop_oneof![
        (0u64..2000, 1u64..80).prop_map(|(earliest, dur)| Req::Whole { earliest, dur }),
        (0u64..2000, 1u64..200, 1u64..32).prop_map(|(earliest, total, chunk)| {
            Req::Fragmented {
                earliest,
                total,
                chunk,
            }
        }),
        (0u64..2000, 1u64..200, 1u64..64).prop_map(|(earliest, total, burst)| Req::Packed {
            earliest,
            total,
            burst,
        }),
    ]
}

fn check_invariants(chan: &ResourceChannel, booked: u64) -> Result<(), TestCaseError> {
    let windows = chan.windows();
    for w in windows {
        prop_assert!(w.0 < w.1, "window is non-empty: {w:?}");
    }
    for pair in windows.windows(2) {
        prop_assert!(
            pair[0].1 < pair[1].0,
            "windows sorted, disjoint and coalesced (a gap between \
             neighbours): {pair:?}"
        );
    }
    prop_assert_eq!(chan.busy_cycles(), booked, "busy set conserved");
    Ok(())
}

proptest! {
    #[test]
    fn channel_invariants_under_mixed_reservations(
        reqs in prop::collection::vec(req(), 1..80),
    ) {
        let mut chan = ResourceChannel::new();
        let mut booked = 0u64;
        for r in reqs {
            match r {
                Req::Whole { earliest, dur } => {
                    let (s, e) = chan.reserve(earliest, dur);
                    prop_assert!(s >= earliest);
                    prop_assert_eq!(e - s, dur);
                    booked += dur;
                }
                Req::Fragmented { earliest, total, chunk } => {
                    let (s, e) = chan.reserve_fragmented(earliest, total, chunk);
                    prop_assert!(s >= earliest && e >= s + total);
                    booked += total;
                }
                Req::Packed { earliest, total, burst } => {
                    let (s, e, bursts) = chan.reserve_packed(earliest, total, burst);
                    prop_assert!(s >= earliest && e >= s + total);
                    prop_assert!(bursts >= total.div_ceil(burst));
                    booked += total;
                }
            }
            check_invariants(&chan, booked)?;
        }
    }

    #[test]
    fn whole_phase_grants_match_direct_reserve(
        reqs in prop::collection::vec((1usize..5, 0u64..3000, 1u64..400), 1..60),
    ) {
        // The same kernel-port request stream, once through the
        // whole-phase fabric, once against a bare calendar: grants must
        // be bit-identical (the committed-baseline guarantee).
        let mut fabric = Fabric::new(FabricConfig::default(), 4);
        let mut direct = ResourceChannel::new();
        for (port, earliest, dur) in reqs {
            let g = fabric.request(port, 0x2000_0000, earliest, dur);
            let (s, e) = direct.reserve(earliest, dur);
            prop_assert_eq!((g.start, g.end), (s, e));
            prop_assert_eq!(g.bursts, 1, "whole-phase never splits");
        }
        prop_assert_eq!(
            fabric.bank_channels()[0].windows(),
            direct.windows(),
            "identical busy calendars"
        );
    }

    /// Descriptor-batch transfers are ordinary kernel-path traffic:
    /// under whole-phase arbitration a mixed stream of DMA requests and
    /// `issue_batch` transfers books grants bit-identical to direct
    /// contiguous reserves of the same durations (the batch pipeline
    /// adds no hidden cycles to the shared path).
    #[test]
    fn whole_phase_batch_grants_match_direct_reserve(
        reqs in prop::collection::vec(
            (0usize..5, 0u64..3000, 1u64..400, any::<bool>()), 1..60),
    ) {
        let mut fabric = Fabric::new(FabricConfig::default(), 4);
        let mut direct = ResourceChannel::new();
        let bpc = FabricConfig::default().bytes_per_cycle;
        for (port, earliest, dur, as_batch) in reqs {
            let g = if as_batch {
                // A batch whose payload needs exactly `dur` cycles.
                fabric.issue_batch(port, 0x2000_0000, earliest, dur * bpc)
            } else {
                fabric.request(port.max(1), 0x2000_0000, earliest, dur)
            };
            let (s, e) = direct.reserve(earliest, dur);
            prop_assert_eq!((g.start, g.end), (s, e));
            prop_assert_eq!(g.bursts, 1, "whole-phase never splits");
        }
        prop_assert_eq!(
            fabric.bank_channels()[0].windows(),
            direct.windows(),
            "identical busy calendars"
        );
    }

    #[test]
    fn burst_arbiters_are_work_conserving(
        kind in prop_oneof![
            Just(ArbiterKind::RoundRobinBurst),
            Just(ArbiterKind::PriorityHost)
        ],
        reqs in prop::collection::vec((0usize..5, 0u64..3000, 1u64..400), 1..60),
    ) {
        let cfg = FabricConfig { arbiter: kind, ..FabricConfig::default() };
        let mut fabric = Fabric::new(cfg, 4);
        let mut booked = 0u64;
        for (port, earliest, dur) in reqs {
            let g = fabric.request(port, 0x2000_0000, earliest, dur);
            prop_assert!(g.start >= earliest);
            prop_assert!(g.end >= g.start + dur, "span covers the service time");
            if kind == ArbiterKind::PriorityHost && port == HOST_PORT {
                prop_assert_eq!(g.bursts, 1, "host transactions stay whole");
                prop_assert_eq!(g.end - g.start, dur);
            }
            booked += dur;
        }
        prop_assert_eq!(fabric.busy_cycles(), booked, "every cycle granted once");
        let stats_busy: u64 = fabric.port_stats().iter().map(|s| s.busy_cycles).sum();
        prop_assert_eq!(stats_busy, booked, "port accounting agrees");
    }

    #[test]
    fn packed_reservation_is_never_later_than_whole(
        pre in prop::collection::vec((0u64..1500, 1u64..60), 0..30),
        earliest in 0u64..1500,
        total in 1u64..300,
        burst in 1u64..64,
    ) {
        // Against any pre-booked calendar, filling gaps burst-by-burst
        // completes no later than waiting for one contiguous window.
        let mut a = ResourceChannel::new();
        let mut b = ResourceChannel::new();
        for &(t, d) in &pre {
            a.reserve(t, d);
            b.reserve(t, d);
        }
        let (_, packed_end, _) = a.reserve_packed(earliest, total, burst);
        let (_, whole_end) = b.reserve(earliest, total);
        prop_assert!(
            packed_end <= whole_end,
            "packed {packed_end} vs whole {whole_end}"
        );
    }
}
