//! Differential suite for the `arcane-nn` golden models and runtime.
//!
//! The property tests pit every new golden model (depthwise conv,
//! residual bottleneck with requantise fusion, transformer encoder
//! block) against an **independent naive CPU reference** written here
//! with plain `i64` loops — any divergence between the two derivations
//! of the semantics fails the property. The engine-parity test runs a
//! full graph workload on both host-core engines (predecoded block
//! stepping vs the reference interpreter) and demands bit- and
//! cycle-identical results.

use arcane::core::ArcaneConfig;
use arcane::nn::{suite, CompileOptions};
use arcane::sim::{EngineMode, Sew};
use arcane::workloads::{self, Matrix};
use proptest::prelude::*;

fn wrap(v: i64, sew: Sew) -> i64 {
    workloads::wrap(v, sew)
}

/// Naive depthwise conv: four nested loops per channel, nothing shared
/// with `workloads::depthwise_conv` except the contract.
fn naive_depthwise(a: &Matrix, f: &Matrix, channels: usize, sew: Sew) -> Matrix {
    let h = a.rows() / channels;
    let k = f.cols();
    let (oh, ow) = (h - k + 1, a.cols() - k + 1);
    let mut out = Matrix::zero(channels * oh, ow);
    for c in 0..channels {
        for y in 0..oh {
            for x in 0..ow {
                let mut acc = 0i64;
                for ky in 0..k {
                    for kx in 0..k {
                        let av = a.get(c * h + y + ky, x + kx);
                        let fv = f.get(c * k + ky, kx);
                        acc = wrap(acc.wrapping_add(wrap(av.wrapping_mul(fv), sew)), sew);
                    }
                }
                out.set(c * oh + y, x, acc);
            }
        }
    }
    out
}

/// Naive GeMM (α = 1, β = 0) with per-step wrapping.
fn naive_gemm(a: &Matrix, b: &Matrix, sew: Sew) -> Matrix {
    let mut r = Matrix::zero(a.rows(), b.cols());
    for i in 0..a.rows() {
        for j in 0..b.cols() {
            let mut acc = 0i64;
            for k in 0..a.cols() {
                acc = wrap(
                    acc.wrapping_add(wrap(a.get(i, k).wrapping_mul(b.get(k, j)), sew)),
                    sew,
                );
            }
            r.set(i, j, acc);
        }
    }
    r
}

fn naive_requant(x: &Matrix, mul: i64, shift: u32, sew: Sew) -> Matrix {
    let mut r = Matrix::zero(x.rows(), x.cols());
    for i in 0..x.rows() {
        for j in 0..x.cols() {
            r.set(
                i,
                j,
                wrap(wrap(x.get(i, j).wrapping_mul(mul), sew) >> shift, sew),
            );
        }
    }
    r
}

fn naive_leaky_relu(x: &Matrix, shift: u32, sew: Sew) -> Matrix {
    let mut r = Matrix::zero(x.rows(), x.cols());
    for i in 0..x.rows() {
        for j in 0..x.cols() {
            let v = x.get(i, j);
            r.set(i, j, wrap(if v >= 0 { v } else { v >> shift }, sew));
        }
    }
    r
}

fn naive_add(a: &Matrix, b: &Matrix, sew: Sew) -> Matrix {
    let mut r = Matrix::zero(a.rows(), a.cols());
    for i in 0..a.rows() {
        for j in 0..a.cols() {
            r.set(i, j, wrap(a.get(i, j).wrapping_add(b.get(i, j)), sew));
        }
    }
    r
}

fn naive_transpose(a: &Matrix) -> Matrix {
    let mut r = Matrix::zero(a.cols(), a.rows());
    for i in 0..a.rows() {
        for j in 0..a.cols() {
            r.set(j, i, a.get(i, j));
        }
    }
    r
}

fn sew_strategy() -> impl Strategy<Value = Sew> {
    prop_oneof![Just(Sew::Byte), Just(Sew::Half), Just(Sew::Word)]
}

proptest! {
    #[test]
    fn depthwise_golden_matches_naive_reference(
        h in 4usize..9,
        w in 4usize..9,
        k in 2usize..4,
        channels in 1usize..5,
        seed in 0u64..500,
    ) {
        prop_assume!(k <= h && k <= w);
        let sew = Sew::Byte;
        let mut rng = workloads::rng(seed);
        let a = workloads::random_matrix(&mut rng, channels * h, w, sew, 20);
        let f = workloads::random_matrix(&mut rng, channels * k, k, sew, 20);
        let golden = workloads::depthwise_conv(&a, &f, channels, sew);
        let naive = naive_depthwise(&a, &f, channels, sew);
        prop_assert_eq!(golden, naive);
    }

    #[test]
    fn residual_bottleneck_golden_matches_naive_chain(
        n in 2usize..7,
        d in 2usize..7,
        shift in 0u32..6,
        relu_shift in 0u32..6,
        seed in 0u64..500,
        sew in sew_strategy(),
    ) {
        let mut rng = workloads::rng(seed);
        let x = workloads::random_matrix(&mut rng, n, d, sew, 30);
        let w1 = workloads::random_matrix(&mut rng, d, d, sew, 30);
        let w2 = workloads::random_matrix(&mut rng, d, d, sew, 30);
        let golden = workloads::residual_bottleneck(&x, &w1, &w2, shift, relu_shift, sew);
        // Naive chain: gemm → requant → relu → gemm → requant → add.
        let h = naive_gemm(&x, &w1, sew);
        let ha = naive_leaky_relu(&naive_requant(&h, 1, shift, sew), relu_shift, sew);
        let y = naive_gemm(&ha, &w2, sew);
        let naive = naive_add(&x, &naive_requant(&y, 1, shift, sew), sew);
        prop_assert_eq!(golden, naive);
    }

    #[test]
    fn transformer_golden_matches_naive_chain(
        t in 2usize..6,
        d in 2usize..6,
        f in 2usize..8,
        seed in 0u64..300,
    ) {
        let sew = Sew::Byte;
        let (shift, relu_shift) = (2u32, 3u32);
        let mut rng = workloads::rng(seed);
        let x = workloads::random_matrix(&mut rng, t, d, sew, 10);
        let wq = workloads::random_matrix(&mut rng, d, d, sew, 10);
        let wk = workloads::random_matrix(&mut rng, d, d, sew, 10);
        let wv = workloads::random_matrix(&mut rng, d, d, sew, 10);
        let w1 = workloads::random_matrix(&mut rng, d, f, sew, 10);
        let w2 = workloads::random_matrix(&mut rng, f, d, sew, 10);
        let golden = workloads::transformer_encoder_block(
            &x, &wq, &wk, &wv, &w1, &w2, shift, relu_shift, sew,
        );
        // Naive chain, op by op.
        let q = naive_gemm(&x, &wq, sew);
        let k = naive_gemm(&x, &wk, sew);
        let v = naive_gemm(&x, &wv, sew);
        let s = naive_gemm(&q, &naive_transpose(&k), sew);
        let a = naive_leaky_relu(&naive_requant(&s, 1, shift, sew), relu_shift, sew);
        let p = naive_gemm(&a, &v, sew);
        let x1 = naive_add(&x, &naive_requant(&p, 1, shift, sew), sew);
        let hh = naive_gemm(&x1, &w1, sew);
        let ha = naive_leaky_relu(&naive_requant(&hh, 1, shift, sew), relu_shift, sew);
        let y = naive_gemm(&ha, &w2, sew);
        let naive = naive_add(&x1, &naive_requant(&y, 1, shift, sew), sew);
        prop_assert_eq!(golden, naive);
    }

    /// The full stack differentially: a random residual-bottleneck
    /// graph run on the simulator must equal the naive chain.
    #[test]
    fn simulated_graph_matches_naive_chain(
        n in 2usize..6,
        d in 2usize..6,
        seed in 0u64..50,
        instances in 1usize..3,
    ) {
        let b = suite::residual_bottleneck(n, d, Sew::Byte, seed);
        let r = b.run_verified(ArcaneConfig::with_lanes(4), instances);
        // run_verified already asserts against the golden model; tie the
        // knot to the naive reference too.
        let naive = {
            let (x, w1, w2) = (&b.inputs[0], &b.inputs[1], &b.inputs[2]);
            let h = naive_gemm(x, w1, Sew::Byte);
            let ha = naive_leaky_relu(
                &naive_requant(&h, 1, suite::SHIFT as u32, Sew::Byte),
                suite::RELU_SHIFT as u32,
                Sew::Byte,
            );
            let y = naive_gemm(&ha, w2, Sew::Byte);
            naive_add(x, &naive_requant(&y, 1, suite::SHIFT as u32, Sew::Byte), Sew::Byte)
        };
        prop_assert_eq!(&r.outputs[0], &naive);
    }
}

/// Engine parity on a graph workload: the predecoded block engine and
/// the reference interpreter must agree bit- and cycle-exactly on the
/// whole transformer chain.
#[test]
fn graph_engines_are_cycle_identical() {
    let b = suite::transformer_block(8, 12, 16, Sew::Byte, 99);
    let opts = CompileOptions::with_instances(2);
    let mut cfg = ArcaneConfig::with_lanes(8);
    cfg.n_vpus = 2;
    let block =
        arcane::nn::run_graph_with_engine(cfg, &b.graph, &b.inputs, &opts, EngineMode::Block);
    let interp =
        arcane::nn::run_graph_with_engine(cfg, &b.graph, &b.inputs, &opts, EngineMode::Interp);
    assert_eq!(block.cycles, interp.cycles, "cycle divergence");
    assert_eq!(block.instret, interp.instret, "instret divergence");
    assert_eq!(block.outputs, interp.outputs, "output divergence");
    assert_eq!(block.outputs[0], b.golden[0], "golden divergence");
}
