//! Differential suite for the `arcane-nn` golden models and runtime.
//!
//! The property tests pit every new golden model (depthwise conv,
//! residual bottleneck with requantise fusion, transformer encoder
//! block) against an **independent naive CPU reference** written here
//! with plain `i64` loops — any divergence between the two derivations
//! of the semantics fails the property. The engine-parity test runs a
//! full graph workload on both host-core engines (predecoded block
//! stepping vs the reference interpreter) and demands bit- and
//! cycle-identical results.

use arcane::core::ArcaneConfig;
use arcane::isa::launch::{DescriptorBatch, LaunchDescriptor, OperandBinding};
use arcane::isa::xmnmc::MatReg;
use arcane::nn::{suite, CompileOptions, LaunchMode};
use arcane::sim::{EngineMode, Sew};
use arcane::workloads::{self, Matrix};
use proptest::prelude::*;

fn wrap(v: i64, sew: Sew) -> i64 {
    workloads::wrap(v, sew)
}

/// Naive depthwise conv: four nested loops per channel, nothing shared
/// with `workloads::depthwise_conv` except the contract.
fn naive_depthwise(a: &Matrix, f: &Matrix, channels: usize, sew: Sew) -> Matrix {
    let h = a.rows() / channels;
    let k = f.cols();
    let (oh, ow) = (h - k + 1, a.cols() - k + 1);
    let mut out = Matrix::zero(channels * oh, ow);
    for c in 0..channels {
        for y in 0..oh {
            for x in 0..ow {
                let mut acc = 0i64;
                for ky in 0..k {
                    for kx in 0..k {
                        let av = a.get(c * h + y + ky, x + kx);
                        let fv = f.get(c * k + ky, kx);
                        acc = wrap(acc.wrapping_add(wrap(av.wrapping_mul(fv), sew)), sew);
                    }
                }
                out.set(c * oh + y, x, acc);
            }
        }
    }
    out
}

/// Naive GeMM (α = 1, β = 0) with per-step wrapping.
fn naive_gemm(a: &Matrix, b: &Matrix, sew: Sew) -> Matrix {
    let mut r = Matrix::zero(a.rows(), b.cols());
    for i in 0..a.rows() {
        for j in 0..b.cols() {
            let mut acc = 0i64;
            for k in 0..a.cols() {
                acc = wrap(
                    acc.wrapping_add(wrap(a.get(i, k).wrapping_mul(b.get(k, j)), sew)),
                    sew,
                );
            }
            r.set(i, j, acc);
        }
    }
    r
}

fn naive_requant(x: &Matrix, mul: i64, shift: u32, sew: Sew) -> Matrix {
    let mut r = Matrix::zero(x.rows(), x.cols());
    for i in 0..x.rows() {
        for j in 0..x.cols() {
            r.set(
                i,
                j,
                wrap(wrap(x.get(i, j).wrapping_mul(mul), sew) >> shift, sew),
            );
        }
    }
    r
}

fn naive_leaky_relu(x: &Matrix, shift: u32, sew: Sew) -> Matrix {
    let mut r = Matrix::zero(x.rows(), x.cols());
    for i in 0..x.rows() {
        for j in 0..x.cols() {
            let v = x.get(i, j);
            r.set(i, j, wrap(if v >= 0 { v } else { v >> shift }, sew));
        }
    }
    r
}

fn naive_add(a: &Matrix, b: &Matrix, sew: Sew) -> Matrix {
    let mut r = Matrix::zero(a.rows(), a.cols());
    for i in 0..a.rows() {
        for j in 0..a.cols() {
            r.set(i, j, wrap(a.get(i, j).wrapping_add(b.get(i, j)), sew));
        }
    }
    r
}

fn naive_transpose(a: &Matrix) -> Matrix {
    let mut r = Matrix::zero(a.cols(), a.rows());
    for i in 0..a.rows() {
        for j in 0..a.cols() {
            r.set(j, i, a.get(i, j));
        }
    }
    r
}

fn sew_strategy() -> impl Strategy<Value = Sew> {
    prop_oneof![Just(Sew::Byte), Just(Sew::Half), Just(Sew::Word)]
}

fn mat_reg() -> impl Strategy<Value = MatReg> {
    (0u8..16).prop_map(|i| MatReg::new(i).unwrap())
}

fn binding() -> impl Strategy<Value = OperandBinding> {
    (
        mat_reg(),
        any::<u32>(),
        any::<u16>(),
        any::<u16>(),
        any::<u16>(),
    )
        .prop_map(|(reg, addr, stride, cols, rows)| OperandBinding {
            reg,
            addr,
            stride,
            cols,
            rows,
        })
}

fn descriptor() -> impl Strategy<Value = LaunchDescriptor> {
    (
        (
            0u8..30,
            sew_strategy(),
            any::<i16>(),
            any::<i16>(),
            any::<u16>(),
        ),
        (mat_reg(), mat_reg(), mat_reg(), mat_reg()),
        prop::collection::vec(binding(), 0..4),
    )
        .prop_map(
            |((kernel, width, alpha, beta, token), (md, ms1, ms2, ms3), bindings)| {
                LaunchDescriptor {
                    kernel,
                    width,
                    alpha,
                    beta,
                    md,
                    ms1,
                    ms2,
                    ms3,
                    bindings,
                    token,
                }
            },
        )
}

proptest! {
    #[test]
    fn depthwise_golden_matches_naive_reference(
        h in 4usize..9,
        w in 4usize..9,
        k in 2usize..4,
        channels in 1usize..5,
        seed in 0u64..500,
    ) {
        prop_assume!(k <= h && k <= w);
        let sew = Sew::Byte;
        let mut rng = workloads::rng(seed);
        let a = workloads::random_matrix(&mut rng, channels * h, w, sew, 20);
        let f = workloads::random_matrix(&mut rng, channels * k, k, sew, 20);
        let golden = workloads::depthwise_conv(&a, &f, channels, sew);
        let naive = naive_depthwise(&a, &f, channels, sew);
        prop_assert_eq!(golden, naive);
    }

    #[test]
    fn residual_bottleneck_golden_matches_naive_chain(
        n in 2usize..7,
        d in 2usize..7,
        shift in 0u32..6,
        relu_shift in 0u32..6,
        seed in 0u64..500,
        sew in sew_strategy(),
    ) {
        let mut rng = workloads::rng(seed);
        let x = workloads::random_matrix(&mut rng, n, d, sew, 30);
        let w1 = workloads::random_matrix(&mut rng, d, d, sew, 30);
        let w2 = workloads::random_matrix(&mut rng, d, d, sew, 30);
        let golden = workloads::residual_bottleneck(&x, &w1, &w2, shift, relu_shift, sew);
        // Naive chain: gemm → requant → relu → gemm → requant → add.
        let h = naive_gemm(&x, &w1, sew);
        let ha = naive_leaky_relu(&naive_requant(&h, 1, shift, sew), relu_shift, sew);
        let y = naive_gemm(&ha, &w2, sew);
        let naive = naive_add(&x, &naive_requant(&y, 1, shift, sew), sew);
        prop_assert_eq!(golden, naive);
    }

    #[test]
    fn transformer_golden_matches_naive_chain(
        t in 2usize..6,
        d in 2usize..6,
        f in 2usize..8,
        seed in 0u64..300,
    ) {
        let sew = Sew::Byte;
        let (shift, relu_shift) = (2u32, 3u32);
        let mut rng = workloads::rng(seed);
        let x = workloads::random_matrix(&mut rng, t, d, sew, 10);
        let wq = workloads::random_matrix(&mut rng, d, d, sew, 10);
        let wk = workloads::random_matrix(&mut rng, d, d, sew, 10);
        let wv = workloads::random_matrix(&mut rng, d, d, sew, 10);
        let w1 = workloads::random_matrix(&mut rng, d, f, sew, 10);
        let w2 = workloads::random_matrix(&mut rng, f, d, sew, 10);
        let golden = workloads::transformer_encoder_block(
            &x, &wq, &wk, &wv, &w1, &w2, shift, relu_shift, sew,
        );
        // Naive chain, op by op.
        let q = naive_gemm(&x, &wq, sew);
        let k = naive_gemm(&x, &wk, sew);
        let v = naive_gemm(&x, &wv, sew);
        let s = naive_gemm(&q, &naive_transpose(&k), sew);
        let a = naive_leaky_relu(&naive_requant(&s, 1, shift, sew), relu_shift, sew);
        let p = naive_gemm(&a, &v, sew);
        let x1 = naive_add(&x, &naive_requant(&p, 1, shift, sew), sew);
        let hh = naive_gemm(&x1, &w1, sew);
        let ha = naive_leaky_relu(&naive_requant(&hh, 1, shift, sew), relu_shift, sew);
        let y = naive_gemm(&ha, &w2, sew);
        let naive = naive_add(&x1, &naive_requant(&y, 1, shift, sew), sew);
        prop_assert_eq!(golden, naive);
    }

    /// Launch descriptors and batch framing are bit-exact inverses:
    /// encode → decode is the identity for any well-formed batch, and
    /// the exact-fuel size accounting matches the encoded stream.
    #[test]
    fn launch_descriptor_batch_round_trips(
        descriptors in prop::collection::vec(descriptor(), 0..12),
    ) {
        let batch = DescriptorBatch { descriptors };
        let words = batch.encode();
        prop_assert_eq!(words.len(), batch.words(), "exact size accounting");
        let back = DescriptorBatch::decode(&words);
        prop_assert_eq!(back.as_ref(), Ok(&batch));
    }

    /// Grant identity of the legacy launch path: the same
    /// legacy-compiled instruction stream must run bit- and
    /// cycle-identically whether the SoC's descriptor decode path is
    /// armed or not — the refactored launch plumbing cannot perturb the
    /// pre-refactor cycle layout.
    #[test]
    fn legacy_launch_cycles_are_invariant_under_the_descriptor_knob(
        n in 2usize..6,
        d in 2usize..6,
        seed in 0u64..40,
        instances in 1usize..3,
    ) {
        use arcane::mem::Memory;
        use arcane::system::{ArcaneSoc, EXT_BASE};

        let b = suite::residual_bottleneck(n, d, Sew::Byte, seed);
        let program =
            arcane::nn::compile(&b.graph, EXT_BASE, &CompileOptions::with_instances(instances))
                .unwrap();
        let run = |launch: LaunchMode| {
            let mut cfg = ArcaneConfig::with_lanes(4);
            cfg.launch = launch;
            let mut soc = ArcaneSoc::new(cfg);
            for (&id, mat) in b.graph.inputs().iter().zip(&b.inputs) {
                let p = program.layout.place(id);
                soc.llc_mut()
                    .ext_mut()
                    .write_bytes(p.addr, &mat.to_bytes(Sew::Byte))
                    .unwrap();
            }
            soc.load_program(&program.asm);
            let run = soc.run(1_000_000_000).unwrap();
            let out = b.graph.outputs()[0];
            let p = program.layout.place(out);
            let mut bytes = vec![0u8; p.rows * p.cols];
            soc.llc().ext().read_bytes(p.addr, &mut bytes).unwrap();
            let total = run.cycles.max(soc.llc().completion_time());
            let batches = soc.llc().launch_stats().batches;
            (total, run.instret, bytes, batches)
        };
        let plain = run(LaunchMode::Legacy);
        let armed = run(LaunchMode::Descriptor);
        prop_assert_eq!(&plain, &armed, "legacy stream must be mode-invariant");
        prop_assert_eq!(plain.3, 0, "no batch may be decoded");
    }

    /// Cross-mode bit-exactness: the descriptor pipeline must compute
    /// exactly what the legacy path computes (run_verified also checks
    /// both against the golden model).
    #[test]
    fn descriptor_mode_matches_legacy_outputs(
        n in 2usize..6,
        d in 2usize..6,
        seed in 0u64..40,
        instances in 1usize..3,
    ) {
        let b = suite::residual_bottleneck(n, d, Sew::Byte, seed);
        let cfg = ArcaneConfig::with_lanes(4);
        let legacy = b.run_verified_with(cfg, &CompileOptions::with_instances(instances));
        let desc = b.run_verified_with(cfg, &CompileOptions::descriptor(instances));
        prop_assert_eq!(&legacy.outputs, &desc.outputs);
        prop_assert_eq!(legacy.kernels, desc.kernels, "same slice structure");
        prop_assert_eq!(desc.launch_stats.descriptors as usize, desc.kernels);
        prop_assert!(desc.launch_stats.batches > 0);
    }

    /// The full stack differentially: a random residual-bottleneck
    /// graph run on the simulator must equal the naive chain.
    #[test]
    fn simulated_graph_matches_naive_chain(
        n in 2usize..6,
        d in 2usize..6,
        seed in 0u64..50,
        instances in 1usize..3,
    ) {
        let b = suite::residual_bottleneck(n, d, Sew::Byte, seed);
        let r = b.run_verified(ArcaneConfig::with_lanes(4), instances);
        // run_verified already asserts against the golden model; tie the
        // knot to the naive reference too.
        let naive = {
            let (x, w1, w2) = (&b.inputs[0], &b.inputs[1], &b.inputs[2]);
            let h = naive_gemm(x, w1, Sew::Byte);
            let ha = naive_leaky_relu(
                &naive_requant(&h, 1, suite::SHIFT as u32, Sew::Byte),
                suite::RELU_SHIFT as u32,
                Sew::Byte,
            );
            let y = naive_gemm(&ha, w2, Sew::Byte);
            naive_add(x, &naive_requant(&y, 1, suite::SHIFT as u32, Sew::Byte), Sew::Byte)
        };
        prop_assert_eq!(&r.outputs[0], &naive);
    }
}

/// Engine parity on a graph workload: the predecoded block engine and
/// the reference interpreter must agree bit- and cycle-exactly on the
/// whole transformer chain.
#[test]
fn graph_engines_are_cycle_identical() {
    let b = suite::transformer_block(8, 12, 16, Sew::Byte, 99);
    let opts = CompileOptions::with_instances(2);
    let mut cfg = ArcaneConfig::with_lanes(8);
    cfg.n_vpus = 2;
    let block =
        arcane::nn::run_graph_with_engine(cfg, &b.graph, &b.inputs, &opts, EngineMode::Block);
    let interp =
        arcane::nn::run_graph_with_engine(cfg, &b.graph, &b.inputs, &opts, EngineMode::Interp);
    assert_eq!(block.cycles, interp.cycles, "cycle divergence");
    assert_eq!(block.instret, interp.instret, "instret divergence");
    assert_eq!(block.outputs, interp.outputs, "output divergence");
    assert_eq!(block.outputs[0], b.golden[0], "golden divergence");
}
