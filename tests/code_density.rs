//! Code-density measurements with the C extension: the paper's cores
//! are RV32IM**C**, and the 128 KiB instruction memory is one of the
//! largest area items in Figure 2 — compressed instructions are the
//! reason it suffices. This test measures how much of each evaluation
//! program the RVC compressor can shrink.

use arcane::isa::{rv32, rvc};
use arcane::sim::Sew;
use arcane::system::programs::{pulp, scalar};
use arcane::system::{ConvLayerParams, Layout};

/// Fraction of a program's instructions that have a compressed form,
/// and the resulting byte savings.
fn density(words: &[u32]) -> (usize, usize, f64) {
    let mut compressible = 0;
    for &w in words {
        if let Ok(i) = rv32::decode(w) {
            if rvc::compress(&i).is_some() {
                compressible += 1;
            }
        }
    }
    let before = words.len() * 4;
    let after = before - compressible * 2;
    (compressible, words.len(), after as f64 / before as f64)
}

#[test]
fn conv_programs_compress_meaningfully() {
    let p = ConvLayerParams::new(64, 64, 3, Sew::Byte);
    let l = Layout::for_conv(&p);
    for (name, program) in [
        ("scalar", scalar::conv_layer(&p, &l)),
        ("xcvpulp", pulp::conv_layer(&p, &l)),
    ] {
        let words = program.assemble(0).unwrap();
        let (n, total, ratio) = density(&words);
        assert!(n > 0, "{name}: some instructions must compress");
        assert!(
            ratio < 0.95,
            "{name}: C extension should save >5% code size (got {ratio:.2})"
        );
        // Sanity: the image itself is small relative to the 128 KiB IMEM.
        assert!(total * 4 < 8 * 1024, "{name}: image {total} instrs");
    }
}

#[test]
fn expansion_preserves_semantics_on_real_programs() {
    // Every compressible instruction of the scalar program must expand
    // back to an instruction with the identical canonical encoding.
    let p = ConvLayerParams::new(16, 16, 3, Sew::Word);
    let l = Layout::for_conv(&p);
    let words = scalar::conv_layer(&p, &l).assemble(0).unwrap();
    let mut checked = 0;
    for &w in &words {
        let i = rv32::decode(w).unwrap();
        if let Some(c) = rvc::compress(&i) {
            let back = rvc::decode(c).unwrap();
            assert_eq!(rv32::encode(&back), rv32::encode(&i), "{i}");
            checked += 1;
        }
    }
    assert!(checked > 10, "exercised {checked} expansions");
}
