//! Property-based tests on the core data structures and invariants.

use arcane::core::cache::{CacheTable, ResourceChannel, Victim};
use arcane::isa::reg::Gpr;
use arcane::isa::rv32::{self, AluImmOp, AluOp, BranchOp, Instr, LoadOp, StoreOp};
use arcane::isa::vector::{self, all_vops, Sr, VInstr, Vr};
use arcane::isa::xmnmc::{self, XInstr};
use arcane::mem::{Dma2d, DmaJob, Memory, Sram};
use arcane::sim::Sew;
use arcane::vpu::{Vpu, VpuConfig};
use arcane::workloads;
use proptest::prelude::*;

fn gpr() -> impl Strategy<Value = Gpr> {
    (0u8..32).prop_map(|i| Gpr::new(i).unwrap())
}

fn sew() -> impl Strategy<Value = Sew> {
    prop_oneof![Just(Sew::Byte), Just(Sew::Half), Just(Sew::Word)]
}

fn rv32_instr() -> impl Strategy<Value = Instr> {
    let imm12 = -2048i32..2048;
    let branch_off = (-2048i32..2048).prop_map(|x| x * 2);
    let jal_off = (-100_000i32..100_000).prop_map(|x| x * 2);
    prop_oneof![
        (gpr(), any::<u32>()).prop_map(|(rd, v)| Instr::Lui {
            rd,
            imm: v & 0xffff_f000
        }),
        (gpr(), any::<u32>()).prop_map(|(rd, v)| Instr::Auipc {
            rd,
            imm: v & 0xffff_f000
        }),
        (gpr(), jal_off).prop_map(|(rd, offset)| Instr::Jal { rd, offset }),
        (gpr(), gpr(), imm12.clone()).prop_map(|(rd, rs1, offset)| Instr::Jalr { rd, rs1, offset }),
        (
            prop_oneof![
                Just(BranchOp::Eq),
                Just(BranchOp::Ne),
                Just(BranchOp::Lt),
                Just(BranchOp::Ge),
                Just(BranchOp::Ltu),
                Just(BranchOp::Geu)
            ],
            gpr(),
            gpr(),
            branch_off
        )
            .prop_map(|(op, rs1, rs2, offset)| Instr::Branch {
                op,
                rs1,
                rs2,
                offset
            }),
        (
            prop_oneof![
                Just(LoadOp::Lb),
                Just(LoadOp::Lh),
                Just(LoadOp::Lw),
                Just(LoadOp::Lbu),
                Just(LoadOp::Lhu)
            ],
            gpr(),
            gpr(),
            imm12.clone()
        )
            .prop_map(|(op, rd, rs1, offset)| Instr::Load {
                op,
                rd,
                rs1,
                offset
            }),
        (
            prop_oneof![Just(StoreOp::Sb), Just(StoreOp::Sh), Just(StoreOp::Sw)],
            gpr(),
            gpr(),
            imm12.clone()
        )
            .prop_map(|(op, rs2, rs1, offset)| Instr::Store {
                op,
                rs2,
                rs1,
                offset
            }),
        (
            prop_oneof![
                Just(AluImmOp::Addi),
                Just(AluImmOp::Slti),
                Just(AluImmOp::Sltiu),
                Just(AluImmOp::Xori),
                Just(AluImmOp::Ori),
                Just(AluImmOp::Andi)
            ],
            gpr(),
            gpr(),
            imm12
        )
            .prop_map(|(op, rd, rs1, imm)| Instr::OpImm { op, rd, rs1, imm }),
        (
            prop_oneof![
                Just(AluImmOp::Slli),
                Just(AluImmOp::Srli),
                Just(AluImmOp::Srai)
            ],
            gpr(),
            gpr(),
            0i32..32
        )
            .prop_map(|(op, rd, rs1, imm)| Instr::OpImm { op, rd, rs1, imm }),
        (
            prop_oneof![
                Just(AluOp::Add),
                Just(AluOp::Sub),
                Just(AluOp::Sll),
                Just(AluOp::Slt),
                Just(AluOp::Sltu),
                Just(AluOp::Xor),
                Just(AluOp::Srl),
                Just(AluOp::Sra),
                Just(AluOp::Or),
                Just(AluOp::And),
                Just(AluOp::Mul),
                Just(AluOp::Mulh),
                Just(AluOp::Mulhsu),
                Just(AluOp::Mulhu),
                Just(AluOp::Div),
                Just(AluOp::Divu),
                Just(AluOp::Rem),
                Just(AluOp::Remu)
            ],
            gpr(),
            gpr(),
            gpr()
        )
            .prop_map(|(op, rd, rs1, rs2)| Instr::Op { op, rd, rs1, rs2 }),
    ]
}

proptest! {
    #[test]
    fn rv32_encode_decode_roundtrip(instr in rv32_instr()) {
        let word = rv32::encode(&instr);
        prop_assert_eq!(rv32::decode(word).unwrap(), instr);
    }

    #[test]
    fn xmnmc_encode_decode_roundtrip(
        func5 in 0u8..32,
        sew in sew(),
        rs1 in gpr(),
        rs2 in gpr(),
        rs3 in gpr(),
    ) {
        let x = XInstr { func5, width: sew, rs1, rs2, rs3 };
        let word = xmnmc::encode_raw(&x);
        prop_assert_eq!(xmnmc::decode_raw(word).unwrap(), x);
    }

    #[test]
    fn vector_encode_decode_roundtrip(
        class in 0usize..9,
        op_idx in 0usize..12,
        vd in 0u8..32,
        vs1 in 0u8..32,
        b in 0u8..32,
        imm in 0u16..1024,
        sew in sew(),
    ) {
        let vd = Vr::new(vd).unwrap();
        let vs1 = Vr::new(vs1).unwrap();
        let vs2 = Vr::new(b).unwrap();
        let rs = Sr::new(b).unwrap();
        let op = all_vops()[op_idx];
        let v = match class {
            0 => VInstr::SetVl { vl: imm, sew },
            1 => VInstr::OpVV { op, vd, vs1, vs2 },
            2 => VInstr::OpVX { op, vd, vs1, rs },
            3 => VInstr::SlideDown { vd, vs1, offset: imm },
            4 => VInstr::SlideUp { vd, vs1, offset: imm },
            5 => VInstr::BroadcastX { vd, rs },
            6 => VInstr::Move { vd, vs1 },
            7 => VInstr::RedSum { vd, vs1 },
            _ => VInstr::RedMax { vd, vs1 },
        };
        let word = vector::encode(&v);
        prop_assert_eq!(vector::decode(word).unwrap(), v);
    }

    #[test]
    fn dma_2d_equals_reference_copy(
        rows in 1u32..8,
        cols in 1u32..16,
        elem in prop_oneof![Just(1u32), Just(2), Just(4)],
        src_pad in 0u32..8,
        dst_pad in 0u32..8,
    ) {
        let row_bytes = cols * elem;
        let src_stride = row_bytes + src_pad;
        let dst_stride = row_bytes + dst_pad;
        let src_size = (src_stride * rows + 64) as usize;
        let dst_size = (dst_stride * rows + 64) as usize;
        let mut src = Sram::new(0, src_size);
        for i in 0..src_size {
            src.write_bytes(i as u32, &[(i * 37 + 11) as u8]).unwrap();
        }
        let mut dst = Sram::new(0x10_0000, dst_size);
        let job = DmaJob {
            src: 0,
            dst: 0x10_0000,
            elem_bytes: elem,
            cols,
            rows,
            src_stride,
            dst_stride,
        };
        Dma2d::default().execute(&job, &src, &mut dst).unwrap();
        // Reference: row-by-row copy.
        for r in 0..rows {
            let mut want = vec![0u8; row_bytes as usize];
            src.read_bytes(r * src_stride, &mut want).unwrap();
            let mut got = vec![0u8; row_bytes as usize];
            dst.read_bytes(0x10_0000 + r * dst_stride, &mut got).unwrap();
            prop_assert_eq!(got, want, "row {}", r);
        }
    }

    #[test]
    fn vpu_elementwise_matches_golden_semantics(
        sew in sew(),
        op_idx in 0usize..6,
        data_a in prop::collection::vec(-128i64..128, 1..32),
        data_b in prop::collection::vec(-128i64..128, 1..32),
    ) {
        use arcane::isa::vector::VOp;
        let n = data_a.len().min(data_b.len());
        let ops = [VOp::Add, VOp::Sub, VOp::Mul, VOp::Macc, VOp::Max, VOp::Min];
        let op = ops[op_idx];
        let mut vpu = Vpu::new(VpuConfig::with_lanes(4));
        let a = workloads::Matrix::from_values(1, n, &data_a[..n]);
        let b = workloads::Matrix::from_values(1, n, &data_b[..n]);
        vpu.line_mut(0)[..n * sew.bytes()].copy_from_slice(&a.to_bytes(sew));
        vpu.line_mut(1)[..n * sew.bytes()].copy_from_slice(&b.to_bytes(sew));
        vpu.line_mut(2).fill(0);
        let v = |i| Vr::new(i).unwrap();
        vpu.execute(&[
            VInstr::SetVl { vl: n as u16, sew },
            VInstr::OpVV { op, vd: v(2), vs1: v(0), vs2: v(1) },
        ]).unwrap();
        let got = workloads::Matrix::from_bytes(1, n, sew, vpu.line(2));
        for i in 0..n {
            let (x, y) = (workloads::wrap(data_a[i], sew), workloads::wrap(data_b[i], sew));
            let want = match op {
                VOp::Add => workloads::wrap(x + y, sew),
                VOp::Sub => workloads::wrap(x - y, sew),
                VOp::Mul => workloads::wrap(x.wrapping_mul(y), sew),
                VOp::Macc => workloads::wrap(x.wrapping_mul(y), sew), // acc started at 0
                VOp::Max => x.max(y),
                VOp::Min => x.min(y),
                _ => unreachable!(),
            };
            prop_assert_eq!(got.get(0, i), want, "op {:?} elem {}", op, i);
        }
    }

    #[test]
    fn cache_table_invariants_under_random_traffic(
        addrs in prop::collection::vec(0u32..(64 * 1024), 1..200),
        writes in prop::collection::vec(any::<bool>(), 1..200),
    ) {
        let mut t = CacheTable::new(16, 1024);
        for (i, &addr) in addrs.iter().enumerate() {
            let write = writes[i % writes.len()];
            let line = match t.lookup(addr) {
                Some(l) => l,
                None => match t.victim(0) {
                    Victim::Line(l) => {
                        let tag = t.tag_of(addr);
                        let s = t.line_mut(l);
                        s.tag = tag;
                        s.valid = true;
                        s.dirty = false;
                        l
                    }
                    Victim::AllBusyUntil(_) => unreachable!("no busy lines"),
                },
            };
            if write {
                t.line_mut(line).dirty = true;
            }
            t.touch(line);
            prop_assert!(t.check_no_duplicate_tags());
            // dirty implies valid
            for j in 0..t.len() {
                let l = t.line(j);
                prop_assert!(!l.dirty || l.valid);
            }
        }
    }

    #[test]
    fn resource_channel_windows_never_overlap(
        reqs in prop::collection::vec((0u64..1000, 1u64..50), 1..60),
    ) {
        let mut chan = ResourceChannel::new();
        let mut granted: Vec<(u64, u64)> = Vec::new();
        for (earliest, dur) in reqs {
            let (s, e) = chan.reserve(earliest, dur);
            prop_assert!(s >= earliest);
            prop_assert_eq!(e - s, dur);
            granted.push((s, e));
        }
        granted.sort_unstable();
        for w in granted.windows(2) {
            prop_assert!(w[0].1 <= w[1].0, "windows overlap: {:?}", w);
        }
    }

    #[test]
    fn conv_layer_slices_compose_to_full(
        h in 5usize..12,
        w in 5usize..12,
        seed in 0u64..1000,
    ) {
        let k = 3;
        prop_assume!(h >= k && w >= k);
        let conv_rows = (h - k + 1) & !1;
        prop_assume!(conv_rows >= 4);
        let mut rng = workloads::rng(seed);
        let a = workloads::random_matrix(&mut rng, 3 * h, w, Sew::Byte, 4);
        let f = workloads::random_matrix(&mut rng, 3 * k, k, Sew::Byte, 4);
        let full = workloads::conv_layer_3ch(&a, &f, Sew::Byte);
        let cut = (conv_rows / 2) & !1;
        let top = workloads::conv_layer_3ch_slice(&a, &f, Sew::Byte, 0, cut);
        let bot = workloads::conv_layer_3ch_slice(&a, &f, Sew::Byte, cut, conv_rows - cut);
        for y in 0..full.rows() {
            for x in 0..full.cols() {
                let want = full.get(y, x);
                let got = if y < cut / 2 { top.get(y, x) } else { bot.get(y - cut / 2, x) };
                prop_assert_eq!(got, want, "({}, {})", y, x);
            }
        }
    }
}
