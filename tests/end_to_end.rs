//! End-to-end integration tests: every Table I kernel offloaded through
//! the bridge produces results bit-identical to the golden models, for
//! random shapes and all data widths.

use arcane::core::{ArcaneConfig, ArcaneLlc};
use arcane::isa::reg::{A0, A1, A2};
use arcane::isa::xmnmc::{self, kernel_id, MatReg, XInstr, FUNC5_XMR};
use arcane::mem::Memory;
use arcane::rv32::{Coprocessor, XifResponse};
use arcane::sim::Sew;
use arcane::workloads::{self, Matrix};

const BASE: u32 = 0x2000_0000;

struct Rig {
    llc: ArcaneLlc,
    now: u64,
}

impl Rig {
    fn new(lanes: usize) -> Self {
        Rig {
            llc: ArcaneLlc::new(ArcaneConfig::with_lanes(lanes)),
            now: 0,
        }
    }

    fn write(&mut self, addr: u32, m: &Matrix, sew: Sew) {
        self.llc
            .ext_mut()
            .write_bytes(addr, &m.to_bytes(sew))
            .unwrap();
    }

    fn read(&self, addr: u32, rows: usize, cols: usize, sew: Sew) -> Matrix {
        let mut buf = vec![0u8; rows * cols * sew.bytes()];
        self.llc.ext().read_bytes(addr, &mut buf).unwrap();
        Matrix::from_bytes(rows, cols, sew, &buf)
    }

    fn xmr(&mut self, reg: u8, addr: u32, rows: usize, cols: usize, sew: Sew) {
        let m = MatReg::new(reg).unwrap();
        let (r1, r2, r3) = xmnmc::pack_xmr(addr, 1, m, cols as u16, rows as u16);
        let x = XInstr {
            func5: FUNC5_XMR,
            width: sew,
            rs1: A0,
            rs2: A1,
            rs3: A2,
        };
        let resp = self
            .llc
            .offload(xmnmc::encode_raw(&x), r1, r2, r3, self.now);
        assert!(matches!(resp, XifResponse::Accept { .. }), "xmr rejected");
        self.now += 10;
    }

    #[allow(clippy::too_many_arguments)]
    fn xmk(&mut self, id: u8, sew: Sew, alpha: i16, beta: i16, md: u8, ms1: u8, ms2: u8, ms3: u8) {
        let m = |i| MatReg::new(i).unwrap();
        let (r1, r2, r3) = xmnmc::pack_kernel(alpha, beta, m(md), m(ms1), m(ms2), m(ms3));
        let x = XInstr {
            func5: id,
            width: sew,
            rs1: A0,
            rs2: A1,
            rs3: A2,
        };
        let resp = self
            .llc
            .offload(xmnmc::encode_raw(&x), r1, r2, r3, self.now);
        assert!(
            matches!(resp, XifResponse::Accept { .. }),
            "kernel {id} rejected: {:?}",
            self.llc.last_error()
        );
        self.now += 10;
    }
}

#[test]
fn gemm_matches_golden_all_widths() {
    let mut rng = workloads::rng(11);
    for sew in Sew::ALL {
        for (m, k, n) in [(4usize, 6usize, 8usize), (17, 9, 23), (32, 32, 32)] {
            let a = workloads::random_matrix(&mut rng, m, k, sew, 4);
            let b = workloads::random_matrix(&mut rng, k, n, sew, 4);
            let c = workloads::random_matrix(&mut rng, m, n, sew, 4);
            let mut rig = Rig::new(4);
            let (pa, pb, pc, pr) = (BASE, BASE + 0x10000, BASE + 0x20000, BASE + 0x30000);
            rig.write(pa, &a, sew);
            rig.write(pb, &b, sew);
            rig.write(pc, &c, sew);
            rig.xmr(0, pa, m, k, sew);
            rig.xmr(1, pb, k, n, sew);
            rig.xmr(2, pc, m, n, sew);
            rig.xmr(3, pr, m, n, sew);
            // R = 2*A*B + 1*C
            rig.xmk(kernel_id::GEMM, sew, 2, 1, 3, 0, 1, 2);
            let got = rig.read(pr, m, n, sew);
            let want = workloads::gemm(&a, &b, Some(&c), 2, 1, sew);
            assert_eq!(got, want, "gemm {m}x{k}x{n} {sew}");
        }
    }
}

#[test]
fn gemm_without_beta_ignores_c() {
    let mut rng = workloads::rng(12);
    let sew = Sew::Half;
    let a = workloads::random_matrix(&mut rng, 5, 7, sew, 8);
    let b = workloads::random_matrix(&mut rng, 7, 3, sew, 8);
    let mut rig = Rig::new(2);
    let (pa, pb, pr) = (BASE, BASE + 0x8000, BASE + 0x10000);
    rig.write(pa, &a, sew);
    rig.write(pb, &b, sew);
    rig.xmr(0, pa, 5, 7, sew);
    rig.xmr(1, pb, 7, 3, sew);
    rig.xmr(2, pr, 5, 3, sew);
    rig.xmk(kernel_id::GEMM, sew, 1, 0, 2, 0, 1, 0);
    let got = rig.read(pr, 5, 3, sew);
    assert_eq!(got, workloads::gemm(&a, &b, None, 1, 0, sew));
}

#[test]
fn leaky_relu_matches_golden() {
    let mut rng = workloads::rng(13);
    for sew in Sew::ALL {
        let x = workloads::random_matrix(&mut rng, 19, 33, sew, 100);
        let mut rig = Rig::new(4);
        let (px, pr) = (BASE, BASE + 0x10000);
        rig.write(px, &x, sew);
        rig.xmr(0, px, 19, 33, sew);
        rig.xmr(1, pr, 19, 33, sew);
        rig.xmk(kernel_id::LEAKY_RELU, sew, 3, 0, 1, 0, 0, 0);
        let got = rig.read(pr, 19, 33, sew);
        assert_eq!(got, workloads::leaky_relu(&x, 3, sew), "{sew}");
    }
}

#[test]
fn maxpool_matches_golden_various_windows() {
    let mut rng = workloads::rng(14);
    let sew = Sew::Byte;
    for (win, stride) in [(2usize, 2usize), (3, 1), (3, 3), (4, 2)] {
        let x = workloads::random_matrix(&mut rng, 21, 30, sew, 100);
        let want = workloads::maxpool(&x, win, stride);
        let mut rig = Rig::new(8);
        let (px, pr) = (BASE, BASE + 0x10000);
        rig.write(px, &x, sew);
        rig.xmr(0, px, 21, 30, sew);
        rig.xmr(1, pr, want.rows(), want.cols(), sew);
        rig.xmk(
            kernel_id::MAXPOOL,
            sew,
            stride as i16,
            win as i16,
            1,
            0,
            0,
            0,
        );
        let got = rig.read(pr, want.rows(), want.cols(), sew);
        assert_eq!(got, want, "win={win} stride={stride}");
    }
}

#[test]
fn conv2d_matches_golden() {
    let mut rng = workloads::rng(15);
    for sew in Sew::ALL {
        for k in [1usize, 3, 5] {
            let a = workloads::random_matrix(&mut rng, 20, 26, sew, 4);
            let f = workloads::random_matrix(&mut rng, k, k, sew, 4);
            let want = workloads::conv2d(&a, &f, sew);
            let mut rig = Rig::new(4);
            let (pa, pf, pr) = (BASE, BASE + 0x10000, BASE + 0x20000);
            rig.write(pa, &a, sew);
            rig.write(pf, &f, sew);
            rig.xmr(0, pa, 20, 26, sew);
            rig.xmr(1, pf, k, k, sew);
            rig.xmr(2, pr, want.rows(), want.cols(), sew);
            rig.xmk(kernel_id::CONV2D, sew, 0, 0, 2, 0, 1, 0);
            let got = rig.read(pr, want.rows(), want.cols(), sew);
            assert_eq!(got, want, "conv2d k={k} {sew}");
        }
    }
}

#[test]
fn conv_layer_matches_golden_odd_shapes() {
    let mut rng = workloads::rng(16);
    // Deliberately awkward shapes: non-square, odd conv rows (floored
    // pooling), every width.
    for sew in Sew::ALL {
        for (h, w, k) in [(9usize, 13usize, 3usize), (12, 20, 5), (15, 16, 7)] {
            let a = workloads::random_matrix(&mut rng, 3 * h, w, sew, 4);
            let f = workloads::random_matrix(&mut rng, 3 * k, k, sew, 4);
            let want = workloads::conv_layer_3ch(&a, &f, sew);
            let mut rig = Rig::new(8);
            let (pa, pf, pr) = (BASE, BASE + 0x40000, BASE + 0x50000);
            rig.write(pa, &a, sew);
            rig.write(pf, &f, sew);
            rig.xmr(0, pa, 3 * h, w, sew);
            rig.xmr(1, pf, 3 * k, k, sew);
            rig.xmr(2, pr, want.rows(), want.cols(), sew);
            rig.xmk(kernel_id::CONV_LAYER_3CH, sew, 0, 0, 2, 0, 1, 0);
            let got = rig.read(pr, want.rows(), want.cols(), sew);
            assert_eq!(got, want, "conv_layer {h}x{w} k={k} {sew}");
        }
    }
}

#[test]
fn kernel_chain_reuses_destination_as_source() {
    // R1 = conv2d(A, F); R2 = leaky_relu(R1): the second kernel must
    // consume the first one's destination (renamed bindings, AT order).
    let mut rng = workloads::rng(17);
    let sew = Sew::Word;
    let a = workloads::random_matrix(&mut rng, 12, 12, sew, 5);
    let f = workloads::random_matrix(&mut rng, 3, 3, sew, 5);
    let conv = workloads::conv2d(&a, &f, sew);
    let want = workloads::leaky_relu(&conv, 2, sew);
    let mut rig = Rig::new(4);
    let (pa, pf, p1, p2) = (BASE, BASE + 0x8000, BASE + 0x10000, BASE + 0x18000);
    rig.write(pa, &a, sew);
    rig.write(pf, &f, sew);
    rig.xmr(0, pa, 12, 12, sew);
    rig.xmr(1, pf, 3, 3, sew);
    rig.xmr(2, p1, conv.rows(), conv.cols(), sew);
    rig.xmk(kernel_id::CONV2D, sew, 0, 0, 2, 0, 1, 0);
    rig.xmr(3, p2, conv.rows(), conv.cols(), sew);
    rig.xmk(kernel_id::LEAKY_RELU, sew, 2, 0, 3, 2, 0, 0);
    let got = rig.read(p2, want.rows(), want.cols(), sew);
    assert_eq!(got, want);
    assert_eq!(rig.llc.records().len(), 2);
}

#[test]
fn multi_instance_slices_equal_full_run() {
    let mut rng = workloads::rng(18);
    let sew = Sew::Byte;
    let (h, w, k) = (22usize, 24usize, 3usize);
    let a = workloads::random_matrix(&mut rng, 3 * h, w, sew, 4);
    let f = workloads::random_matrix(&mut rng, 3 * k, k, sew, 4);
    let want = workloads::conv_layer_3ch(&a, &f, sew);
    let mut rig = Rig::new(8);
    let (pa, pf, pr) = (BASE, BASE + 0x20000, BASE + 0x28000);
    rig.write(pa, &a, sew);
    rig.write(pf, &f, sew);
    rig.xmr(0, pa, 3 * h, w, sew);
    rig.xmr(1, pf, 3 * k, k, sew);
    // Two slices of 10 conv rows each (conv_h = 20).
    let pw = want.cols();
    let esz = sew.bytes() as u32;
    rig.xmr(2, pr, 5, pw, sew);
    rig.xmk(kernel_id::CONV_LAYER_3CH, sew, 0, 10, 2, 0, 1, 0);
    rig.xmr(3, pr + 5 * pw as u32 * esz, 5, pw, sew);
    rig.xmk(kernel_id::CONV_LAYER_3CH, sew, 10, 10, 3, 0, 1, 0);
    let got = rig.read(pr, want.rows(), want.cols(), sew);
    assert_eq!(got, want);
    // The scheduler must have spread the slices over distinct VPUs.
    let v0 = rig.llc.records()[0].vpu;
    let v1 = rig.llc.records()[1].vpu;
    assert_ne!(v0, v1, "slices should run on different VPUs");
}

#[test]
fn wider_lanes_never_slow_a_kernel_down() {
    let mut rng = workloads::rng(19);
    let sew = Sew::Word;
    let a = workloads::random_matrix(&mut rng, 3 * 20, 32, sew, 4);
    let f = workloads::random_matrix(&mut rng, 9, 3, sew, 4);
    let mut cycles = Vec::new();
    for lanes in [2usize, 4, 8] {
        let mut rig = Rig::new(lanes);
        let (pa, pf, pr) = (BASE, BASE + 0x20000, BASE + 0x28000);
        rig.write(pa, &a, sew);
        rig.write(pf, &f, sew);
        rig.xmr(0, pa, 60, 32, sew);
        rig.xmr(1, pf, 9, 3, sew);
        rig.xmr(2, pr, 9, 15, sew);
        rig.xmk(kernel_id::CONV_LAYER_3CH, sew, 0, 0, 2, 0, 1, 0);
        let rec = rig.llc.records()[0];
        cycles.push(rec.phases.total());
    }
    assert!(cycles[0] > cycles[1], "4 lanes beat 2: {cycles:?}");
    assert!(cycles[1] > cycles[2], "8 lanes beat 4: {cycles:?}");
}

#[test]
fn mat_add_matches_golden() {
    let mut rng = workloads::rng(21);
    for sew in Sew::ALL {
        let a = workloads::random_matrix(&mut rng, 37, 29, sew, 100);
        let b = workloads::random_matrix(&mut rng, 37, 29, sew, 100);
        let mut rig = Rig::new(4);
        let (pa, pb, pr) = (BASE, BASE + 0x10000, BASE + 0x20000);
        rig.write(pa, &a, sew);
        rig.write(pb, &b, sew);
        rig.xmr(0, pa, 37, 29, sew);
        rig.xmr(1, pb, 37, 29, sew);
        rig.xmr(2, pr, 37, 29, sew);
        rig.xmk(kernel_id::MAT_ADD, sew, 0, 0, 2, 0, 1, 0);
        let got = rig.read(pr, 37, 29, sew);
        assert_eq!(got, workloads::mat_add(&a, &b, sew), "{sew}");
    }
}

#[test]
fn mat_scale_matches_golden() {
    let mut rng = workloads::rng(22);
    for sew in Sew::ALL {
        let a = workloads::random_matrix(&mut rng, 11, 40, sew, 100);
        let mut rig = Rig::new(2);
        let (pa, pr) = (BASE, BASE + 0x10000);
        rig.write(pa, &a, sew);
        rig.xmr(0, pa, 11, 40, sew);
        rig.xmr(1, pr, 11, 40, sew);
        // R = (A * 5) >> 2
        rig.xmk(kernel_id::MAT_SCALE, sew, 5, 2, 1, 0, 0, 0);
        let got = rig.read(pr, 11, 40, sew);
        assert_eq!(got, workloads::mat_scale(&a, 5, 2, sew), "{sew}");
    }
}

#[test]
fn transpose_matches_golden() {
    let mut rng = workloads::rng(23);
    for sew in Sew::ALL {
        let a = workloads::random_matrix(&mut rng, 13, 26, sew, 100);
        let want = workloads::transpose(&a);
        let mut rig = Rig::new(4);
        let (pa, pr) = (BASE, BASE + 0x10000);
        rig.write(pa, &a, sew);
        rig.xmr(0, pa, 13, 26, sew);
        rig.xmr(1, pr, 26, 13, sew);
        rig.xmk(kernel_id::TRANSPOSE, sew, 0, 0, 1, 0, 0, 0);
        let got = rig.read(pr, 26, 13, sew);
        assert_eq!(got, want, "{sew}");
    }
}

#[test]
fn double_transpose_is_identity() {
    let mut rng = workloads::rng(24);
    let sew = Sew::Half;
    let a = workloads::random_matrix(&mut rng, 9, 17, sew, 500);
    let mut rig = Rig::new(4);
    let (pa, p1, p2) = (BASE, BASE + 0x10000, BASE + 0x20000);
    rig.write(pa, &a, sew);
    rig.xmr(0, pa, 9, 17, sew);
    rig.xmr(1, p1, 17, 9, sew);
    rig.xmk(kernel_id::TRANSPOSE, sew, 0, 0, 1, 0, 0, 0);
    rig.xmr(2, p2, 9, 17, sew);
    rig.xmk(kernel_id::TRANSPOSE, sew, 0, 0, 2, 1, 0, 0);
    let got = rig.read(p2, 9, 17, sew);
    assert_eq!(got, a);
}
