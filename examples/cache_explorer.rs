//! The "cache half" of ARCANE: run a pure memory workload through the
//! smart LLC in normal mode, then launch a kernel and watch the
//! hazard/lock machinery stall conflicting host accesses (WAR on a
//! source, RAW on the destination) exactly as §III-A prescribes.
//!
//! Run with: `cargo run --release --example cache_explorer`

use arcane::core::{ArcaneConfig, ArcaneLlc};
use arcane::isa::reg::{A0, A1, A2};
use arcane::isa::xmnmc::{self, kernel_id, MatReg, XInstr};
use arcane::mem::{AccessSize, Memory};
use arcane::rv32::Coprocessor;
use arcane::sim::Sew;

fn main() {
    let mut llc = ArcaneLlc::new(ArcaneConfig::with_lanes(4));
    let base = 0x2000_0000u32;

    // --- normal cache mode -------------------------------------------------
    println!("== normal cache mode ==");
    // Miss, then hit on the same line; then a streaming sweep that evicts.
    let miss = llc
        .host_access(base, false, 0, AccessSize::Word, 0)
        .unwrap();
    let hit = llc
        .host_access(base + 4, false, 0, AccessSize::Word, 10)
        .unwrap();
    println!(
        "first touch : {} cycles (line fill from PSRAM)",
        miss.cycles
    );
    println!("second touch: {} cycle  (single-cycle hit)", hit.cycles);
    let mut t = 100u64;
    for i in 0..256u32 {
        let a = llc
            .host_access(base + i * 1024, true, i, AccessSize::Word, t)
            .unwrap();
        t += a.cycles;
    }
    let s = llc.stats();
    println!(
        "after streaming 256 lines: {} hits, {} misses, {} writebacks (128-line LLC)",
        s.hits.get(),
        s.misses.get(),
        s.writebacks.get()
    );

    // --- compute mode: hazards ---------------------------------------------
    println!("\n== compute mode: hazard management ==");
    let a_addr = base + 0x10_0000;
    let r_addr = base + 0x11_0000;
    for i in 0..(3 * 16 * 16) {
        llc.ext_mut().write_u32(a_addr + i * 4, 1).unwrap();
    }
    for i in 0..(3 * 3 * 3) {
        llc.ext_mut().write_u32(a_addr + 0x8000 + i * 4, 1).unwrap();
    }
    let m = |i| MatReg::new(i).unwrap();
    let x = |f| XInstr {
        func5: f,
        width: Sew::Word,
        rs1: A0,
        rs2: A1,
        rs3: A2,
    };
    let now = t;
    let (r1, r2, r3) = xmnmc::pack_xmr(a_addr, 1, m(0), 16, 48);
    llc.offload(xmnmc::encode_raw(&x(31)), r1, r2, r3, now);
    let (r1, r2, r3) = xmnmc::pack_xmr(a_addr + 0x8000, 1, m(1), 3, 9);
    llc.offload(xmnmc::encode_raw(&x(31)), r1, r2, r3, now + 4);
    let (r1, r2, r3) = xmnmc::pack_xmr(r_addr, 1, m(2), 7, 7);
    llc.offload(xmnmc::encode_raw(&x(31)), r1, r2, r3, now + 8);
    let (r1, r2, r3) = xmnmc::pack_kernel(0, 0, m(2), m(0), m(1), m(0));
    llc.offload(
        xmnmc::encode_raw(&x(kernel_id::CONV_LAYER_3CH)),
        r1,
        r2,
        r3,
        now + 12,
    );
    let rec = llc.records()[0];
    println!(
        "kernel scheduled on VPU {}: decode@{} .. writeback done@{}",
        rec.vpu, rec.decode_start, rec.end
    );

    // WAR: a store to the source region right after offload must stall
    // until allocation finishes; a plain load passes.
    let st = llc
        .host_access(a_addr, true, 99, AccessSize::Word, now + 16)
        .unwrap();
    let ld = llc
        .host_access(a_addr + 4, false, 0, AccessSize::Word, now + 16)
        .unwrap();
    println!(
        "store to kernel source : {} cycles (WAR stall until allocation)",
        st.cycles
    );
    println!("load of kernel source  : {} cycles (loads pass)", ld.cycles);

    // RAW: reading the destination stalls until writeback completes and
    // then returns the fresh result (all-ones conv -> 27).
    let rd = llc
        .host_access(r_addr, false, 0, AccessSize::Word, now + 20)
        .unwrap();
    println!(
        "load of kernel dest    : {} cycles (RAW stall until writeback), value = {}",
        rd.cycles, rd.data
    );
    assert_eq!(rd.data, 27);
    println!(
        "\nstall bookkeeping: {} stalled accesses, {} total stall cycles",
        llc.stats().stalls.get(),
        llc.stats().stall_cycles.get()
    );

    // Where the shared-path cycles went: the eCPU plus every fabric
    // port (host slave path + one port per VPU controller).
    println!("\n== per-channel utilisation ==");
    print!(
        "{}",
        arcane::system::format_channel_table(&llc.channel_utilisation())
    );
}
