//! A quantised MLP layer as a kernel chain: `H = LeakyReLU((X·Wᵀ)·2⁻ᵟ)`
//! built from four chained `xmnmc` kernels — transpose, GeMM,
//! requantisation and activation — where each kernel consumes the
//! previous one's destination. The C-RT's Address Table and renaming
//! keep the chain correct without any explicit synchronisation in the
//! host program.
//!
//! Run with: `cargo run --release --example mlp_layer`

use arcane::core::{ArcaneConfig, ArcaneLlc};
use arcane::isa::reg::{A0, A1, A2};
use arcane::isa::xmnmc::{self, kernel_id, MatReg, XInstr, FUNC5_XMR};
use arcane::mem::Memory;
use arcane::rv32::{Coprocessor, XifResponse};
use arcane::sim::Sew;
use arcane::workloads::{self, Matrix};

const BASE: u32 = 0x2000_0000;

fn offload(llc: &mut ArcaneLlc, func5: u8, sew: Sew, vals: (u32, u32, u32), t: u64) {
    let x = XInstr {
        func5,
        width: sew,
        rs1: A0,
        rs2: A1,
        rs3: A2,
    };
    match llc.offload(xmnmc::encode_raw(&x), vals.0, vals.1, vals.2, t) {
        XifResponse::Accept { .. } => {}
        XifResponse::Reject => panic!("offload rejected: {:?}", llc.last_error()),
    }
}

fn main() {
    let sew = Sew::Half; // int16 activations/weights
    let (batch, d_in, d_out) = (16usize, 32usize, 24usize);
    let mut rng = workloads::rng(2024);
    let x = workloads::random_matrix(&mut rng, batch, d_in, sew, 6); // activations
    let w = workloads::random_matrix(&mut rng, d_out, d_in, sew, 6); // weights (row-major)

    let mut llc = ArcaneLlc::new(ArcaneConfig::with_lanes(8));
    let (px, pw, pwt, ph) = (BASE, BASE + 0x10000, BASE + 0x20000, BASE + 0x30000);
    llc.ext_mut().write_bytes(px, &x.to_bytes(sew)).unwrap();
    llc.ext_mut().write_bytes(pw, &w.to_bytes(sew)).unwrap();

    let m = |i: u8| MatReg::new(i).unwrap();
    let mut t = 0u64;
    let mut go = |llc: &mut ArcaneLlc, f, v| {
        t += 10;
        offload(llc, f, sew, v, t);
    };

    // m0 = X, m1 = W; m2 = Wt; m3 = H (all reservations are deferred).
    go(
        &mut llc,
        FUNC5_XMR,
        xmnmc::pack_xmr(px, 1, m(0), d_in as u16, batch as u16),
    );
    go(
        &mut llc,
        FUNC5_XMR,
        xmnmc::pack_xmr(pw, 1, m(1), d_in as u16, d_out as u16),
    );
    go(
        &mut llc,
        FUNC5_XMR,
        xmnmc::pack_xmr(pwt, 1, m(2), d_out as u16, d_in as u16),
    );
    go(
        &mut llc,
        FUNC5_XMR,
        xmnmc::pack_xmr(ph, 1, m(3), d_out as u16, batch as u16),
    );

    // Wt = transpose(W); H = X * Wt; H = (H * 1) >> 4; H = leaky_relu(H).
    go(
        &mut llc,
        kernel_id::TRANSPOSE,
        xmnmc::pack_kernel(0, 0, m(2), m(1), m(0), m(0)),
    );
    go(
        &mut llc,
        kernel_id::GEMM,
        xmnmc::pack_kernel(1, 0, m(3), m(0), m(2), m(0)),
    );
    go(
        &mut llc,
        kernel_id::MAT_SCALE,
        xmnmc::pack_kernel(1, 4, m(3), m(3), m(0), m(0)),
    );
    go(
        &mut llc,
        kernel_id::LEAKY_RELU,
        xmnmc::pack_kernel(3, 0, m(3), m(3), m(0), m(0)),
    );

    // Golden pipeline.
    let wt = workloads::transpose(&w);
    let gemm = workloads::gemm(&x, &wt, None, 1, 0, sew);
    let scaled = workloads::mat_scale(&gemm, 1, 4, sew);
    let want = workloads::leaky_relu(&scaled, 3, sew);

    let mut out = vec![0u8; batch * d_out * sew.bytes()];
    llc.ext().read_bytes(ph, &mut out).unwrap();
    let got = Matrix::from_bytes(batch, d_out, sew, &out);
    assert_eq!(got, want, "MLP chain result");

    println!("MLP layer ({batch}x{d_in} -> {batch}x{d_out}, {sew}) as 4 chained kernels:");
    for r in llc.records() {
        println!(
            "  xmk{:<2} {:<12} vpu={}  [{:>7} .. {:>7}]  compute {:>6} cyc",
            r.id, r.name, r.vpu, r.decode_start, r.end, r.phases.compute
        );
    }
    println!(
        "\nall {} outputs verified against the golden pipeline;",
        batch * d_out
    );
    println!("renames resolved: {}", llc.renames());
}
