//! Software-defined ISA extensibility: register a *user* kernel in the
//! C-RT kernel library and invoke it from the host as a brand-new
//! `xmk8` instruction — no hardware change, exactly the extension flow
//! §IV of the paper advertises.
//!
//! The new kernel is SAXPY-like: `R = alpha·X + Y` (element-wise, with
//! the usual wrapping semantics).
//!
//! Run with: `cargo run --release --example custom_kernel`

use arcane::core::kernels::{Kernel, KernelError, ResolvedArgs};
use arcane::core::runtime::ctx::KernelCtx;
use arcane::core::{ArcaneConfig, MatView};
use arcane::isa::asm::Asm;
use arcane::isa::reg::{A0, A1, A2, T0, T1};
use arcane::isa::vector::{Sr, VInstr, VOp, Vr};
use arcane::isa::xmnmc::{self, MatReg};
use arcane::mem::Memory;
use arcane::sim::Sew;
use arcane::system::{ArcaneSoc, EXT_BASE};

/// `R = alpha * X + Y`, row by row.
#[derive(Debug)]
struct Axpy;

const AXPY_ID: u8 = 8;

impl Kernel for Axpy {
    fn name(&self) -> &'static str {
        "axpy"
    }

    fn validate(&self, args: &ResolvedArgs) -> Result<Vec<MatView>, KernelError> {
        let x = args.ms1.ok_or(KernelError::ShapeMismatch {
            what: "axpy needs ms1 (X)",
        })?;
        let y = args.ms2.ok_or(KernelError::ShapeMismatch {
            what: "axpy needs ms2 (Y)",
        })?;
        if (x.rows, x.cols) != (args.md.rows, args.md.cols)
            || (y.rows, y.cols) != (args.md.rows, args.md.cols)
        {
            return Err(KernelError::ShapeMismatch {
                what: "axpy operands must share one shape",
            });
        }
        Ok(vec![x, y])
    }

    fn run(&self, args: &ResolvedArgs, ctx: &mut KernelCtx<'_>) -> Result<(), KernelError> {
        let x = args.ms1.expect("validated");
        let y = args.ms2.expect("validated");
        let sew = args.width;
        let vx = Vr::new(0).unwrap();
        let vy = Vr::new(1).unwrap();
        let alpha = Sr::new(2).unwrap();
        ctx.set_vl(x.cols, sew)?;
        ctx.set_scalar(alpha, args.alpha as i32 as u32);
        for r in 0..x.rows {
            ctx.load_rows(&x, r, 1, 0)?;
            ctx.load_rows(&y, r, 1, 1)?;
            ctx.exec(&[
                VInstr::OpVX {
                    op: VOp::Mul,
                    vd: vx,
                    vs1: vx,
                    rs: alpha,
                },
                VInstr::OpVV {
                    op: VOp::Add,
                    vd: vx,
                    vs1: vx,
                    vs2: vy,
                },
            ])?;
            ctx.store_row(0, args.md.cols, sew, args.md.row_addr(r));
        }
        Ok(())
    }
}

fn main() {
    let (rows, cols) = (8usize, 32usize);
    let (x_addr, y_addr, r_addr) = (EXT_BASE, EXT_BASE + 0x1000, EXT_BASE + 0x2000);

    let mut soc = ArcaneSoc::new(ArcaneConfig::with_lanes(4));
    // 1. Extend the C-RT kernel library (before "firmware compilation").
    soc.llc_mut().register_kernel(AXPY_ID, Box::new(Axpy));

    // 2. Seed X and Y.
    for i in 0..(rows * cols) as u32 {
        soc.llc_mut()
            .ext_mut()
            .write_u32(x_addr + i * 4, i)
            .unwrap();
        soc.llc_mut()
            .ext_mut()
            .write_u32(y_addr + i * 4, 1000)
            .unwrap();
    }

    // 3. Host program: reserve X, Y, R; launch the new xmk8.
    let m = |i| MatReg::new(i).unwrap();
    let mut a = Asm::new();
    for (reg, addr) in [(0u8, x_addr), (1, y_addr), (2, r_addr)] {
        let (r1, r2, r3) = xmnmc::pack_xmr(addr, 1, m(reg), cols as u16, rows as u16);
        a.li(A0, r1 as i32);
        a.li(A1, r2 as i32);
        a.li(A2, r3 as i32);
        a.raw(xmnmc::xmr_instr(Sew::Word, A0, A1, A2));
    }
    let (r1, r2, r3) = xmnmc::pack_kernel(3, 0, m(2), m(0), m(1), m(0));
    a.li(A0, r1 as i32);
    a.li(A1, r2 as i32);
    a.li(A2, r3 as i32);
    a.raw(xmnmc::xmk_instr(AXPY_ID, Sew::Word, A0, A1, A2));
    a.li(T0, r_addr as i32);
    a.lw(T1, T0, 0); // synchronise on the result
    a.ebreak();

    soc.load_program(&a);
    let run = soc.run(1_000_000).expect("program runs");

    // 4. Check: R[i] = 3*i + 1000.
    for i in 0..(rows * cols) as u32 {
        let got = soc.llc().ext().read_u32(r_addr + i * 4).unwrap();
        assert_eq!(got, 3 * i + 1000, "element {i}");
    }
    let llc = soc.llc();
    let rec = &llc.records()[0];
    println!("custom kernel '{}' executed as xmk{AXPY_ID}.w:", rec.name);
    println!("  host instructions : {}", run.instret);
    println!("  host cycles       : {}", run.cycles);
    println!(
        "  kernel phases     : preamble {} / alloc {} / compute {} / writeback {}",
        rec.phases.preamble, rec.phases.allocation, rec.phases.compute, rec.phases.writeback
    );
    println!("  all {} results verified (R = 3*X + Y)", rows * cols);
}
