//! Quickstart: offload a 3-channel convolutional layer to ARCANE —
//! the Rust equivalent of Listing 1 in the paper — and compare it with
//! the scalar CPU baseline.
//!
//! Run with: `cargo run --release --example quickstart`

use arcane::sim::{Phase, Sew};
use arcane::system::driver::{run_arcane_conv, run_scalar_conv, run_xcvpulp_conv};
use arcane::system::ConvLayerParams;

fn main() {
    // 64x64 input, 3x3 filters, int8 — a tinyML-style layer.
    let p = ConvLayerParams::new(64, 64, 3, Sew::Byte);
    println!(
        "3-channel conv layer: {}x{} input, {}x{} filter, {} ({} MACs)",
        p.h,
        p.w,
        p.k,
        p.k,
        p.sew,
        p.macs()
    );
    println!();

    let scalar = run_scalar_conv(&p);
    let pulp = run_xcvpulp_conv(&p);
    let arcane = run_arcane_conv(8, &p, 1);

    for r in [&scalar, &pulp, &arcane] {
        println!(
            "{:<24} {:>12} cycles   {:>6.2}x speedup   {:.3} MAC/cycle",
            r.label,
            r.cycles,
            r.speedup_over(&scalar),
            r.macs_per_cycle()
        );
    }

    let phases = arcane.phases.expect("ARCANE runs report phases");
    println!();
    println!("ARCANE kernel phases (Figure 3 decomposition):");
    for phase in Phase::ALL {
        println!(
            "  {:<12} {:>9} cycles  ({:>5.1} %)",
            phase.label(),
            phases.get(phase),
            100.0 * phases.share(phase)
        );
    }
    println!();
    println!("every result was verified against the golden model before reporting.");
}
