//! Multi-layer NN inference as compiled kernel-chain programs: the
//! `arcane-nn` runtime lowers three layer graphs (depthwise-separable
//! conv, residual bottleneck, int8 transformer encoder block) to real
//! `xmnmc` host programs, runs each on the full SoC across 1/2/4 VPU
//! instances and all three scheduler policies, and verifies every
//! output bit-exactly against the golden models.
//!
//! Run with: `cargo run --release --example graph_inference`
//!
//! Pass `--descriptor` to compile the graphs onto the batched
//! launch-descriptor pipeline (DESIGN.md §4.6) instead of the paper's
//! per-instruction `xmr`/`xmkN` path — the per-kernel eCPU preamble is
//! amortised over whole batches and multi-VPU splitting becomes a net
//! win.

use arcane::core::{ArcaneConfig, SchedulerKind};
use arcane::nn::suite::{self, BuiltGraph};
use arcane::nn::{CompileOptions, LaunchMode};
use arcane::sim::Sew;
use arcane::system::format_phase_split_table;

fn opts(launch: LaunchMode, instances: usize) -> CompileOptions {
    match launch {
        LaunchMode::Legacy => CompileOptions::with_instances(instances),
        LaunchMode::Descriptor => CompileOptions::descriptor(instances),
    }
}

fn show(block: &BuiltGraph, launch: LaunchMode) {
    println!("\n== {} ({launch} launch) ==", block.name);
    println!(
        "{:>12} {:>10} {:>9} {:>12} {:>16}",
        "policy", "VPUs", "kernels", "cycles", "kernels/VPU"
    );
    for n_vpus in [1usize, 2, 4] {
        for scheduler in SchedulerKind::ALL {
            let mut cfg = ArcaneConfig::with_lanes(8);
            cfg.n_vpus = n_vpus;
            cfg.scheduler = scheduler;
            let r = block.run_verified_with(cfg, &opts(launch, n_vpus));
            println!(
                "{:>12} {:>10} {:>9} {:>12} {:>16}",
                scheduler.name(),
                n_vpus,
                r.kernels,
                r.cycles,
                format!("{:?}", r.kernels_per_vpu(n_vpus)),
            );
        }
    }
}

fn main() {
    let launch = if std::env::args().any(|a| a == "--descriptor") {
        LaunchMode::Descriptor
    } else {
        LaunchMode::Legacy
    };
    println!("arcane-nn: layer graphs compiled to xmnmc kernel chains");
    println!("(every output verified bit-exactly against its golden model)");
    if launch == LaunchMode::Legacy {
        println!("tip: rerun with --descriptor for the batched launch pipeline");
    }

    let dws = suite::depthwise_separable(16, 16, 3, Sew::Byte, 11);
    let res = suite::residual_bottleneck(24, 24, Sew::Byte, 12);
    let xfm = suite::transformer_block(16, 24, 32, Sew::Byte, 13);

    for block in [&dws, &res, &xfm] {
        show(block, launch);
    }

    // The chain detail of one transformer run: which kernel ran where.
    let mut cfg = ArcaneConfig::with_lanes(8);
    cfg.n_vpus = 4;
    let r = xfm.run_verified_with(cfg, &opts(launch, 4));
    println!("\ntransformer chain on 4 VPUs (least-dirty), kernel by kernel:");
    for rec in r.records.iter().take(12) {
        println!(
            "  xmk{:<2} {:<12} vpu={}  [{:>8} .. {:>8}]",
            rec.id, rec.name, rec.vpu, rec.decode_start, rec.end
        );
    }
    if r.records.len() > 12 {
        println!("  … {} more kernels", r.records.len() - 12);
    }
    println!(
        "\n{} kernels, {} renames, {} total cycles — all outputs bit-exact",
        r.kernels, r.renames, r.cycles
    );
    if launch == LaunchMode::Descriptor {
        let ls = r.launch_stats;
        println!(
            "{} batches carried {} descriptors ({} fresh bindings); batch \
             decode cost {} eCPU cycles total",
            ls.batches, ls.descriptors, ls.bindings, ls.decode_cycles
        );
    }

    // The machine-generated preamble/compute/decode split (the same
    // rows EXPERIMENTS.md tabulates).
    println!("\nphase split (transformer, both launch modes, 4 VPUs):");
    let rows: Vec<_> = LaunchMode::ALL
        .iter()
        .map(|&mode| {
            let mut cfg = ArcaneConfig::with_lanes(8);
            cfg.n_vpus = 4;
            xfm.run_verified_with(cfg, &opts(mode, 4))
                .split_row(format!("transformer x4 / {mode}"))
        })
        .collect();
    print!("{}", format_phase_split_table(&rows));
}
