//! Multi-layer NN inference as compiled kernel-chain programs: the
//! `arcane-nn` runtime lowers three layer graphs (depthwise-separable
//! conv, residual bottleneck, int8 transformer encoder block) to real
//! `xmnmc` host programs, runs each on the full SoC across 1/2/4 VPU
//! instances and all three scheduler policies, and verifies every
//! output bit-exactly against the golden models.
//!
//! Run with: `cargo run --release --example graph_inference`

use arcane::core::{ArcaneConfig, SchedulerKind};
use arcane::nn::suite::{self, BuiltGraph};
use arcane::sim::Sew;

fn show(block: &BuiltGraph) {
    println!("\n== {} ==", block.name);
    println!(
        "{:>12} {:>10} {:>9} {:>12} {:>16}",
        "policy", "VPUs", "kernels", "cycles", "kernels/VPU"
    );
    for n_vpus in [1usize, 2, 4] {
        for scheduler in SchedulerKind::ALL {
            let mut cfg = ArcaneConfig::with_lanes(8);
            cfg.n_vpus = n_vpus;
            cfg.scheduler = scheduler;
            let r = block.run_verified(cfg, n_vpus);
            println!(
                "{:>12} {:>10} {:>9} {:>12} {:>16}",
                scheduler.name(),
                n_vpus,
                r.kernels,
                r.cycles,
                format!("{:?}", r.kernels_per_vpu(n_vpus)),
            );
        }
    }
}

fn main() {
    println!("arcane-nn: layer graphs compiled to xmnmc kernel chains");
    println!("(every output verified bit-exactly against its golden model)");

    let dws = suite::depthwise_separable(16, 16, 3, Sew::Byte, 11);
    let res = suite::residual_bottleneck(24, 24, Sew::Byte, 12);
    let xfm = suite::transformer_block(16, 24, 32, Sew::Byte, 13);

    for block in [&dws, &res, &xfm] {
        show(block);
    }

    // The chain detail of one transformer run: which kernel ran where.
    let r = xfm.run_verified(ArcaneConfig::with_lanes(8), 4);
    println!("\ntransformer chain on 4 VPUs (least-dirty), kernel by kernel:");
    for rec in r.records.iter().take(12) {
        println!(
            "  xmk{:<2} {:<12} vpu={}  [{:>8} .. {:>8}]",
            rec.id, rec.name, rec.vpu, rec.decode_start, rec.end
        );
    }
    if r.records.len() > 12 {
        println!("  … {} more kernels", r.records.len() - 12);
    }
    println!(
        "\n{} kernels, {} renames, {} total cycles — all outputs bit-exact",
        r.kernels, r.renames, r.cycles
    );
}
