//! Multi-instance scaling under the fabric arbiters: the §V-C band.
//!
//! One 7×7 int8 conv layer is split across 1, 2 and 4 VPU instances
//! and run under the legacy `whole-phase` arbiter (entire DMA phases
//! book contiguous windows, every vector instruction costs exclusive
//! eCPU cycles) and under `round-robin-burst` (line-sized bursts
//! interleave across ports, dispatch descriptors stream to per-VPU
//! sequencers). Whole-phase reproduces the flat multi-instance plateau;
//! the burst arbiter unlocks the 4-VPU gain the paper reports.
//!
//! Run with: `cargo run --release --example multi_vpu_scaling`

use arcane::core::ArcaneConfig;
use arcane::fabric::ArbiterKind;
use arcane::sim::Sew;
use arcane::system::driver::{run_arcane_conv_with, run_scalar_conv};
use arcane::system::{format_channel_table, ConvLayerParams};

fn main() {
    let size = 64;
    let p = ConvLayerParams::new(size, size, 7, Sew::Byte);
    println!("== multi-VPU scaling, {size}x{size} int8, 7x7 filters ==\n");
    let scalar = run_scalar_conv(&p);
    println!("scalar CV32E40X baseline: {} cycles\n", scalar.cycles);

    println!(
        "{:>20} {:>6} {:>14} {:>11} {:>12}",
        "arbiter", "VPUs", "total cycles", "vs scalar", "kernel ports"
    );
    for arbiter in [ArbiterKind::WholePhase, ArbiterKind::RoundRobinBurst] {
        for n_vpus in [1usize, 2, 4] {
            let mut cfg = ArcaneConfig::with_lanes(8);
            cfg.n_vpus = n_vpus;
            cfg.fabric.arbiter = arbiter;
            let r = run_arcane_conv_with(cfg, &p, n_vpus);
            // Every VPU port that carried traffic placed kernel work.
            let busy_ports = r
                .channels
                .iter()
                .filter(|c| c.label.starts_with("vpu") && c.busy_cycles > 0)
                .count();
            println!(
                "{:>20} {n_vpus:>6} {:>14} {:>10.1}x {:>12}",
                arbiter.name(),
                r.cycles,
                r.speedup_over(&scalar),
                busy_ports
            );
        }
        println!();
    }

    // Where the cycles go: the per-channel view of the 4-VPU runs.
    for arbiter in [ArbiterKind::WholePhase, ArbiterKind::RoundRobinBurst] {
        let mut cfg = ArcaneConfig::with_lanes(8);
        cfg.n_vpus = 4;
        cfg.fabric.arbiter = arbiter;
        let r = run_arcane_conv_with(cfg, &p, 4);
        println!("-- channel utilisation, 4 VPUs, {} --", arbiter.name());
        print!("{}", format_channel_table(&r.channels));
        println!();
    }
    println!("whole-phase: the eCPU serialises dispatch, so the 4-VPU run is no");
    println!("faster than 2 VPUs. round-robin-burst: dispatch and DMA interleave");
    println!("per burst on the fabric ports and 4 VPUs pull ahead.");
}
