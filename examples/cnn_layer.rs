//! An ImageNet-style CNN front-end layer (256×256×3, 7×7 filters) swept
//! across data types and ARCANE configurations — the workload behind
//! the paper's headline "84× over scalar, 16× over XCVPULP" result,
//! including the multi-instance mode that spreads one layer across all
//! four VPUs.
//!
//! Run with: `cargo run --release --example cnn_layer`
//! (set `ARCANE_SMALL=1` for a fast 64×64 variant)

use arcane::sim::Sew;
use arcane::system::driver::{run_arcane_conv, run_scalar_conv, run_xcvpulp_conv};
use arcane::system::ConvLayerParams;

fn main() {
    let size = if std::env::var_os("ARCANE_SMALL").is_some() {
        64
    } else {
        256
    };
    println!("ImageNet-style conv layer: {size}x{size}x3 input, 7x7 filters\n");

    for sew in [Sew::Byte, Sew::Word] {
        let p = ConvLayerParams::new(size, size, 7, sew);
        println!("-- {sew} --");
        let scalar = run_scalar_conv(&p);
        let pulp = run_xcvpulp_conv(&p);
        let single = run_arcane_conv(8, &p, 1);
        let multi = run_arcane_conv(8, &p, 4);
        for r in [&scalar, &pulp, &single, &multi] {
            println!(
                "  {:<26} {:>13} cycles  {:>7.1}x vs scalar",
                r.label,
                r.cycles,
                r.speedup_over(&scalar)
            );
        }
        println!(
            "  ARCANE vs XCVPULP: {:.1}x (single), {:.1}x (multi-instance)\n",
            pulp.cycles as f64 / single.cycles as f64,
            pulp.cycles as f64 / multi.cycles as f64,
        );
    }
}
