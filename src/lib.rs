//! # ARCANE — Adaptive RISC-V Cache Architecture for Near-memory Extensions
//!
//! A full-system Rust reproduction of the DAC 2025 paper: a last-level
//! cache that doubles as a tightly-coupled near-memory matrix
//! coprocessor, driven by the software-defined `xmnmc` RISC-V extension
//! over a CV-X-IF offload interface.
//!
//! This facade crate re-exports every sub-crate:
//!
//! * [`isa`] — RV32IM / XCVPULP / `xmnmc` / vector encodings + assembler
//! * [`sim`] — clock, phase accounting, statistics
//! * [`mem`] — bus, memory models, 2-D DMA
//! * [`fabric`] — burst-level shared-memory fabric: request ports,
//!   arbiter policies, bank/width model, host-traffic generation
//! * [`rv32`] — the RV32IM(+XCVPULP) instruction-set simulator
//! * [`vpu`] — the NM-Carus-style vector processing unit
//! * [`core`] — **the ARCANE LLC**: cache controller, Address Table,
//!   hazards, bridge, C-RT runtime and the kernel library
//! * [`system`] — X-HEEP system assemblies, workload programs, driver
//! * [`nn`] — the int8 layer-graph runtime: graph IR → multi-VPU
//!   kernel-chain programs with pluggable scheduler policies
//! * [`workloads`] — generators and golden reference kernels
//! * [`area`] — 65 nm area / peak-throughput models (Table II, Fig. 2)
//!
//! # Quickstart
//!
//! ```
//! use arcane::system::driver::{run_arcane_conv, run_scalar_conv};
//! use arcane::system::ConvLayerParams;
//! use arcane::sim::Sew;
//!
//! // A small 3-channel conv layer on int8 data.
//! let p = ConvLayerParams::new(16, 16, 3, Sew::Byte);
//! let scalar = run_scalar_conv(&p);          // CV32E40X baseline
//! let arcane = run_arcane_conv(4, &p, 1);    // 4-lane ARCANE
//! assert!(arcane.cycles > 0 && scalar.cycles > 0);
//! println!("speedup: {:.1}x", arcane.speedup_over(&scalar));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use arcane_area as area;
pub use arcane_core as core;
pub use arcane_fabric as fabric;
pub use arcane_isa as isa;
pub use arcane_mem as mem;
pub use arcane_nn as nn;
pub use arcane_rv32 as rv32;
pub use arcane_sim as sim;
pub use arcane_system as system;
pub use arcane_vpu as vpu;
pub use arcane_workloads as workloads;
